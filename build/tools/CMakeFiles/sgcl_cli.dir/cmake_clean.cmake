file(REMOVE_RECURSE
  "CMakeFiles/sgcl_cli.dir/sgcl_cli.cc.o"
  "CMakeFiles/sgcl_cli.dir/sgcl_cli.cc.o.d"
  "sgcl_cli"
  "sgcl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgcl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
