# Empty compiler generated dependencies file for sgcl_cli.
# This may be replaced when dependencies are built.
