# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/sgcl_cli" "generate" "--dataset=MUTAG" "--graphs=60" "--node-cap=14" "--seed=3" "--out=cli_test_ds.bin")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/sgcl_cli" "info" "--data=cli_test_ds.bin")
set_tests_properties(cli_info PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pretrain "/root/repo/build/tools/sgcl_cli" "pretrain" "--data=cli_test_ds.bin" "--epochs=3" "--hidden=16" "--layers=2" "--out=cli_test_model.ckpt")
set_tests_properties(cli_pretrain PROPERTIES  FIXTURES_REQUIRED "cli_data" FIXTURES_SETUP "cli_model" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate "/root/repo/build/tools/sgcl_cli" "evaluate" "--data=cli_test_ds.bin" "--model=cli_test_model.ckpt" "--hidden=16" "--layers=2" "--folds=3")
set_tests_properties(cli_evaluate PROPERTIES  FIXTURES_REQUIRED "cli_data;cli_model" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scores "/root/repo/build/tools/sgcl_cli" "scores" "--data=cli_test_ds.bin" "--model=cli_test_model.ckpt" "--hidden=16" "--layers=2" "--graph=0")
set_tests_properties(cli_scores PROPERTIES  FIXTURES_REQUIRED "cli_data;cli_model" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
