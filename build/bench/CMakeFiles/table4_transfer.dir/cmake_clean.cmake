file(REMOVE_RECURSE
  "CMakeFiles/table4_transfer.dir/table4_transfer.cc.o"
  "CMakeFiles/table4_transfer.dir/table4_transfer.cc.o.d"
  "table4_transfer"
  "table4_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
