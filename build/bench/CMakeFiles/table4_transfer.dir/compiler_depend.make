# Empty compiler generated dependencies file for table4_transfer.
# This may be replaced when dependencies are built.
