file(REMOVE_RECURSE
  "CMakeFiles/fig5_sensitivity_transfer.dir/fig5_sensitivity_transfer.cc.o"
  "CMakeFiles/fig5_sensitivity_transfer.dir/fig5_sensitivity_transfer.cc.o.d"
  "fig5_sensitivity_transfer"
  "fig5_sensitivity_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sensitivity_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
