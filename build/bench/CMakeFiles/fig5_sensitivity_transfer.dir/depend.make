# Empty dependencies file for fig5_sensitivity_transfer.
# This may be replaced when dependencies are built.
