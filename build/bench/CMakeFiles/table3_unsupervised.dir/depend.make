# Empty dependencies file for table3_unsupervised.
# This may be replaced when dependencies are built.
