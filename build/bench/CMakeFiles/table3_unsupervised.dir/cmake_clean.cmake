file(REMOVE_RECURSE
  "CMakeFiles/table3_unsupervised.dir/table3_unsupervised.cc.o"
  "CMakeFiles/table3_unsupervised.dir/table3_unsupervised.cc.o.d"
  "table3_unsupervised"
  "table3_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
