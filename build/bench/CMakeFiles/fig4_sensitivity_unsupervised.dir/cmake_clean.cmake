file(REMOVE_RECURSE
  "CMakeFiles/fig4_sensitivity_unsupervised.dir/fig4_sensitivity_unsupervised.cc.o"
  "CMakeFiles/fig4_sensitivity_unsupervised.dir/fig4_sensitivity_unsupervised.cc.o.d"
  "fig4_sensitivity_unsupervised"
  "fig4_sensitivity_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sensitivity_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
