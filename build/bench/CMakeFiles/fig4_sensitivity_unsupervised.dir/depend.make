# Empty dependencies file for fig4_sensitivity_unsupervised.
# This may be replaced when dependencies are built.
