# Empty compiler generated dependencies file for sgcl_bench_util.
# This may be replaced when dependencies are built.
