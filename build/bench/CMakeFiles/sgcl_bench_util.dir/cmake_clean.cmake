file(REMOVE_RECURSE
  "CMakeFiles/sgcl_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sgcl_bench_util.dir/bench_util.cc.o.d"
  "libsgcl_bench_util.a"
  "libsgcl_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgcl_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
