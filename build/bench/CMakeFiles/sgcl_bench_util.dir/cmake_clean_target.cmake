file(REMOVE_RECURSE
  "libsgcl_bench_util.a"
)
