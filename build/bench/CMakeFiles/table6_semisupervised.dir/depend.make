# Empty dependencies file for table6_semisupervised.
# This may be replaced when dependencies are built.
