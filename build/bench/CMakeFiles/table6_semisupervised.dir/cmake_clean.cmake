file(REMOVE_RECURSE
  "CMakeFiles/table6_semisupervised.dir/table6_semisupervised.cc.o"
  "CMakeFiles/table6_semisupervised.dir/table6_semisupervised.cc.o.d"
  "table6_semisupervised"
  "table6_semisupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_semisupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
