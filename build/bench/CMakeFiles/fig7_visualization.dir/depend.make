# Empty dependencies file for fig7_visualization.
# This may be replaced when dependencies are built.
