file(REMOVE_RECURSE
  "CMakeFiles/fig7_visualization.dir/fig7_visualization.cc.o"
  "CMakeFiles/fig7_visualization.dir/fig7_visualization.cc.o.d"
  "fig7_visualization"
  "fig7_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
