file(REMOVE_RECURSE
  "CMakeFiles/complexity_generator.dir/complexity_generator.cc.o"
  "CMakeFiles/complexity_generator.dir/complexity_generator.cc.o.d"
  "complexity_generator"
  "complexity_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
