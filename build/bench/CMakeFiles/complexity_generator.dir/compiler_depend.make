# Empty compiler generated dependencies file for complexity_generator.
# This may be replaced when dependencies are built.
