# Empty dependencies file for fig6_encoder_architectures.
# This may be replaced when dependencies are built.
