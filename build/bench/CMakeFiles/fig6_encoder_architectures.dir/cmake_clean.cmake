file(REMOVE_RECURSE
  "CMakeFiles/fig6_encoder_architectures.dir/fig6_encoder_architectures.cc.o"
  "CMakeFiles/fig6_encoder_architectures.dir/fig6_encoder_architectures.cc.o.d"
  "fig6_encoder_architectures"
  "fig6_encoder_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_encoder_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
