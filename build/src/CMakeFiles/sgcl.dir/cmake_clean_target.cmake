file(REMOVE_RECURSE
  "libsgcl.a"
)
