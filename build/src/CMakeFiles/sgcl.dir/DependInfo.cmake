
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/adgcl.cc" "src/CMakeFiles/sgcl.dir/baselines/adgcl.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/adgcl.cc.o.d"
  "/root/repo/src/baselines/attr_masking.cc" "src/CMakeFiles/sgcl.dir/baselines/attr_masking.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/attr_masking.cc.o.d"
  "/root/repo/src/baselines/context_pred.cc" "src/CMakeFiles/sgcl.dir/baselines/context_pred.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/context_pred.cc.o.d"
  "/root/repo/src/baselines/gae.cc" "src/CMakeFiles/sgcl.dir/baselines/gae.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/gae.cc.o.d"
  "/root/repo/src/baselines/graph_kernels.cc" "src/CMakeFiles/sgcl.dir/baselines/graph_kernels.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/graph_kernels.cc.o.d"
  "/root/repo/src/baselines/graphcl.cc" "src/CMakeFiles/sgcl.dir/baselines/graphcl.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/graphcl.cc.o.d"
  "/root/repo/src/baselines/infograph.cc" "src/CMakeFiles/sgcl.dir/baselines/infograph.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/infograph.cc.o.d"
  "/root/repo/src/baselines/joao.cc" "src/CMakeFiles/sgcl.dir/baselines/joao.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/joao.cc.o.d"
  "/root/repo/src/baselines/pretrainer.cc" "src/CMakeFiles/sgcl.dir/baselines/pretrainer.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/pretrainer.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/sgcl.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/simgrace.cc" "src/CMakeFiles/sgcl.dir/baselines/simgrace.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/simgrace.cc.o.d"
  "/root/repo/src/baselines/svm.cc" "src/CMakeFiles/sgcl.dir/baselines/svm.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/svm.cc.o.d"
  "/root/repo/src/baselines/view_generator.cc" "src/CMakeFiles/sgcl.dir/baselines/view_generator.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/baselines/view_generator.cc.o.d"
  "/root/repo/src/common/io.cc" "src/CMakeFiles/sgcl.dir/common/io.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/common/io.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sgcl.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/sgcl.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sgcl.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/sgcl.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/augmentation.cc" "src/CMakeFiles/sgcl.dir/core/augmentation.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/core/augmentation.cc.o.d"
  "/root/repo/src/core/contrastive_loss.cc" "src/CMakeFiles/sgcl.dir/core/contrastive_loss.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/core/contrastive_loss.cc.o.d"
  "/root/repo/src/core/lipschitz_generator.cc" "src/CMakeFiles/sgcl.dir/core/lipschitz_generator.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/core/lipschitz_generator.cc.o.d"
  "/root/repo/src/core/sgcl_model.cc" "src/CMakeFiles/sgcl.dir/core/sgcl_model.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/core/sgcl_model.cc.o.d"
  "/root/repo/src/core/sgcl_trainer.cc" "src/CMakeFiles/sgcl.dir/core/sgcl_trainer.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/core/sgcl_trainer.cc.o.d"
  "/root/repo/src/data/motif.cc" "src/CMakeFiles/sgcl.dir/data/motif.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/data/motif.cc.o.d"
  "/root/repo/src/data/superpixel.cc" "src/CMakeFiles/sgcl.dir/data/superpixel.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/data/superpixel.cc.o.d"
  "/root/repo/src/data/synthetic_molecule.cc" "src/CMakeFiles/sgcl.dir/data/synthetic_molecule.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/data/synthetic_molecule.cc.o.d"
  "/root/repo/src/data/synthetic_tu.cc" "src/CMakeFiles/sgcl.dir/data/synthetic_tu.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/data/synthetic_tu.cc.o.d"
  "/root/repo/src/eval/cross_validation.cc" "src/CMakeFiles/sgcl.dir/eval/cross_validation.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/cross_validation.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/sgcl.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/finetune.cc" "src/CMakeFiles/sgcl.dir/eval/finetune.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/finetune.cc.o.d"
  "/root/repo/src/eval/grid_search.cc" "src/CMakeFiles/sgcl.dir/eval/grid_search.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/grid_search.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/sgcl.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/sgcl.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/eval/table.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/CMakeFiles/sgcl.dir/graph/dataset.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/graph/dataset.cc.o.d"
  "/root/repo/src/graph/dataset_io.cc" "src/CMakeFiles/sgcl.dir/graph/dataset_io.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/graph/dataset_io.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/sgcl.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_batch.cc" "src/CMakeFiles/sgcl.dir/graph/graph_batch.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/graph/graph_batch.cc.o.d"
  "/root/repo/src/graph/splits.cc" "src/CMakeFiles/sgcl.dir/graph/splits.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/graph/splits.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/CMakeFiles/sgcl.dir/nn/checkpoint.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/checkpoint.cc.o.d"
  "/root/repo/src/nn/encoder.cc" "src/CMakeFiles/sgcl.dir/nn/encoder.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/encoder.cc.o.d"
  "/root/repo/src/nn/gat_conv.cc" "src/CMakeFiles/sgcl.dir/nn/gat_conv.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/gat_conv.cc.o.d"
  "/root/repo/src/nn/gcn_conv.cc" "src/CMakeFiles/sgcl.dir/nn/gcn_conv.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/gcn_conv.cc.o.d"
  "/root/repo/src/nn/gin_conv.cc" "src/CMakeFiles/sgcl.dir/nn/gin_conv.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/gin_conv.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/sgcl.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/sgcl.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/sgcl.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/sgcl.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/sgcl.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/pooling.cc.o.d"
  "/root/repo/src/nn/sage_conv.cc" "src/CMakeFiles/sgcl.dir/nn/sage_conv.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/nn/sage_conv.cc.o.d"
  "/root/repo/src/tensor/graph_ops.cc" "src/CMakeFiles/sgcl.dir/tensor/graph_ops.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/tensor/graph_ops.cc.o.d"
  "/root/repo/src/tensor/init.cc" "src/CMakeFiles/sgcl.dir/tensor/init.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/tensor/init.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/sgcl.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/sgcl.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/sgcl.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/sgcl.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
