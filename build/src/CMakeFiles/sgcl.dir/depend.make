# Empty dependencies file for sgcl.
# This may be replaced when dependencies are built.
