
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/augmentations_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/augmentations_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/augmentations_test.cc.o.d"
  "/root/repo/tests/baselines/graph_kernels_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/graph_kernels_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/graph_kernels_test.cc.o.d"
  "/root/repo/tests/baselines/pretrainers_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/pretrainers_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/pretrainers_test.cc.o.d"
  "/root/repo/tests/baselines/registry_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/registry_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/registry_test.cc.o.d"
  "/root/repo/tests/baselines/svm_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/svm_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/svm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
