file(REMOVE_RECURSE
  "CMakeFiles/molecule_transfer.dir/molecule_transfer.cpp.o"
  "CMakeFiles/molecule_transfer.dir/molecule_transfer.cpp.o.d"
  "molecule_transfer"
  "molecule_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
