# Empty dependencies file for molecule_transfer.
# This may be replaced when dependencies are built.
