# Empty dependencies file for lipschitz_viz.
# This may be replaced when dependencies are built.
