file(REMOVE_RECURSE
  "CMakeFiles/lipschitz_viz.dir/lipschitz_viz.cpp.o"
  "CMakeFiles/lipschitz_viz.dir/lipschitz_viz.cpp.o.d"
  "lipschitz_viz"
  "lipschitz_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipschitz_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
