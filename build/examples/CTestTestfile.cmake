# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_molecule_transfer "/root/repo/build/examples/molecule_transfer" "3")
set_tests_properties(example_molecule_transfer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_networks "/root/repo/build/examples/social_networks" "3")
set_tests_properties(example_social_networks PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lipschitz_viz "/root/repo/build/examples/lipschitz_viz" "2" "3")
set_tests_properties(example_lipschitz_viz PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
