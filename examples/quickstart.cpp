// Quickstart: pretrain SGCL on a synthetic MUTAG-like dataset, evaluate
// the frozen embeddings with an SVM, and inspect per-node Lipschitz
// constants against the planted ground-truth motif.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_tu.h"
#include "eval/cross_validation.h"

using namespace sgcl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Data: a scaled-down synthetic MUTAG with planted semantic motifs.
  SyntheticTuOptions data_opt;
  data_opt.graph_fraction = 0.6;
  data_opt.node_cap = 20;
  data_opt.seed = seed;
  GraphDataset dataset = MakeTuDataset(TuDataset::kMutag, data_opt);
  DatasetStats stats = dataset.Stats();
  std::printf("dataset %s: %lld graphs, %.1f avg nodes, %.1f avg edges\n",
              dataset.name().c_str(),
              static_cast<long long>(stats.num_graphs), stats.avg_nodes,
              stats.avg_edges);

  // 2. Pretrain SGCL (paper defaults, scaled for CPU).
  SgclConfig config = MakeUnsupervisedConfig(dataset.feat_dim());
  config.encoder.hidden_dim = 32;
  config.encoder.num_layers = 3;
  config.epochs = 15;
  config.batch_size = 16;
  Stopwatch watch;
  SgclTrainer trainer(config, seed);
  PretrainStats pretrain = trainer.Pretrain(dataset).value();
  std::printf("pretrained %d epochs in %.1fs (loss %.3f -> %.3f)\n",
              config.epochs, watch.ElapsedSeconds(),
              pretrain.epoch_losses.front(), pretrain.epoch_losses.back());

  // 3. Downstream: 10-fold SVM on the frozen embeddings.
  std::vector<const Graph*> all;
  for (int64_t i = 0; i < dataset.size(); ++i) all.push_back(&dataset.graph(i));
  Tensor emb = trainer.model().EmbedGraphs(all);
  Rng rng(seed);
  MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                dataset.Labels().value(), dataset.num_classes(),
                                /*folds=*/10, &rng);
  std::printf("10-fold SVM accuracy: %.2f%% ± %.2f%%\n", 100.0 * cv.mean,
              100.0 * cv.std);

  // 4. Semantic analysis: do motif nodes get larger Lipschitz constants?
  const Graph& g = dataset.graph(0);
  std::vector<float> k = trainer.model().NodeLipschitzConstants(g);
  double motif_mean = 0.0, background_mean = 0.0;
  int motif_n = 0, background_n = 0;
  std::printf("graph 0 Lipschitz constants (S = planted semantic node):\n");
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const bool semantic = g.semantic_mask()[v] != 0;
    std::printf("  node %2lld %c K = %.4f\n", static_cast<long long>(v),
                semantic ? 'S' : ' ', k[v]);
    if (semantic) {
      motif_mean += k[v];
      ++motif_n;
    } else {
      background_mean += k[v];
      ++background_n;
    }
  }
  if (motif_n > 0 && background_n > 0) {
    std::printf("mean K: motif %.4f vs background %.4f\n",
                motif_mean / motif_n, background_mean / background_n);
  }
  return 0;
}
