// Transfer learning demo: pretrain SGCL on a ZINC-like molecule stream,
// fine-tune on a BBBP-like property-prediction task with a scaffold
// split, and compare against training the same encoder from scratch.
//
//   ./molecule_transfer [seed]
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_molecule.h"
#include "eval/finetune.h"
#include "graph/splits.h"

using namespace sgcl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // Pretraining corpus (ZINC-2M stand-in, scaled).
  GraphDataset zinc = MakeZincLikeDataset(/*num_graphs=*/300, seed);
  std::printf("pretraining corpus: %lld unlabeled molecules\n",
              static_cast<long long>(zinc.size()));

  // Downstream task (BBBP-like, scaffold split).
  MolDatasetOptions mol_opt;
  mol_opt.graph_fraction = 0.15;
  mol_opt.max_graphs = 300;
  mol_opt.seed = seed + 1;
  GraphDataset bbbp = MakeMolTaskDataset(MolTask::kBbbp, mol_opt);
  ThreeWaySplit split = ScaffoldSplit(bbbp, 0.8, 0.1);
  std::printf("downstream %s: %lld graphs (train %zu / valid %zu / test %zu)\n",
              bbbp.name().c_str(), static_cast<long long>(bbbp.size()),
              split.train.size(), split.valid.size(), split.test.size());

  SgclConfig config = MakeTransferConfig(kMoleculeFeatDim, /*hidden_dim=*/32);
  config.encoder.num_layers = 3;  // scaled from the paper's 5x300
  config.epochs = 8;
  config.batch_size = 32;

  FinetuneConfig ft;
  ft.epochs = 15;

  // (a) SGCL-pretrained encoder.
  Stopwatch watch;
  SgclTrainer trainer(config, seed);
  const auto pretrain = trainer.Pretrain(zinc);
  SGCL_CHECK(pretrain.ok());
  std::printf("SGCL pretraining took %.1fs\n", watch.ElapsedSeconds());
  Rng rng_a(seed + 2);
  const double auc_pretrained = FinetuneAndEvalRocAuc(
      trainer.model().mutable_encoder_k(), bbbp, split.train, split.test, ft,
      &rng_a);

  // (b) Same architecture from scratch.
  Rng init_rng(seed + 3);
  GnnEncoder scratch(config.encoder, &init_rng);
  Rng rng_b(seed + 2);
  const double auc_scratch = FinetuneAndEvalRocAuc(
      &scratch, bbbp, split.train, split.test, ft, &rng_b);

  std::printf("test ROC-AUC: SGCL-pretrained %.4f vs no-pretrain %.4f\n",
              auc_pretrained, auc_scratch);
  std::printf("%s\n", auc_pretrained >= auc_scratch
                          ? "pretraining helped"
                          : "pretraining did not help on this tiny run");
  return 0;
}
