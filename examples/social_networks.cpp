// Unsupervised learning on social graphs: SGCL vs GraphCL (random node
// dropping) on an IMDB-B-like dataset, evaluated with the paper's
// SVM protocol. Demonstrates the benefit of semantic-aware augmentation
// when class-determining structure (the planted community pattern) must
// survive augmentation.
//
//   ./social_networks [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/graphcl.h"
#include "baselines/pretrainer.h"
#include "core/sgcl_model.h"
#include "data/synthetic_tu.h"
#include "eval/evaluator.h"

using namespace sgcl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  SyntheticTuOptions data_opt;
  data_opt.graph_fraction = 0.08;  // ~80 graphs
  data_opt.node_cap = 25;
  data_opt.seed = seed;
  GraphDataset imdb = MakeTuDataset(TuDataset::kImdbB, data_opt);
  DatasetStats stats = imdb.Stats();
  std::printf("dataset %s: %lld graphs, %.1f avg nodes, %.1f avg edges\n",
              imdb.name().c_str(), static_cast<long long>(stats.num_graphs),
              stats.avg_nodes, stats.avg_edges);

  UnsupervisedProtocolOptions proto;
  proto.num_seeds = 2;
  proto.cv_folds = 5;
  proto.base_seed = seed;

  auto make_sgcl = [&](uint64_t s) -> std::unique_ptr<Pretrainer> {
    SgclConfig cfg = MakeUnsupervisedConfig(imdb.feat_dim());
    cfg.encoder.hidden_dim = 32;
    cfg.epochs = 10;
    cfg.batch_size = 16;
    return std::make_unique<SgclPretrainer>(cfg, s);
  };
  auto make_graphcl = [&](uint64_t s) -> std::unique_ptr<Pretrainer> {
    BaselineConfig cfg;
    cfg.encoder.arch = GnnArch::kGin;
    cfg.encoder.in_dim = imdb.feat_dim();
    cfg.encoder.hidden_dim = 32;
    cfg.encoder.num_layers = 3;
    cfg.epochs = 10;
    cfg.batch_size = 16;
    cfg.seed = s;
    return std::make_unique<GraphClBaseline>(cfg);
  };

  std::printf("running SGCL...\n");
  MeanStd sgcl_acc = RunUnsupervisedProtocol(make_sgcl, imdb, proto);
  std::printf("running GraphCL...\n");
  MeanStd graphcl_acc = RunUnsupervisedProtocol(make_graphcl, imdb, proto);

  std::printf("SVM accuracy (mean over %d seeds):\n", proto.num_seeds);
  std::printf("  SGCL    : %.2f%% ± %.2f%%\n", 100 * sgcl_acc.mean,
              100 * sgcl_acc.std);
  std::printf("  GraphCL : %.2f%% ± %.2f%%\n", 100 * graphcl_acc.mean,
              100 * graphcl_acc.std);
  return 0;
}
