// Visualizes per-node Lipschitz constants on MNIST-superpixel-like digit
// graphs as ASCII heatmaps next to the ground-truth strokes (the paper's
// Fig. 7 idea in a terminal).
//
//   ./lipschitz_viz [digit] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/sgcl_trainer.h"
#include "data/superpixel.h"

using namespace sgcl;  // NOLINT: example brevity

namespace {

char Shade(float x) {
  static const char kRamp[] = " .:-=+*#%@";
  const int idx = std::clamp(static_cast<int>(x * 10.0f), 0, 9);
  return kRamp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const int digit = argc > 1 ? std::atoi(argv[1]) : 2;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  GraphDataset digits = MakeSuperpixelDataset(/*per_digit=*/8, seed);
  SgclConfig config = MakeUnsupervisedConfig(digits.feat_dim());
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  config.proj_dim = 16;
  config.epochs = 6;
  config.batch_size = 16;
  SgclTrainer trainer(config, seed);
  const auto pretrain = trainer.Pretrain(digits);
  SGCL_CHECK(pretrain.ok());

  // Pick the first sample of the requested digit.
  const Graph* g = nullptr;
  for (int64_t i = 0; i < digits.size(); ++i) {
    if (digits.graph(i).label() == digit) {
      g = &digits.graph(i);
      break;
    }
  }
  if (g == nullptr) {
    std::fprintf(stderr, "digit %d not found\n", digit);
    return 1;
  }
  std::vector<float> k = trainer.model().NodeLipschitzConstants(*g);
  const float kmax = *std::max_element(k.begin(), k.end());

  std::printf("digit %d — intensity | Lipschitz K | ground-truth strokes\n\n",
              digit);
  for (int gy = 0; gy < kSuperpixelGrid; ++gy) {
    std::string left, mid, right;
    for (int gx = 0; gx < kSuperpixelGrid; ++gx) {
      const int v = gy * kSuperpixelGrid + gx;
      left += Shade(g->feature(v, 0));
      left += ' ';
      mid += Shade(kmax > 0 ? k[v] / kmax : 0.0f);
      mid += ' ';
      right += g->semantic_mask()[v] ? "# " : ". ";
    }
    std::printf("%s   %s   %s\n", left.c_str(), mid.c_str(), right.c_str());
  }

  // Quantify: how well does K rank stroke nodes above background?
  double hits = 0.0, pairs = 0.0;
  for (size_t a = 0; a < k.size(); ++a) {
    for (size_t b = 0; b < k.size(); ++b) {
      if (g->semantic_mask()[a] && !g->semantic_mask()[b]) {
        pairs += 1.0;
        hits += (k[a] > k[b]) ? 1.0 : (k[a] == k[b] ? 0.5 : 0.0);
      }
    }
  }
  if (pairs > 0) {
    std::printf("\nstroke-recovery AUC of Lipschitz constants: %.3f\n",
                hits / pairs);
  }
  return 0;
}
