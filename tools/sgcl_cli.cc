// Command-line workflow tool:
//   sgcl_cli generate  --dataset=MUTAG --out=ds.bin [--graphs=N]
//                      [--node-cap=C] [--seed=S]
//   sgcl_cli info      --data=ds.bin
//   sgcl_cli pretrain  --data=ds.bin --out=model.ckpt [--epochs=N]
//                      [--arch=gin|gcn|gat|sage] [--hidden=H] [--layers=L]
//                      [--batch=B] [--seed=S] [--metrics-out=metrics.jsonl]
//                      [--trace-out=trace.json] [--checkpoint-dir=DIR]
//                      [--checkpoint-every=K] [--checkpoint-keep=N]
//                      [--checkpoint-every-batches=B] [--resume]
//                      [--data-dir=STORE] [--prefetch-depth=D]
//                      --data-dir streams training from a sharded on-disk
//                      store (shard_writer output) instead of loading a
//                      dataset file; peak memory stays bounded by the
//                      shard cache + prefetch depth, not the corpus size
//   sgcl_cli evaluate  --data=ds.bin --model=model.ckpt [--folds=K]
//   sgcl_cli scores    --data=ds.bin --model=model.ckpt [--graph=I]
//   sgcl_cli bench     [--data=ds.bin] [--epochs=N] [--graphs=N]
//                      [--out-json=stages.json] [--compare=baseline.json]
//                      [--threshold-pct=P] [...]
//                      prints a per-stage timing table; --out-json writes
//                      the stage totals as a google-benchmark JSON file
//                      (bench_diff-compatible) and --compare diffs the run
//                      against such a baseline (malformed/empty baseline
//                      JSON fails with a Status before training starts)
//   sgcl_cli serve     --model=model.ckpt (--feat-dim=D | --data=ds.bin)
//                      [--http-port=P] [--http-threads=N]
//                      [--max-batch-graphs=G] [--max-batch-nodes=V]
//                      [--batch-timeout-us=T] [--max-queue=Q]
//                      [--max-request-graphs=G] [--max-request-nodes=V]
//                      [--duration-s=S]
//                      serves POST /v1/embed and /v1/predict through the
//                      dynamic micro-batcher (serve/service.h); runs until
//                      SIGINT/SIGTERM unless --duration-s > 0. The model
//                      checkpoint and (optional) dataset are loaded here,
//                      before serving starts — request handlers never
//                      touch the filesystem (lint rule sgcl-R7)
//
// Every command supports --help. Flags are typed (common/flags.h):
// malformed values ("--epochs=abc"), unknown flags, and positional
// arguments are errors, not silent defaults.
//
// Observability (pretrain/bench): --metrics-out streams one JSON object
// per epoch (loss, wall seconds, per-stage seconds) plus a final line
// embedding the full metrics-registry snapshot; --trace-out writes a
// chrome://tracing / Perfetto-loadable span file for the whole run;
// --log-json appends structured JSONL log records; --http-port serves
// live /metrics /healthz /status /trace for the duration of the run.
// Every sink and endpoint is stamped with one generated run id so the
// exports of a run correlate. Sink paths are validated up front: an
// unwritable --metrics-out/--trace-out/--log-json fails before any
// training work starts.
//
// Crash safety (pretrain): --checkpoint-dir saves an atomic training
// checkpoint every --checkpoint-every epochs (keeping the newest
// --checkpoint-keep); --resume restarts from the latest checkpoint in
// that directory — or from scratch when there is none — and replays the
// remaining epochs with bitwise-identical losses (core/train_state.h).
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comms/allreduce.h"
#include "common/bench_compare.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "data/shard_store.h"
#include "data/synthetic_tu.h"
#include "eval/cross_validation.h"
#include "eval/table.h"
#include "graph/dataset_io.h"
#include "graph/graph_source.h"
#include "nn/checkpoint.h"
#include "serve/service.h"

namespace sgcl {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Shared outcome of FlagSet::Parse: 0 = proceed, >= 0 returned otherwise.
// Returns -1 to proceed, 0 for --help, 1 for a parse error.
int HandleParse(const FlagSet& flags, const Status& st) {
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }
  return -1;
}

Result<TuDataset> DatasetByName(const std::string& name) {
  for (TuDataset which : AllTuDatasets()) {
    if (GetTuConfig(which).name == name) return which;
  }
  return Status::NotFound("unknown dataset " + name +
                          " (try MUTAG, DD, PROTEINS, NCI1, COLLAB, RDT-B, "
                          "RDT-M-5K, IMDB-B)");
}

// Encoder/training flags shared by pretrain, evaluate, scores, and bench.
struct ModelFlags {
  std::string arch = "gin";
  int hidden = 32;
  int layers = 3;
  int epochs = 20;
  int batch = 16;

  void Register(FlagSet* flags) {
    flags->String("arch", &arch, "encoder architecture: gin|gcn|gat|sage");
    flags->Int("hidden", &hidden, "encoder hidden dimension");
    flags->Int("layers", &layers, "encoder message-passing layers");
    flags->Int("epochs", &epochs, "pretraining epochs");
    flags->Int("batch", &batch, "minibatch size (graphs)");
  }

  Result<SgclConfig> ToConfig(int64_t feat_dim) const {
    SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
    if (arch == "gin") {
      cfg.encoder.arch = GnnArch::kGin;
    } else if (arch == "gcn") {
      cfg.encoder.arch = GnnArch::kGcn;
    } else if (arch == "gat") {
      cfg.encoder.arch = GnnArch::kGat;
    } else if (arch == "sage") {
      cfg.encoder.arch = GnnArch::kSage;
    } else {
      return Status::InvalidArgument("--arch must be gin|gcn|gat|sage, got " +
                                     arch);
    }
    cfg.encoder.hidden_dim = hidden;
    cfg.proj_dim = hidden;
    cfg.encoder.num_layers = layers;
    cfg.epochs = epochs;
    cfg.batch_size = batch;
    SGCL_RETURN_NOT_OK(cfg.Validate());
    return cfg;
  }
};

// Shared validation for the request/batch tracing flags. Fail-fast:
// a typo'd rate is a clean error before any work starts.
Status ValidateTraceFlags(double sample_rate, int64_t ring_size) {
  if (sample_rate < 0.0 || sample_rate > 1.0) {
    return Status::InvalidArgument(
        "--trace-sample-rate must be in [0, 1], got " +
        std::to_string(sample_rate));
  }
  if (ring_size < 1) {
    return Status::InvalidArgument(
        "--trace-ring-size must be >= 1, got " + std::to_string(ring_size));
  }
  return Status::OK();
}

// Observability wiring shared by pretrain and bench.
struct ObservabilityFlags {
  std::string metrics_out;
  std::string trace_out;
  std::string log_json;
  int http_port = -1;
  double trace_sample_rate = 0.0;
  int64_t trace_ring_size = 256;

  void Register(FlagSet* flags) {
    flags->String("metrics-out", &metrics_out,
                  "write per-epoch metrics as JSONL to this path "
                  "(truncates an existing file)");
    flags->String("trace-out", &trace_out,
                  "write a chrome://tracing span file to this path "
                  "(truncates an existing file)");
    flags->String("log-json", &log_json,
                  "append structured JSONL log records to this path "
                  "(appends across runs; correlate by run_id; also lowers "
                  "the log level to info)");
    flags->Int("http-port", &http_port,
               "serve live telemetry on 127.0.0.1:<port> for the duration "
               "of the run (/metrics /healthz /status /trace /v1/traces); "
               "0 picks an ephemeral port, -1 disables");
    flags->Double("trace-sample-rate", &trace_sample_rate,
                  "sample this fraction of training batches into the "
                  "in-memory trace ring (deterministic every-Nth, never "
                  "touches the training RNG; 0 disables; span trees at "
                  "/v1/traces when --http-port is set)");
    flags->Int64("trace-ring-size", &trace_ring_size,
                 "capacity of the in-memory trace ring, in traces "
                 "(oldest evicted first)");
  }
};

// Checkpoint/resume wiring for pretrain (core/train_state.h).
struct CheckpointFlags {
  std::string dir;
  int every = 1;
  int keep = 3;
  int64_t every_batches = 0;
  bool resume = false;

  void Register(FlagSet* flags) {
    flags->String("checkpoint-dir", &dir,
                  "save an atomic training checkpoint into this directory "
                  "(created if missing); empty disables checkpointing");
    flags->Int("checkpoint-every", &every,
               "save a checkpoint every K completed epochs (the final "
               "epoch is always checkpointed)");
    flags->Int("checkpoint-keep", &keep,
               "retain only the N newest checkpoints; 0 keeps all");
    flags->Int64("checkpoint-every-batches", &every_batches,
                 "additionally checkpoint inside each epoch after every B "
                 "completed batches (0 disables; mid-epoch checkpoints "
                 "resume bitwise-exactly)");
    flags->Bool("resume", &resume,
                "resume from the latest checkpoint in --checkpoint-dir "
                "(starts fresh when the directory has none)");
  }

  // Fills PretrainOptions' checkpoint fields, resolving --resume to a
  // concrete checkpoint path. A missing directory or empty directory
  // with --resume starts fresh; any other lookup failure is an error.
  Status Apply(PretrainOptions* options) const {
    if (dir.empty()) {
      if (resume) {
        return Status::InvalidArgument(
            "--resume requires --checkpoint-dir");
      }
      if (every_batches > 0) {
        return Status::InvalidArgument(
            "--checkpoint-every-batches requires --checkpoint-dir");
      }
      return Status::OK();
    }
    options->checkpoint_dir = dir;
    options->checkpoint_every = every;
    options->checkpoint_keep_last = keep;
    options->checkpoint_every_batches = every_batches;
    if (resume) {
      Result<std::string> latest = FindLatestCheckpoint(dir);
      if (latest.ok()) {
        options->resume_from = *latest;
        std::printf("resuming from %s\n", latest->c_str());
      } else if (latest.status().code() == StatusCode::kNotFound) {
        std::printf("no checkpoint under %s, starting fresh\n", dir.c_str());
      } else {
        return latest.status();
      }
    }
    return Status::OK();
  }
};

// Multi-process data-parallel pretraining flags (comms/allreduce.h).
// --workers=0 keeps the historical single-process loop; --workers=N
// runs this process as worker --rank of N, all-reducing gradients with
// the coordinator each round. Rank 0's process hosts the coordinator.
struct DistributedFlags {
  int workers = 0;
  int rank = 0;
  int coordinator_port = 0;
  int grad_accum = 8;
  int allreduce_timeout_ms = 60000;
  int connect_deadline_ms = 15000;

  void Register(FlagSet* flags) {
    flags->Int("workers", &workers,
               "data-parallel worker count; 0 disables distributed mode. "
               "Losses are bitwise-identical for every worker count");
    flags->Int("rank", &rank, "this process's rank in [0, --workers)");
    flags->Int("coordinator-port", &coordinator_port,
               "all-reduce coordinator port: rank 0 binds it (0 picks an "
               "ephemeral port, printed as 'coordinator: ...'); other "
               "ranks connect to it (required)");
    flags->Int("grad-accum", &grad_accum,
               "global batches reduced into one optimizer step (the "
               "distributed round width; must be >= --workers)");
    flags->Int("allreduce-timeout-ms", &allreduce_timeout_ms,
               "per-operation comms deadline; bounds how long a round "
               "waits for a straggler or a restarting worker");
  }

  Status Validate() const {
    if (workers < 0) {
      return Status::InvalidArgument("--workers must be >= 0");
    }
    if (workers == 0) return Status::OK();
    if (rank < 0 || rank >= workers) {
      return Status::InvalidArgument(StrFormat(
          "--rank %d outside [0, %d)", rank, workers));
    }
    if (rank != 0 && coordinator_port <= 0) {
      return Status::InvalidArgument(
          "--coordinator-port is required for ranks > 0 (rank 0 prints "
          "the port it bound)");
    }
    return Status::OK();
  }
};

// Everything ObservedPretrain needs to run the distributed path:
// the worker options plus (rank 0 only) the coordinator's schedule.
struct DistributedRun {
  DistributedPretrainOptions options;
  int workers = 0;
  AllReduceSchedule schedule;  // rank 0: validated against every HELLO
  int cache_rounds = 64;
};

// Detaches (but does not own) a log sink on scope exit, covering every
// early-return path out of ObservedPretrain.
struct LogSinkGuard {
  explicit LogSinkGuard(LogSink* sink) : sink(sink) {
    if (sink != nullptr) AddLogSink(sink);
  }
  ~LogSinkGuard() {
    if (sink != nullptr) RemoveLogSink(sink);
  }
  LogSink* sink;
};

std::string EpochReportJson(const EpochReport& r) {
  std::string json = "{\"epoch\":" + std::to_string(r.epoch) +
                     ",\"total_epochs\":" + std::to_string(r.total_epochs) +
                     ",\"loss\":" + JsonDouble(r.mean_loss) +
                     ",\"seconds\":" + JsonDouble(r.seconds) +
                     ",\"batches\":" + std::to_string(r.batches) +
                     ",\"stages\":{";
  bool first = true;
  for (const auto& [stage, secs] : r.stage_seconds) {
    if (!first) json += ",";
    first = false;
    json += '"';
    json += JsonEscape(stage);
    json += "\":";
    json += JsonDouble(secs);
  }
  json += "}}";
  return json;
}

// Runs Pretrain with the observability sinks and (optionally) the live
// telemetry endpoint attached; collects per-epoch reports for callers
// that post-process them (bench's table). `command` labels the run in
// /status and log records.
Result<PretrainStats> ObservedPretrain(SgclTrainer* trainer,
                                       const GraphSource& source,
                                       const ObservabilityFlags& obs,
                                       const char* command, int total_epochs,
                                       std::vector<EpochReport>* reports,
                                       const CheckpointFlags* ckpt = nullptr,
                                       int prefetch_depth = 2,
                                       DistributedRun* dist = nullptr) {
  SetRunId(GenerateRunId());
  // Fail fast: every sink path is validated here, before training starts,
  // so a typo'd directory is a clean error instead of lost work at the
  // final write.
  std::ofstream metrics_stream;
  if (!obs.metrics_out.empty()) {
    metrics_stream.open(obs.metrics_out, std::ios::trunc);
    if (!metrics_stream) {
      return Status::InvalidArgument("cannot open --metrics-out file " +
                                     obs.metrics_out);
    }
  }
  if (!obs.trace_out.empty()) {
    // Probe in append mode: proves writability without clobbering the
    // previous trace if this run dies before the final (truncating) write.
    std::ofstream probe(obs.trace_out, std::ios::app);
    if (!probe) {
      return Status::InvalidArgument("cannot open --trace-out file " +
                                     obs.trace_out);
    }
  }
  std::unique_ptr<JsonlLogSink> log_sink;
  if (!obs.log_json.empty()) {
    SGCL_ASSIGN_OR_RETURN(log_sink, JsonlLogSink::Open(obs.log_json));
    if (GetLogLevel() > LogLevel::kInfo) SetLogLevel(LogLevel::kInfo);
  }
  LogSinkGuard sink_guard(log_sink.get());

  TraceCollector& collector = TraceCollector::Global();
  // The /trace endpoint needs span collection on even without a file sink.
  const bool tracing = !obs.trace_out.empty() || obs.http_port >= 0;
  if (tracing) {
    collector.Clear();
    collector.Enable(true);
  }
  SGCL_RETURN_NOT_OK(
      ValidateTraceFlags(obs.trace_sample_rate, obs.trace_ring_size));
  TraceRing::Global().SetSampleRate(obs.trace_sample_rate);
  TraceRing::Global().SetCapacity(static_cast<size_t>(obs.trace_ring_size));
  TraceRing::Global().Clear();  // per-run isolation, like the metrics
  MetricsRegistry::Global().Reset();  // per-run isolation

  RunStatusBoard board;
  TelemetryServer server;
  if (obs.http_port >= 0) {
    SGCL_RETURN_NOT_OK(server.Start(obs.http_port, &board));
    // The smoke scripts parse this line to find an ephemeral port.
    std::printf("telemetry: http://127.0.0.1:%d run_id %s\n", server.port(),
                GetRunId().c_str());
    std::fflush(stdout);
  }
  // Rank 0 of a distributed run hosts the reduction coordinator; its
  // per-worker rows feed this run's /status board.
  std::unique_ptr<AllReduceCoordinator> coordinator;
  if (dist != nullptr && dist->workers > 0 && dist->options.rank == 0) {
    AllReduceCoordinatorOptions coord_options;
    coord_options.schedule = dist->schedule;
    coord_options.cache_rounds = dist->cache_rounds;
    coord_options.status_board = &board;
    coordinator = std::make_unique<AllReduceCoordinator>(coord_options);
    SGCL_RETURN_NOT_OK(coordinator->Start(dist->options.coordinator_port));
    dist->options.coordinator_port = coordinator->port();
    // The smoke scripts and worker launchers parse this line.
    std::printf("coordinator: 127.0.0.1:%d\n", coordinator->port());
    std::fflush(stdout);
  }
  board.BeginRun(command, total_epochs);
  SGCL_LOG(INFO) << command << " started: run " << GetRunId() << ", "
                 << source.size() << " graphs, " << total_epochs
                 << " epochs";

  PretrainOptions options;
  options.prefetch_depth = prefetch_depth;
  options.on_epoch_end = [&](const EpochReport& report) {
    if (reports != nullptr) reports->push_back(report);
    if (metrics_stream.is_open()) {
      metrics_stream << EpochReportJson(report) << "\n";
    }
    board.RecordEpoch(report.epoch, report.total_epochs, report.mean_loss,
                      report.seconds, report.stage_seconds);
    SGCL_LOG(INFO) << command << " epoch " << report.epoch + 1 << "/"
                   << report.total_epochs << " loss " << report.mean_loss;
    std::printf("epoch %d/%d: loss %.4f (%.2fs)\n", report.epoch + 1,
                report.total_epochs, report.mean_loss, report.seconds);
    std::fflush(stdout);
  };
  if (ckpt != nullptr) {
    SGCL_RETURN_NOT_OK(ckpt->Apply(&options));
    options.on_checkpoint = [&](const CheckpointReport& report) {
      board.RecordCheckpoint(report.path, report.seconds);
      SGCL_LOG(INFO) << command << " checkpoint " << report.path << " ("
                     << report.seconds << "s)";
    };
  }
  Result<PretrainStats> stats =
      dist != nullptr && dist->workers > 0
          ? trainer->PretrainDistributed(source, {}, options, dist->options)
          : trainer->Pretrain(source, {}, options);
  if (coordinator != nullptr) {
    // Drain before teardown: tearing the coordinator down while other
    // workers are still fetching their last rounds would fail them.
    if (stats.ok() &&
        !coordinator->WaitForGoodbyes(
            dist->workers, dist->options.allreduce_timeout_ms)) {
      SGCL_LOG(WARNING) << "coordinator: not all " << dist->workers
                        << " workers said goodbye before the deadline";
    }
    coordinator->Stop();
  }
  board.EndRun(stats.ok());
  SGCL_LOG(INFO) << command << " finished: run " << GetRunId()
                 << (stats.ok() ? " ok" : " failed");
  if (tracing) {
    collector.Enable(false);
  }
  if (!obs.trace_out.empty()) {
    Status st = collector.WriteChromeTrace(obs.trace_out);
    if (!st.ok()) return st;
    std::printf("wrote %s (%zu spans)\n", obs.trace_out.c_str(),
                collector.Events().size());
  }
  if (metrics_stream.is_open()) {
    // Final record: whole-run totals plus the full registry snapshot.
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    std::string tail = "{\"final\":true,\"run_id\":\"" +
                       JsonEscape(GetRunId()) + "\"";
    if (stats.ok()) {
      tail += ",\"total_seconds\":" + JsonDouble(stats->total_seconds) +
              ",\"total_batches\":" + std::to_string(stats->total_batches);
    }
    tail += ",\"metrics\":" + snap.ToJson() + "}";
    metrics_stream << tail << "\n";
    if (!metrics_stream.good()) {
      return Status::Internal("failed writing --metrics-out file " +
                             obs.metrics_out);
    }
    std::printf("wrote %s\n", obs.metrics_out.c_str());
  }
  server.Stop();
  return stats;
}

int CmdGenerate(int argc, char** argv) {
  std::string dataset = "MUTAG", out = "dataset.bin";
  int graphs = 200;
  double node_cap = 40.0;
  uint64_t seed = 1;
  FlagSet flags("sgcl_cli generate");
  flags.String("dataset", &dataset, "TU dataset name (e.g. MUTAG)");
  flags.String("out", &out, "output dataset path");
  flags.Int("graphs", &graphs, "number of graphs to generate");
  flags.Double("node-cap", &node_cap, "cap on average node count");
  flags.Uint64("seed", &seed, "generation seed");
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  auto which = DatasetByName(dataset);
  if (!which.ok()) return Fail(which.status());
  SyntheticTuOptions opt;
  opt.graph_fraction = std::min(
      1.0, static_cast<double>(graphs) / GetTuConfig(*which).num_graphs);
  opt.node_cap = node_cap;
  opt.seed = seed;
  GraphDataset ds = MakeTuDataset(*which, opt);
  Status st = SaveDataset(ds, out);
  if (!st.ok()) return Fail(st);
  DatasetStats stats = ds.Stats();
  std::printf("wrote %s: %lld graphs, %.1f avg nodes, %.1f avg edges\n",
              out.c_str(), static_cast<long long>(stats.num_graphs),
              stats.avg_nodes, stats.avg_edges);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  std::string data = "dataset.bin";
  FlagSet flags("sgcl_cli info");
  flags.String("data", &data, "dataset path");
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  auto ds = LoadDataset(data);
  if (!ds.ok()) return Fail(ds.status());
  DatasetStats stats = ds->Stats();
  std::printf("%s: %lld graphs, %d classes, %d tasks, feat dim %lld,\n"
              "  %.2f avg nodes, %.2f avg edges\n",
              ds->name().c_str(), static_cast<long long>(stats.num_graphs),
              ds->num_classes(), ds->num_tasks(),
              static_cast<long long>(ds->feat_dim()), stats.avg_nodes,
              stats.avg_edges);
  return 0;
}

int CmdPretrain(int argc, char** argv) {
  std::string data = "dataset.bin", data_dir, out = "model.ckpt";
  uint64_t seed = 1;
  int prefetch_depth = 2;
  ModelFlags model_flags;
  ObservabilityFlags obs;
  CheckpointFlags ckpt;
  DistributedFlags dist_flags;
  FlagSet flags("sgcl_cli pretrain");
  flags.String("data", &data, "dataset path");
  flags.String("data-dir", &data_dir,
               "sharded graph store directory (shard_writer output); when "
               "set, streams training from disk instead of --data");
  flags.String("out", &out, "output checkpoint path");
  flags.Uint64("seed", &seed, "training seed");
  flags.Int("prefetch-depth", &prefetch_depth,
            "batches decoded ahead of the training step when streaming "
            "(<= 0 fetches synchronously)");
  model_flags.Register(&flags);
  obs.Register(&flags);
  ckpt.Register(&flags);
  dist_flags.Register(&flags);
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  if (Status st = dist_flags.Validate(); !st.ok()) return Fail(st);
  // Workers checkpoint independently: give each rank its own subtree so
  // FindLatestCheckpoint never picks up a sibling's file.
  if (dist_flags.workers > 0 && !ckpt.dir.empty()) {
    ckpt.dir += "/rank-" + std::to_string(dist_flags.rank);
  }
  // Resolve the training source: on-disk shard store or loaded dataset.
  std::unique_ptr<ShardedGraphStore> store;
  std::unique_ptr<InMemorySource> mem;
  const GraphSource* source = nullptr;
  if (!data_dir.empty()) {
    auto opened = ShardedGraphStore::Open(data_dir);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
    source = store.get();
  } else {
    auto ds = LoadDataset(data);
    if (!ds.ok()) return Fail(ds.status());
    mem = std::make_unique<InMemorySource>(std::move(*ds));
    source = mem.get();
  }
  auto feat_dim = source->FeatDim();
  if (!feat_dim.ok()) return Fail(feat_dim.status());
  auto cfg = model_flags.ToConfig(*feat_dim);
  if (!cfg.ok()) return Fail(cfg.status());
  SgclTrainer trainer(*cfg, seed);
  DistributedRun dist_run;
  if (dist_flags.workers > 0) {
    dist_run.workers = dist_flags.workers;
    dist_run.options.rank = dist_flags.rank;
    dist_run.options.world_size = dist_flags.workers;
    dist_run.options.grad_accum = dist_flags.grad_accum;
    dist_run.options.coordinator_port = dist_flags.coordinator_port;
    dist_run.options.allreduce_timeout_ms = dist_flags.allreduce_timeout_ms;
    dist_run.options.connect_deadline_ms = dist_flags.connect_deadline_ms;
    // The coordinator's schedule, against which every worker HELLO is
    // validated. run_seed must be the run's ORIGINAL seed: when rank 0
    // is itself resuming, peek its checkpoint rather than trusting this
    // invocation's --seed.
    uint64_t run_seed = seed;
    if (dist_flags.rank == 0 && ckpt.resume && !ckpt.dir.empty()) {
      Result<std::string> latest = FindLatestCheckpoint(ckpt.dir);
      if (latest.ok()) {
        auto peeked = LoadTrainCheckpoint(*latest);
        if (!peeked.ok()) return Fail(peeked.status());
        if (peeked->train_seed != 0) run_seed = peeked->train_seed;
      }
    }
    AllReduceSchedule& schedule = dist_run.schedule;
    schedule.world_size = static_cast<uint32_t>(dist_flags.workers);
    schedule.accum = static_cast<uint32_t>(dist_flags.grad_accum);
    schedule.epochs = static_cast<uint32_t>(cfg->epochs);
    schedule.grad_dim =
        static_cast<uint64_t>(trainer.model().NumParameters());
    schedule.batches_per_epoch = static_cast<uint64_t>(
        PretrainBatchesPerEpoch(source->size(), cfg->batch_size));
    schedule.config_fingerprint = ConfigFingerprint(*cfg);
    schedule.source_fingerprint = source->ContentFingerprint();
    schedule.run_seed = run_seed;
    // The round cache must cover every round a killed worker could have
    // to replay: since its latest checkpoint (the cadence, doubled for
    // slack), or the whole run when checkpointing is off.
    const uint64_t accum = schedule.accum;
    uint64_t cadence_rounds;
    if (ckpt.dir.empty()) {
      cadence_rounds = schedule.total_rounds();
    } else if (ckpt.every_batches > 0) {
      cadence_rounds =
          (static_cast<uint64_t>(ckpt.every_batches) + accum - 1) / accum;
    } else {
      cadence_rounds = schedule.rounds_per_epoch() *
                       static_cast<uint64_t>(std::max(1, ckpt.every));
    }
    dist_run.cache_rounds = static_cast<int>(
        std::min<uint64_t>(std::max<uint64_t>(64, 2 * cadence_rounds),
                           1u << 20));
  }
  auto stats = ObservedPretrain(&trainer, *source, obs, "pretrain",
                                cfg->epochs, nullptr, &ckpt, prefetch_depth,
                                dist_flags.workers > 0 ? &dist_run : nullptr);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("pretrained %d epochs: loss %.4f -> %.4f\n", cfg->epochs,
              stats->epoch_losses.front(), stats->epoch_losses.back());
  Status st = SaveCheckpoint(trainer.model(), out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%lld parameters)\n", out.c_str(),
              static_cast<long long>(trainer.model().NumParameters()));
  return 0;
}

int CmdEvaluate(int argc, char** argv) {
  std::string data = "dataset.bin", model_path = "model.ckpt";
  int folds = 10;
  uint64_t seed = 1;
  ModelFlags model_flags;
  FlagSet flags("sgcl_cli evaluate");
  flags.String("data", &data, "dataset path");
  flags.String("model", &model_path, "checkpoint path");
  flags.Int("folds", &folds, "SVM cross-validation folds");
  flags.Uint64("seed", &seed, "evaluation seed");
  model_flags.Register(&flags);
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  auto ds = LoadDataset(data);
  if (!ds.ok()) return Fail(ds.status());
  auto cfg = model_flags.ToConfig(ds->feat_dim());
  if (!cfg.ok()) return Fail(cfg.status());
  Rng rng(seed);
  SgclModel model(*cfg, &rng);
  Status st = LoadCheckpoint(model_path, &model);
  if (!st.ok()) return Fail(st);
  std::vector<const Graph*> all;
  for (int64_t i = 0; i < ds->size(); ++i) all.push_back(&ds->graph(i));
  Tensor emb = model.EmbedGraphs(all);
  if (folds < 2) return Fail(Status::InvalidArgument("--folds must be >= 2"));
  MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                ds->Labels().value(), ds->num_classes(), folds, &rng);
  std::printf("%d-fold SVM accuracy: %.2f%% ± %.2f%%\n", folds,
              100.0 * cv.mean, 100.0 * cv.std);
  return 0;
}

int CmdScores(int argc, char** argv) {
  std::string data = "dataset.bin", model_path = "model.ckpt";
  int64_t index = 0;
  ModelFlags model_flags;
  FlagSet flags("sgcl_cli scores");
  flags.String("data", &data, "dataset path");
  flags.String("model", &model_path, "checkpoint path");
  flags.Int64("graph", &index, "graph index to score");
  model_flags.Register(&flags);
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  auto ds = LoadDataset(data);
  if (!ds.ok()) return Fail(ds.status());
  auto cfg = model_flags.ToConfig(ds->feat_dim());
  if (!cfg.ok()) return Fail(cfg.status());
  Rng rng(1);
  SgclModel model(*cfg, &rng);
  Status st = LoadCheckpoint(model_path, &model);
  if (!st.ok()) return Fail(st);
  if (index < 0 || index >= ds->size()) {
    return Fail(Status::OutOfRange("--graph outside dataset"));
  }
  const Graph& g = ds->graph(index);
  std::vector<float> k = model.NodeLipschitzConstants(g);
  std::vector<float> p = model.NodePreservationProbs(g);
  std::printf("graph %lld (label %d): node, Lipschitz K, preserve prob%s\n",
              static_cast<long long>(index), g.label(),
              g.semantic_mask().empty() ? "" : ", semantic");
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    std::printf("  %3lld  %8.4f  %6.4f", static_cast<long long>(v), k[v],
                p[v]);
    if (!g.semantic_mask().empty()) {
      std::printf("  %s", g.semantic_mask()[v] ? "S" : "-");
    }
    std::printf("\n");
  }
  return 0;
}

// Writes the per-stage totals of a bench run as a google-benchmark JSON
// result file so bench_diff / --compare can consume it. Entries are named
// "stage/<name>" plus "epoch/wall"; times are seconds (time_unit "s").
Status WriteStageBenchJson(const std::string& path,
                           const std::vector<BenchEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << "{\"context\":{\"library\":\"sgcl_cli bench\"},\"benchmarks\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ',';
    const double secs = entries[i].real_ns * 1e-9;
    out << "{\"name\":\"" << JsonEscape(entries[i].name)
        << "\",\"run_name\":\"" << JsonEscape(entries[i].run_name)
        << "\",\"run_type\":\"iteration\",\"iterations\":1"
        << ",\"real_time\":" << JsonDouble(secs)
        << ",\"cpu_time\":" << JsonDouble(secs) << ",\"time_unit\":\"s\"}";
  }
  out << "]}\n";
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

int CmdBench(int argc, char** argv) {
  std::string data;
  std::string dataset = "MUTAG";
  int graphs = 60;
  uint64_t seed = 1;
  std::string out_json;
  std::string compare;
  double threshold_pct = 10.0;
  ModelFlags model_flags;
  model_flags.epochs = 5;
  ObservabilityFlags obs;
  FlagSet flags("sgcl_cli bench");
  flags.String("data", &data,
               "dataset path (generates a synthetic one when empty)");
  flags.String("dataset", &dataset, "TU dataset to synthesize when no --data");
  flags.Int("graphs", &graphs, "synthesized graph count when no --data");
  flags.Uint64("seed", &seed, "training seed");
  flags.String("out-json", &out_json,
               "write stage totals as google-benchmark JSON");
  flags.String("compare", &compare,
               "baseline google-benchmark JSON to diff this run against");
  flags.Double("threshold-pct", &threshold_pct,
               "flag --compare slowdowns at or past this percentage");
  model_flags.Register(&flags);
  obs.Register(&flags);
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  // Load the baseline up front so a malformed/empty --compare file fails
  // with a proper Status before any training work starts.
  std::vector<BenchEntry> baseline;
  if (!compare.empty()) {
    auto loaded = LoadBenchmarkJson(compare);
    if (!loaded.ok()) return Fail(loaded.status());
    baseline = std::move(*loaded);
  }
  GraphDataset ds;
  if (data.empty()) {
    auto which = DatasetByName(dataset);
    if (!which.ok()) return Fail(which.status());
    SyntheticTuOptions opt;
    opt.graph_fraction = std::min(
        1.0, static_cast<double>(graphs) / GetTuConfig(*which).num_graphs);
    opt.node_cap = 20.0;
    opt.seed = seed;
    ds = MakeTuDataset(*which, opt);
  } else {
    auto loaded = LoadDataset(data);
    if (!loaded.ok()) return Fail(loaded.status());
    ds = std::move(*loaded);
  }
  auto cfg = model_flags.ToConfig(ds.feat_dim());
  if (!cfg.ok()) return Fail(cfg.status());
  SgclTrainer trainer(*cfg, seed);
  std::vector<EpochReport> reports;
  const InMemorySource bench_source(&ds);
  auto stats = ObservedPretrain(&trainer, bench_source, obs, "bench",
                                cfg->epochs, &reports);
  if (!stats.ok()) return Fail(stats.status());

  // Per-stage wall time, mean ± std across epochs, plus the run total.
  // Stages nest in parallel workers, so a stage total can exceed wall time.
  std::map<std::string, std::vector<double>> by_stage;
  std::vector<double> wall;
  for (const EpochReport& r : reports) {
    wall.push_back(r.seconds);
    for (const auto& [stage, secs] : r.stage_seconds) {
      by_stage[stage].push_back(secs);
    }
  }
  auto mean_std = [](const std::vector<double>& xs) {
    MeanStd ms;
    if (xs.empty()) return ms;
    for (double x : xs) ms.mean += x;
    ms.mean /= static_cast<double>(xs.size());
    for (double x : xs) ms.std += (x - ms.mean) * (x - ms.mean);
    ms.std = std::sqrt(ms.std / static_cast<double>(xs.size()));
    return ms;
  };
  ResultTable table({"s/epoch", "total s"});
  for (const auto& [stage, secs] : by_stage) {
    double total = 0.0;
    for (double s : secs) total += s;
    table.AddRow(stage, {mean_std(secs), MeanStd{total, 0.0}});
  }
  table.AddRow("epoch (wall)",
               {mean_std(wall), MeanStd{stats->total_seconds, 0.0}});
  std::printf("\nstage timings over %d epochs (%s, %lld graphs):\n%s",
              static_cast<int>(reports.size()), model_flags.arch.c_str(),
              static_cast<long long>(ds.size()),
              table.ToString(/*with_ranks=*/false).c_str());

  if (!out_json.empty() || !compare.empty()) {
    std::vector<BenchEntry> current;
    for (const auto& [stage, secs] : by_stage) {
      double total = 0.0;
      for (double s : secs) total += s;
      BenchEntry e;
      e.name = "stage/" + stage;
      e.run_name = e.name;
      e.real_ns = total * 1e9;
      e.cpu_ns = e.real_ns;
      current.push_back(std::move(e));
    }
    BenchEntry wall_entry;
    wall_entry.name = "epoch/wall";
    wall_entry.run_name = wall_entry.name;
    wall_entry.real_ns = stats->total_seconds * 1e9;
    wall_entry.cpu_ns = wall_entry.real_ns;
    current.push_back(std::move(wall_entry));
    if (!out_json.empty()) {
      const Status written = WriteStageBenchJson(out_json, current);
      if (!written.ok()) return Fail(written);
      std::printf("wrote %s\n", out_json.c_str());
    }
    if (!compare.empty()) {
      const BenchComparison cmp = CompareBenchmarks(baseline, current);
      std::printf("\ncomparison vs %s:\n%s", compare.c_str(),
                  FormatComparison(cmp, threshold_pct).c_str());
      const int regressions = CountRegressions(cmp, threshold_pct);
      if (regressions > 0) {
        std::printf("%d stage(s) regressed past %.1f%% (report-only)\n",
                    regressions, threshold_pct);
      }
    }
  }
  return 0;
}

// SIGINT/SIGTERM latch for `serve` (async-signal-safe: just a flag).
volatile std::sig_atomic_t g_serve_stop = 0;
void HandleServeSignal(int) { g_serve_stop = 1; }

int CmdServe(int argc, char** argv) {
  std::string model_path = "model.ckpt";
  std::string data;
  int64_t feat_dim = 0;
  uint64_t seed = 1;
  int http_port = 0;
  int http_threads = 4;
  int64_t max_batch_graphs = 16;
  int64_t max_batch_nodes = 4096;
  int64_t batch_timeout_us = 2000;
  int64_t max_queue = 256;
  int64_t max_request_graphs = 64;
  int64_t max_request_nodes = 2048;
  double duration_s = 0.0;
  double trace_sample_rate = 0.0;
  int64_t trace_ring_size = 256;
  ModelFlags model_flags;
  FlagSet flags("sgcl_cli serve");
  flags.String("model", &model_path, "checkpoint to serve");
  flags.String("data", &data,
               "dataset path used only to derive the feature dimension "
               "(alternative to --feat-dim)");
  flags.Int64("feat-dim", &feat_dim,
              "node feature dimension the model was trained with "
              "(see `sgcl_cli info`)");
  flags.Uint64("seed", &seed, "model init seed (weights are overwritten by "
               "the checkpoint)");
  flags.Int("http-port", &http_port,
            "listen on 127.0.0.1:<port>; 0 picks an ephemeral port");
  flags.Int("http-threads", &http_threads, "HTTP worker threads");
  flags.Int64("max-batch-graphs", &max_batch_graphs,
              "micro-batch cap: graphs per fused forward (1 = no batching)");
  flags.Int64("max-batch-nodes", &max_batch_nodes,
              "micro-batch cap: total nodes per fused forward");
  flags.Int64("batch-timeout-us", &batch_timeout_us,
              "how long an open batch waits for more requests");
  flags.Int64("max-queue", &max_queue,
              "admission queue bound; beyond it requests get 503");
  flags.Int64("max-request-graphs", &max_request_graphs,
              "per-request graph cap (400 past it)");
  flags.Int64("max-request-nodes", &max_request_nodes,
              "per-request total-node cap (400 past it)");
  flags.Double("duration-s", &duration_s,
               "serve for this many seconds then exit; 0 = until "
               "SIGINT/SIGTERM");
  flags.Double("trace-sample-rate", &trace_sample_rate,
               "sample this fraction of requests into the in-memory trace "
               "ring (deterministic every-Nth; 0 disables); span trees at "
               "GET /v1/traces/<id>, ids echoed in X-Sgcl-Trace");
  flags.Int64("trace-ring-size", &trace_ring_size,
              "capacity of the in-memory trace ring, in traces "
              "(oldest evicted first)");
  model_flags.Register(&flags);
  if (int rc = HandleParse(flags, flags.Parse(argc, argv, 2)); rc >= 0) {
    return rc;
  }
  if (Status trc = ValidateTraceFlags(trace_sample_rate, trace_ring_size);
      !trc.ok()) {
    return Fail(trc);
  }
  if (feat_dim <= 0) {
    if (data.empty()) {
      return Fail(Status::InvalidArgument(
          "serve needs --feat-dim (or --data to derive it)"));
    }
    auto ds = LoadDataset(data);
    if (!ds.ok()) return Fail(ds.status());
    feat_dim = ds->feat_dim();
  }
  auto cfg = model_flags.ToConfig(feat_dim);
  if (!cfg.ok()) return Fail(cfg.status());
  Rng rng(seed);
  SgclModel model(*cfg, &rng);
  Status st = LoadCheckpoint(model_path, &model);
  if (!st.ok()) return Fail(st);

  SetRunId(GenerateRunId());
  serve::ServeOptions options;
  options.http_port = http_port;
  options.http_threads = http_threads;
  options.batcher.max_batch_graphs = max_batch_graphs;
  options.batcher.max_batch_nodes = max_batch_nodes;
  options.batcher.batch_timeout_us = batch_timeout_us;
  options.batcher.max_queue_requests = max_queue;
  options.limits.max_graphs = max_request_graphs;
  options.limits.max_total_nodes =
      std::min(max_request_nodes, max_batch_nodes);
  options.trace_sample_rate = trace_sample_rate;
  options.trace_ring_size = trace_ring_size;
  MetricsRegistry::Global().Reset();  // per-run isolation
  TraceRing::Global().Clear();
  serve::ServeService service(&model, options);
  st = service.Start();
  if (!st.ok()) return Fail(st);
  // The smoke scripts parse this line to find an ephemeral port.
  std::printf("serve: http://127.0.0.1:%d run_id %s\n", service.port(),
              GetRunId().c_str());
  std::printf("model %s: %s %d-layer hidden %d, feat dim %lld, fused %s\n",
              model_path.c_str(), model_flags.arch.c_str(),
              model_flags.layers, model_flags.hidden,
              static_cast<long long>(feat_dim),
              service.session().fused() ? "yes" : "no");
  std::fflush(stdout);

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  const auto t0 = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() >= duration_s) {
      break;
    }
  }
  std::printf("serve: shutting down\n%s\n", service.StatusJson().c_str());
  service.Stop();
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sgcl_cli "
                 "<generate|info|pretrain|evaluate|scores|bench|serve> "
                 "[--flags]\n"
                 "run 'sgcl_cli <command> --help' for per-command flags\n");
    return 2;
  }
  SetLogLevel(LogLevel::kWarning);
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "info") return CmdInfo(argc, argv);
  if (cmd == "pretrain") return CmdPretrain(argc, argv);
  if (cmd == "evaluate") return CmdEvaluate(argc, argv);
  if (cmd == "scores") return CmdScores(argc, argv);
  if (cmd == "bench") return CmdBench(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
