// Command-line workflow tool:
//   sgcl_cli generate  --dataset=MUTAG --out=ds.bin [--graphs=N] [--seed=S]
//   sgcl_cli pretrain  --data=ds.bin --out=model.ckpt [--epochs=N]
//                      [--arch=gin|gcn|gat|sage] [--hidden=H] [--layers=L]
//                      [--seed=S]
//   sgcl_cli evaluate  --data=ds.bin --model=model.ckpt [--folds=K]
//   sgcl_cli scores    --data=ds.bin --model=model.ckpt [--graph=I]
//   sgcl_cli info      --data=ds.bin
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/logging.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_tu.h"
#include "eval/cross_validation.h"
#include "graph/dataset_io.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<TuDataset> DatasetByName(const std::string& name) {
  for (TuDataset which : AllTuDatasets()) {
    if (GetTuConfig(which).name == name) return which;
  }
  return Status::NotFound("unknown dataset " + name +
                          " (try MUTAG, DD, PROTEINS, NCI1, COLLAB, RDT-B, "
                          "RDT-M-5K, IMDB-B)");
}

SgclConfig ConfigFromFlags(const std::map<std::string, std::string>& flags,
                           int64_t feat_dim) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  const std::string arch = FlagOr(flags, "arch", "gin");
  if (arch == "gcn") cfg.encoder.arch = GnnArch::kGcn;
  if (arch == "gat") cfg.encoder.arch = GnnArch::kGat;
  if (arch == "sage") cfg.encoder.arch = GnnArch::kSage;
  cfg.encoder.hidden_dim = std::atol(FlagOr(flags, "hidden", "32").c_str());
  cfg.proj_dim = cfg.encoder.hidden_dim;
  cfg.encoder.num_layers = std::atoi(FlagOr(flags, "layers", "3").c_str());
  cfg.epochs = std::atoi(FlagOr(flags, "epochs", "20").c_str());
  cfg.batch_size = std::atoi(FlagOr(flags, "batch", "16").c_str());
  return cfg;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  auto which = DatasetByName(FlagOr(flags, "dataset", "MUTAG"));
  if (!which.ok()) return Fail(which.status());
  SyntheticTuOptions opt;
  const int target = std::atoi(FlagOr(flags, "graphs", "200").c_str());
  opt.graph_fraction = std::min(
      1.0, static_cast<double>(target) / GetTuConfig(*which).num_graphs);
  opt.node_cap = std::atof(FlagOr(flags, "node-cap", "40").c_str());
  opt.seed = std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  GraphDataset ds = MakeTuDataset(*which, opt);
  const std::string out = FlagOr(flags, "out", "dataset.bin");
  Status st = SaveDataset(ds, out);
  if (!st.ok()) return Fail(st);
  DatasetStats stats = ds.Stats();
  std::printf("wrote %s: %lld graphs, %.1f avg nodes, %.1f avg edges\n",
              out.c_str(), static_cast<long long>(stats.num_graphs),
              stats.avg_nodes, stats.avg_edges);
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  auto ds = LoadDataset(FlagOr(flags, "data", "dataset.bin"));
  if (!ds.ok()) return Fail(ds.status());
  DatasetStats stats = ds->Stats();
  std::printf("%s: %lld graphs, %d classes, %d tasks, feat dim %lld,\n"
              "  %.2f avg nodes, %.2f avg edges\n",
              ds->name().c_str(), static_cast<long long>(stats.num_graphs),
              ds->num_classes(), ds->num_tasks(),
              static_cast<long long>(ds->feat_dim()), stats.avg_nodes,
              stats.avg_edges);
  return 0;
}

int CmdPretrain(const std::map<std::string, std::string>& flags) {
  auto ds = LoadDataset(FlagOr(flags, "data", "dataset.bin"));
  if (!ds.ok()) return Fail(ds.status());
  SgclConfig cfg = ConfigFromFlags(flags, ds->feat_dim());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  SgclTrainer trainer(cfg, seed);
  PretrainStats stats = trainer.Pretrain(*ds);
  std::printf("pretrained %d epochs: loss %.4f -> %.4f\n", cfg.epochs,
              stats.epoch_losses.front(), stats.epoch_losses.back());
  const std::string out = FlagOr(flags, "out", "model.ckpt");
  Status st = SaveCheckpoint(trainer.model(), out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%lld parameters)\n", out.c_str(),
              static_cast<long long>(trainer.model().NumParameters()));
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  auto ds = LoadDataset(FlagOr(flags, "data", "dataset.bin"));
  if (!ds.ok()) return Fail(ds.status());
  SgclConfig cfg = ConfigFromFlags(flags, ds->feat_dim());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  Rng rng(seed);
  SgclModel model(cfg, &rng);
  Status st = LoadCheckpoint(FlagOr(flags, "model", "model.ckpt"), &model);
  if (!st.ok()) return Fail(st);
  std::vector<const Graph*> all;
  for (int64_t i = 0; i < ds->size(); ++i) all.push_back(&ds->graph(i));
  Tensor emb = model.EmbedGraphs(all);
  const int folds = std::atoi(FlagOr(flags, "folds", "10").c_str());
  MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                ds->Labels(), ds->num_classes(), folds, &rng);
  std::printf("%d-fold SVM accuracy: %.2f%% ± %.2f%%\n", folds,
              100.0 * cv.mean, 100.0 * cv.std);
  return 0;
}

int CmdScores(const std::map<std::string, std::string>& flags) {
  auto ds = LoadDataset(FlagOr(flags, "data", "dataset.bin"));
  if (!ds.ok()) return Fail(ds.status());
  SgclConfig cfg = ConfigFromFlags(flags, ds->feat_dim());
  Rng rng(1);
  SgclModel model(cfg, &rng);
  Status st = LoadCheckpoint(FlagOr(flags, "model", "model.ckpt"), &model);
  if (!st.ok()) return Fail(st);
  const int64_t index = std::atol(FlagOr(flags, "graph", "0").c_str());
  if (index < 0 || index >= ds->size()) {
    return Fail(Status::OutOfRange("--graph outside dataset"));
  }
  const Graph& g = ds->graph(index);
  std::vector<float> k = model.NodeLipschitzConstants(g);
  std::vector<float> p = model.NodePreservationProbs(g);
  std::printf("graph %lld (label %d): node, Lipschitz K, preserve prob%s\n",
              static_cast<long long>(index), g.label(),
              g.semantic_mask().empty() ? "" : ", semantic");
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    std::printf("  %3lld  %8.4f  %6.4f", static_cast<long long>(v), k[v],
                p[v]);
    if (!g.semantic_mask().empty()) {
      std::printf("  %s", g.semantic_mask()[v] ? "S" : "-");
    }
    std::printf("\n");
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sgcl_cli <generate|info|pretrain|evaluate|scores> "
                 "[--flags]\n");
    return 2;
  }
  SetLogLevel(LogLevel::kWarning);
  const std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "pretrain") return CmdPretrain(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "scores") return CmdScores(flags);
  std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
