// distributed_bench: data-parallel scaling benchmark over the loopback
// all-reduce (ISSUE acceptance: 2 workers reach the recorded speedup
// over 1 worker on the same host WITH bitwise-identical losses).
//
//   distributed_bench [--graphs=96] [--epochs=2] [--batch=4]
//                     [--hidden=16] [--accum=8] [--worlds=1,2]
//                     [--seed=0] [--out-json=BENCH_distributed.json]
//                     [--compare=BENCH_distributed.json]
//                     [--threshold-pct=25]
//
// For each worker count in --worlds the tool runs the full production
// stack in one process: an AllReduceCoordinator plus one thread per
// rank, each owning its own SgclTrainer and running PretrainDistributed
// against the coordinator's ephemeral port — the same wire protocol,
// framing, and fixed-order reduction as `sgcl_cli pretrain --workers=N`
// across processes, minus the fork/exec noise that would swamp a
// benchmark this size. Every world's per-epoch losses are checked
// bitwise against world=1 before any throughput number is reported:
// a speedup that breaks parity is a failure, not a result.
//
// Emits google-benchmark JSON (bench_diff-compatible): per-world wall
// micros, graphs/sec, speedup vs world=1, and the comms counters
// (allreduce wait micros, bytes moved) that explain scaling gaps.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comms/allreduce.h"
#include "common/bench_compare.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "data/synthetic_molecule.h"
#include "graph/graph_source.h"

namespace sgcl {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int64_t CounterValue(const char* name) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

Status WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries_us,
    const std::string& context_fields) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << "{\"context\":{\"library\":\"distributed_bench\","
      << context_fields << "},\"benchmarks\":[";
  for (size_t i = 0; i < entries_us.size(); ++i) {
    if (i > 0) out << ',';
    const std::string& name = entries_us[i].first;
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"run_name\":\""
        << JsonEscape(name) << "\",\"run_type\":\"iteration\","
        << "\"iterations\":1,\"real_time\":" << JsonDouble(entries_us[i].second)
        << ",\"cpu_time\":" << JsonDouble(entries_us[i].second)
        << ",\"time_unit\":\"us\"}";
  }
  out << "]}\n";
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

struct WorldResult {
  double wall_s = 0.0;
  std::vector<float> epoch_losses;
  int64_t allreduce_us = 0;
  int64_t bytes = 0;
};

// One full N-worker cluster run: coordinator + one trainer thread per
// rank, all ranks clients of the coordinator (star topology, exactly
// as in production rank 0).
Result<WorldResult> RunWorld(const SgclConfig& cfg, uint64_t seed,
                             int world, int accum,
                             const GraphSource& source) {
  SgclTrainer probe(cfg, seed);
  AllReduceCoordinatorOptions copt;
  copt.schedule.world_size = static_cast<uint32_t>(world);
  copt.schedule.accum = static_cast<uint32_t>(accum);
  copt.schedule.epochs = static_cast<uint32_t>(cfg.epochs);
  copt.schedule.grad_dim =
      static_cast<uint64_t>(probe.model().NumParameters());
  copt.schedule.batches_per_epoch = static_cast<uint64_t>(
      PretrainBatchesPerEpoch(source.size(), cfg.batch_size));
  copt.schedule.config_fingerprint = ConfigFingerprint(cfg);
  copt.schedule.source_fingerprint = source.ContentFingerprint();
  copt.schedule.run_seed = seed;
  copt.cache_rounds =
      static_cast<int>(copt.schedule.total_rounds()) + 1;

  AllReduceCoordinator coordinator(copt);
  SGCL_RETURN_NOT_OK(coordinator.Start(0));

  const int64_t allreduce_us_before = CounterValue("comms/allreduce_us");
  const int64_t bytes_before =
      CounterValue("comms/bytes_sent") + CounterValue("comms/bytes_recv");

  std::vector<Status> statuses(world, Status::OK());
  std::vector<std::vector<float>> losses(world);
  Stopwatch watch;
  {
    std::vector<std::thread> ranks;
    ranks.reserve(world);
    for (int rank = 0; rank < world; ++rank) {
      ranks.emplace_back([&, rank] {
        SgclTrainer trainer(cfg, seed);
        DistributedPretrainOptions dist;
        dist.rank = rank;
        dist.world_size = world;
        dist.grad_accum = accum;
        dist.coordinator_port = coordinator.port();
        auto stats =
            trainer.PretrainDistributed(source, {}, PretrainOptions(), dist);
        if (!stats.ok()) {
          statuses[rank] = stats.status();
          return;
        }
        losses[rank] = stats->epoch_losses;
      });
    }
    for (auto& t : ranks) t.join();
  }
  WorldResult result;
  result.wall_s = watch.ElapsedSeconds();
  if (!coordinator.WaitForGoodbyes(world, /*timeout_ms=*/10000)) {
    return Status::Unavailable("workers never said goodbye");
  }
  coordinator.Stop();

  for (int rank = 0; rank < world; ++rank) {
    SGCL_RETURN_NOT_OK(statuses[rank]);
    if (losses[rank] != losses[0]) {
      return Status::Internal(
          "rank " + std::to_string(rank) +
          " losses diverged from rank 0 within one cluster");
    }
  }
  result.epoch_losses = losses[0];
  result.allreduce_us =
      CounterValue("comms/allreduce_us") - allreduce_us_before;
  result.bytes = CounterValue("comms/bytes_sent") +
                 CounterValue("comms/bytes_recv") - bytes_before;
  return result;
}

int Run(int argc, char** argv) {
  int64_t graphs = 96;
  int epochs = 2;
  int64_t batch = 4;
  int64_t hidden = 16;
  int accum = 8;
  uint64_t seed = 0;
  std::string worlds_csv = "1,2";
  std::string out_json;
  std::string compare;
  double threshold_pct = 25.0;
  FlagSet flags("distributed_bench");
  flags.Int64("graphs", &graphs, "molecules in the benchmark corpus");
  flags.Int("epochs", &epochs, "pretraining epochs per world");
  flags.Int64("batch", &batch, "minibatch size");
  flags.Int64("hidden", &hidden, "encoder hidden width");
  flags.Int("accum", &accum, "global batches per all-reduce round");
  flags.Uint64("seed", &seed, "corpus + trainer seed");
  flags.String("worlds", &worlds_csv,
               "comma-separated worker counts (first must be 1: the "
               "parity baseline)");
  flags.String("out-json", &out_json,
               "write results as google-benchmark JSON");
  flags.String("compare", &compare,
               "baseline google-benchmark JSON to diff against "
               "(report-only; use bench_diff for gating)");
  flags.Double("threshold-pct", &threshold_pct,
               "report --compare slowdowns past this percentage");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }

  std::vector<int> worlds;
  {
    std::stringstream ss(worlds_csv);
    std::string token;
    while (std::getline(ss, token, ',')) {
      const int world = std::atoi(token.c_str());
      if (world < 1 || world > accum) {
        std::fprintf(stderr,
                     "error: --worlds entry '%s' must be in [1, accum=%d]\n",
                     token.c_str(), accum);
        return 2;
      }
      worlds.push_back(world);
    }
  }
  if (worlds.empty() || worlds[0] != 1) {
    std::fprintf(stderr,
                 "error: --worlds must start with 1 (the parity "
                 "baseline)\n");
    return 2;
  }
  if (graphs < 4 || epochs < 1 || batch < 2) {
    std::fprintf(stderr, "error: implausible bench configuration\n");
    return 2;
  }

  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = static_cast<int>(hidden);
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = static_cast<int>(hidden);
  cfg.batch_size = batch;
  cfg.epochs = epochs;

  GraphDataset dataset =
      MakeZincLikeDataset(static_cast<int>(graphs), seed);
  const InMemorySource source(&dataset);

  std::vector<std::pair<std::string, double>> entries;
  std::vector<float> baseline_losses;
  double baseline_gps = 0.0;
  std::printf("corpus: %lld graphs, batch %lld, accum %d, %d epochs\n",
              static_cast<long long>(graphs),
              static_cast<long long>(batch), accum, epochs);
  for (const int world : worlds) {
    auto result = RunWorld(cfg, seed, world, accum, source);
    if (!result.ok()) return Fail(result.status());
    if (world == 1) {
      baseline_losses = result->epoch_losses;
    } else if (result->epoch_losses != baseline_losses) {
      std::fprintf(stderr,
                   "error: %d-worker losses diverged from 1-worker "
                   "losses (bitwise parity broken)\n",
                   world);
      return 1;
    }
    const double gps =
        static_cast<double>(graphs) * epochs / result->wall_s;
    if (world == 1) baseline_gps = gps;
    const double speedup = gps / baseline_gps;
    std::printf("world=%d: %7.2fs (%.0f graphs/s, %.2fx vs world=1, "
                "losses bitwise-identical), allreduce wait %lld us, "
                "%lld comms bytes\n",
                world, result->wall_s, gps, speedup,
                static_cast<long long>(result->allreduce_us),
                static_cast<long long>(result->bytes));
    const std::string prefix =
        "distributed/world" + std::to_string(world);
    entries.emplace_back(prefix + "/pretrain", result->wall_s * 1e6);
    entries.emplace_back(prefix + "/graphs_per_s", gps);
    entries.emplace_back(prefix + "/speedup_x100", 100.0 * speedup);
    entries.emplace_back(prefix + "/allreduce_wait_us",
                         static_cast<double>(result->allreduce_us));
    entries.emplace_back(prefix + "/comms_bytes",
                         static_cast<double>(result->bytes));
  }

  if (!out_json.empty()) {
    const std::string context =
        "\"graphs\":" + std::to_string(graphs) +
        ",\"epochs\":" + std::to_string(epochs) +
        ",\"batch\":" + std::to_string(batch) +
        ",\"accum\":" + std::to_string(accum) +
        ",\"worlds\":\"" + worlds_csv + "\"";
    const Status written = WriteBenchJson(out_json, entries, context);
    if (!written.ok()) return Fail(written);
    std::printf("wrote %s\n", out_json.c_str());
  }
  if (!compare.empty()) {
    auto baseline = LoadBenchmarkJson(compare);
    if (!baseline.ok()) return Fail(baseline.status());
    std::vector<BenchEntry> current;
    for (const auto& [name, value_us] : entries) {
      BenchEntry e;
      e.name = name;
      e.run_name = name;
      e.real_ns = value_us * 1e3;
      e.cpu_ns = e.real_ns;
      current.push_back(std::move(e));
    }
    const BenchComparison cmp = CompareBenchmarks(*baseline, current);
    std::printf("\ncomparison vs %s:\n%s", compare.c_str(),
                FormatComparison(cmp, threshold_pct).c_str());
    const int regressions = CountRegressions(cmp, threshold_pct);
    if (regressions > 0) {
      std::printf("%d metric(s) regressed past %.1f%% (report-only)\n",
                  regressions, threshold_pct);
    }
  }
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
