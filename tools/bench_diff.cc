// CI perf-regression gate over google-benchmark JSON result files.
//
//   bench_diff <baseline.json> <current.json> [--threshold-pct=10]
//              [--report-only] [--fail-on-missing]
//
// Loads both files, matches benchmark families by name (the median
// aggregate when repetitions were used), prints a per-benchmark
// real-time delta table, and exits nonzero when any matched benchmark is
// at least --threshold-pct slower than its baseline. --report-only
// prints the same table but always exits 0 (for informational CI steps
// on noisy runners); --fail-on-missing additionally fails when a
// baseline benchmark has no counterpart in the current file (renamed or
// deleted benchmarks would otherwise dodge the gate).
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_compare.h"
#include "common/flags.h"

namespace sgcl {
namespace {

int Run(int argc, char** argv) {
  double threshold_pct = 10.0;
  bool report_only = false;
  bool fail_on_missing = false;
  FlagSet flags("bench_diff <baseline.json> <current.json>");
  flags.Double("threshold-pct", &threshold_pct,
               "fail when a benchmark is at least this % slower");
  flags.Bool("report-only", &report_only,
             "print the delta table but always exit 0");
  flags.Bool("fail-on-missing", &fail_on_missing,
             "also fail when a baseline benchmark is missing from current");

  // The two file operands are positional; everything else goes through
  // the strict flag parser.
  std::vector<std::string> files;
  std::vector<char*> flag_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      flag_argv.push_back(argv[i]);
    } else {
      files.push_back(arg);
    }
  }
  const Status st =
      flags.Parse(static_cast<int>(flag_argv.size()), flag_argv.data(), 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "error: expected exactly 2 file operands "
                 "(baseline.json current.json), got %zu\n%s",
                 files.size(), flags.Help().c_str());
    return 2;
  }

  auto base = LoadBenchmarkJson(files[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "error: %s\n", base.status().ToString().c_str());
    return 2;
  }
  auto current = LoadBenchmarkJson(files[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "error: %s\n", current.status().ToString().c_str());
    return 2;
  }

  const BenchComparison comparison = CompareBenchmarks(*base, *current);
  std::printf("%s", FormatComparison(comparison, threshold_pct).c_str());
  if (comparison.matched.empty()) {
    std::fprintf(stderr, "error: no benchmarks in common between %s and %s\n",
                 files[0].c_str(), files[1].c_str());
    return 2;
  }

  const int regressions = CountRegressions(comparison, threshold_pct);
  std::printf("\n%zu matched, %d regression(s) past %+.1f%%, "
              "%zu baseline-only, %zu current-only\n",
              comparison.matched.size(), regressions, threshold_pct,
              comparison.only_base.size(), comparison.only_current.size());
  if (report_only) return 0;
  if (regressions > 0) return 1;
  if (fail_on_missing && !comparison.only_base.empty()) return 1;
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
