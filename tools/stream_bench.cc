// stream_bench: throughput and memory comparison between in-memory and
// sharded-streaming pretraining (ISSUE acceptance: streaming reaches
// >= 80% of in-memory graphs/sec with bounded peak RSS).
//
//   stream_bench [--graphs=512] [--epochs=2] [--batch=32] [--hidden=16]
//                [--shard-graphs=64] [--prefetch-depth=2] [--seed=0]
//                [--store-dir=<tmp>] [--out-json=BENCH_stream.json]
//                [--compare=BENCH_stream.json] [--threshold-pct=25]
//
// Three phases, one process:
//   1. stream-write: shard_writer path (sampler -> store on disk);
//   2. in-memory pretrain over the equivalent GraphDataset;
//   3. streaming pretrain over the ShardedGraphStore via the prefetcher.
// Emits google-benchmark JSON (bench_diff-compatible): per-phase wall
// micros plus derived graphs/sec and the decode/stall counters that
// explain any gap. RSS is sampled after each phase (ru_maxrss is
// monotone, so phase order puts the streaming claim on the conservative
// side: its reported peak includes everything before it).
#include <sys/resource.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_compare.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "data/prefetcher.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"

namespace sgcl {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int64_t PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // KiB on Linux
}

int64_t CounterValue(const char* name) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

Status WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& entries_us,
    const std::string& context_fields) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << "{\"context\":{\"library\":\"stream_bench\"," << context_fields
      << "},\"benchmarks\":[";
  for (size_t i = 0; i < entries_us.size(); ++i) {
    if (i > 0) out << ',';
    const std::string& name = entries_us[i].first;
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"run_name\":\""
        << JsonEscape(name) << "\",\"run_type\":\"iteration\","
        << "\"iterations\":1,\"real_time\":" << JsonDouble(entries_us[i].second)
        << ",\"cpu_time\":" << JsonDouble(entries_us[i].second)
        << ",\"time_unit\":\"us\"}";
  }
  out << "]}\n";
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

int Run(int argc, char** argv) {
  int64_t graphs = 512;
  int epochs = 2;
  int64_t batch = 32;
  int64_t hidden = 16;
  int64_t shard_graphs = 64;
  int prefetch_depth = 2;
  uint64_t seed = 0;
  std::string store_dir;
  std::string out_json;
  std::string compare;
  double threshold_pct = 25.0;
  FlagSet flags("stream_bench");
  flags.Int64("graphs", &graphs, "molecules in the benchmark corpus");
  flags.Int("epochs", &epochs, "pretraining epochs per variant");
  flags.Int64("batch", &batch, "minibatch size");
  flags.Int64("hidden", &hidden, "encoder hidden width");
  flags.Int64("shard-graphs", &shard_graphs, "graphs per shard file");
  flags.Int("prefetch-depth", &prefetch_depth,
            "batches in flight for the streaming variant");
  flags.Uint64("seed", &seed, "corpus + trainer seed");
  flags.String("store-dir", &store_dir,
               "shard store directory (default: temp, removed on exit)");
  flags.String("out-json", &out_json,
               "write results as google-benchmark JSON");
  flags.String("compare", &compare,
               "baseline google-benchmark JSON to diff against "
               "(report-only; use bench_diff for gating)");
  flags.Double("threshold-pct", &threshold_pct,
               "report --compare slowdowns past this percentage");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (graphs < 4 || epochs < 1 || batch < 2 || shard_graphs < 1) {
    std::fprintf(stderr, "error: implausible bench configuration\n");
    return 2;
  }

  const bool temp_store = store_dir.empty();
  if (temp_store) {
    store_dir = (std::filesystem::temp_directory_path() /
                 ("sgcl_stream_bench_" + std::to_string(::getpid())))
                    .string();
  }

  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = static_cast<int>(hidden);
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = static_cast<int>(hidden);
  cfg.batch_size = batch;
  cfg.epochs = epochs;

  std::vector<std::pair<std::string, double>> entries;

  // Phase 1: stream-write the store (the shard_writer path).
  Stopwatch write_watch;
  {
    ShardWriterOptions options;
    options.graphs_per_shard = shard_graphs;
    auto writer = ShardedGraphStoreWriter::Create(store_dir, options);
    if (!writer.ok()) return Fail(writer.status());
    Rng rng(seed ^ 0x5a5a5a5aULL);
    MoleculeSampler sampler;
    for (int64_t i = 0; i < graphs; ++i) {
      const Status append = (*writer)->Append(sampler.Sample(&rng).graph);
      if (!append.ok()) return Fail(append);
    }
    const Status fin = (*writer)->Finalize();
    if (!fin.ok()) return Fail(fin);
  }
  const double write_s = write_watch.ElapsedSeconds();
  entries.emplace_back("stream/shard_write", write_s * 1e6);
  entries.emplace_back("stream/shard_write_graphs_per_s",
                       static_cast<double>(graphs) / write_s);

  // Phase 2: in-memory baseline (identical corpus by construction).
  const int64_t rss_before_mem_kb = PeakRssKb();
  GraphDataset dataset =
      MakeZincLikeDataset(static_cast<int>(graphs), seed);
  double mem_s = 0.0;
  std::vector<float> mem_losses;
  {
    SgclTrainer trainer(cfg, seed);
    Stopwatch watch;
    auto stats = trainer.Pretrain(dataset);
    if (!stats.ok()) return Fail(stats.status());
    mem_s = watch.ElapsedSeconds();
    mem_losses = stats->epoch_losses;
  }
  const double mem_gps =
      static_cast<double>(graphs) * epochs / mem_s;
  entries.emplace_back("stream/pretrain_mem", mem_s * 1e6);
  entries.emplace_back("stream/pretrain_mem_graphs_per_s", mem_gps);
  const int64_t rss_after_mem_kb = PeakRssKb();

  // Phase 3: streaming over the sharded store through the prefetcher.
  const int64_t stalls_before = CounterValue("prefetch/consumer_stalls");
  double disk_s = 0.0;
  std::vector<float> disk_losses;
  int64_t num_shards = 0;
  int64_t shard_decodes = 0;
  {
    auto store = ShardedGraphStore::Open(store_dir);
    if (!store.ok()) return Fail(store.status());
    num_shards = (*store)->num_shards();
    SgclTrainer trainer(cfg, seed);
    PretrainOptions options;
    options.prefetch_depth = prefetch_depth;
    Stopwatch watch;
    auto stats = trainer.Pretrain(**store, {}, options);
    if (!stats.ok()) return Fail(stats.status());
    disk_s = watch.ElapsedSeconds();
    disk_losses = stats->epoch_losses;
    shard_decodes = (*store)->shard_decodes();
  }
  const double disk_gps =
      static_cast<double>(graphs) * epochs / disk_s;
  entries.emplace_back("stream/pretrain_sharded", disk_s * 1e6);
  entries.emplace_back("stream/pretrain_sharded_graphs_per_s", disk_gps);
  const int64_t rss_after_disk_kb = PeakRssKb();

  // Single-shard stores train bitwise-identically to in-memory; with
  // multiple shards the block-aware shuffle changes batch composition,
  // so only report parity when it is expected to hold.
  if (num_shards == 1 && mem_losses != disk_losses) {
    std::fprintf(stderr,
                 "error: single-shard streaming losses diverged from "
                 "in-memory losses\n");
    return 1;
  }

  const double ratio = disk_gps / mem_gps;
  std::printf("corpus: %lld graphs, %lld shards (%lld graphs/shard)\n",
              static_cast<long long>(graphs),
              static_cast<long long>(num_shards),
              static_cast<long long>(shard_graphs));
  std::printf("shard write:        %7.2fs (%.0f graphs/s)\n", write_s,
              static_cast<double>(graphs) / write_s);
  std::printf("pretrain in-memory: %7.2fs (%.0f graphs/s)\n", mem_s,
              mem_gps);
  std::printf("pretrain sharded:   %7.2fs (%.0f graphs/s, %.1f%% of "
              "in-memory)\n",
              disk_s, disk_gps, 100.0 * ratio);
  std::printf("shard decodes: %lld, consumer stalls: %lld\n",
              static_cast<long long>(shard_decodes),
              static_cast<long long>(
                  CounterValue("prefetch/consumer_stalls") - stalls_before));
  std::printf("peak RSS: %lld KiB before, %lld KiB after in-memory, "
              "%lld KiB after streaming\n",
              static_cast<long long>(rss_before_mem_kb),
              static_cast<long long>(rss_after_mem_kb),
              static_cast<long long>(rss_after_disk_kb));
  entries.emplace_back("stream/throughput_ratio_pct", 100.0 * ratio);

  if (temp_store) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }

  if (!out_json.empty()) {
    std::string context = "\"graphs\":" + std::to_string(graphs) +
                          ",\"epochs\":" + std::to_string(epochs) +
                          ",\"shard_graphs\":" +
                          std::to_string(shard_graphs) +
                          ",\"prefetch_depth\":" +
                          std::to_string(prefetch_depth);
    const Status written = WriteBenchJson(out_json, entries, context);
    if (!written.ok()) return Fail(written);
    std::printf("wrote %s\n", out_json.c_str());
  }
  if (!compare.empty()) {
    auto baseline = LoadBenchmarkJson(compare);
    if (!baseline.ok()) return Fail(baseline.status());
    std::vector<BenchEntry> current;
    for (const auto& [name, value_us] : entries) {
      BenchEntry e;
      e.name = name;
      e.run_name = name;
      e.real_ns = value_us * 1e3;
      e.cpu_ns = e.real_ns;
      current.push_back(std::move(e));
    }
    const BenchComparison cmp = CompareBenchmarks(*baseline, current);
    std::printf("\ncomparison vs %s:\n%s", compare.c_str(),
                FormatComparison(cmp, threshold_pct).c_str());
    const int regressions = CountRegressions(cmp, threshold_pct);
    if (regressions > 0) {
      std::printf("%d metric(s) regressed past %.1f%% (report-only)\n",
                  regressions, threshold_pct);
    }
  }
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
