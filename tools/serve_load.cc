// Load generator / latency bench for `sgcl_cli serve`.
//
//   serve_load --port=P [--endpoint=embed|predict] [--concurrency=C]
//              [--duration-s=S] [--warmup-s=W] [--qps=Q]
//              [--graphs-per-request=G] [--nodes=N] [--extra-edge-factor=F]
//              [--pool=R] [--seed=S] [--name-prefix=serve/batched]
//              [--out-json=current.json] [--compare=BENCH_serve.json]
//              [--threshold-pct=P]
//
// Drives POST /v1/{embed,predict} over keep-alive connections with a
// seeded synthetic graph mix: `--pool` request bodies are generated and
// serialized up front (connected random graphs of ~--nodes nodes with
// uniform features), then `--concurrency` worker threads replay them
// round-robin — closed-loop when --qps=0, paced open-loop otherwise.
// Samples inside the warmup window are discarded.
//
// Reporting: p50/p95/p99/mean latency, achieved QPS, HTTP error counts,
// and the server's own batch-occupancy stats scraped from GET /status
// (the micro-batcher's batch_graphs histogram). --out-json writes a
// google-benchmark JSON file (bench_diff-compatible): latency quantiles
// and the mean request interval (1e6/QPS) as microsecond entries — so a
// QPS drop shows up as a time regression — with QPS, occupancy, and the
// load configuration recorded in the "context" object. --compare diffs
// this run against a baseline file, report-only.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_compare.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

using Clock = std::chrono::steady_clock;

// Minimal blocking keep-alive HTTP/1.1 client: Content-Length framing,
// one reconnect attempt per roundtrip.
class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient() { CloseFd(); }

  // Sends a fully serialized request, reads one response. Returns the
  // HTTP status code; fills `body` when non-null.
  Result<int> Roundtrip(const std::string& request, std::string* body) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0) {
        const Status st = Connect();
        if (!st.ok()) return st;
        if (attempt > 0) ++reconnects_;
      }
      if (!SendAll(request)) {
        CloseFd();
        continue;  // stale keep-alive connection: reconnect once
      }
      auto status_code = ReadResponse(body);
      if (status_code.ok()) return status_code;
      CloseFd();
    }
    return Status::Unavailable("connection failed twice");
  }

  int64_t reconnects() const { return reconnects_; }

  // Trace id echoed by the server in X-Sgcl-Trace on the most recent
  // response (empty when the request was not sampled).
  const std::string& last_trace_id() const { return last_trace_id_; }

 private:
  Status Connect() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return Status::Internal("socket() failed");
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
      CloseFd();
      return Status::Unavailable(
          StrFormat("connect(127.0.0.1:%d) failed: %s", port_,
                    strerror(errno)));
    }
    return Status::OK();
  }

  void CloseFd() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  Result<int> ReadResponse(std::string* body) {
    std::string buf;
    size_t header_end = std::string::npos;
    char chunk[4096];
    while (header_end == std::string::npos) {
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::Unavailable("recv failed in headers");
      buf.append(chunk, static_cast<size_t>(n));
      header_end = buf.find("\r\n\r\n");
    }
    // Status line: HTTP/1.1 NNN ...
    const size_t sp = buf.find(' ');
    if (sp == std::string::npos || sp + 4 > buf.size()) {
      return Status::Internal("malformed status line");
    }
    const int code = std::atoi(buf.c_str() + sp + 1);
    // Content-Length framing (the server always sends it).
    size_t content_length = 0;
    last_trace_id_.clear();
    {
      const std::string lower = [&] {
        std::string h = buf.substr(0, header_end);
        std::transform(h.begin(), h.end(), h.begin(), ::tolower);
        return h;
      }();
      const size_t pos = lower.find("content-length:");
      if (pos == std::string::npos) {
        return Status::Internal("response without Content-Length");
      }
      content_length = static_cast<size_t>(
          std::atoll(lower.c_str() + pos + std::strlen("content-length:")));
      if (lower.find("connection: close") != std::string::npos) {
        must_close_ = true;
      }
      // Trace ids are lowercase hex, so parsing the lowered headers is
      // lossless.
      const size_t tpos = lower.find("x-sgcl-trace:");
      if (tpos != std::string::npos) {
        size_t v = tpos + std::strlen("x-sgcl-trace:");
        while (v < lower.size() && lower[v] == ' ') ++v;
        size_t end = v;
        while (end < lower.size() && std::isxdigit(lower[end])) ++end;
        last_trace_id_ = lower.substr(v, end - v);
      }
    }
    const size_t body_start = header_end + 4;
    while (buf.size() < body_start + content_length) {
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::Unavailable("recv failed in body");
      buf.append(chunk, static_cast<size_t>(n));
    }
    if (body != nullptr) *body = buf.substr(body_start, content_length);
    if (must_close_) {
      CloseFd();
      must_close_ = false;
    }
    return code;
  }

  int port_;
  int fd_ = -1;
  bool must_close_ = false;
  int64_t reconnects_ = 0;
  std::string last_trace_id_;
};

// A connected random graph: spanning tree over `nodes` plus
// `extra_edge_factor * nodes` random extra edges. Features are either
// one-hot rows (the TU-dataset shape the model trains on: one random
// category per node) or dense uniform floats.
std::string GraphJson(Rng* rng, int64_t nodes, int64_t feat_dim,
                      double extra_edge_factor, bool onehot) {
  std::string features;
  char buf[32];
  if (onehot) {
    for (int64_t v = 0; v < nodes; ++v) {
      const int64_t hot = rng->UniformInt(feat_dim);
      for (int64_t j = 0; j < feat_dim; ++j) {
        if (v > 0 || j > 0) features += ',';
        features += j == hot ? '1' : '0';
      }
    }
  } else {
    for (int64_t i = 0; i < nodes * feat_dim; ++i) {
      if (i > 0) features += ',';
      std::snprintf(buf, sizeof(buf), "%.6g", rng->Uniform());
      features += buf;
    }
  }
  std::string edges;
  bool first = true;
  auto add_edge = [&](int64_t a, int64_t b) {
    if (!first) edges += ',';
    first = false;
    edges += StrFormat("%lld,%lld", static_cast<long long>(a),
                       static_cast<long long>(b));
  };
  for (int64_t v = 1; v < nodes; ++v) {
    add_edge(rng->UniformInt(v), v);  // spanning tree: parent < v
  }
  const int64_t extra =
      static_cast<int64_t>(extra_edge_factor * static_cast<double>(nodes));
  for (int64_t e = 0; e < extra && nodes >= 2; ++e) {
    const int64_t a = rng->UniformInt(nodes);
    const int64_t b = rng->UniformInt(nodes);
    if (a != b) add_edge(a, b);
  }
  return StrFormat("{\"num_nodes\":%lld,\"features\":[%s],\"edges\":[%s]}",
                   static_cast<long long>(nodes), features.c_str(),
                   edges.c_str());
}

std::string SerializeRequest(const std::string& path, const std::string& body,
                             int port) {
  return StrFormat("POST %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\n"
                   "Content-Type: application/json\r\n"
                   "Content-Length: %zu\r\nConnection: keep-alive\r\n\r\n",
                   path.c_str(), port, body.size()) +
         body;
}

struct WorkerStats {
  std::vector<double> lat_us;  // post-warmup samples
  // (latency_us, trace_id) for post-warmup responses the server sampled
  // (X-Sgcl-Trace header present) — feeds --slowest-traces.
  std::vector<std::pair<double, std::string>> traced;
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t http_errors = 0;
  int64_t transport_errors = 0;
  int64_t reconnects = 0;
};

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1.0 - frac) + (*sorted)[hi] * frac;
}

Status WriteBenchJson(const std::string& path, const std::string& prefix,
                      const std::vector<std::pair<std::string, double>>& us,
                      const std::string& context_fields) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << "{\"context\":{\"library\":\"serve_load\"," << context_fields
      << "},\"benchmarks\":[";
  for (size_t i = 0; i < us.size(); ++i) {
    if (i > 0) out << ',';
    const std::string name = prefix + "/" + us[i].first;
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"run_name\":\""
        << JsonEscape(name) << "\",\"run_type\":\"iteration\","
        << "\"iterations\":1,\"real_time\":" << JsonDouble(us[i].second)
        << ",\"cpu_time\":" << JsonDouble(us[i].second)
        << ",\"time_unit\":\"us\"}";
  }
  out << "]}\n";
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

int Run(int argc, char** argv) {
  int port = 0;
  std::string endpoint = "embed";
  int concurrency = 4;
  double duration_s = 5.0;
  double warmup_s = 0.5;
  double qps = 0.0;
  int64_t graphs_per_request = 4;
  int64_t nodes = 12;
  double extra_edge_factor = 0.5;
  std::string features = "onehot";
  int64_t pool = 64;
  uint64_t seed = 1;
  std::string name_prefix = "serve/batched";
  std::string out_json;
  std::string compare;
  double threshold_pct = 25.0;
  int64_t slowest_traces = 0;
  FlagSet flags("serve_load");
  flags.Int("port", &port, "sgcl_cli serve port (required)");
  flags.String("endpoint", &endpoint, "embed|predict");
  flags.Int("concurrency", &concurrency, "concurrent client connections");
  flags.Double("duration-s", &duration_s, "measured load duration");
  flags.Double("warmup-s", &warmup_s,
               "initial seconds whose samples are discarded");
  flags.Double("qps", &qps,
               "target request rate across all connections; 0 = closed "
               "loop (send as fast as responses return)");
  flags.Int64("graphs-per-request", &graphs_per_request,
              "graphs per POST body");
  flags.Int64("nodes", &nodes, "nodes per generated graph");
  flags.Double("extra-edge-factor", &extra_edge_factor,
               "extra random edges per node beyond the spanning tree");
  flags.String("features", &features,
               "onehot (TU-style categorical rows) | uniform (dense "
               "random floats)");
  flags.Int64("pool", &pool, "distinct pre-serialized request bodies");
  flags.Uint64("seed", &seed, "graph-mix seed");
  flags.String("name-prefix", &name_prefix,
               "benchmark entry prefix in --out-json");
  flags.String("out-json", &out_json,
               "write results as google-benchmark JSON");
  flags.String("compare", &compare,
               "baseline google-benchmark JSON to diff against "
               "(report-only)");
  flags.Double("threshold-pct", &threshold_pct,
               "report --compare slowdowns past this percentage");
  flags.Int64("slowest-traces", &slowest_traces,
              "print the trace ids of the K worst-latency sampled "
              "requests (needs the server started with "
              "--trace-sample-rate > 0; look them up at /v1/traces/<id>)");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (port <= 0) {
    std::fprintf(stderr, "error: --port is required (see sgcl_cli serve)\n");
    return 2;
  }
  if (endpoint != "embed" && endpoint != "predict") {
    std::fprintf(stderr, "error: --endpoint must be embed or predict\n");
    return 2;
  }
  if (features != "onehot" && features != "uniform") {
    std::fprintf(stderr, "error: --features must be onehot or uniform\n");
    return 2;
  }
  if (concurrency < 1 || pool < 1 || graphs_per_request < 1 || nodes < 2 ||
      duration_s <= 0.0) {
    std::fprintf(stderr, "error: implausible load configuration\n");
    return 2;
  }
  std::vector<BenchEntry> baseline;
  if (!compare.empty()) {
    auto loaded = LoadBenchmarkJson(compare);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    baseline = std::move(*loaded);
  }

  // Model metadata from the server (feature dimension sizes the mix).
  HttpClient probe(port);
  std::string info_body;
  auto info_code = probe.Roundtrip(
      StrFormat("GET /v1/info HTTP/1.1\r\nHost: 127.0.0.1:%d\r\n"
                "Connection: keep-alive\r\n\r\n", port),
      &info_body);
  if (!info_code.ok() || *info_code != 200) {
    std::fprintf(stderr, "error: GET /v1/info failed (%s)\n",
                 info_code.ok() ? std::to_string(*info_code).c_str()
                                : info_code.status().ToString().c_str());
    return 2;
  }
  auto info = JsonValue::Parse(info_body);
  if (!info.ok()) {
    std::fprintf(stderr, "error: /v1/info: %s\n",
                 info.status().ToString().c_str());
    return 2;
  }
  const JsonValue* model = info->Find("model");
  const int64_t feat_dim = static_cast<int64_t>(
      model != nullptr ? model->GetDouble("feat_dim", 0) : 0);
  if (feat_dim <= 0) {
    std::fprintf(stderr, "error: /v1/info reported no feat_dim\n");
    return 2;
  }

  // Pre-serialized request pool: the per-request client cost during the
  // measured window is just send/recv.
  const std::string path = "/v1/" + endpoint;
  Rng rng(seed);
  std::vector<std::string> requests;
  requests.reserve(static_cast<size_t>(pool));
  for (int64_t r = 0; r < pool; ++r) {
    std::string graphs;
    for (int64_t g = 0; g < graphs_per_request; ++g) {
      if (g > 0) graphs += ',';
      // +/- 25% node-count jitter keeps batches ragged like real traffic.
      const int64_t lo = std::max<int64_t>(2, nodes - nodes / 4);
      const int64_t n = lo + rng.UniformInt(nodes + nodes / 4 - lo + 1);
      graphs += GraphJson(&rng, n, feat_dim, extra_edge_factor,
                          features == "onehot");
    }
    requests.push_back(
        SerializeRequest(path, "{\"graphs\":[" + graphs + "]}", port));
  }

  const auto start = Clock::now();
  const auto warmup_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(warmup_s));
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(warmup_s + duration_s));
  std::vector<WorkerStats> stats(static_cast<size_t>(concurrency));
  std::vector<std::thread> workers;
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& mine = stats[static_cast<size_t>(w)];
      HttpClient client(port);
      const double interval_s =
          qps > 0.0 ? static_cast<double>(concurrency) / qps : 0.0;
      int64_t k = 0;
      size_t next = static_cast<size_t>(w) % requests.size();
      while (Clock::now() < deadline) {
        if (interval_s > 0.0) {
          const auto slot =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(k) * interval_s));
          std::this_thread::sleep_until(slot);
          ++k;
          if (slot >= deadline) break;
        }
        const auto t0 = Clock::now();
        auto code = client.Roundtrip(requests[next], nullptr);
        const auto t1 = Clock::now();
        next = (next + static_cast<size_t>(concurrency)) % requests.size();
        ++mine.sent;
        if (!code.ok()) {
          ++mine.transport_errors;
          continue;
        }
        if (*code == 200) {
          ++mine.ok;
        } else {
          ++mine.http_errors;
        }
        if (t1 > warmup_end && *code == 200) {
          const double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          mine.lat_us.push_back(us);
          if (!client.last_trace_id().empty()) {
            mine.traced.emplace_back(us, client.last_trace_id());
          }
        }
      }
      mine.reconnects = client.reconnects();
    });
  }
  for (std::thread& t : workers) t.join();
  const double measured_s =
      std::chrono::duration<double>(Clock::now() - warmup_end).count();

  std::vector<double> lat;
  std::vector<std::pair<double, std::string>> traced;
  int64_t sent = 0, ok = 0, http_errors = 0, transport_errors = 0,
          reconnects = 0;
  for (WorkerStats& s : stats) {
    lat.insert(lat.end(), s.lat_us.begin(), s.lat_us.end());
    traced.insert(traced.end(), s.traced.begin(), s.traced.end());
    sent += s.sent;
    ok += s.ok;
    http_errors += s.http_errors;
    transport_errors += s.transport_errors;
    reconnects += s.reconnects;
  }
  std::sort(lat.begin(), lat.end());
  const double achieved_qps =
      measured_s > 0.0 ? static_cast<double>(lat.size()) / measured_s : 0.0;
  double mean = 0.0;
  for (double v : lat) mean += v;
  if (!lat.empty()) mean /= static_cast<double>(lat.size());
  const double p50 = Quantile(&lat, 0.50);
  const double p95 = Quantile(&lat, 0.95);
  const double p99 = Quantile(&lat, 0.99);

  // Server-side batching stats for the driven endpoint.
  double batch_mean = 0.0, batch_p95 = 0.0;
  int64_t batches = 0, rejected = 0;
  std::string status_body;
  auto status_code = probe.Roundtrip(
      StrFormat("GET /status HTTP/1.1\r\nHost: 127.0.0.1:%d\r\n"
                "Connection: keep-alive\r\n\r\n", port),
      &status_body);
  if (status_code.ok() && *status_code == 200) {
    auto parsed = JsonValue::Parse(status_body);
    if (parsed.ok()) {
      const JsonValue* ep = parsed->Find(endpoint);
      if (ep != nullptr) {
        batches = static_cast<int64_t>(ep->GetDouble("batches", 0));
        rejected = static_cast<int64_t>(ep->GetDouble("rejected", 0));
        const JsonValue* occupancy = ep->Find("batch_graphs");
        if (occupancy != nullptr) {
          batch_mean = occupancy->GetDouble("mean", 0.0);
          batch_p95 = occupancy->GetDouble("p95", 0.0);
        }
      }
    }
  }

  std::printf(
      "%s: %lld requests (%lld ok, %lld http errors, %lld transport, "
      "%lld reconnects), %.1f s measured\n",
      path.c_str(), static_cast<long long>(sent), static_cast<long long>(ok),
      static_cast<long long>(http_errors),
      static_cast<long long>(transport_errors),
      static_cast<long long>(reconnects), measured_s);
  std::printf("  qps %.1f | latency us p50 %.0f p95 %.0f p99 %.0f mean %.0f "
              "(%zu samples)\n",
              achieved_qps, p50, p95, p99, mean, lat.size());
  std::printf("  server batches %lld, occupancy mean %.2f p95 %.2f, "
              "rejected %lld\n",
              static_cast<long long>(batches), batch_mean, batch_p95,
              static_cast<long long>(rejected));

  if (slowest_traces > 0) {
    if (traced.empty()) {
      std::printf("  slowest traces: none sampled (start the server with "
                  "--trace-sample-rate > 0)\n");
    } else {
      std::sort(traced.begin(), traced.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const size_t k = std::min(traced.size(),
                                static_cast<size_t>(slowest_traces));
      std::printf("  slowest traces (%zu of %zu sampled; "
                  "GET /v1/traces/<id> on port %d):\n",
                  k, traced.size(), port);
      for (size_t i = 0; i < k; ++i) {
        std::printf("    %s  %.0f us\n", traced[i].second.c_str(),
                    traced[i].first);
      }
    }
  }

  const double interval_us = achieved_qps > 0.0 ? 1e6 / achieved_qps : 0.0;
  const std::vector<std::pair<std::string, double>> entries = {
      {"req_interval_us", interval_us}, {"latency_p50_us", p50},
      {"latency_p95_us", p95},          {"latency_p99_us", p99},
      {"latency_mean_us", mean},
  };
  if (!out_json.empty()) {
    const std::string context = StrFormat(
        "\"endpoint\":\"%s\",\"qps\":%s,\"requests\":%lld,\"ok\":%lld,"
        "\"concurrency\":%d,\"graphs_per_request\":%lld,\"nodes\":%lld,"
        "\"features\":\"%s\","
        "\"batch_occupancy_mean\":%s,\"batch_occupancy_p95\":%s,"
        "\"batches\":%lld,\"rejected\":%lld",
        endpoint.c_str(), JsonDouble(achieved_qps).c_str(),
        static_cast<long long>(sent), static_cast<long long>(ok), concurrency,
        static_cast<long long>(graphs_per_request),
        static_cast<long long>(nodes), features.c_str(),
        JsonDouble(batch_mean).c_str(),
        JsonDouble(batch_p95).c_str(), static_cast<long long>(batches),
        static_cast<long long>(rejected));
    const Status written = WriteBenchJson(out_json, name_prefix, entries,
                                          context);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", out_json.c_str());
  }
  if (!compare.empty()) {
    std::vector<BenchEntry> current;
    for (const auto& [name, value] : entries) {
      BenchEntry e;
      e.name = name_prefix + "/" + name;
      e.run_name = e.name;
      e.real_ns = value * 1e3;
      e.cpu_ns = e.real_ns;
      current.push_back(std::move(e));
    }
    const BenchComparison cmp = CompareBenchmarks(baseline, current);
    std::printf("\ncomparison vs %s:\n%s", compare.c_str(),
                FormatComparison(cmp, threshold_pct).c_str());
    const int regressions = CountRegressions(cmp, threshold_pct);
    if (regressions > 0) {
      std::printf("%d metric(s) regressed past %.1f%% (report-only)\n",
                  regressions, threshold_pct);
    }
  }
  if (ok == 0) {
    std::fprintf(stderr, "error: no successful responses\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
