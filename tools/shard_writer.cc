// shard_writer: materializes a graph stream into a sharded on-disk store
// (data/shard_store.h) without ever holding the full set in memory.
//
//   shard_writer --out-dir=zinc_store --graphs=100000 [--seed=0]
//                [--shard-graphs=4096] [--name=ZINC-like]
//   shard_writer --out-dir=store --from-data=dataset.bin
//
// The default mode streams the synthetic ZINC-2M molecule sampler: graph
// i of a given seed is bitwise identical to MakeZincLikeDataset(n, seed)
// .graph(i), so small in-memory datasets and huge stores are directly
// comparable in tests and benches. --from-data instead re-shards an
// existing dataset_io file (which does load that file into memory).
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "graph/dataset_io.h"

namespace sgcl {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Run(int argc, char** argv) {
  std::string out_dir;
  std::string from_data;
  std::string name = "ZINC-like";
  int64_t graphs = 10000;
  int64_t shard_graphs = 4096;
  uint64_t seed = 0;
  FlagSet flags("shard_writer");
  flags.String("out-dir", &out_dir, "store directory to create (required)");
  flags.String("from-data", &from_data,
               "re-shard an existing dataset_io .bin instead of sampling");
  flags.String("name", &name, "dataset name recorded in the manifest");
  flags.Int64("graphs", &graphs, "number of molecules to sample");
  flags.Int64("shard-graphs", &shard_graphs, "graphs per shard file");
  flags.Uint64("seed", &seed, "molecule sampler seed");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "error: --out-dir is required\n%s",
                 flags.Help().c_str());
    return 2;
  }
  if (shard_graphs < 1 || (from_data.empty() && graphs < 1)) {
    std::fprintf(stderr, "error: --graphs and --shard-graphs must be >= 1\n");
    return 2;
  }

  Stopwatch watch;
  ShardWriterOptions options;
  options.graphs_per_shard = shard_graphs;
  options.name = name;

  if (!from_data.empty()) {
    auto dataset = LoadDataset(from_data);
    if (!dataset.ok()) return Fail(dataset.status());
    options.name = dataset->name();
    options.num_classes = dataset->num_classes();
    options.num_tasks = dataset->num_tasks();
    auto writer = ShardedGraphStoreWriter::Create(out_dir, options);
    if (!writer.ok()) return Fail(writer.status());
    for (int64_t i = 0; i < dataset->size(); ++i) {
      const Status append = (*writer)->Append(dataset->graph(i));
      if (!append.ok()) return Fail(append);
    }
    const Status fin = (*writer)->Finalize();
    if (!fin.ok()) return Fail(fin);
    std::printf("sharded %lld graphs from %s into %s (%lld shards, %.2fs)\n",
                static_cast<long long>((*writer)->graphs_appended()),
                from_data.c_str(), out_dir.c_str(),
                static_cast<long long>((*writer)->shards_written()),
                watch.ElapsedSeconds());
    return 0;
  }

  auto writer = ShardedGraphStoreWriter::Create(out_dir, options);
  if (!writer.ok()) return Fail(writer.status());
  // Identical stream to MakeZincLikeDataset(graphs, seed), one graph
  // resident at a time.
  Rng rng(seed ^ 0x5a5a5a5aULL);
  MoleculeSampler sampler;
  for (int64_t i = 0; i < graphs; ++i) {
    const Graph g = std::move(sampler.Sample(&rng).graph);
    const Status append = (*writer)->Append(g);
    if (!append.ok()) return Fail(append);
  }
  const Status fin = (*writer)->Finalize();
  if (!fin.ok()) return Fail(fin);
  std::printf("wrote %lld sampled graphs (seed %llu) into %s "
              "(%lld shards, %.2fs)\n",
              static_cast<long long>((*writer)->graphs_appended()),
              static_cast<unsigned long long>(seed), out_dir.c_str(),
              static_cast<long long>((*writer)->shards_written()),
              watch.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
