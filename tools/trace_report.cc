// Offline tail-latency analyzer for SGCL trace dumps.
//
//   trace_report <trace.json> [--top=5] [--min-duration-us=0]
//
// Accepts either trace format the repo produces and prints the same
// breakdown the live /v1/traces endpoints serve, but offline:
//
//  * a TraceRing dump — `curl /v1/traces?detail=1` (the object with a
//    "traces" array, each trace carrying its flat span list), or
//  * a chrome://tracing file written by --trace-out, where sampled
//    spans carry {"args":{"trace_id",...}} (untagged events are
//    aggregated too, but can't be attributed to a request).
//
// Output: a per-stage *self-time* table (span duration minus enclosed
// child spans, so stages don't double-count their children) with
// count/total/p50/p95/p99, then the top-K slowest traces with their
// per-stage breakdown — the offline mirror of GET /v1/traces/<id>.
// Exit codes: 0 on success, 2 on unreadable/malformed input.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace sgcl {
namespace {

struct ReportSpan {
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  int64_t self_us = 0;  // filled by ComputeSelfTimes
};

struct ReportTrace {
  std::string trace_id;
  std::string root_name;
  int64_t dur_us = 0;
  std::vector<ReportSpan> spans;
};

// self = dur - sum(direct children dur), clamped at 0 (clock skew /
// overlapping children). Matches AppendTreeNodeJson in common/trace.cc.
void ComputeSelfTimes(std::vector<ReportSpan>* spans) {
  std::map<uint64_t, int64_t> child_us;
  for (const ReportSpan& s : *spans) {
    if (s.parent_span_id != 0) child_us[s.parent_span_id] += s.dur_us;
  }
  for (ReportSpan& s : *spans) {
    const auto it = child_us.find(s.span_id);
    const int64_t children = it == child_us.end() ? 0 : it->second;
    s.self_us = std::max<int64_t>(0, s.dur_us - children);
  }
}

Result<ReportSpan> ParseRingSpan(const JsonValue& v) {
  if (!v.is_object()) return Status::InvalidArgument("span is not an object");
  ReportSpan s;
  s.name = v.GetString("name");
  s.span_id = static_cast<uint64_t>(v.GetDouble("span_id", 0));
  s.parent_span_id = static_cast<uint64_t>(v.GetDouble("parent_span_id", 0));
  s.start_us = static_cast<int64_t>(v.GetDouble("start_us", 0));
  s.dur_us = static_cast<int64_t>(v.GetDouble("dur_us", 0));
  if (s.name.empty() || s.span_id == 0) {
    return Status::InvalidArgument("span missing name or span_id");
  }
  return s;
}

// TraceRing dump: {"traces":[{"trace_id","root","dur_us","spans":[...]}]}
Result<std::vector<ReportTrace>> LoadRingDump(const JsonValue& doc) {
  std::vector<ReportTrace> traces;
  const JsonValue* arr = doc.Find("traces");
  if (arr == nullptr || !arr->is_array()) {
    return Status::InvalidArgument("\"traces\" is not an array");
  }
  for (const JsonValue& t : arr->AsArray()) {
    if (!t.is_object()) {
      return Status::InvalidArgument("trace entry is not an object");
    }
    ReportTrace trace;
    trace.trace_id = t.GetString("trace_id");
    trace.root_name = t.GetString("root");
    trace.dur_us = static_cast<int64_t>(t.GetDouble("dur_us", 0));
    const JsonValue* spans = t.Find("spans");
    if (spans == nullptr || !spans->is_array()) {
      return Status::InvalidArgument(
          "trace " + trace.trace_id +
          " has no span list (fetch /v1/traces with detail=1)");
    }
    for (const JsonValue& sv : spans->AsArray()) {
      ReportSpan span;
      SGCL_ASSIGN_OR_RETURN(span, ParseRingSpan(sv));
      trace.spans.push_back(std::move(span));
    }
    ComputeSelfTimes(&trace.spans);
    traces.push_back(std::move(trace));
  }
  return traces;
}

// Chrome trace: {"traceEvents":[{"name","ts","dur","args":{...}}]}.
// Events tagged with args.trace_id are grouped into traces; untagged
// events are collected under a synthetic "(untraced)" bucket so a plain
// --trace-out file still yields a stage table.
Result<std::vector<ReportTrace>> LoadChromeTrace(const JsonValue& doc,
                                                 int64_t* untagged_events) {
  const JsonValue* arr = doc.Find("traceEvents");
  if (arr == nullptr || !arr->is_array()) {
    return Status::InvalidArgument("\"traceEvents\" is not an array");
  }
  std::map<std::string, ReportTrace> by_id;
  std::vector<std::string> order;  // first-seen, keeps output stable
  ReportTrace untraced;
  uint64_t synthetic_id = 1;  // untagged events carry no span ids
  for (const JsonValue& e : arr->AsArray()) {
    if (!e.is_object()) {
      return Status::InvalidArgument("trace event is not an object");
    }
    ReportSpan span;
    span.name = e.GetString("name");
    span.start_us = static_cast<int64_t>(e.GetDouble("ts", 0));
    span.dur_us = static_cast<int64_t>(e.GetDouble("dur", 0));
    if (span.name.empty()) {
      return Status::InvalidArgument("trace event without a name");
    }
    const JsonValue* args = e.Find("args");
    const std::string id = args != nullptr ? args->GetString("trace_id") : "";
    if (id.empty()) {
      ++*untagged_events;
      span.span_id = synthetic_id++;
      untraced.spans.push_back(std::move(span));
      continue;
    }
    span.span_id = static_cast<uint64_t>(args->GetDouble("span_id", 0));
    span.parent_span_id =
        static_cast<uint64_t>(args->GetDouble("parent_span_id", 0));
    ReportTrace& trace = by_id[id];
    if (trace.trace_id.empty()) {
      trace.trace_id = id;
      order.push_back(id);
    }
    if (span.parent_span_id == 0) {
      trace.root_name = span.name;
      trace.dur_us = span.dur_us;
    }
    trace.spans.push_back(std::move(span));
  }
  std::vector<ReportTrace> traces;
  for (const std::string& id : order) {
    ReportTrace& trace = by_id[id];
    ComputeSelfTimes(&trace.spans);
    traces.push_back(std::move(trace));
  }
  if (!untraced.spans.empty()) {
    untraced.trace_id = "(untraced)";
    untraced.root_name = "(untraced events)";
    // No parent links: self time degenerates to raw duration.
    for (ReportSpan& s : untraced.spans) s.self_us = s.dur_us;
    traces.push_back(std::move(untraced));
  }
  return traces;
}

double Quantile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

// Right-pads every column to its widest cell — same layout idiom as
// eval/table.cc (ResultTable cells are mean±std accuracy pairs, which
// don't fit a latency table, so the alignment is reimplemented here).
void PrintAligned(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<size_t> width(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t j = 0; j < row.size(); ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t j = 0; j < rows[r].size(); ++j) {
      line += rows[r][j];
      line.append(width[j] - rows[r][j].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t j = 0; j < width.size(); ++j) {
        rule.append(width[j], '-');
        rule.append(2, ' ');
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

void PrintStageTable(const std::vector<ReportTrace>& traces) {
  std::map<std::string, std::vector<int64_t>> self_by_stage;
  for (const ReportTrace& t : traces) {
    for (const ReportSpan& s : t.spans) {
      self_by_stage[s.name].push_back(s.self_us);
    }
  }
  int64_t grand_total = 0;
  for (auto& [name, samples] : self_by_stage) {
    std::sort(samples.begin(), samples.end());
    for (int64_t v : samples) grand_total += v;
  }
  // Order stages by total self time, biggest contributor first.
  std::vector<std::pair<int64_t, const std::string*>> order;
  for (const auto& [name, samples] : self_by_stage) {
    int64_t total = 0;
    for (int64_t v : samples) total += v;
    order.emplace_back(total, &name);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stage", "count", "total_ms", "share", "self_p50_us",
                  "self_p95_us", "self_p99_us"});
  for (const auto& [total, name] : order) {
    const std::vector<int64_t>& samples = self_by_stage[*name];
    const double share =
        grand_total > 0
            ? 100.0 * static_cast<double>(total) /
                  static_cast<double>(grand_total)
            : 0.0;
    rows.push_back({*name, std::to_string(samples.size()),
                    StrFormat("%.2f", static_cast<double>(total) / 1000.0),
                    StrFormat("%.1f%%", share),
                    StrFormat("%.0f", Quantile(samples, 0.50)),
                    StrFormat("%.0f", Quantile(samples, 0.95)),
                    StrFormat("%.0f", Quantile(samples, 0.99))});
  }
  PrintAligned(rows);
}

void PrintSlowestTraces(const std::vector<ReportTrace>& traces, int64_t top) {
  std::vector<const ReportTrace*> real;
  for (const ReportTrace& t : traces) {
    if (t.trace_id != "(untraced)") real.push_back(&t);
  }
  if (real.empty() || top <= 0) return;
  std::sort(real.begin(), real.end(),
            [](const ReportTrace* a, const ReportTrace* b) {
              return a->dur_us > b->dur_us;
            });
  const size_t k = std::min(real.size(), static_cast<size_t>(top));
  std::printf("\nslowest %zu of %zu traces:\n", k, real.size());
  for (size_t i = 0; i < k; ++i) {
    const ReportTrace& t = *real[i];
    std::printf("  %s  %lld us  %s (%zu spans)\n", t.trace_id.c_str(),
                static_cast<long long>(t.dur_us), t.root_name.c_str(),
                t.spans.size());
    // Per-trace stage breakdown, biggest self time first.
    std::map<std::string, int64_t> self;
    for (const ReportSpan& s : t.spans) self[s.name] += s.self_us;
    std::vector<std::pair<int64_t, std::string>> by_time;
    for (const auto& [name, us] : self) by_time.emplace_back(us, name);
    std::sort(by_time.begin(), by_time.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [us, name] : by_time) {
      const double share =
          t.dur_us > 0
              ? 100.0 * static_cast<double>(us) / static_cast<double>(t.dur_us)
              : 0.0;
      std::printf("    %-24s %8lld us  %5.1f%%\n", name.c_str(),
                  static_cast<long long>(us), share);
    }
  }
}

int Run(int argc, char** argv) {
  int64_t top = 5;
  int64_t min_duration_us = 0;
  FlagSet flags("trace_report <trace.json>");
  flags.Int64("top", &top, "slowest traces to break down (0 disables)");
  flags.Int64("min-duration-us", &min_duration_us,
              "ignore traces shorter than this");

  // One positional file operand; everything else is a strict flag.
  std::vector<std::string> files;
  std::vector<char*> flag_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      flag_argv.push_back(argv[i]);
    } else {
      files.push_back(arg);
    }
  }
  const Status st =
      flags.Parse(static_cast<int>(flag_argv.size()), flag_argv.data(), 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (files.size() != 1) {
    std::fprintf(stderr, "error: expected exactly 1 file operand, got %zu\n%s",
                 files.size(), flags.Help().c_str());
    return 2;
  }

  auto doc = ParseJsonFile(files[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.status().ToString().c_str());
    return 2;
  }
  int64_t untagged_events = 0;
  Result<std::vector<ReportTrace>> loaded =
      Status::InvalidArgument("unreachable");
  const char* format = nullptr;
  if (doc->Find("traces") != nullptr) {
    format = "trace-ring dump";
    loaded = LoadRingDump(*doc);
  } else if (doc->Find("traceEvents") != nullptr) {
    format = "chrome trace";
    loaded = LoadChromeTrace(*doc, &untagged_events);
  } else {
    std::fprintf(stderr,
                 "error: %s is neither a /v1/traces dump (\"traces\") nor a "
                 "chrome trace (\"traceEvents\")\n",
                 files[0].c_str());
    return 2;
  }
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", files[0].c_str(),
                 loaded.status().ToString().c_str());
    return 2;
  }

  std::vector<ReportTrace> traces;
  size_t dropped = 0;
  for (ReportTrace& t : *loaded) {
    if (t.trace_id != "(untraced)" && t.dur_us < min_duration_us) {
      ++dropped;
      continue;
    }
    traces.push_back(std::move(t));
  }
  size_t spans = 0;
  size_t real_traces = 0;
  for (const ReportTrace& t : traces) {
    spans += t.spans.size();
    if (t.trace_id != "(untraced)") ++real_traces;
  }
  std::printf("%s: %s, %zu trace(s), %zu span(s)", files[0].c_str(), format,
              real_traces, spans);
  if (dropped > 0) {
    std::printf(", %zu below --min-duration-us=%lld", dropped,
                static_cast<long long>(min_duration_us));
  }
  if (untagged_events > 0) {
    std::printf(", %lld untagged event(s)",
                static_cast<long long>(untagged_events));
  }
  std::printf("\n\n");
  if (spans == 0) {
    std::printf("no spans to report (was the server started with "
                "--trace-sample-rate > 0?)\n");
    return 0;
  }
  PrintStageTable(traces);
  PrintSlowestTraces(traces, top);
  return 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
