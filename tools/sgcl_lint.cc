// sgcl_lint: repo-invariant static analyzer (rules in common/lint.h,
// rationale in DESIGN.md §9).
//
//   sgcl_lint [--root=DIR] [--json=FILE] [--allowlist=FILE]
//             [--fail-on=warning|error|none]
//
// Walks src/, tests/, and tools/ under --root (default "."), lints every
// .h/.cc file, prints a deterministic file-ordered text report, and —
// when --json is given — writes the same findings as a JSON report (the
// CI artifact). Exit status: 0 when no finding reaches the --fail-on
// severity, 1 when one does, 2 on usage or I/O errors. There is no
// --fix: violations are fixed at the source or suppressed with
// `// NOLINT(sgcl-RN)` / an allowlist entry, never rewritten blindly.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/lint.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Run(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::string allowlist_path;
  std::string fail_on = "warning";
  FlagSet flags("sgcl_lint");
  flags.String("root", &root, "repository root to lint");
  flags.String("json", &json_out, "write the findings as JSON to this file");
  flags.String("allowlist", &allowlist_path,
               "allowlist file (default: <root>/tools/sgcl_lint_allowlist.txt "
               "when present)");
  flags.String("fail-on", &fail_on,
               "minimum severity that fails the run: warning|error|none");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (fail_on != "warning" && fail_on != "error" && fail_on != "none") {
    std::fprintf(stderr, "error: --fail-on must be warning, error, or none "
                         "(got '%s')\n", fail_on.c_str());
    return 2;
  }

  lint::LintOptions options;
  if (allowlist_path.empty()) {
    const fs::path fallback = fs::path(root) / "tools/sgcl_lint_allowlist.txt";
    if (fs::exists(fallback)) allowlist_path = fallback.string();
  }
  if (!allowlist_path.empty()) {
    auto loaded = lint::LoadAllowlist(allowlist_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    options = std::move(loaded).value();
  }

  // Deterministic file order: collect, normalize to repo-relative
  // forward-slash paths, sort.
  std::vector<std::string> rel_paths;
  for (const char* top : {"src", "tests", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      rel_paths.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  if (rel_paths.empty()) {
    std::fprintf(stderr, "error: no .h/.cc files under %s/{src,tests,tools}\n",
                 root.c_str());
    return 2;
  }

  lint::Linter linter(options);
  for (const std::string& rel : rel_paths) {
    auto content = ReadFile(fs::path(root) / rel);
    if (!content.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   content.status().ToString().c_str());
      return 2;
    }
    linter.AddFile(rel, *content);
  }

  const std::vector<lint::Finding> findings = linter.Run();
  std::printf("%s", lint::FormatText(findings).c_str());

  size_t errors = 0, warnings = 0;
  for (const lint::Finding& f : findings) {
    (f.severity == lint::Severity::kError ? errors : warnings) += 1;
  }
  std::printf("sgcl_lint: %zu file(s), %zu error(s), %zu warning(s)\n",
              rel_paths.size(), errors, warnings);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    out << lint::FormatJson(findings);
  }

  if (fail_on == "none") return 0;
  if (fail_on == "error") return errors > 0 ? 1 : 0;
  return errors + warnings > 0 ? 1 : 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
