// sgcl_lint: repo-invariant static analyzer (rules in common/lint.h,
// rationale in DESIGN.md §9).
//
//   sgcl_lint [--root=DIR] [--json=FILE] [--allowlist=FILE]
//             [--fail-on=warning|error|none] [--jobs=N] [--cache=FILE]
//             [--fix] [--report-stale-nolint]
//
// Walks src/, tests/, and tools/ under --root (default "."), lints every
// .h/.cc file, prints a deterministic file-ordered text report, and —
// when --json is given — writes the same findings as a JSON report (the
// CI artifact). Exit status: 0 when no finding reaches the --fail-on
// severity, 1 when one does, 2 on usage or I/O errors.
//
// --jobs=N analyzes files on N worker threads; output is merged in path
// order, so every job count produces byte-identical reports.
//
// --cache=FILE keeps an incremental cache: per-file declaration tables
// and findings keyed by (mtime, size), findings additionally keyed by a
// digest of the repo-wide declaration tables plus the suppression
// configuration, so an annotation added in one header correctly
// re-analyzes every file that might access the newly guarded member.
// Lock-order cycles (sgcl-R9) are recomputed from the merged edge set on
// every run and are never cached.
//
// --fix applies the mechanical rewrites attached to findings (sgcl-R4
// include-guard renames, sgcl-R10 explicit memory orders), writes the
// files in place, re-lints, and reports what remains. Fixes are
// idempotent: a second --fix run applies zero edits. Rules without a
// recorded fix are never rewritten blindly — they are fixed at the
// source or suppressed with `// NOLINT(sgcl-RN)` / an allowlist entry.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/flags.h"
#include "common/lint.h"
#include "common/parallel.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- Incremental cache ----------------------------------------------
//
// Line-based, tab-separated text format. Strings that may contain tabs
// or newlines (messages, fix replacements) are escaped. A cache that
// fails to parse — wrong version, truncated, hand-edited — is discarded
// wholesale; the cache is an accelerator, never a source of truth.

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\t') out += "\\t";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char next = s[++i];
      if (next == 't') out += '\t';
      else if (next == 'n') out += '\n';
      else out += next;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

struct CacheEntry {
  // Validity key for the declaration tables: the file on disk is
  // byte-identical (modulo mtime granularity) to what was analyzed.
  // mtime is kept as a decimal string — filesystem timestamps exceed
  // the 53-bit exactly-representable range of double, so they must
  // never round-trip through floating point.
  std::string mtime;
  std::uintmax_t size = 0;
  lint::FileDecls decls;
  // Validity key for the findings: the repo-wide declaration tables and
  // the suppression configuration the analysis ran under.
  uint32_t analysis_key = 0;
  lint::FileAnalysis analysis;
};

using Cache = std::map<std::string, CacheEntry>;

// Reads a cache file. Returns an empty cache on any mismatch or parse
// problem (missing file, version skew, truncation).
Cache LoadCache(const std::string& path) {
  Cache cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) ||
      line != "sgcl-lint-cache " + std::to_string(lint::kEngineVersion)) {
    return cache;
  }
  std::string current;
  bool complete = true;  // every `file` block must reach its `end`
  while (std::getline(in, line)) {
    const std::vector<std::string> f = SplitTabs(line);
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "file" && f.size() == 5) {
      if (!current.empty()) complete = false;  // previous block unterminated
      current = Unescape(f[1]);
      CacheEntry& e = cache[current];
      e.mtime = f[2];
      e.size = std::strtoull(f[3].c_str(), nullptr, 10);
      e.analysis_key =
          static_cast<uint32_t>(std::strtoul(f[4].c_str(), nullptr, 16));
      continue;
    }
    if (current.empty()) continue;
    CacheEntry& e = cache[current];
    if (tag == "end") {
      current.clear();
    } else if (tag == "f" && f.size() == 2) {
      e.decls.fallible_names.push_back(Unescape(f[1]));
    } else if (tag == "g" && f.size() == 5) {
      e.decls.guarded_members.push_back(
          {Unescape(f[1]), Unescape(f[2]), Unescape(f[3]), f[4] == "1"});
    } else if (tag == "r" && f.size() >= 3) {
      lint::FileDecls::RequiresMethod m;
      m.class_name = Unescape(f[1]);
      m.method = Unescape(f[2]);
      for (size_t i = 3; i < f.size(); ++i) m.mutexes.push_back(Unescape(f[i]));
      e.decls.requires_methods.push_back(std::move(m));
    } else if (tag == "m" && f.size() == 2) {
      e.decls.mutex_members.push_back(Unescape(f[1]));
    } else if (tag == "a" && f.size() == 2) {
      e.decls.atomic_members.push_back(Unescape(f[1]));
    } else if (tag == "F" && f.size() == 5) {
      lint::Finding finding;
      finding.file = current;
      finding.line = std::atoi(f[1].c_str());
      finding.rule = Unescape(f[2]);
      finding.severity =
          f[3] == "error" ? lint::Severity::kError : lint::Severity::kWarning;
      finding.message = Unescape(f[4]);
      e.analysis.findings.push_back(std::move(finding));
    } else if (tag == "x" && f.size() == 5 && !e.analysis.findings.empty()) {
      e.analysis.findings.back().fixes.push_back(
          {std::atoi(f[1].c_str()), std::atoi(f[2].c_str()),
           std::atoi(f[3].c_str()), Unescape(f[4])});
    } else if (tag == "E" && f.size() == 4) {
      e.analysis.edges.push_back({Unescape(f[1]), Unescape(f[2]), current,
                                  std::atoi(f[3].c_str())});
    } else if (tag == "S" && f.size() == 3) {
      e.analysis.stale_nolints.push_back(
          {std::atoi(f[1].c_str()), Unescape(f[2])});
    } else if (tag == "U" && f.size() == 3) {
      e.analysis.used_allow.emplace_back(Unescape(f[1]), Unescape(f[2]));
    } else {
      return Cache{};  // unknown record: refuse to trust the rest
    }
  }
  if (!current.empty() || !complete) return Cache{};
  return cache;
}

Status SaveCache(const std::string& path, const Cache& cache) {
  std::ostringstream out;
  out << "sgcl-lint-cache " << lint::kEngineVersion << "\n";
  for (const auto& [file, e] : cache) {
    char key[16];
    std::snprintf(key, sizeof(key), "%08x", e.analysis_key);
    out << "file\t" << Escape(file) << "\t" << e.mtime << "\t" << e.size
        << "\t" << key << "\n";
    for (const auto& n : e.decls.fallible_names) {
      out << "f\t" << Escape(n) << "\n";
    }
    for (const auto& g : e.decls.guarded_members) {
      out << "g\t" << Escape(g.class_name) << "\t" << Escape(g.member) << "\t"
          << Escape(g.mutex) << "\t" << (g.atomic ? "1" : "0") << "\n";
    }
    for (const auto& r : e.decls.requires_methods) {
      out << "r\t" << Escape(r.class_name) << "\t" << Escape(r.method);
      for (const auto& mu : r.mutexes) out << "\t" << Escape(mu);
      out << "\n";
    }
    for (const auto& m : e.decls.mutex_members) {
      out << "m\t" << Escape(m) << "\n";
    }
    for (const auto& a : e.decls.atomic_members) {
      out << "a\t" << Escape(a) << "\n";
    }
    for (const auto& finding : e.analysis.findings) {
      out << "F\t" << finding.line << "\t" << Escape(finding.rule) << "\t"
          << lint::SeverityToString(finding.severity) << "\t"
          << Escape(finding.message) << "\n";
      for (const auto& fix : finding.fixes) {
        out << "x\t" << fix.line << "\t" << fix.col << "\t" << fix.len << "\t"
            << Escape(fix.replacement) << "\n";
      }
    }
    for (const auto& edge : e.analysis.edges) {
      out << "E\t" << Escape(edge.from) << "\t" << Escape(edge.to) << "\t"
          << edge.line << "\n";
    }
    for (const auto& s : e.analysis.stale_nolints) {
      out << "S\t" << s.line << "\t" << Escape(s.rules) << "\n";
    }
    for (const auto& [af, ar] : e.analysis.used_allow) {
      out << "U\t" << Escape(af) << "\t" << Escape(ar) << "\n";
    }
    out << "end\n";
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::Internal("cannot write cache " + path);
  f << out.str();
  return Status::OK();
}

// Everything besides file content that changes what AnalyzeFile emits:
// the repo-wide declaration tables and the suppression configuration.
uint32_t AnalysisKey(const lint::GlobalTables& tables,
                     const lint::LintOptions& options) {
  std::string cfg = options.report_stale_nolint ? "stale=1\n" : "stale=0\n";
  for (const lint::AllowEntry& e : options.allow) {
    cfg += e.file + ":" + e.rule + ":" + std::to_string(e.line) + "\n";
  }
  return Crc32(cfg.data(), cfg.size(), tables.Digest());
}

struct SourceFile {
  std::string rel;      // repo-relative forward-slash path
  fs::path abs;         // on-disk location
  std::string mtime;    // decimal time_since_epoch().count()
  std::uintmax_t size = 0;
  std::string content;
  lint::FileDecls decls;
  bool decls_cached = false;
};

int Run(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::string allowlist_path;
  std::string fail_on = "warning";
  std::string cache_path;
  int jobs = 0;
  bool fix = false;
  bool report_stale = false;
  FlagSet flags("sgcl_lint");
  flags.String("root", &root, "repository root to lint");
  flags.String("json", &json_out, "write the findings as JSON to this file");
  flags.String("allowlist", &allowlist_path,
               "allowlist file (default: <root>/tools/sgcl_lint_allowlist.txt "
               "when present)");
  flags.String("fail-on", &fail_on,
               "minimum severity that fails the run: warning|error|none");
  flags.Int("jobs", &jobs,
            "analyze files on this many threads (0 = runtime default); "
            "output is identical for every job count");
  flags.String("cache", &cache_path,
               "incremental cache file: unchanged files (mtime+size) under "
               "unchanged repo-wide tables are not re-analyzed");
  flags.Bool("fix", &fix,
             "apply the mechanical fixes attached to findings (sgcl-R4 "
             "guard renames, sgcl-R10 explicit memory orders) in place, "
             "then re-lint");
  flags.Bool("report-stale-nolint", &report_stale,
             "report NOLINT comments and allowlist entries that suppress "
             "nothing (rule sgcl-nolint)");
  const Status st = flags.Parse(argc, argv, 1);
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (fail_on != "warning" && fail_on != "error" && fail_on != "none") {
    std::fprintf(stderr, "error: --fail-on must be warning, error, or none "
                         "(got '%s')\n", fail_on.c_str());
    return 2;
  }
  if (jobs < 0) {
    std::fprintf(stderr, "error: --jobs must be >= 0 (got %d)\n", jobs);
    return 2;
  }
  if (jobs > 0) SetParallelThreads(jobs);

  lint::LintOptions options;
  if (allowlist_path.empty()) {
    const fs::path fallback = fs::path(root) / "tools/sgcl_lint_allowlist.txt";
    if (fs::exists(fallback)) allowlist_path = fallback.string();
  }
  if (!allowlist_path.empty()) {
    auto loaded = lint::LoadAllowlist(allowlist_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    options = std::move(loaded).value();
  }
  options.report_stale_nolint = report_stale;

  // Deterministic file order: collect, normalize to repo-relative
  // forward-slash paths, sort.
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tests", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      SourceFile f;
      f.rel = fs::relative(entry.path(), root).generic_string();
      f.abs = entry.path();
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  if (files.empty()) {
    std::fprintf(stderr, "error: no .h/.cc files under %s/{src,tests,tools}\n",
                 root.c_str());
    return 2;
  }

  Cache cache = cache_path.empty() ? Cache{} : LoadCache(cache_path);

  // Phase 1: read every file and get its declaration tables, from the
  // cache when (mtime, size) match, else by extraction. Declarations
  // depend only on the file's own bytes, so this key alone is enough.
  const int64_t n = static_cast<int64_t>(files.size());
  for (SourceFile& f : files) {
    std::error_code ec;
    f.mtime = std::to_string(
        fs::last_write_time(f.abs, ec).time_since_epoch().count());
    f.size = ec ? 0 : fs::file_size(f.abs, ec);
    if (ec) f.mtime.clear();  // stat failed: never matches the cache
    auto content = ReadFile(f.abs);
    if (!content.ok()) {
      std::fprintf(stderr, "error: %s\n", content.status().ToString().c_str());
      return 2;
    }
    f.content = std::move(*content);
    const auto it = cache.find(f.rel);
    f.decls_cached = it != cache.end() && !f.mtime.empty() &&
                     it->second.mtime == f.mtime && it->second.size == f.size;
    if (f.decls_cached) f.decls = it->second.decls;
  }
  ParallelFor(0, n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (!files[i].decls_cached) {
        files[i].decls = lint::ExtractDecls(files[i].content);
      }
    }
  });

  std::vector<lint::FileDecls> decls;
  decls.reserve(files.size());
  for (const SourceFile& f : files) decls.push_back(f.decls);
  const lint::GlobalTables tables = lint::BuildTables(decls);
  const uint32_t analysis_key = AnalysisKey(tables, options);

  // Phase 2: per-file analysis, cached only when the file AND the
  // repo-wide context are unchanged. Results land in per-index slots and
  // merge in path order, so the report is identical for every --jobs.
  std::vector<lint::FileAnalysis> analyses(files.size());
  std::vector<char> analysis_cached(files.size(), 0);
  for (size_t i = 0; i < files.size(); ++i) {
    const auto it = cache.find(files[i].rel);
    if (files[i].decls_cached && it != cache.end() &&
        it->second.analysis_key == analysis_key) {
      analyses[i] = it->second.analysis;
      analysis_cached[i] = 1;
    }
  }
  ParallelFor(0, n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (!analysis_cached[i]) {
        analyses[i] = lint::AnalyzeFile(files[i].rel, files[i].content,
                                        tables, options);
      }
    }
  });

  std::vector<std::string> rel_paths;
  rel_paths.reserve(files.size());
  for (const SourceFile& f : files) rel_paths.push_back(f.rel);
  std::vector<lint::Finding> findings =
      lint::MergeAnalyses(rel_paths, analyses, options);

  // --fix: rewrite files in place bottom-up, then re-analyze the
  // changed files against the same tables (fixes never add or remove
  // declarations) and rebuild the report from the post-fix tree.
  size_t fixed_files = 0, fix_edits = 0;
  if (fix) {
    for (size_t i = 0; i < files.size(); ++i) {
      size_t edits = 0;
      for (const lint::Finding& f : findings) {
        if (f.file == files[i].rel) edits += f.fixes.size();
      }
      if (edits == 0) continue;
      const std::string fixed =
          lint::ApplyFixes(files[i].rel, files[i].content, findings);
      if (fixed == files[i].content) continue;
      std::ofstream out(files[i].abs, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot rewrite %s\n",
                     files[i].rel.c_str());
        return 2;
      }
      out << fixed;
      out.close();
      files[i].content = fixed;
      fixed_files += 1;
      fix_edits += edits;
      analyses[i] = lint::AnalyzeFile(files[i].rel, files[i].content, tables,
                                      options);
      cache.erase(files[i].rel);  // on-disk bytes changed under the entry
    }
    if (fixed_files > 0) {
      findings = lint::MergeAnalyses(rel_paths, analyses, options);
    }
    std::printf("sgcl_lint: applied %zu fix(es) in %zu file(s)\n", fix_edits,
                fixed_files);
  }

  std::printf("%s", lint::FormatText(findings).c_str());

  size_t errors = 0, warnings = 0;
  for (const lint::Finding& f : findings) {
    (f.severity == lint::Severity::kError ? errors : warnings) += 1;
  }
  std::printf("sgcl_lint: %zu file(s), %zu error(s), %zu warning(s)\n",
              files.size(), errors, warnings);

  if (!cache_path.empty()) {
    Cache fresh;
    for (size_t i = 0; i < files.size(); ++i) {
      CacheEntry e;
      // A file rewritten by --fix has a new mtime; re-stat so the next
      // run trusts the entry.
      std::error_code ec;
      e.mtime = std::to_string(
          fs::last_write_time(files[i].abs, ec).time_since_epoch().count());
      e.size = ec ? 0 : fs::file_size(files[i].abs, ec);
      if (ec) continue;  // unstattable: leave it out of the cache
      e.decls = files[i].decls;
      e.analysis_key = analysis_key;
      e.analysis = analyses[i];
      fresh[files[i].rel] = std::move(e);
    }
    const Status saved = SaveCache(cache_path, fresh);
    if (!saved.ok()) {
      std::fprintf(stderr, "warning: %s\n", saved.ToString().c_str());
    }
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    out << lint::FormatJson(findings);
  }

  if (fail_on == "none") return 0;
  if (fail_on == "error") return errors > 0 ? 1 : 0;
  return errors + warnings > 0 ? 1 : 0;
}

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) { return sgcl::Run(argc, argv); }
