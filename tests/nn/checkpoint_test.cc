#include "nn/checkpoint.h"

#include <cstdio>

#include "core/sgcl_model.h"
#include "gtest/gtest.h"
#include "nn/encoder.h"
#include "test_util.h"

namespace sgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

EncoderConfig SmallConfig() {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return cfg;
}

TEST(CheckpointTest, SaveLoadReproducesOutputs) {
  const std::string path = TempPath("enc.ckpt");
  Rng rng_a(1), rng_b(2);
  GnnEncoder a(SmallConfig(), &rng_a);
  GnnEncoder b(SmallConfig(), &rng_b);  // different init
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  Graph g = testing::HouseGraph(3);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  Tensor ya = a.EncodeGraphs(batch);
  Tensor yb = b.EncodeGraphs(batch);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, WholeSgclModelRoundTrips) {
  const std::string path = TempPath("model.ckpt");
  SgclConfig cfg = MakeUnsupervisedConfig(3);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  Rng rng_a(3), rng_b(4);
  SgclModel a(cfg, &rng_a);
  SgclModel b(cfg, &rng_b);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  Graph g = testing::HouseGraph(3);
  std::vector<float> ka = a.NodeLipschitzConstants(g);
  std::vector<float> kb = b.NodeLipschitzConstants(g);
  EXPECT_EQ(ka, kb);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  const std::string path = TempPath("mismatch.ckpt");
  Rng rng(5);
  GnnEncoder a(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  EncoderConfig other = SmallConfig();
  other.hidden_dim = 16;  // different shapes
  GnnEncoder b(other, &rng);
  Status st = LoadCheckpoint(path, &b);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(6);
  GnnEncoder enc(SmallConfig(), &rng);
  Status st = LoadCheckpoint(TempPath("does_not_exist.ckpt"), &enc);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(7);
  GnnEncoder enc(SmallConfig(), &rng);
  Status st = LoadCheckpoint(path, &enc);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgcl
