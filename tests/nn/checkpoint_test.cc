#include "nn/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/io.h"
#include "core/sgcl_model.h"
#include "gtest/gtest.h"
#include "nn/encoder.h"
#include "nn/linear.h"
#include "test_util.h"

namespace sgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

EncoderConfig SmallConfig() {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return cfg;
}

TEST(CheckpointTest, SaveLoadReproducesOutputs) {
  const std::string path = TempPath("enc.ckpt");
  Rng rng_a(1), rng_b(2);
  GnnEncoder a(SmallConfig(), &rng_a);
  GnnEncoder b(SmallConfig(), &rng_b);  // different init
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  Graph g = testing::HouseGraph(3);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  Tensor ya = a.EncodeGraphs(batch);
  Tensor yb = b.EncodeGraphs(batch);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, WholeSgclModelRoundTrips) {
  const std::string path = TempPath("model.ckpt");
  SgclConfig cfg = MakeUnsupervisedConfig(3);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  Rng rng_a(3), rng_b(4);
  SgclModel a(cfg, &rng_a);
  SgclModel b(cfg, &rng_b);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  Graph g = testing::HouseGraph(3);
  std::vector<float> ka = a.NodeLipschitzConstants(g);
  std::vector<float> kb = b.NodeLipschitzConstants(g);
  EXPECT_EQ(ka, kb);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  const std::string path = TempPath("mismatch.ckpt");
  Rng rng(5);
  GnnEncoder a(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  EncoderConfig other = SmallConfig();
  other.hidden_dim = 16;  // different shapes
  GnnEncoder b(other, &rng);
  Status st = LoadCheckpoint(path, &b);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(6);
  GnnEncoder enc(SmallConfig(), &rng);
  Status st = LoadCheckpoint(TempPath("does_not_exist.ckpt"), &enc);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(7);
  GnnEncoder enc(SmallConfig(), &rng);
  Status st = LoadCheckpoint(path, &enc);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

// Backward compat: a v1 file written by the original (pre-section)
// format, committed as a golden binary. The expected float values are
// baked into the file, so this fails if the v1 parse path drifts.
TEST(CheckpointTest, GoldenV1FileStillLoads) {
  const std::string path =
      std::string(SGCL_TESTDATA_DIR) + "/checkpoint_v1_linear_2x3.ckpt";
  Rng rng(11);
  Linear linear(2, 3, &rng);
  ASSERT_TRUE(LoadCheckpoint(path, &linear).ok());
  const std::vector<float> expected_weight = {0.1f, 0.2f, 0.3f,
                                              0.4f, 0.5f, 0.6f};
  const std::vector<float> expected_bias = {1.5f, -2.25f, 0.125f};
  EXPECT_EQ(linear.weight().values(), expected_weight);
  EXPECT_EQ(linear.bias().values(), expected_bias);
}

TEST(CheckpointTest, GoldenV1ShapeMismatchDoesNotPartiallyApply) {
  const std::string path =
      std::string(SGCL_TESTDATA_DIR) + "/checkpoint_v1_linear_2x3.ckpt";
  Rng rng(12);
  // The golden file holds two tensors; a bias-free Linear expects one.
  // The count check must fire before any tensor is applied, leaving the
  // (shape-compatible) weight untouched.
  Linear mismatched(2, 3, &rng, /*use_bias=*/false);
  const std::vector<float> before = mismatched.weight().values();
  Status st = LoadCheckpoint(path, &mismatched);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(mismatched.weight().values(), before);
}

TEST(CheckpointTest, SaveWritesV2AndMidFileMismatchIsAtomic) {
  const std::string path = TempPath("atomic_apply.ckpt");
  Rng rng(13);
  GnnEncoder a(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  // The first parameters of a GIN encoder with equal hidden_dim but more
  // layers agree in shape; the tensor-count check must reject the load
  // before any tensor is applied.
  EncoderConfig deeper = SmallConfig();
  deeper.num_layers = 3;
  GnnEncoder b(deeper, &rng);
  const std::vector<float> before = b.Parameters()[0].values();
  Status st = LoadCheckpoint(path, &b);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(b.Parameters()[0].values(), before);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncationAtEverySectionBoundaryRejected) {
  const std::string path = TempPath("trunc_src.ckpt");
  Rng rng(14);
  GnnEncoder enc(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(enc, path).ok());
  const std::string bytes = SlurpFile(path);
  ASSERT_GT(bytes.size(), 16u);
  // Boundaries of the v2 container: after magic, after version, after
  // the section count, after the section header, and just before the
  // trailing CRC.
  const size_t boundaries[] = {0, 4, 8, 12, 24, bytes.size() - 4,
                               bytes.size() - 1};
  for (size_t cut : boundaries) {
    const std::string trunc_path = TempPath("trunc.ckpt");
    ASSERT_TRUE(AtomicWriteFile(trunc_path, bytes.substr(0, cut)).ok());
    GnnEncoder target(SmallConfig(), &rng);
    EXPECT_FALSE(LoadCheckpoint(trunc_path, &target).ok())
        << "accepted " << cut << " of " << bytes.size() << " bytes";
    std::remove(trunc_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, CrcCatchesPayloadBitFlip) {
  const std::string path = TempPath("bitflip.ckpt");
  Rng rng(15);
  GnnEncoder enc(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(enc, path).ok());
  std::string bytes = SlurpFile(path);
  bytes[bytes.size() / 2] ^= 0x04;  // mid-payload
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  GnnEncoder target(SmallConfig(), &rng);
  Status st = LoadCheckpoint(path, &target);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnsupportedVersionRejected) {
  const std::string path = TempPath("future.ckpt");
  Rng rng(16);
  GnnEncoder enc(SmallConfig(), &rng);
  ASSERT_TRUE(SaveCheckpoint(enc, path).ok());
  std::string bytes = SlurpFile(path);
  bytes[4] = 7;  // version 7
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  Status st = LoadCheckpoint(path, &enc);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgcl
