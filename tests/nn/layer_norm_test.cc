#include "nn/layer_norm.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/encoder.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

TEST(LayerNormTest, NormalizesRowsToZeroMeanUnitVar) {
  LayerNorm norm(4);
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, -10, 0, 10, 20});
  Tensor y = norm.Forward(x);
  for (int64_t i = 0; i < 2; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 4; ++j) mean += y.At(i, j);
    mean /= 4.0;
    for (int64_t j = 0; j < 4; ++j) {
      var += (y.At(i, j) - mean) * (y.At(i, j) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, ScaleInvarianceOfInput) {
  LayerNorm norm(3);
  Tensor x = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor x10 = Tensor::FromVector({1, 3}, {10, 20, 30});
  Tensor y1 = norm.Forward(x);
  Tensor y2 = norm.Forward(x10);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(y1.data()[j], y2.data()[j], 1e-4f);
  }
}

TEST(LayerNormTest, GradCheckInput) {
  LayerNorm norm(3);
  // Non-uniform downstream weights exercise the full Jacobian.
  Tensor w = Tensor::FromVector({2, 3}, {1, -2, 0.5f, 3, 1, -1});
  GradCheck(Tensor::FromVector({2, 3}, {0.7f, -1.3f, 2.1f, -0.4f, 1.6f, -2.2f}),
            [&](const Tensor& x) { return Sum(Mul(norm.Forward(x), w)); });
}

TEST(LayerNormTest, GammaBetaReceiveGradients) {
  LayerNorm norm(3);
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  for (Tensor& p : norm.Parameters()) p.ZeroGrad();
  Tensor loss = SumSquares(norm.Forward(x));
  loss.Backward();
  auto params = norm.Parameters();
  ASSERT_EQ(params.size(), 2u);
  double gamma_mass = 0.0, beta_mass = 0.0;
  for (float g : params[0].impl()->grad) gamma_mass += std::fabs(g);
  for (float g : params[1].impl()->grad) beta_mass += std::fabs(g);
  EXPECT_GT(gamma_mass, 1e-6);
  EXPECT_GT(beta_mass, 1e-6);
}

TEST(LayerNormTest, EncoderWithNormTrains) {
  Rng rng(5);
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.use_layer_norm = true;
  GnnEncoder enc(cfg, &rng);
  // 2 conv layers x (4 MLP tensors) + 2 norms x (gamma, beta) = 12.
  EXPECT_EQ(enc.Parameters().size(), 12u);
  Graph a = testing::PathGraph3(3);
  Graph b = testing::HouseGraph(3);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &b});
  Tensor head = Tensor::Zeros({8, 2}, /*requires_grad=*/true);
  std::vector<Tensor> params = enc.Parameters();
  params.push_back(head);
  Adam opt(params, 0.01f);
  float last = 0.0f;
  for (int step = 0; step < 150; ++step) {
    opt.ZeroGrad();
    Tensor logits = MatMul(enc.EncodeGraphs(batch), head);
    Tensor loss = CrossEntropyWithLogits(logits, {0, 1});
    loss.Backward();
    opt.Step();
    last = loss.item();
  }
  EXPECT_LT(last, 0.1f);
}

}  // namespace
}  // namespace sgcl
