#include "nn/encoder.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/pooling.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "test_util.h"

namespace sgcl {
namespace {

GraphBatch TestBatch() {
  static Graph a = testing::PathGraph3(3);
  static Graph b = testing::HouseGraph(3);
  return GraphBatch::FromGraphPtrs({&a, &b});
}

EncoderConfig BaseConfig(GnnArch arch) {
  EncoderConfig cfg;
  cfg.arch = arch;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 3;
  return cfg;
}

TEST(PoolingTest, SumMeanMaxShapes) {
  GraphBatch batch = TestBatch();
  Tensor x = Tensor::Ones({batch.num_nodes, 4});
  for (PoolingKind kind :
       {PoolingKind::kSum, PoolingKind::kMean, PoolingKind::kMax}) {
    Tensor g = Pool(x, batch, kind);
    EXPECT_EQ(g.rows(), 2);
    EXPECT_EQ(g.cols(), 4);
  }
  // Sum pooling counts nodes when features are all-ones.
  Tensor s = Pool(x, batch, PoolingKind::kSum);
  EXPECT_FLOAT_EQ(s.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.At(1, 0), 5.0f);
  Tensor m = Pool(x, batch, PoolingKind::kMean);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
}

TEST(EncoderTest, AllArchitecturesProduceFiniteEmbeddings) {
  GraphBatch batch = TestBatch();
  for (GnnArch arch :
       {GnnArch::kGin, GnnArch::kGcn, GnnArch::kGat, GnnArch::kSage}) {
    Rng rng(21);
    GnnEncoder enc(BaseConfig(arch), &rng);
    Tensor nodes = enc.EncodeNodes(batch.features, batch);
    EXPECT_EQ(nodes.rows(), batch.num_nodes);
    EXPECT_EQ(nodes.cols(), 8);
    Tensor graphs = enc.EncodeGraphs(batch);
    EXPECT_EQ(graphs.rows(), 2);
    for (float v : graphs.values()) {
      EXPECT_TRUE(std::isfinite(v)) << GnnArchToString(arch);
    }
  }
}

TEST(EncoderTest, NodeWeightsScaleGraphEmbedding) {
  Rng rng(22);
  GnnEncoder enc(BaseConfig(GnnArch::kGin), &rng);
  GraphBatch batch = TestBatch();
  Tensor unweighted = enc.EncodeGraphs(batch);
  Tensor half = Tensor::Full({batch.num_nodes, 1}, 0.5f);
  Tensor weighted = enc.EncodeGraphs(batch, &half);
  for (int64_t i = 0; i < unweighted.numel(); ++i) {
    EXPECT_NEAR(weighted.data()[i], 0.5f * unweighted.data()[i], 1e-4f);
  }
}

TEST(EncoderTest, ParametersCountMatchesLayers) {
  Rng rng(23);
  GnnEncoder enc(BaseConfig(GnnArch::kGin), &rng);
  // GIN layer: 2-layer MLP -> 4 tensors; 3 layers -> 12.
  EXPECT_EQ(enc.Parameters().size(), 12u);
  EXPECT_GT(enc.NumParameters(), 0);
}

TEST(EncoderTest, CopyParametersFromReproducesOutputs) {
  Rng rng_a(24), rng_b(25);
  GnnEncoder a(BaseConfig(GnnArch::kGin), &rng_a);
  GnnEncoder b(BaseConfig(GnnArch::kGin), &rng_b);
  GraphBatch batch = TestBatch();
  Tensor ya = a.EncodeGraphs(batch);
  b.CopyParametersFrom(a);
  Tensor yb = b.EncodeGraphs(batch);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(EncoderTest, TrainableEndToEnd) {
  // Supervised sanity check: a small GIN encoder + linear head must fit
  // a 2-graph "dataset" perfectly.
  Rng rng(26);
  EncoderConfig cfg = BaseConfig(GnnArch::kGin);
  GnnEncoder enc(cfg, &rng);
  Tensor head = Tensor::Zeros({8, 2}, /*requires_grad=*/true);
  std::vector<Tensor> params = enc.Parameters();
  params.push_back(head);
  Adam opt(params, 0.01f);
  GraphBatch batch = TestBatch();
  std::vector<int> labels = {0, 1};
  float last = 0.0f;
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Tensor logits = MatMul(enc.EncodeGraphs(batch), head);
    Tensor loss = CrossEntropyWithLogits(logits, labels);
    loss.Backward();
    opt.Step();
    last = loss.item();
  }
  EXPECT_LT(last, 0.05f);
}

TEST(EncoderTest, ArchNamesStable) {
  EXPECT_STREQ(GnnArchToString(GnnArch::kGin), "GIN");
  EXPECT_STREQ(GnnArchToString(GnnArch::kGat), "GAT");
  EXPECT_STREQ(PoolingKindToString(PoolingKind::kMean), "mean");
}

}  // namespace
}  // namespace sgcl
