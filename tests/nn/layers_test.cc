// Unit tests for Linear/MLP and the four graph convolution layers,
// including gradient flow through message passing.
#include <cmath>

#include "gtest/gtest.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/sage_conv.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "test_util.h"

namespace sgcl {
namespace {

GraphBatch TestBatch() {
  static Graph a = testing::PathGraph3(3);
  static Graph b = testing::HouseGraph(3);
  return GraphBatch::FromGraphPtrs({&a, &b});
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 2, &rng);
  Tensor x = Tensor::Ones({3, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  Linear no_bias(4, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  Tensor y = layer.Forward(Tensor::Zeros({1, 3}));
  // Bias initialized to zero.
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 0.0f);
}

TEST(MlpTest, DepthAndParams) {
  Rng rng(3);
  Mlp mlp({4, 8, 8, 2}, &rng);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
  EXPECT_EQ(mlp.in_dim(), 4);
  EXPECT_EQ(mlp.out_dim(), 2);
  Tensor y = mlp.Forward(Tensor::Ones({5, 4}));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(MlpTest, FinalActivationIsNonNegative) {
  Rng rng(4);
  Mlp mlp({3, 4}, &rng, /*final_activation=*/true);
  Tensor y = mlp.Forward(Tensor::FromVector({2, 3}, {1, -2, 3, -1, 2, -3}));
  for (float v : y.values()) EXPECT_GE(v, 0.0f);
}

TEST(MlpTest, TrainsToFitXor) {
  Rng rng(5);
  Mlp mlp({2, 8, 1}, &rng);
  Adam opt(mlp.Parameters(), 0.05f);
  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor t = Tensor::FromVector({4, 1}, {0, 1, 1, 0});
  Tensor mask = Tensor::Ones({4, 1});
  float last = 0.0f;
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Tensor loss = BceWithLogits(mlp.Forward(x), t, mask);
    loss.Backward();
    opt.Step();
    last = loss.item();
  }
  EXPECT_LT(last, 0.1f);
}

template <typename Conv>
void CheckConvBasics(int expected_param_count) {
  Rng rng(7);
  Conv conv(3, 4, &rng);
  GraphBatch batch = TestBatch();
  Tensor y = conv.Forward(batch.features, batch);
  EXPECT_EQ(y.rows(), batch.num_nodes);
  EXPECT_EQ(y.cols(), 4);
  EXPECT_EQ(static_cast<int>(conv.Parameters().size()),
            expected_param_count);
  for (float v : y.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GinConvTest, ShapeAndParams) { CheckConvBasics<GinConv>(4); }
TEST(GcnConvTest, ShapeAndParams) { CheckConvBasics<GcnConv>(2); }
TEST(SageConvTest, ShapeAndParams) { CheckConvBasics<SageConv>(3); }

TEST(GatConvTest, ShapeAndParamsSingleHead) {
  Rng rng(8);
  GatConv conv(3, 4, &rng, /*num_heads=*/1);
  GraphBatch batch = TestBatch();
  Tensor y = conv.Forward(batch.features, batch);
  EXPECT_EQ(y.rows(), batch.num_nodes);
  EXPECT_EQ(y.cols(), 4);
  EXPECT_EQ(conv.Parameters().size(), 4u);  // W, a_src, a_dst, bias
}

TEST(GatConvTest, MultiHeadAveragesToSameShape) {
  Rng rng(9);
  GatConv conv(3, 4, &rng, /*num_heads=*/3);
  GraphBatch batch = TestBatch();
  Tensor y = conv.Forward(batch.features, batch);
  EXPECT_EQ(y.cols(), 4);
  EXPECT_EQ(conv.Parameters().size(), 10u);  // 3x(W,a,a) + bias
}

TEST(GinConvTest, AggregatesNeighborSum) {
  // With an identity-like setup we can check GIN's pre-MLP aggregation
  // indirectly: two isolated nodes vs the same nodes connected must give
  // different outputs for the same features.
  Rng rng(10);
  GinConv conv(2, 2, &rng);
  Graph isolated(2, 2);
  isolated.set_feature(0, 0, 1.0f);
  isolated.set_feature(1, 0, 2.0f);
  Graph connected = isolated;
  connected.AddUndirectedEdge(0, 1);
  GraphBatch bi = GraphBatch::FromGraphPtrs({&isolated});
  GraphBatch bc = GraphBatch::FromGraphPtrs({&connected});
  Tensor yi = conv.Forward(bi.features, bi);
  Tensor yc = conv.Forward(bc.features, bc);
  float diff = 0.0f;
  for (int64_t i = 0; i < yi.numel(); ++i) {
    diff += std::fabs(yi.data()[i] - yc.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(GcnConvTest, PermutationEquivariant) {
  Rng rng(11);
  GcnConv conv(3, 4, &rng);
  Graph g = testing::HouseGraph(3);
  // Permute node order: relabel v -> (v+2) % 5.
  Graph perm(5, 3);
  auto p = [](int64_t v) { return (v + 2) % 5; };
  for (int64_t v = 0; v < 5; ++v) {
    for (int64_t j = 0; j < 3; ++j) perm.set_feature(p(v), j, g.feature(v, j));
  }
  for (size_t r = 0; r < g.edge_src().size(); ++r) {
    if (g.edge_src()[r] < g.edge_dst()[r]) {
      perm.AddUndirectedEdge(p(g.edge_src()[r]), p(g.edge_dst()[r]));
    }
  }
  GraphBatch b1 = GraphBatch::FromGraphPtrs({&g});
  GraphBatch b2 = GraphBatch::FromGraphPtrs({&perm});
  Tensor y1 = conv.Forward(b1.features, b1);
  Tensor y2 = conv.Forward(b2.features, b2);
  for (int64_t v = 0; v < 5; ++v) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.At(v, j), y2.At(p(v), j), 1e-4f);
    }
  }
}

TEST(SageConvTest, IsolatedNodeUsesOnlySelfTerm) {
  Rng rng(12);
  SageConv conv(2, 3, &rng);
  Graph g(3, 2);
  g.AddUndirectedEdge(0, 1);  // node 2 isolated
  g.set_feature(2, 0, 1.5f);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  Tensor y = conv.Forward(batch.features, batch);
  // Isolated single-node graph with the same feature must match row 2.
  Graph solo(1, 2);
  solo.set_feature(0, 0, 1.5f);
  GraphBatch sb = GraphBatch::FromGraphPtrs({&solo});
  Tensor ys = conv.Forward(sb.features, sb);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(y.At(2, j), ys.At(0, j), 1e-5f);
}

template <typename Conv>
void CheckGradFlow() {
  Rng rng(13);
  Conv conv(3, 4, &rng);
  GraphBatch batch = TestBatch();
  Adam opt(conv.Parameters(), 0.01f);
  opt.ZeroGrad();
  Tensor loss = SumSquares(conv.Forward(batch.features, batch));
  loss.Backward();
  // Every parameter must receive some gradient signal.
  double total = 0.0;
  for (const Tensor& p : conv.Parameters()) {
    for (float gv : p.impl()->grad) total += std::fabs(gv);
  }
  EXPECT_GT(total, 1e-6);
}

TEST(GradFlowTest, Gin) { CheckGradFlow<GinConv>(); }
TEST(GradFlowTest, Gcn) { CheckGradFlow<GcnConv>(); }
TEST(GradFlowTest, Sage) { CheckGradFlow<SageConv>(); }

TEST(GradFlowTest, Gat) {
  Rng rng(14);
  GatConv conv(3, 4, &rng, 2);
  GraphBatch batch = TestBatch();
  Tensor loss = SumSquares(conv.Forward(batch.features, batch));
  loss.Backward();
  double total = 0.0;
  for (const Tensor& p : conv.Parameters()) {
    for (float gv : p.impl()->grad) total += std::fabs(gv);
  }
  EXPECT_GT(total, 1e-6);
}

}  // namespace
}  // namespace sgcl
