// Finite-difference gradient checks for every graph convolution, the
// projection MLP, and both contrastive losses: the analytic backward of
// each layer is validated end-to-end against central differences, both
// through the input features and through a weight matrix.
#include <vector>

#include "core/contrastive_loss.h"
#include "gtest/gtest.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/mlp.h"
#include "nn/sage_conv.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

GraphBatch TestBatch() {
  static Graph a = testing::PathGraph3(3);
  static Graph b = testing::HouseGraph(3);
  return GraphBatch::FromGraphPtrs({&a, &b});
}

// Node features away from ReLU kinks: smooth, distinct, non-zero.
Tensor NodeFeatures(int64_t num_nodes, int64_t dim) {
  std::vector<float> data(static_cast<size_t>(num_nodes * dim));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.35f + 0.07f * static_cast<float>(i % 11) -
              0.25f * static_cast<float>(i % 3);
  }
  return Tensor::FromVector({num_nodes, dim}, data);
}

// Small row-wise embeddings for the loss checks ([4, 3], generic
// position so cosine similarities are far from degenerate).
Tensor Embeddings(float offset) {
  return Tensor::FromVector(
      {4, 3}, {0.9f + offset, -0.2f, 0.4f,  //
               -0.5f, 0.8f + offset, 0.1f,  //
               0.3f, 0.6f, -0.7f + offset,  //
               -0.1f, -0.9f, 0.5f});
}

TEST(GradCheckConvTest, GinConvInput) {
  Rng rng(31);
  GraphBatch batch = TestBatch();
  GinConv conv(3, 4, &rng);
  GradCheck(NodeFeatures(batch.num_nodes, 3), [&](const Tensor& x) {
    return SumSquares(conv.Forward(x, batch));
  });
}

TEST(GradCheckConvTest, GinConvWeights) {
  Rng rng(32);
  GraphBatch batch = TestBatch();
  GinConv conv(3, 4, &rng);
  const Tensor x = NodeFeatures(batch.num_nodes, 3);
  // Perturbing the parameter tensor itself: GradCheck's probe mutates
  // the shared impl, so the closure re-runs the layer with the nudged
  // weights.
  GradCheck(conv.Parameters()[0], [&](const Tensor&) {
    return SumSquares(conv.Forward(x, batch));
  });
}

TEST(GradCheckConvTest, GcnConvInput) {
  Rng rng(33);
  GraphBatch batch = TestBatch();
  GcnConv conv(3, 4, &rng);
  GradCheck(NodeFeatures(batch.num_nodes, 3), [&](const Tensor& x) {
    return SumSquares(conv.Forward(x, batch));
  });
}

TEST(GradCheckConvTest, GatConvInput) {
  Rng rng(34);
  GraphBatch batch = TestBatch();
  GatConv conv(3, 4, &rng, /*num_heads=*/2);
  GradCheck(NodeFeatures(batch.num_nodes, 3), [&](const Tensor& x) {
    return SumSquares(conv.Forward(x, batch));
  });
}

TEST(GradCheckConvTest, SageConvInput) {
  Rng rng(35);
  GraphBatch batch = TestBatch();
  SageConv conv(3, 4, &rng);
  GradCheck(NodeFeatures(batch.num_nodes, 3), [&](const Tensor& x) {
    return SumSquares(conv.Forward(x, batch));
  });
}

TEST(GradCheckMlpTest, ProjectionMlpInput) {
  Rng rng(36);
  // The paper's 2-layer projection head shape (hidden -> hidden -> proj).
  Mlp projection({3, 5, 2}, &rng);
  GradCheck(NodeFeatures(4, 3), [&](const Tensor& x) {
    return SumSquares(projection.Forward(x));
  });
}

TEST(GradCheckMlpTest, ProjectionMlpWeights) {
  Rng rng(37);
  Mlp projection({3, 5, 2}, &rng);
  const Tensor x = NodeFeatures(4, 3);
  for (size_t p = 0; p < projection.Parameters().size(); ++p) {
    GradCheck(projection.Parameters()[p], [&](const Tensor&) {
      return SumSquares(projection.Forward(x));
    });
  }
}

TEST(GradCheckLossTest, SemanticInfoNceAnchor) {
  const Tensor sample = Embeddings(0.2f);
  GradCheck(Embeddings(0.0f), [&](const Tensor& anchor) {
    return SemanticInfoNceLoss(anchor, sample, /*tau=*/0.4f);
  });
}

TEST(GradCheckLossTest, SemanticInfoNceSample) {
  const Tensor anchor = Embeddings(0.0f);
  GradCheck(Embeddings(0.2f), [&](const Tensor& sample) {
    return SemanticInfoNceLoss(anchor, sample, /*tau=*/0.4f);
  });
}

TEST(GradCheckLossTest, ComplementLossAllThreeInputs) {
  const Tensor anchor = Embeddings(0.0f);
  const Tensor sample = Embeddings(0.2f);
  const Tensor complement = Embeddings(-0.3f);
  GradCheck(Embeddings(0.0f), [&](const Tensor& a) {
    return ComplementLoss(a, sample, complement, /*tau=*/0.4f);
  });
  GradCheck(Embeddings(0.2f), [&](const Tensor& s) {
    return ComplementLoss(anchor, s, complement, /*tau=*/0.4f);
  });
  GradCheck(Embeddings(-0.3f), [&](const Tensor& c) {
    return ComplementLoss(anchor, sample, c, /*tau=*/0.4f);
  });
}

TEST(GradCheckLossTest, WeightNormRegularizer) {
  const Tensor other = Tensor::FromVector({2, 2}, {0.5f, -0.25f, 1.0f, 0.75f});
  GradCheck(Embeddings(0.1f), [&](const Tensor& w) {
    return WeightNormRegularizer({w, other});
  });
}

}  // namespace
}  // namespace sgcl
