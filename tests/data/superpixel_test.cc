#include "data/superpixel.h"

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(RasterizeDigitTest, ProducesInkInsideUnitRange) {
  Rng rng(1);
  for (int d = 0; d < 10; ++d) {
    auto canvas = RasterizeDigit(d, &rng);
    float total = 0.0f;
    for (float v : canvas) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      total += v;
    }
    EXPECT_GT(total, 10.0f) << "digit " << d << " has almost no ink";
  }
}

TEST(RasterizeDigitTest, DigitOneHasLessInkThanEight) {
  Rng rng(2);
  auto one = RasterizeDigit(1, &rng);
  auto eight = RasterizeDigit(8, &rng);
  float ink1 = 0.0f, ink8 = 0.0f;
  for (float v : one) ink1 += v;
  for (float v : eight) ink8 += v;
  EXPECT_LT(ink1, ink8);
}

TEST(SuperpixelGraphTest, GridStructure) {
  Rng rng(3);
  Graph g = CanvasToSuperpixelGraph(RasterizeDigit(0, &rng));
  EXPECT_EQ(g.num_nodes(), kSuperpixelGrid * kSuperpixelGrid);
  EXPECT_EQ(g.feat_dim(), kSuperpixelFeatDim);
  EXPECT_TRUE(g.Validate().ok());
  // Corner node has 3 neighbors (right, down, down-right diag).
  EXPECT_EQ(g.Neighbors(0).size(), 3u);
  // Interior node has 8 neighbors.
  const int interior = kSuperpixelGrid + 1;
  EXPECT_EQ(g.Neighbors(interior).size(), 8u);
}

TEST(SuperpixelGraphTest, SemanticMaskTracksInk) {
  Rng rng(4);
  Graph g = CanvasToSuperpixelGraph(RasterizeDigit(8, &rng));
  int semantic = 0;
  for (size_t v = 0; v < g.semantic_mask().size(); ++v) {
    if (g.semantic_mask()[v]) {
      ++semantic;
      EXPECT_GT(g.feature(static_cast<int64_t>(v), 0), 0.25f);
    }
  }
  EXPECT_GT(semantic, 4);
  EXPECT_LT(semantic, g.num_nodes());
}

TEST(SuperpixelGraphTest, CoordinateFeaturesNormalized) {
  Rng rng(5);
  Graph g = CanvasToSuperpixelGraph(RasterizeDigit(3, &rng));
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.feature(v, 1), 0.0f);
    EXPECT_LE(g.feature(v, 1), 1.0f);
    EXPECT_GE(g.feature(v, 2), 0.0f);
    EXPECT_LE(g.feature(v, 2), 1.0f);
  }
}

TEST(SuperpixelDatasetTest, LabelsAndSize) {
  GraphDataset ds = MakeSuperpixelDataset(3, 6);
  EXPECT_EQ(ds.size(), 30);
  EXPECT_EQ(ds.num_classes(), 10);
  EXPECT_TRUE(ds.Validate().ok());
  std::vector<int> labels = ds.Labels().value();
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[29], 9);
}

TEST(SuperpixelDatasetTest, JitterMakesSamplesDiffer) {
  GraphDataset ds = MakeSuperpixelDataset(2, 7);
  // Two samples of digit 0 differ in features.
  EXPECT_NE(ds.graph(0).features(), ds.graph(1).features());
}

}  // namespace
}  // namespace sgcl
