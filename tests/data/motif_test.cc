#include "data/motif.h"

#include <set>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(MotifTest, CycleStructure) {
  Motif m = MakeCycleMotif(5, 2);
  EXPECT_EQ(m.num_nodes, 5);
  EXPECT_EQ(m.edges.size(), 5u);
  EXPECT_EQ(m.node_types, (std::vector<int>{2, 2, 2, 2, 2}));
}

TEST(MotifTest, PathStructure) {
  Motif m = MakePathMotif(4, 0);
  EXPECT_EQ(m.num_nodes, 4);
  EXPECT_EQ(m.edges.size(), 3u);
}

TEST(MotifTest, CliqueEdgeCount) {
  Motif m = MakeCliqueMotif(5, 1);
  EXPECT_EQ(m.edges.size(), 10u);
}

TEST(MotifTest, StarHubTyping) {
  Motif m = MakeStarMotif(4, 3);
  EXPECT_EQ(m.num_nodes, 5);
  EXPECT_EQ(m.edges.size(), 4u);
  EXPECT_EQ(m.node_types[0], 3);
  EXPECT_EQ(m.node_types[1], 4);
}

TEST(MotifTest, WheelStructure) {
  Motif m = MakeWheelMotif(5, 0);
  EXPECT_EQ(m.num_nodes, 6);
  EXPECT_EQ(m.edges.size(), 10u);  // 5 rim + 5 spokes
}

TEST(MotifTest, BipartiteStructure) {
  Motif m = MakeBipartiteMotif(2, 3, 1);
  EXPECT_EQ(m.num_nodes, 5);
  EXPECT_EQ(m.edges.size(), 6u);
  EXPECT_EQ(m.node_types[0], 1);
  EXPECT_EQ(m.node_types[4], 2);
}

TEST(MotifCatalogTest, WrapsAroundAndStaysInTypeRange) {
  MotifCatalog catalog(8);
  EXPECT_GE(catalog.size(), 10);
  for (int i = 0; i < 3 * catalog.size(); ++i) {
    const Motif& m = catalog.Get(i);
    EXPECT_GT(m.num_nodes, 0);
    for (int t : m.node_types) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, 8);
    }
  }
  // Wrap-around consistency.
  EXPECT_EQ(catalog.Get(0).name, catalog.Get(catalog.size()).name);
}

TEST(PlantMotifTest, AppendsNodesAndMarksMask) {
  Rng rng(1);
  Graph g(4, 8);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  std::vector<uint8_t> mask(4, 0);
  Motif m = MakeCycleMotif(5, 3);
  auto planted = PlantMotif(m, /*num_bridges=*/2, &rng, &g, &mask);
  EXPECT_EQ(g.num_nodes(), 9);
  EXPECT_EQ(planted.size(), 5u);
  ASSERT_EQ(mask.size(), 9u);
  for (int64_t v = 0; v < 4; ++v) EXPECT_EQ(mask[v], 0);
  for (int64_t v : planted) {
    EXPECT_EQ(mask[v], 1);
    EXPECT_FLOAT_EQ(g.feature(v, 3), 1.0f);  // typed feature set
  }
  // Motif internal edges present.
  EXPECT_TRUE(g.HasEdge(planted[0], planted[1]));
  EXPECT_TRUE(g.HasEdge(planted[4], planted[0]));
  // At least one bridge to the background (graph is connected).
  bool bridged = false;
  for (int64_t v : planted) {
    for (int32_t nbr : g.Neighbors(v)) {
      if (nbr < 4) bridged = true;
    }
  }
  EXPECT_TRUE(bridged);
}

TEST(PlantMotifTest, EmptyBackgroundStandsAlone) {
  Rng rng(2);
  Graph g(0, 8);
  std::vector<uint8_t> mask;
  auto planted = PlantMotif(MakeCliqueMotif(4, 0), 2, &rng, &g, &mask);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_undirected_edges(), 6);
  EXPECT_EQ(planted.size(), 4u);
}

}  // namespace
}  // namespace sgcl
