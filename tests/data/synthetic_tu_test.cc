#include "data/synthetic_tu.h"

#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

SyntheticTuOptions SmallOptions(uint64_t seed = 7) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 40.0;
  opt.seed = seed;
  return opt;
}

TEST(TuConfigTest, MatchesPaperTable1) {
  TuConfig mutag = GetTuConfig(TuDataset::kMutag);
  EXPECT_EQ(mutag.name, "MUTAG");
  EXPECT_EQ(mutag.num_graphs, 188);
  EXPECT_NEAR(mutag.avg_nodes, 17.93, 1e-9);
  EXPECT_EQ(mutag.num_classes, 2);
  EXPECT_FALSE(mutag.social);
  TuConfig collab = GetTuConfig(TuDataset::kCollab);
  EXPECT_EQ(collab.num_classes, 3);
  EXPECT_TRUE(collab.social);
  TuConfig rdtm = GetTuConfig(TuDataset::kRdtM5k);
  EXPECT_EQ(rdtm.num_classes, 5);
  EXPECT_EQ(AllTuDatasets().size(), 8u);
}

TEST(SyntheticTuTest, AllDatasetsValidate) {
  for (TuDataset which : AllTuDatasets()) {
    GraphDataset ds = MakeTuDataset(which, SmallOptions());
    EXPECT_TRUE(ds.Validate().ok()) << ds.name();
    EXPECT_GE(ds.size(), 10 * ds.num_classes()) << ds.name();
  }
}

TEST(SyntheticTuTest, EveryGraphHasSemanticNodes) {
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, SmallOptions());
  for (const Graph& g : ds.graphs()) {
    ASSERT_EQ(g.semantic_mask().size(), static_cast<size_t>(g.num_nodes()));
    int semantic = 0;
    for (uint8_t m : g.semantic_mask()) semantic += m;
    EXPECT_GT(semantic, 0);
    EXPECT_LT(semantic, g.num_nodes());  // background exists too
  }
}

TEST(SyntheticTuTest, AllClassesRepresented) {
  for (TuDataset which : {TuDataset::kMutag, TuDataset::kCollab,
                          TuDataset::kRdtM5k}) {
    GraphDataset ds = MakeTuDataset(which, SmallOptions());
    const std::vector<int> labels = ds.Labels().value();
    std::set<int> classes(labels.begin(), labels.end());
    EXPECT_EQ(static_cast<int>(classes.size()), ds.num_classes())
        << ds.name();
  }
}

TEST(SyntheticTuTest, NodeCapRespected) {
  GraphDataset ds = MakeTuDataset(TuDataset::kDd, SmallOptions());
  DatasetStats s = ds.Stats();
  EXPECT_LT(s.avg_nodes, 40.0 * 1.6);  // cap + motif + spread
  EXPECT_GT(s.avg_nodes, 10.0);
}

TEST(SyntheticTuTest, MoleculeStatsTrackPaperShape) {
  // Uncapped MUTAG should land near the paper's 17.93 nodes / 19.79 edges.
  SyntheticTuOptions opt;
  opt.graph_fraction = 1.0;
  opt.seed = 3;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_graphs, 188);
  EXPECT_NEAR(s.avg_nodes, 17.93, 3.0);
  EXPECT_NEAR(s.avg_edges, 19.79, 5.0);
}

TEST(SyntheticTuTest, SocialGraphsAreDenserThanMolecules) {
  GraphDataset imdb = MakeTuDataset(TuDataset::kImdbB, SmallOptions());
  GraphDataset nci = MakeTuDataset(TuDataset::kNci1, SmallOptions());
  DatasetStats si = imdb.Stats();
  DatasetStats sn = nci.Stats();
  const double di = si.avg_edges / si.avg_nodes;
  const double dn = sn.avg_edges / sn.avg_nodes;
  EXPECT_GT(di, dn);
}

TEST(SyntheticTuTest, DeterministicForSeed) {
  GraphDataset a = MakeTuDataset(TuDataset::kProteins, SmallOptions(11));
  GraphDataset b = MakeTuDataset(TuDataset::kProteins, SmallOptions(11));
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i).num_nodes(), b.graph(i).num_nodes());
    EXPECT_EQ(a.graph(i).label(), b.graph(i).label());
    EXPECT_EQ(a.graph(i).features(), b.graph(i).features());
  }
  GraphDataset c = MakeTuDataset(TuDataset::kProteins, SmallOptions(12));
  bool any_diff = false;
  for (int64_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a.graph(i).num_nodes() != c.graph(i).num_nodes()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTuTest, SocialFeaturesAreDegreeBuckets) {
  GraphDataset ds = MakeTuDataset(TuDataset::kImdbB, SmallOptions());
  const Graph& g = ds.graph(0);
  // One-hot rows.
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    float total = 0.0f;
    for (int64_t j = 0; j < g.feat_dim(); ++j) total += g.feature(v, j);
    EXPECT_FLOAT_EQ(total, 1.0f);
  }
}

}  // namespace
}  // namespace sgcl
