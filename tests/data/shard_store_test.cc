#include "data/shard_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/metrics.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// Writes `ds` into a fresh store at `dir` with `graphs_per_shard`.
void WriteStore(const GraphDataset& ds, const std::string& dir,
                int64_t graphs_per_shard) {
  ShardWriterOptions opt;
  opt.graphs_per_shard = graphs_per_shard;
  opt.name = ds.name();
  opt.num_classes = ds.num_classes();
  opt.num_tasks = ds.num_tasks();
  auto writer = ShardedGraphStoreWriter::Create(dir, opt);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int64_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE((*writer)->Append(ds.graph(i)).ok());
  }
  ASSERT_TRUE((*writer)->Finalize().ok());
}

void ExpectGraphsBitIdentical(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.feat_dim(), b.feat_dim());
  EXPECT_EQ(a.features(), b.features());
  EXPECT_EQ(a.edge_src(), b.edge_src());
  EXPECT_EQ(a.edge_dst(), b.edge_dst());
  EXPECT_EQ(a.label(), b.label());
  EXPECT_EQ(a.scaffold_id(), b.scaffold_id());
  EXPECT_EQ(a.task_labels(), b.task_labels());
  EXPECT_EQ(a.semantic_mask(), b.semantic_mask());
}

TEST(ShardStoreTest, RoundTripBitExact) {
  GraphDataset ds = MakeZincLikeDataset(23, /*seed=*/7);
  const std::string dir = TempDir("shard_roundtrip");
  WriteStore(ds, dir, /*graphs_per_shard=*/5);

  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->size(), 23);
  EXPECT_EQ((*store)->num_shards(), 5);  // 5*4 + 3
  EXPECT_EQ((*store)->name(), "ZINC-like");
  EXPECT_EQ((*store)->FeatDim().value(), kMoleculeFeatDim);

  std::vector<int64_t> all(23);
  for (int64_t i = 0; i < 23; ++i) all[i] = i;
  FetchedGraphs out;
  ASSERT_TRUE((*store)->Fetch(all, &out).ok());
  ASSERT_EQ(out.size(), 23u);
  for (int64_t i = 0; i < 23; ++i) {
    ExpectGraphsBitIdentical(ds.graph(i), out.graph(i));
  }
  fs::remove_all(dir);
}

TEST(ShardStoreTest, FetchAcrossShardsInArbitraryOrder) {
  GraphDataset ds = MakeZincLikeDataset(12, /*seed=*/3);
  const std::string dir = TempDir("shard_order");
  WriteStore(ds, dir, /*graphs_per_shard=*/4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  const std::vector<int64_t> idx = {11, 0, 5, 5, 3};
  FetchedGraphs out;
  ASSERT_TRUE((*store)->Fetch(idx, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (size_t k = 0; k < idx.size(); ++k) {
    ExpectGraphsBitIdentical(ds.graph(idx[k]), out.graph(k));
  }
  fs::remove_all(dir);
}

TEST(ShardStoreTest, FetchRejectsOutOfRange) {
  GraphDataset ds = MakeZincLikeDataset(6, /*seed=*/1);
  const std::string dir = TempDir("shard_oob");
  WriteStore(ds, dir, /*graphs_per_shard=*/3);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  FetchedGraphs out;
  const std::vector<int64_t> bad = {0, 6};
  EXPECT_EQ((*store)->Fetch(bad, &out).code(), StatusCode::kOutOfRange);
  const std::vector<int64_t> neg = {-1};
  EXPECT_EQ((*store)->Fetch(neg, &out).code(), StatusCode::kOutOfRange);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, FetchBlocksMatchShards) {
  GraphDataset ds = MakeZincLikeDataset(10, /*seed=*/4);
  const std::string dir = TempDir("shard_blocks");
  WriteStore(ds, dir, /*graphs_per_shard=*/4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  const std::vector<IndexRange> blocks = (*store)->FetchBlocks();
  ASSERT_EQ(blocks.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(blocks[0].begin, 0);
  EXPECT_EQ(blocks[0].end, 4);
  EXPECT_EQ(blocks[1].begin, 4);
  EXPECT_EQ(blocks[1].end, 8);
  EXPECT_EQ(blocks[2].begin, 8);
  EXPECT_EQ(blocks[2].end, 10);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, CacheBoundsDecodesAndPinsSurviveEviction) {
  GraphDataset ds = MakeZincLikeDataset(9, /*seed=*/5);
  const std::string dir = TempDir("shard_cache");
  WriteStore(ds, dir, /*graphs_per_shard=*/3);
  ShardStoreOptions opt;
  opt.max_cached_shards = 1;
  auto store = ShardedGraphStore::Open(dir, opt);
  ASSERT_TRUE(store.ok());

  // Sequential fetches within one shard reuse the cached decode.
  FetchedGraphs a, b;
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{0, 1}, &a).ok());
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{2}, &b).ok());
  EXPECT_EQ((*store)->shard_decodes(), 1);

  // Touching the other shards evicts shard 0 (cache size 1)...
  FetchedGraphs c;
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{3, 6}, &c).ok());
  EXPECT_EQ((*store)->shard_decodes(), 3);
  // ...but the earlier batches' pins keep their graphs alive.
  ExpectGraphsBitIdentical(ds.graph(0), a.graph(0));
  ExpectGraphsBitIdentical(ds.graph(2), b.graph(0));

  // Re-fetching shard 0 decodes again (it was evicted).
  FetchedGraphs d;
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{1}, &d).ok());
  EXPECT_EQ((*store)->shard_decodes(), 4);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, CacheCountersTrackHitsMissesAndEvictions) {
  GraphDataset ds = MakeZincLikeDataset(9, /*seed=*/8);
  const std::string dir = TempDir("shard_cache_metrics");
  WriteStore(ds, dir, /*graphs_per_shard=*/3);
  ShardStoreOptions opt;
  opt.max_cached_shards = 1;
  auto store = ShardedGraphStore::Open(dir, opt);
  ASSERT_TRUE(store.ok());

  // The stream/ counters are process-wide, so measure deltas.
  Counter* hits =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_hits");
  Counter* misses =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_misses");
  Counter* evictions =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_evictions");
  const int64_t hits0 = hits->value();
  const int64_t misses0 = misses->value();
  const int64_t evictions0 = evictions->value();

  // Warm fetch: shard 0 decode is a miss, the repeat is a hit.
  FetchedGraphs out;
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{0, 1}, &out).ok());
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{2}, &out).ok());
  EXPECT_EQ(hits->value() - hits0, 1);
  EXPECT_EQ(misses->value() - misses0, 1);
  EXPECT_EQ(evictions->value() - evictions0, 0);

  // Shard 1 then shard 2: two more misses, each evicting (cache size 1).
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{3}, &out).ok());
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{6}, &out).ok());
  EXPECT_EQ(misses->value() - misses0, 3);
  EXPECT_EQ(evictions->value() - evictions0, 2);

  // A scan that revisits every shard once (cache size 1, 3 shards) can
  // never hit: hit ratio over the run is 1/(1+5) and every decode paid
  // the fetch-latency histogram.
  ASSERT_TRUE((*store)->Fetch(std::vector<int64_t>{0, 3, 6}, &out).ok());
  const int64_t total_hits = hits->value() - hits0;
  const int64_t total_misses = misses->value() - misses0;
  EXPECT_EQ(total_hits, 1);
  EXPECT_EQ(total_misses, 6);
  EXPECT_EQ(total_misses, (*store)->shard_decodes());
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto it = snap.histograms.find("stream/shard_fetch_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GE(it->second.count, total_misses);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, FingerprintStableAcrossOpensAndContentSensitive) {
  GraphDataset ds = MakeZincLikeDataset(8, /*seed=*/6);
  const std::string dir = TempDir("shard_fp_a");
  WriteStore(ds, dir, /*graphs_per_shard=*/4);
  auto s1 = ShardedGraphStore::Open(dir);
  auto s2 = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE((*s1)->ContentFingerprint(), 0u);
  EXPECT_EQ((*s1)->ContentFingerprint(), (*s2)->ContentFingerprint());

  const std::string dir_b = TempDir("shard_fp_b");
  GraphDataset other = MakeZincLikeDataset(8, /*seed=*/99);
  WriteStore(other, dir_b, /*graphs_per_shard=*/4);
  auto s3 = ShardedGraphStore::Open(dir_b);
  ASSERT_TRUE(s3.ok());
  EXPECT_NE((*s1)->ContentFingerprint(), (*s3)->ContentFingerprint());
  fs::remove_all(dir);
  fs::remove_all(dir_b);
}

TEST(ShardStoreTest, OpenMissingDirIsNotFound) {
  auto store = ShardedGraphStore::Open(TempDir("shard_missing"));
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST(ShardStoreTest, WriterRejectsFeatDimMismatch) {
  const std::string dir = TempDir("shard_featdim");
  auto writer = ShardedGraphStoreWriter::Create(dir, {});
  ASSERT_TRUE(writer.ok());
  Graph a(3, 4);
  ASSERT_TRUE((*writer)->Append(a).ok());
  Graph b(3, 5);
  EXPECT_EQ((*writer)->Append(b).code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

TEST(ShardStoreTest, WriterRejectsUseAfterFinalize) {
  const std::string dir = TempDir("shard_finalized");
  auto writer = ShardedGraphStoreWriter::Create(dir, {});
  ASSERT_TRUE(writer.ok());
  Graph g(3, 4);
  ASSERT_TRUE((*writer)->Append(g).ok());
  ASSERT_TRUE((*writer)->Finalize().ok());
  EXPECT_EQ((*writer)->Append(g).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->Finalize().code(), StatusCode::kFailedPrecondition);
  fs::remove_all(dir);
}

// -- Corruption battery --

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A tiny store (one shard of 4 graphs) used by the corruption tests.
class ShardCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST_F as its own process, in
    // parallel, so a shared directory would race.
    const std::string unique =
        std::string("shard_corrupt_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = TempDir(unique.c_str());
    GraphDataset ds = MakeZincLikeDataset(4, /*seed=*/11);
    WriteStore(ds, dir_, /*graphs_per_shard=*/4);
    shard_path_ = ShardedGraphStore::ShardPath(dir_, 0);
    manifest_path_ = ShardedGraphStore::ManifestPath(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // True when the corrupted store either fails to open or fails every
  // full fetch — corruption must never yield silently wrong graphs.
  bool StoreRejected() {
    auto store = ShardedGraphStore::Open(dir_);
    if (!store.ok()) return true;
    std::vector<int64_t> all((*store)->size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<int64_t>(i);
    }
    FetchedGraphs out;
    return !(*store)->Fetch(all, &out).ok();
  }

  std::string dir_;
  std::string shard_path_;
  std::string manifest_path_;
};

TEST_F(ShardCorruptionTest, ShardTruncationAtEveryByteRejected) {
  const std::vector<char> full = ReadAll(shard_path_);
  ASSERT_GT(full.size(), 0u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteAll(shard_path_,
             std::vector<char>(full.begin(), full.begin() + cut));
    EXPECT_TRUE(StoreRejected()) << "shard truncated to " << cut << " of "
                                 << full.size() << " bytes was accepted";
  }
  WriteAll(shard_path_, full);
  EXPECT_FALSE(StoreRejected());
}

TEST_F(ShardCorruptionTest, ManifestTruncationAtEveryByteRejected) {
  const std::vector<char> full = ReadAll(manifest_path_);
  ASSERT_GT(full.size(), 0u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteAll(manifest_path_,
             std::vector<char>(full.begin(), full.begin() + cut));
    EXPECT_TRUE(StoreRejected()) << "manifest truncated to " << cut
                                 << " bytes was accepted";
  }
  WriteAll(manifest_path_, full);
  EXPECT_FALSE(StoreRejected());
}

TEST_F(ShardCorruptionTest, ShardBitFlipsRejected) {
  const std::vector<char> full = ReadAll(shard_path_);
  // Flip one bit at a spread of positions covering header, offset table,
  // record payload, and trailing CRC.
  for (size_t pos = 0; pos < full.size();
       pos += std::max<size_t>(1, full.size() / 97)) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<char> bad = full;
      bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
      WriteAll(shard_path_, bad);
      EXPECT_TRUE(StoreRejected())
          << "bit " << bit << " at byte " << pos << " was accepted";
    }
  }
  WriteAll(shard_path_, full);
  EXPECT_FALSE(StoreRejected());
}

TEST_F(ShardCorruptionTest, ManifestBitFlipsNeverYieldWrongData) {
  const std::vector<char> full = ReadAll(manifest_path_);
  for (size_t pos = 0; pos < full.size();
       pos += std::max<size_t>(1, full.size() / 97)) {
    std::vector<char> bad = full;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    WriteAll(manifest_path_, bad);
    EXPECT_TRUE(StoreRejected())
        << "manifest flip at byte " << pos << " was accepted";
  }
  WriteAll(manifest_path_, full);
  EXPECT_FALSE(StoreRejected());
}

TEST_F(ShardCorruptionTest, WrongShardMagicRejected) {
  std::vector<char> bad = ReadAll(shard_path_);
  bad[0] = 'X';
  WriteAll(shard_path_, bad);
  EXPECT_TRUE(StoreRejected());
}

TEST_F(ShardCorruptionTest, WrongManifestMagicRejected) {
  std::vector<char> bad = ReadAll(manifest_path_);
  bad[0] = 'X';
  WriteAll(manifest_path_, bad);
  auto store = ShardedGraphStore::Open(dir_);
  EXPECT_FALSE(store.ok());
}

// Rewrites the little-endian u32 trailing CRC so the corruption below is
// only detectable by the field checks, not the checksum.
void FixTrailingCrc(std::vector<char>* bytes) {
  ASSERT_GE(bytes->size(), 4u);
  const uint32_t crc = Crc32(bytes->data(), bytes->size() - 4);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[bytes->size() - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

TEST_F(ShardCorruptionTest, UnsupportedManifestVersionRejected) {
  // Version is the u32 after the magic; a file from a future format must
  // fail cleanly even when its CRC is internally consistent.
  std::vector<char> bad = ReadAll(manifest_path_);
  bad[4] = 99;
  FixTrailingCrc(&bad);
  WriteAll(manifest_path_, bad);
  auto store = ShardedGraphStore::Open(dir_);
  EXPECT_FALSE(store.ok());
}

TEST_F(ShardCorruptionTest, UnsupportedShardVersionRejected) {
  std::vector<char> bad = ReadAll(shard_path_);
  bad[4] = 99;
  FixTrailingCrc(&bad);
  WriteAll(shard_path_, bad);
  EXPECT_TRUE(StoreRejected());
}

TEST_F(ShardCorruptionTest, MissingShardFileRejected) {
  fs::remove(shard_path_);
  EXPECT_TRUE(StoreRejected());
}

TEST_F(ShardCorruptionTest, TrailingGarbageRejected) {
  std::vector<char> bad = ReadAll(shard_path_);
  bad.push_back('\0');
  WriteAll(shard_path_, bad);
  EXPECT_TRUE(StoreRejected());
}

}  // namespace
}  // namespace sgcl
