#include "data/synthetic_molecule.h"

#include <set>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(MoleculeSamplerTest, ProducesValidMolecules) {
  Rng rng(1);
  MoleculeSampler sampler;
  for (int i = 0; i < 20; ++i) {
    SampledMolecule mol = sampler.Sample(&rng);
    EXPECT_TRUE(mol.graph.Validate().ok());
    EXPECT_GE(mol.graph.num_nodes(), 8);
    EXPECT_EQ(mol.graph.feat_dim(), kMoleculeFeatDim);
    EXPECT_GE(mol.graph.scaffold_id(), 0);
    int groups = 0;
    for (uint8_t p : mol.groups_present) groups += p;
    EXPECT_GE(groups, 1);
    // Semantic nodes = functional group atoms, present and proper subset.
    int semantic = 0;
    for (uint8_t m : mol.graph.semantic_mask()) semantic += m;
    EXPECT_GT(semantic, 0);
    EXPECT_LT(semantic, mol.graph.num_nodes());
  }
}

TEST(MoleculeSamplerTest, CoreSamplerNeverEmitsOodGroups) {
  Rng rng(2);
  MoleculeSampler sampler(/*use_ood_groups=*/false);
  for (int i = 0; i < 50; ++i) {
    SampledMolecule mol = sampler.Sample(&rng);
    for (int gid = kNumCoreGroups; gid < kNumAllGroups; ++gid) {
      EXPECT_EQ(mol.groups_present[gid], 0);
    }
  }
}

TEST(MoleculeSamplerTest, OodSamplerUsesExtendedVocabulary) {
  Rng rng(3);
  MoleculeSampler sampler(/*use_ood_groups=*/true);
  bool saw_ood = false;
  for (int i = 0; i < 200 && !saw_ood; ++i) {
    SampledMolecule mol = sampler.Sample(&rng);
    for (int gid = kNumCoreGroups; gid < kNumAllGroups; ++gid) {
      if (mol.groups_present[gid]) saw_ood = true;
    }
  }
  EXPECT_TRUE(saw_ood);
}

TEST(ZincLikeTest, SizeAndValidity) {
  GraphDataset ds = MakeZincLikeDataset(50, 9);
  EXPECT_EQ(ds.size(), 50);
  EXPECT_TRUE(ds.Validate().ok());
  // Scaffold diversity for the scaffold split.
  std::set<int> scaffolds;
  for (const Graph& g : ds.graphs()) scaffolds.insert(g.scaffold_id());
  EXPECT_GT(scaffolds.size(), 3u);
}

TEST(MolTaskConfigTest, MatchesPaperTable2Shape) {
  EXPECT_EQ(GetMolTaskConfig(MolTask::kBbbp).num_tasks, 1);
  EXPECT_EQ(GetMolTaskConfig(MolTask::kTox21).num_tasks, 12);
  EXPECT_EQ(GetMolTaskConfig(MolTask::kSider).num_tasks, 27);
  EXPECT_EQ(GetMolTaskConfig(MolTask::kMuv).num_tasks, 17);
  EXPECT_TRUE(GetMolTaskConfig(MolTask::kClintox).out_of_vocabulary);
  EXPECT_EQ(GetMolTaskConfig(MolTask::kHiv).paper_num_graphs, 41127);
  EXPECT_EQ(AllMolTasks().size(), 8u);
}

TEST(MolTaskDatasetTest, LabelsAreBinaryOrMissing) {
  MolDatasetOptions opt;
  opt.graph_fraction = 0.05;
  opt.max_graphs = 150;
  opt.seed = 4;
  GraphDataset ds = MakeMolTaskDataset(MolTask::kTox21, opt);
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.num_tasks(), 12);
  int missing = 0, total = 0;
  for (const Graph& g : ds.graphs()) {
    for (float y : g.task_labels()) {
      EXPECT_TRUE(y == 0.0f || y == 1.0f || y == -1.0f);
      missing += (y == -1.0f);
      ++total;
    }
  }
  EXPECT_GT(missing, 0);           // Tox21 has 5% missing
  EXPECT_LT(missing, total / 2);
}

TEST(MolTaskDatasetTest, MuvIsMostlyMissing) {
  MolDatasetOptions opt;
  opt.graph_fraction = 0.002;
  opt.max_graphs = 200;
  opt.seed = 5;
  GraphDataset ds = MakeMolTaskDataset(MolTask::kMuv, opt);
  int missing = 0, total = 0;
  for (const Graph& g : ds.graphs()) {
    for (float y : g.task_labels()) {
      missing += (y == -1.0f);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(missing) / total, 0.4);
}

TEST(MolTaskDatasetTest, LabelsCorrelateWithGroups) {
  // The task rule is a function of group indicators; resampling the same
  // dataset must be deterministic, and labels must not be constant.
  MolDatasetOptions opt;
  opt.graph_fraction = 0.1;
  opt.max_graphs = 200;
  opt.seed = 6;
  GraphDataset a = MakeMolTaskDataset(MolTask::kBbbp, opt);
  GraphDataset b = MakeMolTaskDataset(MolTask::kBbbp, opt);
  ASSERT_EQ(a.size(), b.size());
  int positives = 0;
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i).task_labels(), b.graph(i).task_labels());
    positives += (a.graph(i).task_labels()[0] == 1.0f);
  }
  EXPECT_GT(positives, a.size() / 10);
  EXPECT_LT(positives, 9 * a.size() / 10);
}

TEST(MolTaskDatasetTest, CapRespected) {
  MolDatasetOptions opt;
  opt.graph_fraction = 1.0;
  opt.max_graphs = 80;
  opt.seed = 7;
  GraphDataset ds = MakeMolTaskDataset(MolTask::kHiv, opt);
  EXPECT_EQ(ds.size(), 80);
}

}  // namespace
}  // namespace sgcl
