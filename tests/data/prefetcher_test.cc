#include "data/prefetcher.h"

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

std::string MakeStore(const char* name, int num_graphs,
                      int64_t graphs_per_shard) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  GraphDataset ds = MakeZincLikeDataset(num_graphs, /*seed=*/21);
  ShardWriterOptions opt;
  opt.graphs_per_shard = graphs_per_shard;
  auto writer = ShardedGraphStoreWriter::Create(dir, opt);
  EXPECT_TRUE(writer.ok());
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE((*writer)->Append(ds.graph(i)).ok());
  }
  EXPECT_TRUE((*writer)->Finalize().ok());
  return dir;
}

std::vector<std::vector<int64_t>> MakeBatches(int64_t total,
                                              int64_t batch_size) {
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < total; start += batch_size) {
    std::vector<int64_t> b;
    for (int64_t i = start; i < std::min(total, start + batch_size); ++i) {
      b.push_back(i);
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

// The async pipeline must hand out exactly what synchronous fetching
// would, batch for batch and graph for graph.
TEST(PrefetcherTest, AsyncMatchesSynchronous) {
  const std::string dir = MakeStore("prefetch_match", 20, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());

  PrefetcherOptions sync_opt;
  sync_opt.depth = 0;
  PrefetcherOptions async_opt;
  async_opt.depth = 3;
  BatchPrefetcher sync_pf(store->get(), sync_opt);
  BatchPrefetcher async_pf(store->get(), async_opt);
  sync_pf.BeginEpoch(MakeBatches(20, 6));
  async_pf.BeginEpoch(MakeBatches(20, 6));

  while (sync_pf.remaining() > 0) {
    ASSERT_GT(async_pf.remaining(), 0);
    const FetchedGraphs a = sync_pf.Next().value();
    const FetchedGraphs b = async_pf.Next().value();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.graph(i).num_nodes(), b.graph(i).num_nodes());
      EXPECT_EQ(a.graph(i).features(), b.graph(i).features());
      EXPECT_EQ(a.graph(i).edge_src(), b.graph(i).edge_src());
    }
  }
  EXPECT_EQ(async_pf.remaining(), 0);
  fs::remove_all(dir);
}

TEST(PrefetcherTest, PropagatesFetchErrors) {
  const std::string dir = MakeStore("prefetch_err", 8, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  pf.BeginEpoch({{0, 1}, {5, 99}, {2, 3}});
  EXPECT_TRUE(pf.Next().ok());
  EXPECT_EQ(pf.Next().status().code(), StatusCode::kOutOfRange);
  // The pipeline survives a failed batch: later batches still arrive.
  EXPECT_TRUE(pf.Next().ok());
  EXPECT_EQ(pf.remaining(), 0);
  fs::remove_all(dir);
}

TEST(PrefetcherTest, ReusableAcrossEpochs) {
  const std::string dir = MakeStore("prefetch_epochs", 10, 5);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  for (int epoch = 0; epoch < 3; ++epoch) {
    pf.BeginEpoch(MakeBatches(10, 4));
    int64_t graphs = 0;
    while (pf.remaining() > 0) {
      graphs += static_cast<int64_t>(pf.Next().value().size());
    }
    EXPECT_EQ(graphs, 10);
  }
  fs::remove_all(dir);
}

// Delegating source whose Fetch sleeps first: makes consumer stalls
// deterministic (the consumer always outruns a 5 ms fetch).
class SlowSource : public GraphSource {
 public:
  SlowSource(const GraphSource* inner, int sleep_ms)
      : inner_(inner), sleep_ms_(sleep_ms) {}
  const std::string& name() const override { return inner_->name(); }
  int num_classes() const override { return inner_->num_classes(); }
  int num_tasks() const override { return inner_->num_tasks(); }
  int64_t size() const override { return inner_->size(); }
  Result<int64_t> FeatDim() const override { return inner_->FeatDim(); }
  uint64_t ContentFingerprint() const override {
    return inner_->ContentFingerprint();
  }
  Status Fetch(std::span<const int64_t> indices,
               FetchedGraphs* out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    return inner_->Fetch(indices, out);
  }

 private:
  const GraphSource* inner_;
  int sleep_ms_;
};

TEST(PrefetcherTest, StallAndQueueDepthMetricsSurface) {
  const std::string dir = MakeStore("prefetch_metrics", 8, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  SlowSource slow(store->get(), /*sleep_ms=*/5);

  // Process-wide metrics: measure deltas.
  Counter* stalls =
      MetricsRegistry::Global().GetCounter("prefetch/consumer_stalls");
  const int64_t stalls0 = stalls->value();
  const int64_t hist0 = [] {
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    const auto it = snap.histograms.find("prefetch/stall_us");
    return it == snap.histograms.end() ? int64_t{0} : it->second.count;
  }();

  PrefetcherOptions opt;
  opt.depth = 1;
  BatchPrefetcher pf(&slow, opt);
  pf.BeginEpoch(MakeBatches(8, 4));
  // Next() immediately after BeginEpoch must wait out the 5 ms fetch —
  // that wait is the stall the metrics attribute.
  while (pf.remaining() > 0) ASSERT_TRUE(pf.Next().ok());

  EXPECT_GE(stalls->value() - stalls0, 1);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto hist = snap.histograms.find("prefetch/stall_us");
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_GE(hist->second.count - hist0, 1);
  // The pipeline is drained, so the depth gauge must read zero again.
  const auto gauge = snap.gauges.find("prefetch/queue_depth");
  ASSERT_NE(gauge, snap.gauges.end());
  EXPECT_EQ(gauge->second, 0.0);
  fs::remove_all(dir);
}

TEST(PrefetcherTest, FetchSpansJoinTheSchedulersTrace) {
  const std::string dir = MakeStore("prefetch_trace", 8, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  SlowSource slow(store->get(), /*sleep_ms=*/2);

  TraceRing::Global().SetSampleRate(1.0);
  TraceRing::Global().SetCapacity(8);
  TraceRing::Global().Clear();
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  ASSERT_TRUE(ctx.valid());
  {
    ScopedTraceContext install(ctx);
    TraceSpan root("test/epoch");
    PrefetcherOptions opt;
    opt.depth = 1;
    BatchPrefetcher pf(&slow, opt);
    pf.BeginEpoch(MakeBatches(8, 4));
    while (pf.remaining() > 0) ASSERT_TRUE(pf.Next().ok());
  }  // root closes -> trace commits

  // The pool-thread fetches crossed the thread boundary into the
  // scheduler's trace, and the consumer's wait shows up as a stall span.
  const std::string tree = TraceRing::Global().TreeJson(ctx.trace_id);
  ASSERT_FALSE(tree.empty());
  EXPECT_NE(tree.find("stream/prefetch_fetch"), std::string::npos) << tree;
  EXPECT_NE(tree.find("stream/consumer_stall"), std::string::npos) << tree;

  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
  fs::remove_all(dir);
}

TEST(PrefetcherTest, BeginEpochWithNoBatchesIsEmpty) {
  const std::string dir = MakeStore("prefetch_empty", 4, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  pf.BeginEpoch({});
  EXPECT_EQ(pf.remaining(), 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sgcl
