#include "data/prefetcher.h"

#include <filesystem>
#include <vector>

#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

std::string MakeStore(const char* name, int num_graphs,
                      int64_t graphs_per_shard) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  GraphDataset ds = MakeZincLikeDataset(num_graphs, /*seed=*/21);
  ShardWriterOptions opt;
  opt.graphs_per_shard = graphs_per_shard;
  auto writer = ShardedGraphStoreWriter::Create(dir, opt);
  EXPECT_TRUE(writer.ok());
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE((*writer)->Append(ds.graph(i)).ok());
  }
  EXPECT_TRUE((*writer)->Finalize().ok());
  return dir;
}

std::vector<std::vector<int64_t>> MakeBatches(int64_t total,
                                              int64_t batch_size) {
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < total; start += batch_size) {
    std::vector<int64_t> b;
    for (int64_t i = start; i < std::min(total, start + batch_size); ++i) {
      b.push_back(i);
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

// The async pipeline must hand out exactly what synchronous fetching
// would, batch for batch and graph for graph.
TEST(PrefetcherTest, AsyncMatchesSynchronous) {
  const std::string dir = MakeStore("prefetch_match", 20, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());

  PrefetcherOptions sync_opt;
  sync_opt.depth = 0;
  PrefetcherOptions async_opt;
  async_opt.depth = 3;
  BatchPrefetcher sync_pf(store->get(), sync_opt);
  BatchPrefetcher async_pf(store->get(), async_opt);
  sync_pf.BeginEpoch(MakeBatches(20, 6));
  async_pf.BeginEpoch(MakeBatches(20, 6));

  while (sync_pf.remaining() > 0) {
    ASSERT_GT(async_pf.remaining(), 0);
    const FetchedGraphs a = sync_pf.Next().value();
    const FetchedGraphs b = async_pf.Next().value();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.graph(i).num_nodes(), b.graph(i).num_nodes());
      EXPECT_EQ(a.graph(i).features(), b.graph(i).features());
      EXPECT_EQ(a.graph(i).edge_src(), b.graph(i).edge_src());
    }
  }
  EXPECT_EQ(async_pf.remaining(), 0);
  fs::remove_all(dir);
}

TEST(PrefetcherTest, PropagatesFetchErrors) {
  const std::string dir = MakeStore("prefetch_err", 8, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  pf.BeginEpoch({{0, 1}, {5, 99}, {2, 3}});
  EXPECT_TRUE(pf.Next().ok());
  EXPECT_EQ(pf.Next().status().code(), StatusCode::kOutOfRange);
  // The pipeline survives a failed batch: later batches still arrive.
  EXPECT_TRUE(pf.Next().ok());
  EXPECT_EQ(pf.remaining(), 0);
  fs::remove_all(dir);
}

TEST(PrefetcherTest, ReusableAcrossEpochs) {
  const std::string dir = MakeStore("prefetch_epochs", 10, 5);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  for (int epoch = 0; epoch < 3; ++epoch) {
    pf.BeginEpoch(MakeBatches(10, 4));
    int64_t graphs = 0;
    while (pf.remaining() > 0) {
      graphs += static_cast<int64_t>(pf.Next().value().size());
    }
    EXPECT_EQ(graphs, 10);
  }
  fs::remove_all(dir);
}

TEST(PrefetcherTest, BeginEpochWithNoBatchesIsEmpty) {
  const std::string dir = MakeStore("prefetch_empty", 4, 4);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  BatchPrefetcher pf(store->get(), {});
  pf.BeginEpoch({});
  EXPECT_EQ(pf.remaining(), 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sgcl
