#include "common/rng.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(RngTest, UniformIntHalfOpenBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LT(v, 4);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.15);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSubset) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<int64_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, WeightedSampleAvoidsZeroWeight) {
  Rng rng(31);
  std::vector<double> w = {0.0, 5.0, 5.0, 0.0, 5.0};
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.WeightedSampleWithoutReplacement(w, 3);
    std::set<int64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 3u);
    EXPECT_FALSE(uniq.count(0));
    EXPECT_FALSE(uniq.count(3));
  }
}

TEST(RngTest, WeightedSampleFallsBackToUniformWhenExhausted) {
  Rng rng(37);
  std::vector<double> w = {1.0, 0.0, 0.0};
  auto s = rng.WeightedSampleWithoutReplacement(w, 3);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(RngTest, WeightedSampleBiasedTowardsHeavyWeights) {
  Rng rng(41);
  std::vector<double> w = {10.0, 1.0, 1.0, 1.0};
  int first_count = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto s = rng.WeightedSampleWithoutReplacement(w, 1);
    first_count += (s[0] == 0);
  }
  EXPECT_NEAR(first_count / 2000.0, 10.0 / 13.0, 0.04);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace sgcl
