// Flow-pass engine tests: tokenizer goldens, declaration extraction,
// and positive + negative fixtures for the thread-safety rules
// sgcl-R8 (guarded members), sgcl-R9 (lock-order cycles, including the
// seeded cross-file cycle the issue demands), and sgcl-R10 (atomics
// hygiene), plus --fix round-trips and stale-NOLINT reporting.
#include <algorithm>
#include <string>
#include <vector>

#include "common/lint.h"
#include "gtest/gtest.h"

namespace sgcl::lint {
namespace {

std::vector<Finding> LintFiles(
    const std::vector<std::pair<std::string, std::string>>& files,
    LintOptions options = {}) {
  Linter linter(std::move(options));
  for (const auto& [path, content] : files) linter.AddFile(path, content);
  return linter.Run();
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---- tokenizer -------------------------------------------------------

TEST(TokenizerTest, BasicsCommentsAndLiterals) {
  const std::string src =
      "int x = 42;  // trailing comment\n"
      "/* block\n   comment */ std::string s = \"hi \\\" there\";\n"
      "char c = 'a';\n";
  const std::vector<Token> toks = Tokenize(src);
  std::vector<std::string> texts;
  for (const Token& t : toks) texts.push_back(t.text);
  const std::vector<std::string> expected = {
      "int", "x",  "=", "42", ";",    "std", "::",  "string", "s",
      "=",   "\"hi \\\" there\"",     ";",   "char", "c", "=", "'a'", ";"};
  EXPECT_EQ(texts, expected);
  // Line numbers survive the multi-line block comment.
  EXPECT_EQ(toks[5].text, "std");
  EXPECT_EQ(toks[5].line, 3);
}

TEST(TokenizerTest, RawStringsBecomeOneToken) {
  const std::string src =
      "auto s = R\"(no \"escape\" needed)\";\n"
      "auto t = R\"x(nested )\" close)x\"; int after = 1;\n";
  const std::vector<Token> toks = Tokenize(src);
  int strings = 0;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.text.rfind("R\"", 0), 0u);
    }
  }
  EXPECT_EQ(strings, 2);
  // Lexing resumes correctly after the custom-delimiter raw string.
  EXPECT_NE(std::find_if(toks.begin(), toks.end(),
                         [](const Token& t) { return t.text == "after"; }),
            toks.end());
}

TEST(TokenizerTest, NestedTemplatesCloseWithTwoTokens) {
  const std::vector<Token> toks =
      Tokenize("std::vector<std::pair<int, long>> v;");
  int closes = 0;
  for (const Token& t : toks) {
    if (t.text == ">") ++closes;
    EXPECT_NE(t.text, ">>");  // never lexed as a shift
  }
  EXPECT_EQ(closes, 2);
}

TEST(TokenizerTest, DirectivesAreSingleTokens) {
  const std::vector<Token> toks = Tokenize(
      "#include <mutex>\n"
      "#define TWO_LINES(a) \\\n  (a + 1)\n"
      "int x;\n");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "#include <mutex>");
  EXPECT_EQ(toks[1].kind, TokenKind::kDirective);
  EXPECT_NE(toks[1].text.find("(a + 1)"), std::string::npos);
  EXPECT_EQ(toks[2].text, "int");
  EXPECT_EQ(toks[2].line, 4);
}

TEST(TokenizerTest, NumbersWithSeparatorsAndSuffixes) {
  const std::vector<Token> toks = Tokenize("x = 1'000'000; y = 0xFFull;");
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[2].text, "1'000'000");
  EXPECT_EQ(toks[6].text, "0xFFull");
}

// ---- declaration extraction ------------------------------------------

constexpr char kAnnotatedClass[] = R"cc(
#include "common/thread_annotations.h"
class Board {
 public:
  void Publish(int v);
  int ReadLocked() const SGCL_REQUIRES(mu_);
 private:
  mutable std::mutex mu_;
  int value_ SGCL_GUARDED_BY(mu_) = 0;
  std::atomic<long> hits_ SGCL_GUARDED_BY(mu_){0};
  std::atomic<bool> on_{false};
};
)cc";

TEST(ExtractDeclsTest, FindsGuardedMembersRequiresAndTypes) {
  const FileDecls d = ExtractDecls(kAnnotatedClass);
  ASSERT_EQ(d.guarded_members.size(), 2u);
  EXPECT_EQ(d.guarded_members[0].class_name, "Board");
  EXPECT_EQ(d.guarded_members[0].member, "value_");
  EXPECT_EQ(d.guarded_members[0].mutex, "mu_");
  EXPECT_FALSE(d.guarded_members[0].atomic);
  EXPECT_EQ(d.guarded_members[1].member, "hits_");
  EXPECT_TRUE(d.guarded_members[1].atomic);
  ASSERT_EQ(d.requires_methods.size(), 1u);
  EXPECT_EQ(d.requires_methods[0].method, "ReadLocked");
  EXPECT_EQ(d.requires_methods[0].mutexes,
            std::vector<std::string>{"mu_"});
  EXPECT_EQ(d.mutex_members, std::vector<std::string>{"Board::mu_"});
  ASSERT_EQ(d.atomic_members.size(), 2u);
  EXPECT_EQ(d.atomic_members[0], "Board::hits_");
  EXPECT_EQ(d.atomic_members[1], "Board::on_");
}

TEST(ExtractDeclsTest, DigestChangesWithDeclarations) {
  const GlobalTables a = BuildTables({ExtractDecls(kAnnotatedClass)});
  const GlobalTables b = BuildTables({ExtractDecls("int x;\n")});
  EXPECT_NE(a.Digest(), b.Digest());
  EXPECT_EQ(a.Digest(), BuildTables({ExtractDecls(kAnnotatedClass)}).Digest());
}

// ---- sgcl-R8 ---------------------------------------------------------

constexpr char kR8Header[] = R"cc(
class Counter {
 public:
  void Add(int v);
  void Bad(int v);
  int GetLocked() const SGCL_REQUIRES(mu_);
 private:
  mutable std::mutex mu_;
  int total_ SGCL_GUARDED_BY(mu_) = 0;
};
)cc";

TEST(LintR8Test, UnlockedAccessIsFlagged) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "void Counter::Add(int v) {\n"
        "  std::lock_guard<std::mutex> lock(mu_);\n"
        "  total_ += v;\n"
        "}\n"
        "void Counter::Bad(int v) { total_ += v; }\n"
        "int Counter::GetLocked() const { return total_; }\n"}});
  ASSERT_EQ(CountRule(findings, "sgcl-R8"), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "sgcl-R8"; });
  EXPECT_EQ(it->file, "src/core/counter.cc");
  EXPECT_EQ(it->line, 5);
  EXPECT_NE(it->message.find("total_"), std::string::npos);
  EXPECT_NE(it->message.find("Counter::mu_"), std::string::npos);
}

TEST(LintR8Test, UniqueLockAndScopedLockCount) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "void Counter::Add(int v) {\n"
        "  std::unique_lock<std::mutex> lock(mu_);\n"
        "  total_ += v;\n"
        "}\n"
        "void Counter::Bad(int v) {\n"
        "  std::scoped_lock lock(mu_);\n"
        "  total_ += v;\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R8"), 0);
}

TEST(LintR8Test, LockScopeEndsAtBrace) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "void Counter::Add(int v) {\n"
        "  {\n"
        "    std::lock_guard<std::mutex> lock(mu_);\n"
        "    total_ += v;\n"
        "  }\n"
        "  total_ += v;\n"
        "}\n"}});
  ASSERT_EQ(CountRule(findings, "sgcl-R8"), 1);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "sgcl-R8"; });
  EXPECT_EQ(it->line, 6);
}

TEST(LintR8Test, RequiresAnnotationSatisfies) {
  // Both the out-of-line definition of a REQUIRES-declared method and
  // an inline-annotated definition hold the capability on entry.
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "int Counter::GetLocked() const { return total_; }\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R8"), 0);
}

TEST(LintR8Test, ConstructorsAreExempt) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "Counter::Counter() { total_ = 0; }\n"
        "Counter::~Counter() { total_ = -1; }\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R8"), 0);
}

TEST(LintR8Test, AtomicWithExplicitOrderEscapes) {
  const char* header =
      "class Flag {\n"
      " public:\n"
      "  void Raise();\n"
      "  bool Peek() const;\n"
      " private:\n"
      "  mutable std::mutex mu_;\n"
      "  std::atomic<bool> set_ SGCL_GUARDED_BY(mu_){false};\n"
      "};\n";
  const std::vector<Finding> ok = LintFiles(
      {{"src/core/flag.h", header},
       {"src/core/flag.cc",
        "bool Flag::Peek() const {\n"
        "  return set_.load(std::memory_order_relaxed);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(ok, "sgcl-R8"), 0);
  const std::vector<Finding> bad = LintFiles(
      {{"src/core/flag.h", header},
       {"src/core/flag.cc",
        "bool Flag::Peek() const { return set_.load(); }\n"}});
  EXPECT_EQ(CountRule(bad, "sgcl-R8"), 1);
}

TEST(LintR8Test, OtherClassesAndObjectsAreNotConfused) {
  // A same-named member of another class, and access through a
  // different object, must not be flagged.
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/other.cc",
        "class Other {\n"
        " public:\n"
        "  int total_ = 0;\n"
        "  void Bump() { total_++; }\n"
        "};\n"
        "int Probe(const Counter& c, Other& o) {\n"
        "  o.total_ = 3;\n"
        "  return o.total_;\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R8"), 0);
}

TEST(LintR8Test, NolintSuppresses) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/counter.h", kR8Header},
       {"src/core/counter.cc",
        "void Counter::Bad(int v) {\n"
        "  total_ += v;  // NOLINT(sgcl-R8): benign init-order write\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R8"), 0);
}

// ---- sgcl-R9 ---------------------------------------------------------

constexpr char kTwoMutexHeader[] = R"cc(
class Pair {
 public:
  void AB();
  void BA();
 private:
  std::mutex a_;
  std::mutex b_;
};
)cc";

TEST(LintR9Test, SeededCrossFileCycleIsCaught) {
  // The acceptance-criteria fixture: file 1 locks a_ then b_, file 2
  // locks b_ then a_ — a classic lock-order deadlock, visible only by
  // merging acquisition edges across files.
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/pair.h", kTwoMutexHeader},
       {"src/core/pair_ab.cc",
        "void Pair::AB() {\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "  std::lock_guard<std::mutex> lb(b_);\n"
        "}\n"},
       {"src/core/pair_ba.cc",
        "void Pair::BA() {\n"
        "  std::lock_guard<std::mutex> lb(b_);\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "}\n"}});
  ASSERT_EQ(CountRule(findings, "sgcl-R9"), 2);
  for (const Finding& f : findings) {
    if (f.rule != "sgcl-R9") continue;
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_NE(f.message.find("lock-order cycle"), std::string::npos);
    EXPECT_NE(f.message.find("Pair::a_"), std::string::npos);
    EXPECT_NE(f.message.find("Pair::b_"), std::string::npos);
  }
}

TEST(LintR9Test, ConsistentOrderIsClean) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/pair.h", kTwoMutexHeader},
       {"src/core/pair_ab.cc",
        "void Pair::AB() {\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "  std::lock_guard<std::mutex> lb(b_);\n"
        "}\n"},
       {"src/core/pair_ba.cc",
        "void Pair::BA() {\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "  std::lock_guard<std::mutex> lb(b_);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R9"), 0);
}

TEST(LintR9Test, SequentialLocksDoNotMakeEdges) {
  // Scopes matter: a_ released before b_ is taken, so there is no
  // held-while-acquiring edge and no cycle.
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/pair.h", kTwoMutexHeader},
       {"src/core/pair_ab.cc",
        "void Pair::AB() {\n"
        "  { std::lock_guard<std::mutex> la(a_); }\n"
        "  { std::lock_guard<std::mutex> lb(b_); }\n"
        "}\n"},
       {"src/core/pair_ba.cc",
        "void Pair::BA() {\n"
        "  { std::lock_guard<std::mutex> lb(b_); }\n"
        "  { std::lock_guard<std::mutex> la(a_); }\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R9"), 0);
}

TEST(LintR9Test, NolintRemovesTheEdge) {
  const std::vector<Finding> findings = LintFiles(
      {{"src/core/pair.h", kTwoMutexHeader},
       {"src/core/pair_ab.cc",
        "void Pair::AB() {\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "  std::lock_guard<std::mutex> lb(b_);  // NOLINT(sgcl-R9): vetted\n"
        "}\n"},
       {"src/core/pair_ba.cc",
        "void Pair::BA() {\n"
        "  std::lock_guard<std::mutex> lb(b_);\n"
        "  std::lock_guard<std::mutex> la(a_);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "sgcl-R9"), 0);
}

// ---- sgcl-R10 --------------------------------------------------------

TEST(LintR10Test, DefaultOrderFlaggedOnHotPathOnly) {
  const std::string src =
      "class S {\n"
      " public:\n"
      "  bool Get() const { return on_.load(); }\n"
      "  void Set(bool v) { on_.store(v); }\n"
      " private:\n"
      "  std::atomic<bool> on_{false};\n"
      "};\n";
  EXPECT_EQ(CountRule(LintFiles({{"src/serve/s.h", src}}), "sgcl-R10"), 2);
  // The same code off the hot path is not R10's business.
  EXPECT_EQ(CountRule(LintFiles({{"src/core/s.h", src}}), "sgcl-R10"), 0);
}

TEST(LintR10Test, ExplicitOrderIsClean) {
  const std::string src =
      "class S {\n"
      " public:\n"
      "  bool Get() const { return on_.load(std::memory_order_acquire); }\n"
      "  void Set(bool v) { on_.store(v, std::memory_order_release); }\n"
      " private:\n"
      "  std::atomic<bool> on_{false};\n"
      "};\n";
  EXPECT_EQ(CountRule(LintFiles({{"src/serve/s.h", src}}), "sgcl-R10"), 0);
}

TEST(LintR10Test, NonAtomicLoadStoreIgnored) {
  const std::string src =
      "struct W { void load(); void store(int); };\n"
      "class S {\n"
      " public:\n"
      "  void Go() { w_.load(); w_.store(1); }\n"
      " private:\n"
      "  W w_;\n"
      "};\n";
  EXPECT_EQ(CountRule(LintFiles({{"src/serve/w.h", src}}), "sgcl-R10"), 0);
}

TEST(LintR10Test, VolatileFlaggedOnHotPath) {
  const std::string src = "volatile int spin_flag = 0;\n";
  const std::vector<Finding> findings =
      LintFiles({{"src/serve/flag.cc", src}});
  ASSERT_EQ(CountRule(findings, "sgcl-R10"), 1);
  EXPECT_NE(findings[0].message.find("volatile"), std::string::npos);
}

// ---- fixes -----------------------------------------------------------

TEST(LintFixTest, R10FixInsertsSeqCstAndIsIdempotent) {
  const std::string path = "src/serve/s.cc";
  const std::string src =
      "void Tick(std::atomic<int>& unused) {\n"
      "  static std::atomic<int> n{0};\n"
      "  int v = n.load();\n"
      "  n.store(v + 1);\n"
      "}\n";
  // Local atomics in a function body are tracked too.
  const std::vector<Finding> findings = LintFiles({{path, src}});
  ASSERT_EQ(CountRule(findings, "sgcl-R10"), 2);
  const std::string fixed = ApplyFixes(path, src, findings);
  EXPECT_NE(fixed.find("n.load(std::memory_order_seq_cst)"),
            std::string::npos);
  EXPECT_NE(fixed.find("n.store(v + 1, std::memory_order_seq_cst)"),
            std::string::npos);
  // Round-trip: the fixed file lints clean, and re-fixing changes
  // nothing.
  const std::vector<Finding> after = LintFiles({{path, fixed}});
  EXPECT_EQ(CountRule(after, "sgcl-R10"), 0);
  EXPECT_EQ(ApplyFixes(path, fixed, after), fixed);
}

TEST(LintFixTest, R4GuardRenameFixesAllThreeSites) {
  const std::string path = "src/core/widget.h";
  const std::string src =
      "#ifndef WRONG_GUARD_H\n"
      "#define WRONG_GUARD_H\n"
      "int f();\n"
      "#endif  // WRONG_GUARD_H\n";
  const std::vector<Finding> findings = LintFiles({{path, src}});
  ASSERT_EQ(CountRule(findings, "sgcl-R4"), 1);
  const std::string fixed = ApplyFixes(path, src, findings);
  EXPECT_EQ(fixed,
            "#ifndef SGCL_CORE_WIDGET_H_\n"
            "#define SGCL_CORE_WIDGET_H_\n"
            "int f();\n"
            "#endif  // SGCL_CORE_WIDGET_H_\n");
  const std::vector<Finding> after = LintFiles({{path, fixed}});
  EXPECT_EQ(CountRule(after, "sgcl-R4"), 0);
  EXPECT_EQ(ApplyFixes(path, fixed, after), fixed);
}

// ---- stale suppressions ----------------------------------------------

TEST(StaleNolintTest, UnusedNolintReportedOnlyWhenOptedIn) {
  const std::string src =
      "int a = 1;  // NOLINT(sgcl-R5): nothing to suppress anymore\n"
      "int* p = new int;  // NOLINT(sgcl-R5)\n";
  EXPECT_EQ(CountRule(LintFiles({{"src/core/a.cc", src}}), "sgcl-nolint"),
            0);
  LintOptions options;
  options.report_stale_nolint = true;
  const std::vector<Finding> findings =
      LintFiles({{"src/core/a.cc", src}}, options);
  ASSERT_EQ(CountRule(findings, "sgcl-nolint"), 1);
  const Finding& f = findings[0];
  EXPECT_EQ(f.line, 1);
  EXPECT_EQ(f.severity, Severity::kWarning);
  EXPECT_NE(f.message.find("sgcl-R5"), std::string::npos);
}

TEST(StaleNolintTest, ProseAndStringMentionsAreNotStale) {
  // A doc comment *about* NOLINT and a string literal containing one
  // are not suppression directives gone stale.
  const std::string src =
      "// Suppress findings with NOLINT(sgcl-R5) on the line.\n"
      "const char* kFixture = \"int x;  // NOLINT(sgcl-R5)\";\n";
  LintOptions options;
  options.report_stale_nolint = true;
  EXPECT_EQ(
      CountRule(LintFiles({{"src/core/doc.cc", src}}, options), "sgcl-nolint"),
      0);
}

TEST(StaleNolintTest, NolintNextLineTracksItsTarget) {
  const std::string src =
      "// NOLINTNEXTLINE(sgcl-R5)\n"
      "int* p = new int;\n"
      "// NOLINTNEXTLINE(sgcl-R5)\n"
      "int q = 0;\n";
  LintOptions options;
  options.report_stale_nolint = true;
  const std::vector<Finding> findings =
      LintFiles({{"src/core/b.cc", src}}, options);
  ASSERT_EQ(CountRule(findings, "sgcl-nolint"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(StaleNolintTest, StaleAllowlistEntryReported) {
  LintOptions options;
  options.report_stale_nolint = true;
  options.allowlist_path = "tools/test_allowlist.txt";
  options.allow.push_back({"src/core/used.cc", "sgcl-R5", 3});
  options.allow.push_back({"src/core/gone.cc", "sgcl-R2", 7});
  const std::vector<Finding> findings =
      LintFiles({{"src/core/used.cc", "int* p = new int;\n"}}, options);
  ASSERT_EQ(CountRule(findings, "sgcl-nolint"), 1);
  const Finding& f = findings[0];
  EXPECT_EQ(f.file, "tools/test_allowlist.txt");
  EXPECT_EQ(f.line, 7);
  EXPECT_NE(f.message.find("src/core/gone.cc:sgcl-R2"), std::string::npos);
}

}  // namespace
}  // namespace sgcl::lint
