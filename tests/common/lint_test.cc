// Fixture tests for the sgcl_lint rule engine (common/lint.h): every
// rule has at least one snippet where it fires and one where it must
// not, so rules are regression-tested like any other subsystem.
#include "common/lint.h"

#include <string>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"

namespace sgcl::lint {
namespace {

std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& content,
                                 LintOptions options = {}) {
  Linter linter(std::move(options));
  linter.AddFile(path, content);
  return linter.Run();
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// ---- sgcl-R1: discarded fallible call --------------------------------

constexpr char kR1Fires[] = R"(
Status Flush(int fd);
void Caller() {
  Flush(3);
}
)";

constexpr char kR1Clean[] = R"(
Status Flush(int fd);
Result<int> Read(int fd);
Status Caller() {
  Status st = Flush(3);
  if (!st.ok()) return st;
  SGCL_RETURN_NOT_OK(Flush(4));
  SGCL_ASSIGN_OR_RETURN(int n, Read(3));
  return Flush(n);
}
)";

TEST(LintR1Test, FiresOnDiscardedFallibleCall) {
  const auto findings = LintSnippet("src/common/a.cc", kR1Fires);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R1");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("Flush"), std::string::npos);
}

TEST(LintR1Test, SilentOnBoundReturnedOrWrappedCalls) {
  EXPECT_TRUE(LintSnippet("src/common/a.cc", kR1Clean).empty());
}

TEST(LintR1Test, CollectsNamesAcrossFiles) {
  // Declaration in one file, discarded call in another.
  Linter linter({});
  linter.AddFile("src/common/api.cc", "Status Sync();\n");
  linter.AddFile("src/core/use.cc", "void F() {\n  Sync();\n}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/use.cc");
  EXPECT_EQ(findings[0].rule, "sgcl-R1");
}

TEST(LintR1Test, SilentOnContinuationLines) {
  // The call is the right-hand side of an assignment started above.
  constexpr char kSnippet[] = R"(
Status Flush(int fd);
void Caller() {
  const Status st =
      Flush(3);
  (void)st.ok();
}
)";
  EXPECT_TRUE(LintSnippet("src/common/a.cc", kSnippet).empty());
}

// ---- sgcl-R2: determinism --------------------------------------------

constexpr char kR2Fires[] = R"(
void Seeds() {
  int a = rand();
  srand(42);
  std::random_device rd;
  uint64_t s = static_cast<uint64_t>(time(nullptr));
  auto t = std::chrono::system_clock::now();
}
)";

constexpr char kR2Clean[] = R"(
void Seeds() {
  Rng rng(42);
  auto t0 = std::chrono::steady_clock::now();
  int grand_total = my_rand(7);  // identifiers merely containing 'rand'
  double time_delta = time_offset(3);
}
)";

TEST(LintR2Test, FiresOnEveryNondeterminismSource) {
  const auto findings = LintSnippet("src/core/b.cc", kR2Fires);
  ASSERT_EQ(findings.size(), 5u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "sgcl-R2");
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(LintR2Test, SilentOnSeededRngAndSteadyClock) {
  EXPECT_TRUE(LintSnippet("src/core/b.cc", kR2Clean).empty());
}

TEST(LintR2Test, RngImplementationIsExemptByPath) {
  EXPECT_TRUE(LintSnippet("src/common/rng.cc", kR2Fires).empty());
}

TEST(LintR2Test, CommentsAndStringsDoNotFire) {
  constexpr char kSnippet[] =
      "// rand() in a comment\n"
      "const char* s = \"std::random_device\";\n"
      "/* time(nullptr) */\n";
  EXPECT_TRUE(LintSnippet("src/core/b.cc", kSnippet).empty());
}

// ---- sgcl-R3: side effects in checks ---------------------------------

constexpr char kR3Fires[] = R"(
void F(std::vector<int>* v, int i) {
  SGCL_CHECK(i++ < 3);
  SGCL_CHECK_EQ(i += 1, 2);
  SGCL_DCHECK(v->empty() || (i = 0));
  assert(v->size() > 0 && v->pop_back());
}
)";

constexpr char kR3Clean[] = R"(
void F(const std::vector<int>& v, int i) {
  SGCL_CHECK(i < 3);
  SGCL_CHECK_EQ(v.size(), 2u);
  SGCL_CHECK_GE(i, -1);
  SGCL_DCHECK(v.empty() == false);
  assert(i <= 3 && i >= 0);
  SGCL_CHECK(2 >= 1);
}
)";

TEST(LintR3Test, FiresOnSideEffectsInsideChecks) {
  const auto findings = LintSnippet("src/core/c.cc", kR3Fires);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "sgcl-R3");
  EXPECT_NE(findings[0].message.find("increment"), std::string::npos);
  EXPECT_NE(findings[3].message.find("pop_back"), std::string::npos);
}

TEST(LintR3Test, SilentOnPureComparisons) {
  EXPECT_TRUE(LintSnippet("src/core/c.cc", kR3Clean).empty());
}

TEST(LintR3Test, HandlesMultiLineArguments) {
  constexpr char kSnippet[] = R"(
void F(int i) {
  SGCL_CHECK(i <
             (i = 7));
}
)";
  const auto findings = LintSnippet("src/core/c.cc", kSnippet);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R3");
  EXPECT_EQ(findings[0].line, 3);
}

// ---- sgcl-R4: header hygiene -----------------------------------------

TEST(LintR4Test, ExpectedGuardDerivesFromPath) {
  EXPECT_EQ(ExpectedIncludeGuard("src/common/lint.h"),
            "SGCL_COMMON_LINT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tests/test_util.h"),
            "SGCL_TESTS_TEST_UTIL_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/nn/gat_conv.h"),
            "SGCL_NN_GAT_CONV_H_");
}

TEST(LintR4Test, FiresOnWrongGuardName) {
  const auto findings = LintSnippet(
      "src/common/d.h", "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R4");
  EXPECT_NE(findings[0].message.find("SGCL_COMMON_D_H_"), std::string::npos);
}

TEST(LintR4Test, FiresOnMissingGuardAndMismatchedDefine) {
  EXPECT_EQ(Rules(LintSnippet("src/common/d.h", "int x;\n")),
            std::vector<std::string>{"sgcl-R4"});
  const auto findings = LintSnippet(
      "src/common/d.h",
      "#ifndef SGCL_COMMON_D_H_\n#define OTHER_H_\n#endif\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("matching #define"), std::string::npos);
}

TEST(LintR4Test, FiresOnUsingNamespaceInHeader) {
  const auto findings = LintSnippet(
      "src/common/d.h",
      "#ifndef SGCL_COMMON_D_H_\n#define SGCL_COMMON_D_H_\n"
      "using namespace std;\n#endif\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R4");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintR4Test, SilentOnConformingHeaderAndOnSourceFiles) {
  EXPECT_TRUE(LintSnippet("src/common/d.h",
                          "#ifndef SGCL_COMMON_D_H_\n"
                          "#define SGCL_COMMON_D_H_\n#endif\n")
                  .empty());
  // .cc files are exempt from R4 entirely.
  EXPECT_TRUE(
      LintSnippet("src/common/d.cc", "using namespace std;\n").empty());
}

// ---- sgcl-R5: naked new/delete ---------------------------------------

constexpr char kR5Fires[] = R"(
void F() {
  int* p = new int(3);
  delete p;
  auto* a = new int[4];
  delete[] a;
}
)";

constexpr char kR5Clean[] = R"(
struct T {
  T(const T&) = delete;
  T& operator=(const T&) = delete;
};
void F() {
  auto p = std::make_unique<int>(3);
  std::vector<int> v(4);
}
)";

TEST(LintR5Test, FiresOnNakedNewAndDelete) {
  const auto findings = LintSnippet("src/core/e.cc", kR5Fires);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "sgcl-R5");
}

TEST(LintR5Test, SilentOnDeletedFunctionsAndSmartPointers) {
  EXPECT_TRUE(LintSnippet("src/core/e.cc", kR5Clean).empty());
}

// ---- sgcl-R6: raw writes in checkpoint paths -------------------------

constexpr char kR6Fires[] = R"(
void Save(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}
)";

constexpr char kR6FiresCstdio[] = R"(
void Save(const char* path, const char* data, size_t n) {
  FILE* f = fopen(path, "wb");
  fwrite(data, 1, n, f);
}
)";

constexpr char kR6Clean[] = R"(
Status Save(const std::string& path, const std::string& bytes) {
  return AtomicWriteFile(path, bytes);
}
Result<std::string> Load(const std::string& path) {
  std::string bytes;
  SGCL_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  return bytes;
}
)";

TEST(LintR6Test, FiresOnRawOfstreamInCheckpointSources) {
  const auto findings = LintSnippet("src/core/train_state.cc", kR6Fires);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R6");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("AtomicWriteFile"), std::string::npos);
}

TEST(LintR6Test, FiresOnFopenAndFwrite) {
  const auto findings = LintSnippet("src/nn/checkpoint.cc", kR6FiresCstdio);
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "sgcl-R6");
}

TEST(LintR6Test, SilentOnAtomicWritePathAndReads) {
  EXPECT_TRUE(LintSnippet("src/nn/checkpoint.cc", kR6Clean).empty());
}

// ---- sgcl-R7: blocking I/O in the serving layer ----------------------

constexpr char kR7Fires[] = R"(
Status Reload(const std::string& path, SgclModel* model) {
  return LoadCheckpoint(path, model);
}
)";

constexpr char kR7FiresStream[] = R"(
void Dump(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}
)";

TEST(LintR7Test, FiresOnCheckpointLoadInServeSources) {
  const auto findings = LintSnippet("src/serve/service.cc", kR7Fires);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R7");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("serving layer"), std::string::npos);
}

TEST(LintR7Test, FiresOnRawStreamsInServeSources) {
  const auto findings = LintSnippet("src/serve/batcher.cc", kR7FiresStream);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "sgcl-R7");
}

TEST(LintR7Test, ToolsAndTestsAreOutOfScope) {
  // The CLI legitimately loads the checkpoint before handing the model
  // to the service; serve tests may read fixture files.
  EXPECT_TRUE(LintSnippet("tools/sgcl_cli.cc", kR7Fires).empty());
  EXPECT_TRUE(LintSnippet("tests/serve/service_test.cc", kR7Fires).empty());
  EXPECT_TRUE(LintSnippet("src/nn/gin_inference.cc", kR7Fires).empty());
}

TEST(LintR6Test, NonCheckpointAndTestFilesAreExempt) {
  // Same raw write elsewhere in the tree: not a checkpoint path.
  EXPECT_TRUE(LintSnippet("src/common/io.cc", kR6Fires).empty());
  // Corruption tests write torn checkpoint files on purpose.
  EXPECT_TRUE(
      LintSnippet("tests/core/train_state_test.cc", kR6Fires).empty());
}

// ---- suppression and allowlist ---------------------------------------

TEST(LintSuppressionTest, InlineNolintSilencesNamedRule) {
  constexpr char kSnippet[] =
      "void F() {\n"
      "  int* p = new int(3);  // NOLINT(sgcl-R5): pool-owned\n"
      "}\n";
  EXPECT_TRUE(LintSnippet("src/core/f.cc", kSnippet).empty());
}

TEST(LintSuppressionTest, NolintNextLineAndBareNolint) {
  constexpr char kNextLine[] =
      "void F() {\n"
      "  // NOLINTNEXTLINE(sgcl-R5)\n"
      "  int* p = new int(3);\n"
      "}\n";
  EXPECT_TRUE(LintSnippet("src/core/f.cc", kNextLine).empty());
  constexpr char kBare[] =
      "void F() {\n"
      "  int* p = new int(3);  // NOLINT\n"
      "}\n";
  EXPECT_TRUE(LintSnippet("src/core/f.cc", kBare).empty());
}

TEST(LintSuppressionTest, NolintForOtherRuleDoesNotSuppress) {
  constexpr char kSnippet[] =
      "void F() {\n"
      "  int* p = new int(3);  // NOLINT(sgcl-R2)\n"
      "}\n";
  EXPECT_EQ(Rules(LintSnippet("src/core/f.cc", kSnippet)),
            std::vector<std::string>{"sgcl-R5"});
}

TEST(LintAllowlistTest, FileRulePairExemptsOnlyThatFile) {
  LintOptions options;
  options.allow.emplace_back("src/core/g.cc", "sgcl-R5");
  constexpr char kSnippet[] = "void F() { int* p = new int(3); }\n";
  EXPECT_TRUE(LintSnippet("src/core/g.cc", kSnippet, options).empty());
  EXPECT_EQ(LintSnippet("src/core/h.cc", kSnippet, options).size(), 1u);
}

// ---- report formats --------------------------------------------------

TEST(LintReportTest, TextAndJsonAreDeterministicAndParseable) {
  Linter linter({});
  linter.AddFile("src/z.cc", "void F() { int* p = new int(1); }\n");
  linter.AddFile("src/a.cc", "void F() { int* p = new int(1); }\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 2u);
  // Sorted by file regardless of AddFile order.
  EXPECT_EQ(findings[0].file, "src/a.cc");
  EXPECT_EQ(findings[1].file, "src/z.cc");

  const std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/a.cc:1: error: [sgcl-R5]"), std::string::npos);

  // The JSON report round-trips through the in-repo parser.
  auto parsed = JsonValue::Parse(FormatJson(findings));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetDouble("count"), 2.0);
  const JsonValue* list = parsed->Find("findings");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->AsArray().size(), 2u);
  EXPECT_EQ(list->AsArray()[0].GetString("file"), "src/a.cc");
  EXPECT_EQ(list->AsArray()[0].GetString("rule"), "sgcl-R5");
  EXPECT_EQ(list->AsArray()[0].GetString("severity"), "error");
}

TEST(LintReportTest, EmptyFindingsJson) {
  auto parsed = JsonValue::Parse(FormatJson({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetDouble("count"), 0.0);
}

}  // namespace
}  // namespace sgcl::lint
