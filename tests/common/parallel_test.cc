#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

// Restores the default (SGCL_NUM_THREADS / hardware) pool after each test
// so thread-count overrides never leak across tests.
class ParallelForTest : public ::testing::Test {
 protected:
  ~ParallelForTest() override { SetParallelThreads(0); }
};
using ThreadPoolTest = ParallelForTest;

TEST(ParseThreadCountTest, AcceptsPositiveIntegers) {
  ASSERT_TRUE(ParseThreadCount("1").ok());
  EXPECT_EQ(*ParseThreadCount("1"), 1);
  EXPECT_EQ(*ParseThreadCount("64"), 64);
}

TEST(ParseThreadCountTest, RejectsNonNumeric) {
  EXPECT_FALSE(ParseThreadCount("").ok());
  EXPECT_FALSE(ParseThreadCount("abc").ok());
  EXPECT_FALSE(ParseThreadCount("4abc").ok());
  EXPECT_FALSE(ParseThreadCount("4.5").ok());
}

TEST(ParseThreadCountTest, RejectsZeroAndNegative) {
  EXPECT_FALSE(ParseThreadCount("0").ok());
  const auto negative = ParseThreadCount("-2");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(negative.status().message().find("positive"), std::string::npos);
}

TEST(ParseThreadCountTest, RejectsOverflow) {
  // Larger than both int and long.
  EXPECT_FALSE(ParseThreadCount("99999999999999999999999").ok());
  EXPECT_FALSE(ParseThreadCount("2147483648").ok());  // INT_MAX + 1
}

TEST_F(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    // NOLINTNEXTLINE(sgcl-R1): ThreadPool::Submit returns void
    pool.Submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(done.load(), 100);
}

TEST_F(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  // NOLINTNEXTLINE(sgcl-R1): ThreadPool::Submit returns void
  pool.Submit([&ran] { ran.store(true); });
  while (!ran.load()) std::this_thread::yield();
}

TEST_F(ParallelForTest, CoversRangeExactlyOnce) {
  SetParallelThreads(4);
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelForTest, EmptyRangeDoesNotInvokeBody) {
  SetParallelThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelForTest, GrainEqualToRangeRunsInlineOnCallingThread) {
  SetParallelThreads(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  std::thread::id body_thread;
  ParallelFor(0, 64, 64, [&](int64_t lo, int64_t hi) {
    ++calls;
    body_thread = std::this_thread::get_id();
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 64);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(body_thread, caller);
}

TEST_F(ParallelForTest, SingleThreadPoolRunsInline) {
  SetParallelThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1000);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelForTest, ExceptionsPropagateToCaller) {
  SetParallelThreads(4);
  EXPECT_THROW(ParallelFor(0, 1000, 1,
                           [](int64_t, int64_t) {
                             throw std::runtime_error("chunk failed");
                           }),
               std::runtime_error);
  // The pool stays usable after a throwing parallel section.
  std::vector<int> hits(100, 0);
  ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST_F(ParallelForTest, ExceptionFromSingleChunkPropagates) {
  SetParallelThreads(4);
  EXPECT_THROW(ParallelFor(0, 8, 1,
                           [](int64_t lo, int64_t) {
                             if (lo == 0) {
                               throw std::runtime_error("first chunk");
                             }
                           }),
               std::runtime_error);
}

TEST_F(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  SetParallelThreads(4);
  std::vector<int> hits(64 * 64, 0);
  ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ParallelFor(0, 64, 1, [&, i](int64_t jlo, int64_t jhi) {
        for (int64_t j = jlo; j < jhi; ++j) ++hits[i * 64 + j];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// Row-partitioned reductions must not depend on the worker count: each
// chunk owns disjoint output rows and accumulates in ascending index
// order within a row.
TEST_F(ParallelForTest, RowPartitionedResultIndependentOfThreadCount) {
  const int64_t rows = 37, cols = 101;
  std::vector<float> input(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = 0.001f * static_cast<float>((i * 2654435761u) % 1000);
  }
  auto run = [&](int threads) {
    SetParallelThreads(threads);
    std::vector<float> out(static_cast<size_t>(rows), 0.0f);
    ParallelFor(0, rows, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        float acc = 0.0f;
        for (int64_t c = 0; c < cols; ++c) acc += input[r * cols + c];
        out[r] = acc;
      }
    });
    return out;
  };
  const std::vector<float> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(7));
}

}  // namespace
}  // namespace sgcl
