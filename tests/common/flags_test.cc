#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sgcl {
namespace {

// Builds a mutable argv from string literals; index 0 is the program name
// and index 1 the subcommand, mirroring CLI usage (Parse starts at 2).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), {"prog", "cmd"});
    for (std::string& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagSetTest, ParsesTypedValues) {
  std::string name = "default";
  int epochs = 20;
  int64_t big = 0;
  uint64_t seed = 1;
  double lr = 0.1;
  bool verbose = false;
  FlagSet flags("test");
  flags.String("name", &name, "");
  flags.Int("epochs", &epochs, "");
  flags.Int64("big", &big, "");
  flags.Uint64("seed", &seed, "");
  flags.Double("lr", &lr, "");
  flags.Bool("verbose", &verbose, "");
  Argv args({"--name=x", "--epochs=7", "--big=-5000000000", "--seed=42",
             "--lr=2.5e-3", "--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv(), 2).ok());
  EXPECT_EQ(name, "x");
  EXPECT_EQ(epochs, 7);
  EXPECT_EQ(big, -5000000000LL);
  EXPECT_EQ(seed, 42u);
  EXPECT_DOUBLE_EQ(lr, 2.5e-3);
  EXPECT_TRUE(verbose);
  EXPECT_TRUE(flags.IsSet("epochs"));
}

TEST(FlagSetTest, KeepsDefaultsWhenUnset) {
  int epochs = 20;
  FlagSet flags("test");
  flags.Int("epochs", &epochs, "");
  Argv args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv(), 2).ok());
  EXPECT_EQ(epochs, 20);
  EXPECT_FALSE(flags.IsSet("epochs"));
}

TEST(FlagSetTest, RejectsMalformedNumbers) {
  int epochs = 20;
  FlagSet flags("test");
  flags.Int("epochs", &epochs, "");
  for (const char* bad : {"--epochs=abc", "--epochs=", "--epochs=3x",
                          "--epochs=1e3", "--epochs=99999999999999"}) {
    Argv args({bad});
    Status st = flags.Parse(args.argc(), args.argv(), 2);
    EXPECT_FALSE(st.ok()) << bad;
  }
}

TEST(FlagSetTest, RejectsUnknownFlagsAndPositionals) {
  int epochs = 20;
  FlagSet flags("test");
  flags.Int("epochs", &epochs, "");
  {
    Argv args({"--nope=1"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv(), 2).ok());
  }
  {
    Argv args({"stray"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv(), 2).ok());
  }
  {
    // Bare --epochs (no value) is only legal for bools.
    Argv args({"--epochs"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv(), 2).ok());
  }
}

TEST(FlagSetTest, RequiredFlagMustBeSet) {
  std::string data;
  FlagSet flags("test");
  flags.String("data", &data, "", /*required=*/true);
  Argv empty({});
  EXPECT_FALSE(flags.Parse(empty.argc(), empty.argv(), 2).ok());
  FlagSet flags2("test");
  flags2.String("data", &data, "", /*required=*/true);
  Argv args({"--data=ds.bin"});
  EXPECT_TRUE(flags2.Parse(args.argc(), args.argv(), 2).ok());
  EXPECT_EQ(data, "ds.bin");
}

TEST(FlagSetTest, HelpShortCircuitsRequiredChecks) {
  std::string data;
  FlagSet flags("test");
  flags.String("data", &data, "dataset path", /*required=*/true);
  Argv args({"--help"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv(), 2).ok());
  EXPECT_TRUE(flags.help_requested());
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--data"), std::string::npos);
  EXPECT_NE(help.find("dataset path"), std::string::npos);
}

TEST(FlagSetTest, BoolForms) {
  bool flag = false;
  FlagSet flags("test");
  flags.Bool("flag", &flag, "");
  {
    Argv args({"--flag=true"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv(), 2).ok());
    EXPECT_TRUE(flag);
  }
  {
    flag = true;
    Argv args({"--flag=false"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv(), 2).ok());
    EXPECT_FALSE(flag);
  }
  {
    Argv args({"--flag=maybe"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv(), 2).ok());
  }
}

}  // namespace
}  // namespace sgcl
