// The annotation macros must be zero-cost: under any compiler that is
// not Clang they expand to nothing at all (asserted via stringizing),
// and an annotated class compiles and behaves identically either way.
#include "common/thread_annotations.h"

#include <mutex>
#include <string>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

#define SGCL_TA_TEST_STR_IMPL(x) #x
#define SGCL_TA_TEST_STR(x) SGCL_TA_TEST_STR_IMPL(x)

TEST(ThreadAnnotationsTest, ExpandToNothingOutsideClang) {
#if defined(__clang__)
  // Under Clang the macros must mention the underlying attribute so the
  // -Wthread-safety CI job actually sees them.
  EXPECT_NE(std::string(SGCL_TA_TEST_STR(SGCL_GUARDED_BY(mu)))
                .find("guarded_by"),
            std::string::npos);
  EXPECT_NE(std::string(SGCL_TA_TEST_STR(SGCL_REQUIRES(mu)))
                .find("requires_capability"),
            std::string::npos);
#else
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_GUARDED_BY(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_PT_GUARDED_BY(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_REQUIRES(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_REQUIRES_SHARED(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_ACQUIRE(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_RELEASE(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_TRY_ACQUIRE(true, mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_EXCLUDES(mu)), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_CAPABILITY("mutex")), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_SCOPED_CAPABILITY), "");
  EXPECT_STREQ(SGCL_TA_TEST_STR(SGCL_NO_THREAD_SAFETY_ANALYSIS), "");
#endif
}

// An annotated structure in the canonical recipe shape must compile and
// run under every compiler (the annotations are declarations only).
class AnnotatedBoard {
 public:
  void Publish(int v) SGCL_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }
  int ReadLocked() const SGCL_REQUIRES(mu_) { return value_; }
  int Read() const SGCL_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    return ReadLocked();
  }

 private:
  mutable std::mutex mu_;
  int value_ SGCL_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedClassBehavesNormally) {
  AnnotatedBoard board;
  EXPECT_EQ(board.Read(), 0);
  board.Publish(42);
  EXPECT_EQ(board.Read(), 42);
}

}  // namespace
}  // namespace sgcl
