#include "common/fault.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/io.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

std::string TmpPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool Exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(FaultInjectorTest, DisarmedByDefault) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.Check("io/write").has_value());
  // Disarmed checks are not even counted (the fast path must do nothing).
  EXPECT_EQ(faults.hits("io/write"), 0);
  EXPECT_TRUE(faults.SeenPoints().empty());
}

TEST(FaultInjectorTest, NthHitFiresExactlyOnce) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  faults.Arm("io/write", FaultKind::kError, /*nth=*/2);
  EXPECT_TRUE(faults.enabled());
  EXPECT_FALSE(faults.Check("io/write").has_value());
  auto fault = faults.Check("io/write");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(*fault, FaultKind::kError);
  EXPECT_FALSE(faults.Check("io/write").has_value());
  EXPECT_EQ(faults.hits("io/write"), 3);
}

TEST(FaultInjectorTest, PointsAreIndependent) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  faults.Arm("io/fsync", FaultKind::kCrash);
  EXPECT_FALSE(faults.Check("io/write").has_value());
  auto fault = faults.Check("io/fsync");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(*fault, FaultKind::kCrash);
  const std::vector<std::string> seen = faults.SeenPoints();
  EXPECT_EQ(seen, (std::vector<std::string>{"io/fsync", "io/write"}));
}

TEST(FaultInjectorTest, MultipleArmsOnOnePoint) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  faults.Arm("p", FaultKind::kError, 1);
  faults.Arm("p", FaultKind::kShortWrite, 3);
  EXPECT_EQ(faults.Check("p"), FaultKind::kError);
  EXPECT_FALSE(faults.Check("p").has_value());
  EXPECT_EQ(faults.Check("p"), FaultKind::kShortWrite);
  EXPECT_FALSE(faults.Check("p").has_value());
}

TEST(FaultInjectorTest, ResetDisarms) {
  FaultInjector& faults = FaultInjector::Global();
  faults.Arm("p", FaultKind::kError, 1);
  faults.Reset();
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.Check("p").has_value());
  EXPECT_EQ(faults.hits("p"), 0);
}

TEST(FaultInjectorTest, ArmRandomIsDeterministicPerSeed) {
  FaultInjector& faults = FaultInjector::Global();
  auto run_schedule = [&](uint64_t seed) {
    std::vector<bool> fired;
    faults.Reset();
    faults.ArmRandom(0.5, seed, FaultKind::kError);
    for (int i = 0; i < 64; ++i) {
      fired.push_back(faults.Check("sweep/point").has_value());
    }
    faults.Reset();
    return fired;
  };
  const auto first = run_schedule(7);
  const auto second = run_schedule(7);
  EXPECT_EQ(first, second);
  // A fair coin over 64 draws fires at least once for any sane seed.
  EXPECT_NE(first, std::vector<bool>(64, false));
  EXPECT_NE(first, run_schedule(8));
}

TEST(FaultInjectorTest, SimulatedCrashSentinelRoundTrips) {
  const Status crash = SimulatedCrash("io/rename");
  EXPECT_FALSE(crash.ok());
  EXPECT_TRUE(IsSimulatedCrash(crash));
  EXPECT_NE(crash.message().find("io/rename"), std::string::npos);
  EXPECT_FALSE(IsSimulatedCrash(Status::OK()));
  EXPECT_FALSE(IsSimulatedCrash(Status::Internal("disk on fire")));
}

TEST(FaultInjectorTest, FaultKindNames) {
  EXPECT_STREQ(FaultKindToString(FaultKind::kError), "error");
  EXPECT_STREQ(FaultKindToString(FaultKind::kShortWrite), "short-write");
  EXPECT_STREQ(FaultKindToString(FaultKind::kCrash), "crash");
}

TEST(AtomicWriteFileTest, WritesAndOverwrites) {
  ScopedFaultInjection scoped;
  const std::string path = TmpPath("atomic_write_basic.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  EXPECT_EQ(Slurp(path), "first contents");
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(Slurp(path), "second");
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, InjectedWriteErrorPreservesOldFile) {
  ScopedFaultInjection scoped;
  const std::string path = TmpPath("atomic_write_eio.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  FaultInjector::Global().Arm("io/write", FaultKind::kError);
  const Status st = AtomicWriteFile(path, "new");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(IsSimulatedCrash(st));
  EXPECT_EQ(Slurp(path), "old");
  EXPECT_FALSE(Exists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, ShortWriteLeavesTornTempOnly) {
  ScopedFaultInjection scoped;
  const std::string path = TmpPath("atomic_write_torn.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  FaultInjector::Global().Arm("io/write", FaultKind::kShortWrite);
  const Status st = AtomicWriteFile(path, "0123456789");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(Slurp(path), "old");
  // The torn prefix is visible under the temp name, as after a real
  // torn write — and never under the final name.
  EXPECT_EQ(Slurp(path + ".tmp"), "01234");
}

TEST(AtomicWriteFileTest, CrashBeforeRenamePreservesOldFile) {
  for (const char* point : {"io/open_tmp", "io/write", "io/fsync"}) {
    ScopedFaultInjection scoped;
    const std::string path = TmpPath("atomic_write_crash.bin");
    ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
    FaultInjector::Global().Arm(point, FaultKind::kCrash);
    const Status st = AtomicWriteFile(path, "new");
    EXPECT_TRUE(IsSimulatedCrash(st)) << point;
    EXPECT_EQ(Slurp(path), "old") << point;
  }
}

TEST(AtomicWriteFileTest, CrashAtRenameLeavesOldOrNewNeverTorn) {
  ScopedFaultInjection scoped;
  const std::string path = TmpPath("atomic_write_crash_rename.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  FaultInjector::Global().Arm("io/rename", FaultKind::kCrash);
  const Status st = AtomicWriteFile(path, "new");
  EXPECT_TRUE(IsSimulatedCrash(st));
  // Died just before rename: the published file is still the old one,
  // the complete new bytes sit under the temp name.
  EXPECT_EQ(Slurp(path), "old");
  EXPECT_EQ(Slurp(path + ".tmp"), "new");
}

TEST(AtomicWriteFileTest, CrashAfterRenameKeepsNewFile) {
  ScopedFaultInjection scoped;
  const std::string path = TmpPath("atomic_write_crash_fsync_dir.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  FaultInjector::Global().Arm("io/fsync_dir", FaultKind::kCrash);
  const Status st = AtomicWriteFile(path, "new");
  EXPECT_TRUE(IsSimulatedCrash(st));
  EXPECT_EQ(Slurp(path), "new");
}

TEST(AtomicWriteFileTest, InjectedRenameAndFsyncErrors) {
  for (const char* point : {"io/open_tmp", "io/fsync", "io/rename"}) {
    ScopedFaultInjection scoped;
    const std::string path = TmpPath("atomic_write_err.bin");
    ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
    FaultInjector::Global().Arm(point, FaultKind::kError);
    const Status st = AtomicWriteFile(path, "new");
    EXPECT_FALSE(st.ok()) << point;
    EXPECT_EQ(Slurp(path), "old") << point;
    EXPECT_FALSE(Exists(path + ".tmp")) << point;
  }
}

}  // namespace
}  // namespace sgcl
