#include "common/logging.h"

#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroStreamsWithoutCrashing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  SGCL_LOG(INFO) << "value " << 42 << " and " << 3.14;
  SGCL_LOG(WARNING) << "warn";
  SGCL_LOG(DEBUG) << "debug";
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a tiny amount of work.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += i * 0.5;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace sgcl
