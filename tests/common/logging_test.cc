#include "common/logging.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

// Captures every record handed to it, for asserting on sink plumbing
// without parsing files.
class CapturingSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(record);
  }
  std::vector<LogRecord> records() {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  std::mutex mu_;
  std::vector<LogRecord> records_;
};

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroStreamsWithoutCrashing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  SGCL_LOG(INFO) << "value " << 42 << " and " << 3.14;
  SGCL_LOG(WARNING) << "warn";
  SGCL_LOG(DEBUG) << "debug";
  SetLogLevel(original);
}

TEST(LoggingTest, RunIdRoundTrips) {
  SetRunId("run-logging-test");
  EXPECT_EQ(GetRunId(), "run-logging-test");
  SetRunId("");
  EXPECT_EQ(GetRunId(), "");
}

TEST(LoggingTest, SinksReceiveStructuredRecords) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep stderr quiet
  SetRunId("run-sink-test");
  CapturingSink sink;
  AddLogSink(&sink);
  SGCL_LOG(ERROR) << "boom " << 7;
  RemoveLogSink(&sink);
  SGCL_LOG(ERROR) << "after detach";  // must not reach the sink
  SetRunId("");
  SetLogLevel(original);

  const std::vector<LogRecord> records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  EXPECT_EQ(r.level, LogLevel::kError);
  EXPECT_EQ(r.message, "boom 7");
  EXPECT_EQ(r.run_id, "run-sink-test");
  EXPECT_GE(r.tid, 0);
  EXPECT_GE(r.mono_us, 0);
  EXPECT_GT(r.wall_ms, 0);
  EXPECT_NE(std::string(r.file).find("logging_test"), std::string::npos);
  EXPECT_GT(r.line, 0);
}

TEST(LoggingTest, SinksOnlySeeRecordsPastThreshold) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CapturingSink sink;
  AddLogSink(&sink);
  SGCL_LOG(DEBUG) << "filtered";
  SGCL_LOG(WARNING) << "also filtered";
  RemoveLogSink(&sink);
  SetLogLevel(original);
  EXPECT_TRUE(sink.records().empty());
}

TEST(JsonlLogSinkTest, OpenFailsFastOnUnwritablePath) {
  auto sink = JsonlLogSink::Open("/nonexistent-dir/log.jsonl");
  ASSERT_FALSE(sink.ok());
  EXPECT_EQ(sink.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sink.status().ToString().find("/nonexistent-dir/log.jsonl"),
            std::string::npos);
}

TEST(JsonlLogSinkTest, WritesOneJsonObjectPerLineAndAppends) {
  const std::string path = ::testing::TempDir() + "/sgcl_log_test.jsonl";
  std::remove(path.c_str());
  {
    auto sink = JsonlLogSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    LogRecord record;
    record.level = LogLevel::kInfo;
    record.file = "trainer.cc";
    record.line = 42;
    record.tid = 1;
    record.mono_us = 1500;
    record.wall_ms = 1700000000123;
    record.run_id = "run-abc";
    record.message = "epoch 1 loss 0.5 \"quoted\"";
    (*sink)->Write(record);
  }
  {
    // Re-opening appends; records from two runs share the file.
    auto sink = JsonlLogSink::Open(path);
    ASSERT_TRUE(sink.ok());
    LogRecord record;
    record.run_id = "run-def";
    record.message = "second run";
    (*sink)->Write(record);
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"run_id\":\"run-abc\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_mono_us\":1500"), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_wall_ms\":1700000000123"), std::string::npos);
  EXPECT_NE(lines[0].find("\"tid\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"src\":\"trainer.cc:42\""), std::string::npos);
  EXPECT_NE(lines[0].find("loss 0.5 \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"run_id\":\"run-def\""), std::string::npos);
  EXPECT_EQ(lines[0].front(), '{');
  EXPECT_EQ(lines[0].back(), '}');
  std::remove(path.c_str());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a tiny amount of work.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + i * 0.5;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace sgcl
