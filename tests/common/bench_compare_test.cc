#include "common/bench_compare.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace sgcl {
namespace {

// Writes a minimal google-benchmark JSON file with the given entries.
// Each entry line must already be a JSON object.
std::string WriteBenchFile(const std::string& path,
                           const std::vector<std::string>& entries) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\"context\":{\"num_cpus\":1},\"benchmarks\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ',';
    out << entries[i];
  }
  out << "]}";
  return path;
}

std::string Iteration(const std::string& name, double real_ms) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"run_name\":\"%s\","
                "\"run_type\":\"iteration\",\"real_time\":%g,"
                "\"cpu_time\":%g,\"time_unit\":\"ms\"}",
                name.c_str(), name.c_str(), real_ms, real_ms);
  return buf;
}

std::string Aggregate(const std::string& run_name, const std::string& kind,
                      double real_ms) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s_%s\",\"run_name\":\"%s\","
                "\"run_type\":\"aggregate\",\"aggregate_name\":\"%s\","
                "\"real_time\":%g,\"cpu_time\":%g,\"time_unit\":\"ms\"}",
                run_name.c_str(), kind.c_str(), run_name.c_str(),
                kind.c_str(), real_ms, real_ms);
  return buf;
}

class BenchCompareTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string Tmp(const std::string& name) {
    cleanup_.push_back(name);
    return name;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(BenchCompareTest, LoadPrefersMedianAggregate) {
  const std::string path = WriteBenchFile(
      Tmp("bench_agg.json"),
      {Aggregate("BM_X/16", "mean", 1.1), Aggregate("BM_X/16", "median", 1.0),
       Aggregate("BM_X/16", "stddev", 0.1), Iteration("BM_Y/8", 2.0)});
  auto entries = LoadBenchmarkJson(path);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  // ms normalized to ns.
  EXPECT_EQ((*entries)[0].run_name, "BM_X/16");
  EXPECT_DOUBLE_EQ((*entries)[0].real_ns, 1.0e6);
  EXPECT_EQ((*entries)[1].run_name, "BM_Y/8");
  EXPECT_DOUBLE_EQ((*entries)[1].real_ns, 2.0e6);
}

TEST_F(BenchCompareTest, LoadRejectsNonBenchmarkJson) {
  const std::string path = Tmp("bench_bad.json");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"not_benchmarks\": []}";
  }
  EXPECT_EQ(LoadBenchmarkJson(path).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadBenchmarkJson("missing_bench.json").status().code(),
            StatusCode::kNotFound);
}

// Malformed and empty inputs must surface as InvalidArgument with a
// message naming the file — never a crash or a silent empty diff.
TEST_F(BenchCompareTest, LoadRejectsEmptyAndMalformedFiles) {
  const std::string empty = Tmp("bench_empty.json");
  { std::ofstream out(empty, std::ios::trunc); }
  const auto empty_result = LoadBenchmarkJson(empty);
  ASSERT_FALSE(empty_result.ok());
  EXPECT_EQ(empty_result.status().code(), StatusCode::kInvalidArgument);

  const std::string garbage = Tmp("bench_garbage.json");
  {
    std::ofstream out(garbage, std::ios::trunc);
    out << "this is not json {]";
  }
  const auto garbage_result = LoadBenchmarkJson(garbage);
  ASSERT_FALSE(garbage_result.ok());
  EXPECT_EQ(garbage_result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BenchCompareTest, LoadRejectsEmptyBenchmarksArray) {
  const std::string path = WriteBenchFile(Tmp("bench_noentries.json"), {});
  const auto result = LoadBenchmarkJson(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("no comparable benchmark entries"),
            std::string::npos);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
}

TEST_F(BenchCompareTest, IdenticalInputsShowNoRegression) {
  const std::string path = WriteBenchFile(
      Tmp("bench_same.json"),
      {Iteration("BM_A", 1.0), Iteration("BM_B", 5.0)});
  auto entries = LoadBenchmarkJson(path);
  ASSERT_TRUE(entries.ok());
  const BenchComparison cmp = CompareBenchmarks(*entries, *entries);
  ASSERT_EQ(cmp.matched.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.matched[0].pct, 0.0);
  EXPECT_DOUBLE_EQ(cmp.matched[1].pct, 0.0);
  EXPECT_TRUE(cmp.only_base.empty());
  EXPECT_TRUE(cmp.only_current.empty());
  EXPECT_EQ(CountRegressions(cmp, 10.0), 0);
  // A zero threshold flags the 0% delta (>= semantics) — the gate's
  // documented threshold is strictly positive.
  EXPECT_EQ(CountRegressions(cmp, 0.5), 0);
}

TEST_F(BenchCompareTest, InjectedRegressionIsFlagged) {
  const std::string base_path = WriteBenchFile(
      Tmp("bench_base.json"),
      {Iteration("BM_A", 1.0), Iteration("BM_B", 5.0)});
  const std::string cur_path = WriteBenchFile(
      Tmp("bench_cur.json"),
      {Iteration("BM_A", 1.3), Iteration("BM_B", 4.0)});
  auto base = LoadBenchmarkJson(base_path);
  auto current = LoadBenchmarkJson(cur_path);
  ASSERT_TRUE(base.ok() && current.ok());
  const BenchComparison cmp = CompareBenchmarks(*base, *current);
  ASSERT_EQ(cmp.matched.size(), 2u);
  EXPECT_NEAR(cmp.matched[0].pct, 30.0, 1e-9);   // BM_A 30% slower
  EXPECT_NEAR(cmp.matched[1].pct, -20.0, 1e-9);  // BM_B 20% faster
  EXPECT_EQ(CountRegressions(cmp, 10.0), 1);
  EXPECT_EQ(CountRegressions(cmp, 50.0), 0);
  const std::string report = FormatComparison(cmp, 10.0);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
}

TEST_F(BenchCompareTest, UnmatchedNamesAreReportedNotCompared) {
  const std::string base_path =
      WriteBenchFile(Tmp("bench_b2.json"),
                     {Iteration("BM_A", 1.0), Iteration("BM_Old", 2.0)});
  const std::string cur_path =
      WriteBenchFile(Tmp("bench_c2.json"),
                     {Iteration("BM_A", 1.0), Iteration("BM_New", 2.0)});
  auto base = LoadBenchmarkJson(base_path);
  auto current = LoadBenchmarkJson(cur_path);
  ASSERT_TRUE(base.ok() && current.ok());
  const BenchComparison cmp = CompareBenchmarks(*base, *current);
  ASSERT_EQ(cmp.matched.size(), 1u);
  ASSERT_EQ(cmp.only_base.size(), 1u);
  EXPECT_EQ(cmp.only_base[0], "BM_Old");
  ASSERT_EQ(cmp.only_current.size(), 1u);
  EXPECT_EQ(cmp.only_current[0], "BM_New");
}

TEST_F(BenchCompareTest, LoadsCommittedBaseline) {
  // The repo's committed baseline must stay loadable — it is the CI
  // gate's input. Located relative to the test binary's cwd (build/tests)
  // and the repo root for manual runs.
  for (const char* candidate :
       {"../../BENCH_lipschitz.json", "BENCH_lipschitz.json"}) {
    std::ifstream probe(candidate);
    if (!probe) continue;
    auto entries = LoadBenchmarkJson(candidate);
    ASSERT_TRUE(entries.ok()) << entries.status().ToString();
    EXPECT_GT(entries->size(), 0u);
    const BenchComparison cmp = CompareBenchmarks(*entries, *entries);
    EXPECT_EQ(CountRegressions(cmp, 10.0), 0);
    return;
  }
  GTEST_SKIP() << "BENCH_lipschitz.json not reachable from cwd";
}

}  // namespace
}  // namespace sgcl
