#include "common/crc32.h"

#include <string>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t part1 = Crc32(data.data(), split);
    const uint32_t chained =
        Crc32(data.data() + split, data.size() - split, part1);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsEverySingleBitFlip) {
  std::string data = "checkpoint payload bytes";
  const uint32_t original = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(data), original)
          << "undetected flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(Crc32Test, DistinguishesPermutedContent) {
  EXPECT_NE(Crc32("ab"), Crc32("ba"));
  EXPECT_NE(Crc32(std::string("\0a", 2)), Crc32(std::string("a\0", 2)));
}

}  // namespace
}  // namespace sgcl
