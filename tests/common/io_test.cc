#include "common/io.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryIoTest, RoundTripsAllTypes) {
  const std::string path = TempPath("io_roundtrip.bin");
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteU32(0xdeadbeef);
    w.WriteI64(-42);
    w.WriteF32(3.25f);
    w.WriteString("hello");
    w.WriteFloatVector({1.0f, -2.0f, 0.5f});
    w.WriteI32Vector({7, -8});
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_FLOAT_EQ(r.ReadF32(), 3.25f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(r.ReadI32Vector(), (std::vector<int32_t>{7, -8}));
  EXPECT_TRUE(r.Finish().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileNotOk) {
  BinaryReader r("/nonexistent/dir/file.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.Finish().ok());
}

TEST(BinaryIoTest, TruncationDetected) {
  const std::string path = TempPath("io_trunc.bin");
  {
    BinaryWriter w(path);
    w.WriteU32(1);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 1u);
  (void)r.ReadI64();  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.eof());
  EXPECT_FALSE(r.Finish().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TrailingBytesDetected) {
  const std::string path = TempPath("io_trail.bin");
  {
    BinaryWriter w(path);
    w.WriteU32(1);
    w.WriteU32(2);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 1u);
  EXPECT_FALSE(r.Finish().ok());  // one u32 unread
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CorruptVectorLengthRejected) {
  const std::string path = TempPath("io_badlen.bin");
  {
    BinaryWriter w(path);
    w.WriteI64(-5);  // negative length where a vector is expected
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  (void)r.ReadFloatVector();
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgcl
