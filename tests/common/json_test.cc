#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace sgcl {
namespace {

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " for " << text;
  return *parsed;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_DOUBLE_EQ(MustParse("42").AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-1.5e3").AsDouble(), -1500.0);
  EXPECT_DOUBLE_EQ(MustParse("7.7663388095264452e-01").AsDouble(),
                   0.77663388095264452);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, ParsesNestedContainers) {
  const JsonValue v = MustParse(
      "{\"benchmarks\":[{\"name\":\"BM_X/16\",\"real_time\":1.25,"
      "\"time_unit\":\"ms\"},{\"name\":\"BM_Y\",\"real_time\":3}],"
      "\"context\":{\"num_cpus\":1}}");
  const JsonValue* benchmarks = v.Find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  ASSERT_EQ(benchmarks->AsArray().size(), 2u);
  const JsonValue& first = benchmarks->AsArray()[0];
  EXPECT_EQ(first.GetString("name"), "BM_X/16");
  EXPECT_DOUBLE_EQ(first.GetDouble("real_time"), 1.25);
  EXPECT_EQ(first.GetString("time_unit", "ns"), "ms");
  // Typed fallbacks for absent members.
  EXPECT_EQ(first.GetString("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(first.GetDouble("missing", -1.0), -1.0);
  EXPECT_EQ(v.Find("nope"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(MustParse("\"a\\n\\t\\\"b\\\\c\\/\"").AsString(),
            "a\n\t\"b\\c/");
  // \u escapes decode to UTF-8, including surrogate pairs.
  EXPECT_EQ(MustParse("\"\\u0041\"").AsString(), "A");
  EXPECT_EQ(MustParse("\"\\u00e9\"").AsString(), "\xc3\xa9");
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").AsString(),
            "\xf0\x9f\x98\x80");  // U+1F600
  // A lone surrogate degrades to U+FFFD instead of failing the document.
  EXPECT_EQ(MustParse("\"\\ud800x\"").AsString(), "\xef\xbf\xbdx");
}

TEST(JsonTest, WhitespaceTolerant) {
  const JsonValue v = MustParse("  { \"a\" : [ 1 , 2 ] }\n");
  EXPECT_EQ(v.Find("a")->AsArray().size(), 2u);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing value
  EXPECT_FALSE(JsonValue::Parse("1.2.3").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\q\"").ok());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, ParseJsonFileRoundTrip) {
  const std::string path = "json_test_tmp.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"x\": 3.5}";
  }
  Result<JsonValue> parsed = ParseJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->GetDouble("x"), 3.5);
  std::remove(path.c_str());

  EXPECT_EQ(ParseJsonFile("definitely_missing.json").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sgcl
