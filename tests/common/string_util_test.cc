#include "common/string_util.h"

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(StrFormatTest, FormatsNumbers) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StrFormatTest, EmptyAndLongStrings) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()), big);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StrSplitTest, RoundTripsWithJoin) {
  const std::string s = "alpha|beta|gamma";
  auto parts = StrSplit(s, '|');
  EXPECT_EQ(StrJoin(parts, "|"), s);
}

}  // namespace
}  // namespace sgcl
