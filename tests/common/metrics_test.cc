#include "common/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"

namespace sgcl {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(HistogramTest, BucketEdges) {
  // Bucket i counts v <= bounds[i]; the overflow bucket counts the rest.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.0);    // bucket 0
  h.Observe(1.0);    // bucket 0 (inclusive upper edge)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.9);   // bucket 2
  h.Observe(100.0);  // bucket 2
  h.Observe(100.5);  // overflow
  h.Observe(1e12);   // overflow
  std::vector<int64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[3], 2);
  EXPECT_EQ(h.count(), 8);
}

TEST(HistogramTest, SumAccumulates) {
  Histogram h({10.0});
  h.Observe(1.0);
  h.Observe(2.5);
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.BucketCounts()[0], 0);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x/count");
  Counter* b = registry.GetCounter("x/count");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(registry.Snapshot().counters.at("x/count"), 7);
  // Reset zeroes values but keeps registrations and cached pointers live.
  registry.Reset();
  EXPECT_EQ(a->value(), 0);
  a->Increment(3);
  EXPECT_EQ(registry.Snapshot().counters.at("x/count"), 3);
}

TEST(MetricsRegistryTest, HistogramFirstBoundsWin) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* b = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromParallelFor) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("par/count");
  Histogram* h = registry.GetHistogram("par/hist", {100.0, 1000.0});
  constexpr int64_t kN = 20000;
  ParallelFor(0, kN, /*grain=*/64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      c->Increment();
      h->Observe(static_cast<double>(i % 2000));
    }
  });
  EXPECT_EQ(c->value(), kN);
  EXPECT_EQ(h->count(), kN);
  int64_t total = 0;
  for (int64_t b : h->BucketCounts()) total += b;
  EXPECT_EQ(total, kN);
}

TEST(MetricsSnapshotTest, JsonRoundTripShape) {
  MetricsRegistry registry;
  registry.GetCounter("a/count")->Increment(5);
  registry.GetGauge("b/gauge")->Set(2.5);
  Histogram* h = registry.GetHistogram("c/hist", {1.0});
  h->Observe(0.5);
  h->Observe(7.0);
  const std::string json = registry.Snapshot().ToJson();
  // Deterministic name-ordered serialization, parsable structure.
  EXPECT_EQ(json,
            "{\"counters\":{\"a/count\":5},"
            "\"gauges\":{\"b/gauge\":2.5},"
            "\"histograms\":{\"c/hist\":{\"bounds\":[1],"
            "\"buckets\":[1,1],\"count\":2,\"sum\":7.5}}}");
}

TEST(MetricsSnapshotTest, JsonEscapingAndNonFinite) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  // JSON has no NaN/Inf tokens; degrade to 0.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace sgcl
