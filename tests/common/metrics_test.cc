#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace sgcl {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(HistogramTest, BucketEdges) {
  // Bucket i counts v <= bounds[i]; the overflow bucket counts the rest.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.0);    // bucket 0
  h.Observe(1.0);    // bucket 0 (inclusive upper edge)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.9);   // bucket 2
  h.Observe(100.0);  // bucket 2
  h.Observe(100.5);  // overflow
  h.Observe(1e12);   // overflow
  std::vector<int64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[3], 2);
  EXPECT_EQ(h.count(), 8);
}

TEST(HistogramTest, SumAccumulates) {
  Histogram h({10.0});
  h.Observe(1.0);
  h.Observe(2.5);
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.BucketCounts()[0], 0);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x/count");
  Counter* b = registry.GetCounter("x/count");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(registry.Snapshot().counters.at("x/count"), 7);
  // Reset zeroes values but keeps registrations and cached pointers live.
  registry.Reset();
  EXPECT_EQ(a->value(), 0);
  a->Increment(3);
  EXPECT_EQ(registry.Snapshot().counters.at("x/count"), 3);
}

TEST(MetricsRegistryTest, HistogramFirstBoundsWin) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* b = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromParallelFor) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("par/count");
  Histogram* h = registry.GetHistogram("par/hist", {100.0, 1000.0});
  constexpr int64_t kN = 20000;
  ParallelFor(0, kN, /*grain=*/64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      c->Increment();
      h->Observe(static_cast<double>(i % 2000));
    }
  });
  EXPECT_EQ(c->value(), kN);
  EXPECT_EQ(h->count(), kN);
  int64_t total = 0;
  for (int64_t b : h->BucketCounts()) total += b;
  EXPECT_EQ(total, kN);
}

TEST(MetricsSnapshotTest, JsonRoundTripShape) {
  MetricsRegistry registry;
  registry.GetCounter("a/count")->Increment(5);
  registry.GetGauge("b/gauge")->Set(2.5);
  Histogram* h = registry.GetHistogram("c/hist", {1.0});
  h->Observe(0.5);
  h->Observe(7.0);
  const std::string json = registry.Snapshot().ToJson();
  // Deterministic name-ordered serialization, parsable structure, with
  // precomputed quantile estimates per histogram.
  EXPECT_EQ(json,
            "{\"counters\":{\"a/count\":5},"
            "\"gauges\":{\"b/gauge\":2.5},"
            "\"histograms\":{\"c/hist\":{\"bounds\":[1],"
            "\"buckets\":[1,1],\"exemplars\":[],\"count\":2,\"sum\":7.5,"
            "\"p50\":1,\"p95\":1,\"p99\":1}}}");
}

TEST(HistogramExemplarTest, LastExemplarPerBucketWins) {
  Histogram h({10.0, 100.0});
  h.ObserveWithExemplar(5.0, 0xaaa);     // bucket 0
  h.ObserveWithExemplar(7.0, 0xbbb);     // bucket 0, overwrites
  h.ObserveWithExemplar(50.0, 0xccc);    // bucket 1
  h.ObserveWithExemplar(5000.0, 0xddd);  // overflow bucket
  h.Observe(6.0);  // plain Observe never touches exemplars
  const std::vector<Exemplar> ex = h.Exemplars();
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_EQ(ex[0].trace_id, 0xbbbu);
  EXPECT_DOUBLE_EQ(ex[0].value, 7.0);
  EXPECT_EQ(ex[1].trace_id, 0xcccu);
  EXPECT_EQ(ex[2].trace_id, 0xdddu);
  EXPECT_EQ(h.count(), 5);  // exemplar observes still count
}

TEST(HistogramExemplarTest, ZeroTraceIdLeavesNoExemplar) {
  // The serve path calls ObserveWithExemplar unconditionally; unsampled
  // requests pass trace_id 0 and must not clobber a real exemplar.
  Histogram h({10.0});
  h.ObserveWithExemplar(5.0, 0x123);
  h.ObserveWithExemplar(6.0, 0);
  EXPECT_EQ(h.Exemplars()[0].trace_id, 0x123u);
  EXPECT_EQ(h.count(), 2);
  h.Reset();
  EXPECT_EQ(h.Exemplars()[0].trace_id, 0u);
}

TEST(HistogramExemplarTest, ExemplarsSurfaceInJsonAndPrometheus) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_us", {10.0, 100.0});
  h->ObserveWithExemplar(42.0, 0xdeadbeef);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"exemplars\":[{\"bucket\":1,"
                      "\"trace_id\":\"00000000deadbeef\",\"value\":42}]"),
            std::string::npos);
  const std::string prom = snap.ToPrometheusText();
  // OpenMetrics-style exemplar suffix on the owning bucket line only.
  EXPECT_NE(prom.find("sgcl_lat_us_bucket{le=\"100\"} 1 "
                      "# {trace_id=\"00000000deadbeef\"} 42"),
            std::string::npos);
  EXPECT_NE(prom.find("sgcl_lat_us_bucket{le=\"10\"} 0\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, JsonEscapingAndNonFinite) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  // JSON has no NaN/Inf tokens; serialize as null — degrading to 0 would
  // make a diverged loss look healthy in --metrics-out.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(HistogramQuantileTest, UniformDistributionInterpolates) {
  // One observation per unit bucket: the quantile curve is the identity.
  Histogram h({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int k = 0; k < 10; ++k) h.Observe(k + 0.5);
  MetricsSnapshot::HistogramData data;
  data.bounds = h.bounds();
  data.buckets = h.BucketCounts();
  data.count = h.count();
  data.sum = h.sum();
  EXPECT_DOUBLE_EQ(data.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.95), 9.5);
  EXPECT_DOUBLE_EQ(data.Quantile(1.0), 10.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(data.Quantile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(data.Quantile(2.0), 10.0);
}

TEST(HistogramQuantileTest, WithinBucketLinearInterpolation) {
  // All 50 observations land in the single [0, 100] bucket; the estimate
  // interpolates linearly across it regardless of where they really sat.
  MetricsSnapshot::HistogramData data;
  data.bounds = {100.0};
  data.buckets = {50, 0};
  data.count = 50;
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.9), 90.0);
}

TEST(HistogramQuantileTest, EdgeCases) {
  MetricsSnapshot::HistogramData empty;
  empty.bounds = {1.0};
  empty.buckets = {0, 0};
  empty.count = 0;
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));

  // Every observation in the overflow bucket: no finite upper edge, so
  // the estimate degrades to the largest finite bound.
  MetricsSnapshot::HistogramData overflow;
  overflow.bounds = {1.0, 8.0};
  overflow.buckets = {0, 0, 4};
  overflow.count = 4;
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 8.0);
}

TEST(MetricsRegistryTest, ConcurrentWritersWithSnapshotReader) {
  // TSan-covered: N writer threads hammer one registry's counters,
  // gauges, and histograms while a reader loops Snapshot(). The final
  // snapshot must account for every write.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> snapshots_taken{0};
  std::thread reader([&] {
    int64_t last_count = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.Snapshot();
      const auto it = snap.counters.find("stress/count");
      if (it != snap.counters.end()) {
        // Counters are monotone across consecutive scrapes.
        EXPECT_GE(it->second, last_count);
        last_count = it->second;
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      Counter* c = registry.GetCounter("stress/count");
      Gauge* g = registry.GetGauge("stress/gauge");
      Histogram* h = registry.GetHistogram("stress/hist", {10.0, 100.0});
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c->Increment();
        g->Set(static_cast<double>(w * kOpsPerWriter + i));
        h->Observe(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("stress/count"), kWriters * kOpsPerWriter);
  EXPECT_EQ(snap.histograms.at("stress/hist").count,
            kWriters * kOpsPerWriter);
  EXPECT_GT(snapshots_taken.load(), 0);
}

TEST(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace sgcl
