#include "common/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace sgcl {
namespace {

std::string Get(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(PrometheusExportTest, SanitizesNamesAndFormatsSeries) {
  MetricsSnapshot snap;
  snap.counters["train/batches"] = 12;
  snap.gauges["train/last_epoch_loss"] = 0.5;
  MetricsSnapshot::HistogramData h;
  h.bounds = {10.0, 100.0};
  h.buckets = {3, 2, 1};  // overflow last
  h.count = 6;
  h.sum = 180.0;
  snap.histograms["parallel/queue_wait_us"] = h;

  const std::string text = snap.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE sgcl_train_batches counter\n"
                      "sgcl_train_batches 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sgcl_train_last_epoch_loss gauge\n"
                      "sgcl_train_last_epoch_loss 0.5\n"),
            std::string::npos);
  // Cumulative le buckets, +Inf bucket equals _count.
  EXPECT_NE(text.find("sgcl_parallel_queue_wait_us_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgcl_parallel_queue_wait_us_bucket{le=\"100\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgcl_parallel_queue_wait_us_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgcl_parallel_queue_wait_us_sum 180\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgcl_parallel_queue_wait_us_count 6\n"),
            std::string::npos);
  // No illegal characters survive sanitization.
  EXPECT_EQ(text.find('/'), std::string::npos);
  EXPECT_EQ(PrometheusMetricName("a/b-c.d"), "sgcl_a_b_c_d");
}

TEST(RunStatusBoardTest, TracksRunLifecycle) {
  RunStatusBoard board;
  EXPECT_NE(board.ToJson().find("\"state\":\"idle\""), std::string::npos);

  board.BeginRun("pretrain", 10);
  std::string json = board.ToJson();
  EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"pretrain\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":1"), std::string::npos);  // first underway
  EXPECT_NE(json.find("\"completed_epochs\":0"), std::string::npos);
  EXPECT_NE(json.find("\"last_loss\":null"), std::string::npos);

  board.RecordEpoch(0, 10, 0.75, 0.1, {{"encode", 0.05}});
  board.RecordEpoch(1, 10, 0.5, 0.1, {{"encode", 0.07}});
  json = board.ToJson();
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);  // third underway
  EXPECT_NE(json.find("\"completed_epochs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"last_loss\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"losses\":[0.75,0.5]"), std::string::npos);
  EXPECT_NE(json.find("\"encode\":0.12"), std::string::npos);

  board.EndRun(true);
  json = board.ToJson();
  EXPECT_NE(json.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":2"), std::string::npos);  // clamps to done
}

TEST(RunStatusBoardTest, ConcurrentWritersAndReaders) {
  RunStatusBoard board;
  board.BeginRun("stress", 1000);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const std::string json = board.ToJson();
      EXPECT_FALSE(json.empty());
    }
  });
  constexpr int kEpochs = 200;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int e = w * kEpochs; e < (w + 1) * kEpochs; ++e) {
        board.RecordEpoch(e, 1000, 0.1, 0.001, {{"encode", 0.001}});
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();
  const std::string json = board.ToJson();
  EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos);
}

TEST(TelemetryServerTest, EndpointsServeLiveState) {
  SetRunId("run-telemetry-test");
  MetricsRegistry::Global().GetCounter("telemetry_test/scrapes")->Reset();

  RunStatusBoard board;
  board.BeginRun("pretrain", 3);
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0, &board).ok());
  ASSERT_GT(server.port(), 0);

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"run_id\":\"run-telemetry-test\""),
            std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(health.find(kSgclVersion), std::string::npos);

  const std::string status = Get(server.port(), "/status");
  EXPECT_NE(status.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(status.find("\"total_epochs\":3"), std::string::npos);

  // Two consecutive scrapes observe a monotone counter.
  Counter* scrapes =
      MetricsRegistry::Global().GetCounter("telemetry_test/scrapes");
  scrapes->Increment(5);
  const std::string first = Get(server.port(), "/metrics");
  EXPECT_NE(first.find("sgcl_telemetry_test_scrapes 5"), std::string::npos);
  scrapes->Increment(2);
  const std::string second = Get(server.port(), "/metrics");
  EXPECT_NE(second.find("sgcl_telemetry_test_scrapes 7"), std::string::npos);

  // /trace serves a loadable chrome-trace envelope even when disabled.
  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  server.Stop();
  SetRunId("");
}

TEST(TelemetryServerTest, PrometheusTextHasNoDuplicateSeries) {
  // Registry-global metrics accumulated by other tests must sanitize to
  // unique Prometheus names (duplicate series break scrapers).
  MetricsRegistry::Global().GetCounter("dup_check/a")->Increment();
  MetricsRegistry::Global().GetGauge("dup_check/b")->Set(1.0);
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  std::set<std::string> series;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    EXPECT_TRUE(series.insert(name).second) << "duplicate series " << name;
  }
}

TEST(TelemetryServerTest, ConcurrentScrapesDuringMetricWrites) {
  RunStatusBoard board;
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0, &board).ok());
  Counter* c = MetricsRegistry::Global().GetCounter("telemetry_test/hammer");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) c->Increment();
  });
  for (int i = 0; i < 6; ++i) {
    const std::string body = Get(server.port(), "/metrics");
    EXPECT_NE(body.find("sgcl_telemetry_test_hammer"), std::string::npos);
  }
  stop.store(true);
  writer.join();
  server.Stop();
}

TEST(TelemetryServerTest, TraceEndpointsServeSampledTraces) {
  TraceRing::Global().SetSampleRate(1.0);
  TraceRing::Global().SetCapacity(8);
  TraceRing::Global().Clear();
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  ASSERT_TRUE(ctx.valid());
  {
    ScopedTraceContext install(ctx);
    TraceSpan root("test/request");
    { SGCL_TRACE_SPAN("test/forward"); }
  }
  const std::string id = FormatTraceId(ctx.trace_id);

  RunStatusBoard board;
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0, &board).ok());

  // Summary list, newest first, no spans without ?detail=1.
  const std::string list = Get(server.port(), "/v1/traces");
  EXPECT_NE(list.find("\"trace_id\":\"" + id + "\""), std::string::npos);
  EXPECT_NE(list.find("\"root\":\"test/request\""), std::string::npos);
  EXPECT_EQ(list.find("\"spans\":["), std::string::npos);

  const std::string detail = Get(server.port(), "/v1/traces?detail=1&limit=1");
  EXPECT_NE(detail.find("\"spans\":["), std::string::npos);
  EXPECT_NE(detail.find("test/forward"), std::string::npos);

  // A min-duration filter past any test span excludes everything.
  const std::string filtered =
      Get(server.port(), "/v1/traces?min_duration_us=999999999");
  EXPECT_NE(filtered.find("\"traces\":[]"), std::string::npos);

  // Per-trace span tree via the prefix route.
  const std::string tree = Get(server.port(), "/v1/traces/" + id);
  EXPECT_NE(tree.find("\"root\":{\"name\":\"test/request\""),
            std::string::npos);
  EXPECT_NE(tree.find("\"self_us\":"), std::string::npos);
  EXPECT_NE(tree.find("test/forward"), std::string::npos);

  // Unknown and malformed ids are structured 404s, not crashes.
  const std::string missing =
      Get(server.port(), "/v1/traces/00000000000000ab");
  EXPECT_NE(missing.find("unknown trace"), std::string::npos);
  const std::string malformed = Get(server.port(), "/v1/traces/not-hex");
  EXPECT_NE(malformed.find("unknown trace"), std::string::npos);

  server.Stop();
  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
}

TEST(GenerateRunIdTest, IdsAreUniqueAndPrefixed) {
  const std::string a = GenerateRunId();
  const std::string b = GenerateRunId();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("run-", 0), 0u);
}

}  // namespace
}  // namespace sgcl
