#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace sgcl {
namespace {

// Minimal blocking HTTP client: one request, reads until the server
// closes (Connection: close semantics). Returns the raw response text.
std::string Fetch(int port, const std::string& request_line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return "";
  }
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1");
}

// Body after the header separator (empty when malformed).
std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpServerTest, ServesRegisteredHandler) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "pong " + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(Body(response), "pong ");

  // Query strings are split off the path and passed through.
  EXPECT_EQ(Body(Get(server.port(), "/ping?q=1")), "pong q=1");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, UnknownPathIs404ListingEndpoints) {
  HttpServer server;
  server.Handle("/a", [](const HttpRequest&) { return HttpResponse{}; });
  server.Handle("/b", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(Body(response).find("/a /b"), std::string::npos);
}

TEST(HttpServerTest, RejectsNonGetMethods) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "POST /x HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST(HttpServerTest, HeadOmitsBody) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "payload";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "HEAD /x HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 7"), std::string::npos);
  EXPECT_EQ(Body(response), "");
}

TEST(HttpServerTest, MalformedRequestIs400) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "GARBAGE");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST(HttpServerTest, ConcurrentClientsAllServed) {
  HttpServer server;
  server.Handle("/n", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { responses[i] = Get(server.port(), "/n"); });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
  EXPECT_GE(server.requests_served(), static_cast<int64_t>(kClients));
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  EXPECT_FALSE(server.Start(0).ok());  // already running
  server.Stop();
  server.Stop();  // no-op
  // A stopped server can be started again (possibly on a new port).
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/x").find("200"), std::string::npos);
  server.Stop();
  (void)first_port;
}

TEST(HttpServerTest, StartFailsOnBusyPort) {
  HttpServer a;
  a.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(a.Start(0).ok());
  HttpServer b;
  b.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  const Status st = b.Start(a.port());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sgcl
