#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sgcl {
namespace {

// Minimal blocking HTTP client: one request, reads until the server
// closes (Connection: close semantics). Returns the raw response text.
std::string Fetch(int port, const std::string& request_line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return "";
  }
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1");
}

// Body after the header separator (empty when malformed).
std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpServerTest, ServesRegisteredHandler) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "pong " + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(Body(response), "pong ");

  // Query strings are split off the path and passed through.
  EXPECT_EQ(Body(Get(server.port(), "/ping?q=1")), "pong q=1");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, UnknownPathIs404ListingEndpoints) {
  HttpServer server;
  server.Handle("/a", [](const HttpRequest&) { return HttpResponse{}; });
  server.Handle("/b", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(Body(response).find("/a /b"), std::string::npos);
}

TEST(HttpServerTest, RejectsNonGetMethods) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "POST /x HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST(HttpServerTest, HeadOmitsBody) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "payload";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "HEAD /x HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 7"), std::string::npos);
  EXPECT_EQ(Body(response), "");
}

TEST(HttpServerTest, PrefixHandlerMatchesSubPaths) {
  HttpServer server;
  server.Handle("/v1/traces", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "list";
    return response;
  });
  server.HandlePrefix("/v1/traces/", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "trace:" + request.path;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  // Exact routes win over prefixes; the prefix catches everything under
  // it, query split still applies.
  EXPECT_EQ(Body(Get(server.port(), "/v1/traces")), "list");
  EXPECT_EQ(Body(Get(server.port(), "/v1/traces/abc123")),
            "trace:/v1/traces/abc123");
  EXPECT_EQ(Body(Get(server.port(), "/v1/traces/abc123?x=1")),
            "trace:/v1/traces/abc123");
  // Non-GET on a prefix route is 405, unmatched paths stay 404.
  const std::string post =
      Fetch(server.port(), "POST /v1/traces/abc123 HTTP/1.1");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  const std::string miss = Get(server.port(), "/v1/trace");
  EXPECT_NE(miss.find("HTTP/1.1 404"), std::string::npos);
}

TEST(HttpServerTest, LongestPrefixWins) {
  HttpServer server;
  server.HandlePrefix("/api/", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "short";
    return response;
  });
  server.HandlePrefix("/api/deep/", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "long";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(Body(Get(server.port(), "/api/x")), "short");
  EXPECT_EQ(Body(Get(server.port(), "/api/deep/x")), "long");
}

TEST(HttpServerTest, MalformedRequestIs400) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = Fetch(server.port(), "GARBAGE");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST(HttpServerTest, ConcurrentClientsAllServed) {
  HttpServer server;
  server.Handle("/n", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { responses[i] = Get(server.port(), "/n"); });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
  EXPECT_GE(server.requests_served(), static_cast<int64_t>(kClients));
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  EXPECT_FALSE(server.Start(0).ok());  // already running
  server.Stop();
  server.Stop();  // no-op
  // A stopped server can be started again (possibly on a new port).
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/x").find("200"), std::string::npos);
  server.Stop();
  (void)first_port;
}

// ---- keep-alive / POST options (the serving stack's configuration) ----

// Persistent connection helper: sends one framed request on an already
// connected socket and reads exactly one Content-Length framed response.
class KeepAliveClient {
 public:
  explicit KeepAliveClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = fd_ >= 0 &&
                 connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }
  ~KeepAliveClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& raw) {
    return connected_ &&
           send(fd_, raw.data(), raw.size(), 0) ==
               static_cast<ssize_t>(raw.size());
  }

  // One full response (headers + Content-Length body), or "" on EOF.
  std::string ReadResponse() {
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const size_t cl = buffer_.find("Content-Length: ");
        if (cl == std::string::npos || cl > header_end) return "";
        const size_t len = static_cast<size_t>(
            std::atoll(buffer_.c_str() + cl + std::strlen("Content-Length: ")));
        const size_t total = header_end + 4 + len;
        if (buffer_.size() >= total) {
          const std::string response = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return response;
        }
      }
      char buf[2048];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return "";
      buffer_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string FramedPost(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

HttpServerOptions ServingOptions() {
  HttpServerOptions options;
  options.num_threads = 2;
  options.keep_alive = true;
  options.idle_timeout_ms = 2000;
  options.max_body_bytes = 4096;
  return options;
}

TEST(HttpServerKeepAliveTest, MultipleRequestsOnOneConnection) {
  HttpServer server;
  int hits = 0;
  std::mutex mu;
  server.Handle("POST", "/echo", [&](const HttpRequest& request) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++hits;
    }
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  ASSERT_TRUE(server.Start(0, ServingOptions()).ok());

  KeepAliveClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    const std::string payload = "req-" + std::to_string(i);
    ASSERT_TRUE(client.Send(FramedPost("/echo", payload)));
    const std::string response = client.ReadResponse();
    EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
    EXPECT_NE(response.find(payload), std::string::npos);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(hits, 5);
  }
  server.Stop();
}

TEST(HttpServerKeepAliveTest, PipelinedRequestsInOneSend) {
  HttpServer server;
  server.Handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  ASSERT_TRUE(server.Start(0, ServingOptions()).ok());
  KeepAliveClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Two complete requests in one send: the leftover bytes after the
  // first must be carried over, not dropped.
  ASSERT_TRUE(client.Send(FramedPost("/echo", "first") +
                          FramedPost("/echo", "second")));
  EXPECT_NE(client.ReadResponse().find("first"), std::string::npos);
  EXPECT_NE(client.ReadResponse().find("second"), std::string::npos);
  server.Stop();
}

TEST(HttpServerKeepAliveTest, ConnectionCloseRequestHonored) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(0, ServingOptions()).ok());
  KeepAliveClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  // The server must actually close: the next read hits EOF.
  EXPECT_EQ(client.ReadResponse(), "");
  server.Stop();
}

TEST(HttpServerKeepAliveTest, OversizedBodyIs413) {
  HttpServer server;
  server.Handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  ASSERT_TRUE(server.Start(0, ServingOptions()).ok());  // max_body_bytes=4096
  KeepAliveClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(FramedPost("/echo", std::string(8192, 'x'))));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  // Framing is broken past an unread oversized body: connection closes.
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.Stop();
}

TEST(HttpServerKeepAliveTest, JsonErrorsCarryStructuredBody) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  HttpServerOptions options = ServingOptions();
  options.json_errors = true;
  ASSERT_TRUE(server.Start(0, options).ok());
  KeepAliveClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /nope HTTP/1.1\r\nHost: localhost\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("{\"error\":{\"code\":404"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StartFailsOnBusyPort) {
  HttpServer a;
  a.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(a.Start(0).ok());
  HttpServer b;
  b.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  const Status st = b.Start(a.port());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sgcl
