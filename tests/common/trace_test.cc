#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace sgcl {
namespace {

// The global collector is process-wide; each test starts from a clean,
// enabled state and disables on exit so other tests see the default-off
// behavior.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Clear();
    TraceCollector::Global().Enable(true);
  }
  void TearDown() override {
    TraceCollector::Global().Enable(false);
    TraceCollector::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceCollector::Global().Enable(false);
  { SGCL_TRACE_SPAN("ignored"); }
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
}

TEST_F(TraceTest, NestedSpansSortParentFirst) {
  // Sub-µs scopes can tie on (start, dur), making the order ambiguous;
  // the sleeps force inner to outlast the tie and outer to outlast inner.
  {
    SGCL_TRACE_SPAN("outer");
    {
      SGCL_TRACE_SPAN("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Parent starts no later and lasts at least as long; the (start asc,
  // dur desc) order puts it first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, TimedSpanFeedsCounterEvenWhenDisabled) {
  TraceCollector::Global().Enable(false);
  Counter* counter =
      MetricsRegistry::Global().GetCounter("time/trace_test_stage_us");
  counter->Reset();
  { SGCL_TRACE_SPAN_TIMED("trace_test_stage"); }
  EXPECT_GE(counter->value(), 0);
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
  // Enabled, the same site records a span too.
  TraceCollector::Global().Enable(true);
  { SGCL_TRACE_SPAN_TIMED("trace_test_stage"); }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "trace_test_stage");
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  { SGCL_TRACE_SPAN("stage/a"); }
  const std::string json = TraceCollector::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage/a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, WriteChromeTraceRoundTrip) {
  { SGCL_TRACE_SPAN("stage/write"); }
  const std::string path =
      ::testing::TempDir() + "/sgcl_trace_test_out.json";
  ASSERT_TRUE(TraceCollector::Global().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("stage/write"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceRejectsBadPath) {
  EXPECT_FALSE(TraceCollector::Global()
                   .WriteChromeTrace("/nonexistent-dir/trace.json")
                   .ok());
}

TEST_F(TraceTest, ConcurrentThreadPoolSpansAreDenseAndWellNested) {
  // TSan-covered: spans recorded from ThreadPool workers land with small
  // dense thread ids, and spans sharing a tid are well-nested (chrome
  // tracing renders overlapping-but-not-nested spans on one track as
  // garbage).
  ParallelFor(0, 64, /*grain=*/4, [](int64_t lo, int64_t hi) {
    SGCL_TRACE_SPAN("pool/chunk_outer");
    for (int64_t i = lo; i < hi; ++i) {
      SGCL_TRACE_SPAN("pool/chunk_inner");
    }
  });
  const auto events = TraceCollector::Global().Events();
  ASSERT_FALSE(events.empty());
  std::set<int> tids;
  for (const auto& e : events) tids.insert(e.tid);
  // Dense ids: every id seen across the process so far is a small
  // non-negative integer bounded by pool size + observed threads, never a
  // raw OS thread id.
  const int bound =
      ParallelRuntimeThreads() + static_cast<int>(tids.size()) + 4;
  for (int tid : tids) {
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, bound);
  }
  // Well-nested per tid: spans sorted by (start asc, dur desc) behave
  // like a bracket sequence — each next span either nests inside the
  // enclosing open span or starts after it ends, never straddles.
  std::map<int, std::vector<TraceCollector::Event>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  for (const auto& [tid, spans] : by_tid) {
    std::vector<const TraceCollector::Event*> open;
    for (const auto& e : spans) {
      while (!open.empty() &&
             e.start_us >= open.back()->start_us + open.back()->dur_us) {
        open.pop_back();
      }
      if (!open.empty()) {
        EXPECT_LE(e.start_us + e.dur_us,
                  open.back()->start_us + open.back()->dur_us)
            << "span " << e.name << " straddles " << open.back()->name
            << " on tid " << tid;
      }
      open.push_back(&e);
    }
  }
}

TEST_F(TraceTest, ClearDropsEvents) {
  { SGCL_TRACE_SPAN("gone"); }
  EXPECT_FALSE(TraceCollector::Global().Events().empty());
  TraceCollector::Global().Clear();
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
}

// TraceRing tests run with the chrome collector off (the ring is an
// independent sink); each test resets the global ring's sampling,
// capacity, and contents so tests are order-independent.
class TraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetRing(); }
  void TearDown() override { ResetRing(); }

  static void ResetRing() {
    TraceRing::Global().SetSampleRate(0.0);
    TraceRing::Global().SetCapacity(256);
    TraceRing::Global().Clear();
  }

  // Opens a sampled trace and runs a root span with two children under
  // it, returning the trace id.
  static uint64_t CommitSimpleTrace() {
    const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
    EXPECT_TRUE(ctx.valid());
    ScopedTraceContext install(ctx);
    {
      TraceSpan root("test/root");
      { SGCL_TRACE_SPAN("test/parse"); }
      { SGCL_TRACE_SPAN("test/forward"); }
    }
    return ctx.trace_id;
  }
};

TEST_F(TraceRingTest, RateZeroNeverSamples) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(TraceRing::Global().MaybeStartTrace().valid());
  }
  EXPECT_EQ(TraceRing::Global().sample_rate(), 0.0);
}

TEST_F(TraceRingTest, SamplesEveryNthDeterministically) {
  TraceRing::Global().SetSampleRate(0.25);  // period 4
  int sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (TraceRing::Global().MaybeStartTrace().valid()) ++sampled;
  }
  EXPECT_EQ(sampled, 10);
  EXPECT_DOUBLE_EQ(TraceRing::Global().sample_rate(), 0.25);
}

TEST_F(TraceRingTest, UntracedSpansCostNoRingEntries) {
  TraceRing::Global().SetSampleRate(1.0);
  // No ambient context installed: spans do not join any trace.
  { SGCL_TRACE_SPAN("test/orphan"); }
  EXPECT_EQ(TraceRing::Global().committed_count(), 0u);
}

TEST_F(TraceRingTest, RootSpanCommitsAssembledTree) {
  TraceRing::Global().SetSampleRate(1.0);
  const uint64_t trace_id = CommitSimpleTrace();
  const auto traces = TraceRing::Global().Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].trace_id, trace_id);
  EXPECT_EQ(traces[0].root_name, "test/root");
  ASSERT_EQ(traces[0].spans.size(), 3u);
  // Children carry the root's span id as parent.
  uint64_t root_span_id = 0;
  for (const auto& s : traces[0].spans) {
    if (s.parent_span_id == 0) root_span_id = s.span_id;
  }
  ASSERT_NE(root_span_id, 0u);
  for (const auto& s : traces[0].spans) {
    if (s.parent_span_id != 0) EXPECT_EQ(s.parent_span_id, root_span_id);
  }
  // The tree JSON nests both children under the root with self_us.
  const std::string tree = TraceRing::Global().TreeJson(trace_id);
  EXPECT_NE(tree.find("\"root\":{\"name\":\"test/root\""), std::string::npos);
  EXPECT_NE(tree.find("test/parse"), std::string::npos);
  EXPECT_NE(tree.find("test/forward"), std::string::npos);
  EXPECT_NE(tree.find("\"self_us\":"), std::string::npos);
  EXPECT_EQ(TraceRing::Global().TreeJson(trace_id + 1), "");
}

TEST_F(TraceRingTest, AmbientContextRestoredAfterScope) {
  TraceRing::Global().SetSampleRate(1.0);
  EXPECT_FALSE(CurrentTraceContext().valid());
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  {
    ScopedTraceContext install(ctx);
    EXPECT_EQ(CurrentTraceContext().trace_id, ctx.trace_id);
    {
      TraceSpan root("test/root");
      // Inside a span, the ambient parent is the open span itself.
      EXPECT_EQ(CurrentTraceContext().span_id, root.context().span_id);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, 0u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST_F(TraceRingTest, LateSpansAfterCommitAreDropped) {
  TraceRing::Global().SetSampleRate(1.0);
  const uint64_t trace_id = CommitSimpleTrace();
  TraceRing::Span late;
  late.name = "test/late";
  late.trace_id = trace_id;
  late.span_id = TraceRing::NextSpanId();
  late.parent_span_id = 7;
  TraceRing::Global().RecordSpan(late);
  const auto traces = TraceRing::Global().Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), 3u);  // late span did not join
}

TEST_F(TraceRingTest, CapacityEvictsOldestTrace) {
  TraceRing::Global().SetSampleRate(1.0);
  TraceRing::Global().SetCapacity(2);
  const uint64_t first = CommitSimpleTrace();
  CommitSimpleTrace();
  CommitSimpleTrace();
  EXPECT_EQ(TraceRing::Global().committed_count(), 3u);
  const auto traces = TraceRing::Global().Traces();
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& t : traces) EXPECT_NE(t.trace_id, first);
  EXPECT_EQ(TraceRing::Global().TreeJson(first), "");
}

TEST_F(TraceRingTest, RecordManualSpanRequiresRealParent) {
  TraceRing::Global().SetSampleRate(1.0);
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  // Invalid parent and root-level (span_id 0) parents are both no-ops:
  // a manual span with parent 0 would commit the trace as a bogus root.
  EXPECT_EQ(RecordManualSpan("test/bad", TraceContext{}, 0, 10), 0u);
  EXPECT_EQ(RecordManualSpan("test/bad", ctx, 0, 10), 0u);
  EXPECT_EQ(TraceRing::Global().committed_count(), 0u);
}

TEST_F(TraceRingTest, ManualSpanWithPreallocatedIdParentsLaterChildren) {
  // The batcher pattern: pre-allocate the forward span's id, run nested
  // work under it, record the forward span itself afterwards.
  TraceRing::Global().SetSampleRate(1.0);
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  const uint64_t forward_id = TraceRing::NextSpanId();
  ScopedTraceContext install(ctx);
  {
    TraceSpan root("test/root");
    {
      ScopedTraceContext forward_guard(
          TraceContext{ctx.trace_id, forward_id});
      { SGCL_TRACE_SPAN("test/infer"); }
    }
    EXPECT_EQ(RecordManualSpan("test/forward", root.context(), 10, 40,
                               forward_id),
              forward_id);
  }
  const auto traces = TraceRing::Global().Traces();
  ASSERT_EQ(traces.size(), 1u);
  bool saw_infer = false;
  for (const auto& s : traces[0].spans) {
    if (s.name == "test/infer") {
      saw_infer = true;
      EXPECT_EQ(s.parent_span_id, forward_id);
    }
    if (s.name == "test/forward") EXPECT_EQ(s.span_id, forward_id);
  }
  EXPECT_TRUE(saw_infer);
}

TEST_F(TraceRingTest, ListJsonFiltersAndLimits) {
  TraceRing::Global().SetSampleRate(1.0);
  CommitSimpleTrace();
  CommitSimpleTrace();
  const std::string all =
      TraceRing::Global().ListJson(/*min_duration_us=*/0, /*limit=*/0,
                                   /*include_spans=*/false);
  EXPECT_NE(all.find("\"committed\":2"), std::string::npos);
  EXPECT_NE(all.find("\"trace_id\":\""), std::string::npos);
  EXPECT_EQ(all.find("\"spans\":["), std::string::npos);
  const std::string limited =
      TraceRing::Global().ListJson(0, /*limit=*/1, /*include_spans=*/true);
  EXPECT_NE(limited.find("\"spans\":["), std::string::npos);
  // A min-duration filter far past any test span excludes everything.
  const std::string none = TraceRing::Global().ListJson(
      /*min_duration_us=*/1000000000, 0, false);
  EXPECT_NE(none.find("\"traces\":[]"), std::string::npos);
}

TEST_F(TraceRingTest, TraceIdFormatParseRoundTrip) {
  EXPECT_EQ(FormatTraceId(0xdeadbeefu), "00000000deadbeef");
  EXPECT_EQ(ParseTraceId("00000000deadbeef"), 0xdeadbeefu);
  EXPECT_EQ(ParseTraceId("0xdeadbeef"), 0xdeadbeefu);
  EXPECT_EQ(ParseTraceId(""), 0u);
  EXPECT_EQ(ParseTraceId("not-hex"), 0u);
  EXPECT_EQ(ParseTraceId("12zz"), 0u);
  EXPECT_EQ(ParseTraceId("-5"), 0u);
}

TEST_F(TraceRingTest, ConcurrentPoolWorkersJoinTheSchedulersTrace) {
  // TSan-covered (the CI sanitizer job runs *Concurrent* tests): a
  // sampled "request" fans work out to the pool; every worker installs
  // the captured context, so its spans land in the same trace.
  TraceRing::Global().SetSampleRate(1.0);
  const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
  ASSERT_TRUE(ctx.valid());
  {
    ScopedTraceContext install(ctx);
    TraceSpan root("test/root");
    const TraceContext under_root = CurrentTraceContext();
    ParallelFor(0, 32, /*grain=*/2, [&](int64_t lo, int64_t hi) {
      (void)lo;
      (void)hi;
      ScopedTraceContext worker_install(under_root);
      SGCL_TRACE_SPAN("test/pool_chunk");
    });
  }
  const auto traces = TraceRing::Global().Traces();
  ASSERT_EQ(traces.size(), 1u);
  uint64_t root_span_id = 0;
  for (const auto& s : traces[0].spans) {
    if (s.parent_span_id == 0) root_span_id = s.span_id;
  }
  ASSERT_NE(root_span_id, 0u);
  // One span per chunk; the partition size varies with the pool, but
  // every chunk span must hang off the root (32 items / grain 2 caps
  // the chunk count at 16).
  int chunks = 0;
  for (const auto& s : traces[0].spans) {
    EXPECT_EQ(s.trace_id, ctx.trace_id);
    if (s.name == "test/pool_chunk") {
      ++chunks;
      EXPECT_EQ(s.parent_span_id, root_span_id);
    }
  }
  EXPECT_GE(chunks, 1);
  EXPECT_LE(chunks, 16);
}

TEST_F(TraceRingTest, ConcurrentCommitsStayBoundedAndWellFormed) {
  // TSan-covered: many threads open, populate, and commit traces
  // against a tiny ring while readers list/serialize concurrently.
  TraceRing::Global().SetSampleRate(1.0);
  TraceRing::Global().SetCapacity(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 25; ++i) {
        const TraceContext ctx = TraceRing::Global().MaybeStartTrace();
        if (!ctx.valid()) continue;
        ScopedTraceContext install(ctx);
        TraceSpan root("test/root");
        { SGCL_TRACE_SPAN("test/child"); }
      }
    });
  }
  threads.emplace_back([] {
    for (int i = 0; i < 50; ++i) {
      (void)TraceRing::Global().ListJson(0, 0, true);
      (void)TraceRing::Global().Traces();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(TraceRing::Global().committed_count(), 100u);
  EXPECT_LE(TraceRing::Global().Traces().size(), 4u);
  for (const auto& trace : TraceRing::Global().Traces()) {
    EXPECT_EQ(trace.root_name, "test/root");
    EXPECT_EQ(trace.spans.size(), 2u);
  }
}

}  // namespace
}  // namespace sgcl
