#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace sgcl {
namespace {

// The global collector is process-wide; each test starts from a clean,
// enabled state and disables on exit so other tests see the default-off
// behavior.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Clear();
    TraceCollector::Global().Enable(true);
  }
  void TearDown() override {
    TraceCollector::Global().Enable(false);
    TraceCollector::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceCollector::Global().Enable(false);
  { SGCL_TRACE_SPAN("ignored"); }
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
}

TEST_F(TraceTest, NestedSpansSortParentFirst) {
  // Sub-µs scopes can tie on (start, dur), making the order ambiguous;
  // the sleeps force inner to outlast the tie and outer to outlast inner.
  {
    SGCL_TRACE_SPAN("outer");
    {
      SGCL_TRACE_SPAN("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Parent starts no later and lasts at least as long; the (start asc,
  // dur desc) order puts it first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, TimedSpanFeedsCounterEvenWhenDisabled) {
  TraceCollector::Global().Enable(false);
  Counter* counter =
      MetricsRegistry::Global().GetCounter("time/trace_test_stage_us");
  counter->Reset();
  { SGCL_TRACE_SPAN_TIMED("trace_test_stage"); }
  EXPECT_GE(counter->value(), 0);
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
  // Enabled, the same site records a span too.
  TraceCollector::Global().Enable(true);
  { SGCL_TRACE_SPAN_TIMED("trace_test_stage"); }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "trace_test_stage");
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  { SGCL_TRACE_SPAN("stage/a"); }
  const std::string json = TraceCollector::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage/a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, WriteChromeTraceRoundTrip) {
  { SGCL_TRACE_SPAN("stage/write"); }
  const std::string path =
      ::testing::TempDir() + "/sgcl_trace_test_out.json";
  ASSERT_TRUE(TraceCollector::Global().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("stage/write"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceRejectsBadPath) {
  EXPECT_FALSE(TraceCollector::Global()
                   .WriteChromeTrace("/nonexistent-dir/trace.json")
                   .ok());
}

TEST_F(TraceTest, ConcurrentThreadPoolSpansAreDenseAndWellNested) {
  // TSan-covered: spans recorded from ThreadPool workers land with small
  // dense thread ids, and spans sharing a tid are well-nested (chrome
  // tracing renders overlapping-but-not-nested spans on one track as
  // garbage).
  ParallelFor(0, 64, /*grain=*/4, [](int64_t lo, int64_t hi) {
    SGCL_TRACE_SPAN("pool/chunk_outer");
    for (int64_t i = lo; i < hi; ++i) {
      SGCL_TRACE_SPAN("pool/chunk_inner");
    }
  });
  const auto events = TraceCollector::Global().Events();
  ASSERT_FALSE(events.empty());
  std::set<int> tids;
  for (const auto& e : events) tids.insert(e.tid);
  // Dense ids: every id seen across the process so far is a small
  // non-negative integer bounded by pool size + observed threads, never a
  // raw OS thread id.
  const int bound =
      ParallelRuntimeThreads() + static_cast<int>(tids.size()) + 4;
  for (int tid : tids) {
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, bound);
  }
  // Well-nested per tid: spans sorted by (start asc, dur desc) behave
  // like a bracket sequence — each next span either nests inside the
  // enclosing open span or starts after it ends, never straddles.
  std::map<int, std::vector<TraceCollector::Event>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  for (const auto& [tid, spans] : by_tid) {
    std::vector<const TraceCollector::Event*> open;
    for (const auto& e : spans) {
      while (!open.empty() &&
             e.start_us >= open.back()->start_us + open.back()->dur_us) {
        open.pop_back();
      }
      if (!open.empty()) {
        EXPECT_LE(e.start_us + e.dur_us,
                  open.back()->start_us + open.back()->dur_us)
            << "span " << e.name << " straddles " << open.back()->name
            << " on tid " << tid;
      }
      open.push_back(&e);
    }
  }
}

TEST_F(TraceTest, ClearDropsEvents) {
  { SGCL_TRACE_SPAN("gone"); }
  EXPECT_FALSE(TraceCollector::Global().Events().empty());
  TraceCollector::Global().Clear();
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
}

}  // namespace
}  // namespace sgcl
