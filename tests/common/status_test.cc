#include "common/status.h"

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ratio");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad ratio");
}

TEST(StatusTest, AllFactoriesSetDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  SGCL_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_FALSE(Caller(-1).ok());
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> AssignCaller(int x) {
  SGCL_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

TEST(StatusTest, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = AssignCaller(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_FALSE(AssignCaller(-1).ok());
}

TEST(StatusDeathTest, AccessingErrorValueAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "SGCL_CHECK failed");
}

TEST(StatusDeathTest, CheckMacroAborts) {
  EXPECT_DEATH({ SGCL_CHECK_EQ(1, 2); }, "SGCL_CHECK failed");
}

}  // namespace
}  // namespace sgcl
