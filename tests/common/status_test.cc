#include "common/status.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ratio");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad ratio");
}

TEST(StatusTest, AllFactoriesSetDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  SGCL_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_FALSE(Caller(-1).ok());
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> AssignCaller(int x) {
  SGCL_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

TEST(StatusTest, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = AssignCaller(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_FALSE(AssignCaller(-1).ok());
}

// The macro must evaluate its Result expression exactly once on both the
// success and the error path — a double evaluation would repeat side
// effects (I/O, RNG draws) silently.
Result<int> CountedDoubler(int x, int* calls) {
  ++*calls;
  return Doubler(x);
}

Result<int> CountedAssignCaller(int x, int* calls) {
  SGCL_ASSIGN_OR_RETURN(int doubled, CountedDoubler(x, calls));
  return doubled;
}

TEST(StatusTest, AssignOrReturnEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  ASSERT_TRUE(CountedAssignCaller(3, &calls).ok());
  EXPECT_EQ(calls, 1);
  calls = 0;
  ASSERT_FALSE(CountedAssignCaller(-1, &calls).ok());
  EXPECT_EQ(calls, 1);
}

TEST(StatusTest, AssignOrReturnPreservesErrorPayload) {
  const Result<int> failed = AssignCaller(-1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failed.status().message(), "negative");
}

Status CountedCaller(int x, int* calls) {
  SGCL_RETURN_NOT_OK(FailsWhenNegative((++*calls, x)));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  EXPECT_TRUE(CountedCaller(1, &calls).ok());
  EXPECT_EQ(calls, 1);
  calls = 0;
  const Status failed = CountedCaller(-1, &calls);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failed.message(), "negative");
}

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::InvalidArgument("negative box");
  return std::make_unique<int>(x);
}

Result<int> Unbox(int x) {
  SGCL_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  return *box;
}

TEST(StatusTest, AssignOrReturnMovesMoveOnlyValues) {
  const Result<int> ok = Unbox(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(Unbox(-1).status().message(), "negative box");
}

TEST(ResultTest, MoveOnlyValueCanBeTakenByMove) {
  Result<std::unique_ptr<int>> r = MakeBox(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(*r);
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 5);
}

TEST(StatusDeathTest, AccessingErrorValueAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "SGCL_CHECK failed");
}

TEST(StatusDeathTest, CheckMacroAborts) {
  EXPECT_DEATH({ SGCL_CHECK_EQ(1, 2); }, "SGCL_CHECK failed");
}

// The diagnostic names the failing expression and its source location so
// an abort in a deep pipeline is attributable without a debugger.
TEST(StatusDeathTest, CheckFailureNamesExpressionAndFile) {
  EXPECT_DEATH({ SGCL_CHECK(2 + 2 == 5); }, "2 \\+ 2 == 5");
  EXPECT_DEATH({ SGCL_CHECK(false); }, "status_test\\.cc");
}

TEST(StatusDeathTest, ComparisonCheckVariantsAbort) {
  EXPECT_DEATH({ SGCL_CHECK_NE(4, 4); }, "SGCL_CHECK failed");
  EXPECT_DEATH({ SGCL_CHECK_LT(2, 1); }, "SGCL_CHECK failed");
  EXPECT_DEATH({ SGCL_CHECK_LE(2, 1); }, "SGCL_CHECK failed");
  EXPECT_DEATH({ SGCL_CHECK_GT(1, 2); }, "SGCL_CHECK failed");
  EXPECT_DEATH({ SGCL_CHECK_GE(1, 2); }, "SGCL_CHECK failed");
}

TEST(StatusDeathTest, DcheckMatchesBuildMode) {
#ifdef NDEBUG
  SGCL_DCHECK(false);  // compiled out: must not abort in release builds
  SUCCEED();
#else
  EXPECT_DEATH({ SGCL_DCHECK(false); }, "SGCL_CHECK failed");
#endif
}

}  // namespace
}  // namespace sgcl
