// Integration tests for the full SGCL model and trainer: the objective is
// finite and decreases, gradients reach both towers, ablation flags alter
// the computation, and embeddings are usable downstream.
#include "core/sgcl_model.h"

#include <cmath>

#include "core/sgcl_trainer.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace sgcl {
namespace {

GraphDataset SmallDataset(uint64_t seed = 17) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;  // ~20 MUTAG-like graphs
  opt.node_cap = 20;
  opt.seed = seed;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

SgclConfig SmallConfig(int64_t feat_dim) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  cfg.encoder.hidden_dim = 16;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 16;
  cfg.batch_size = 8;
  cfg.epochs = 3;
  return cfg;
}

std::vector<const Graph*> FirstGraphs(const GraphDataset& ds, int n) {
  std::vector<const Graph*> out;
  for (int i = 0; i < n; ++i) out.push_back(&ds.graph(i));
  return out;
}

TEST(SgclModelTest, LossIsFiniteAndPositive) {
  GraphDataset ds = SmallDataset();
  Rng rng(1);
  SgclModel model(SmallConfig(ds.feat_dim()), &rng);
  SgclLossStats stats;
  Tensor loss = model.ComputeLoss(FirstGraphs(ds, 6), &rng, &stats);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(stats.total, 0.0f);
  EXPECT_GT(stats.semantic, 0.0f);
  EXPECT_GT(stats.complement, 0.0f);
  EXPECT_GT(stats.weight_norm, 0.0f);
  // Total = L_s + lambda_c L_c + lambda_W Theta_W + the generator-tower
  // term; with an untrained model every InfoNCE term is close to
  // log(batch), so the total clearly exceeds the Eq. 27 partial sum minus
  // slack.
  EXPECT_GT(stats.total, 0.5f * stats.semantic);
}

TEST(SgclModelTest, GradientsReachBothTowersAndHeads) {
  GraphDataset ds = SmallDataset();
  Rng rng(2);
  SgclModel model(SmallConfig(ds.feat_dim()), &rng);
  for (Tensor& p : model.Parameters()) p.ZeroGrad();
  Tensor loss = model.ComputeLoss(FirstGraphs(ds, 6), &rng);
  loss.Backward();
  auto grad_mass = [](const std::vector<Tensor>& params) {
    double total = 0.0;
    for (const Tensor& p : params) {
      for (float g : p.impl()->grad) total += std::fabs(g);
    }
    return total;
  };
  EXPECT_GT(grad_mass(model.encoder_k().Parameters()), 1e-8)
      << "f_k got no gradient";
  EXPECT_GT(grad_mass(model.encoder_q().Parameters()), 1e-8)
      << "f_q got no gradient (soft-mask path broken)";
}

TEST(SgclModelTest, AblationFlagsChangeTheObjective) {
  GraphDataset ds = SmallDataset();
  auto graphs = FirstGraphs(ds, 6);
  SgclConfig base_cfg = SmallConfig(ds.feat_dim());

  Rng rng_a(3);
  SgclModel full(base_cfg, &rng_a);
  Rng rng_use(10);
  SgclLossStats full_stats;
  (void)full.ComputeLoss(graphs, &rng_use, &full_stats);

  SgclConfig no_lc = base_cfg;
  no_lc.lambda_c = 0.0f;
  Rng rng_b(3);
  SgclModel m_no_lc(no_lc, &rng_b);
  Rng rng_use2(10);
  SgclLossStats s_no_lc;
  (void)m_no_lc.ComputeLoss(graphs, &rng_use2, &s_no_lc);
  EXPECT_EQ(s_no_lc.complement, 0.0f);

  SgclConfig no_lw = base_cfg;
  no_lw.lambda_w = 0.0f;
  Rng rng_c(3);
  SgclModel m_no_lw(no_lw, &rng_c);
  Rng rng_use3(10);
  SgclLossStats s_no_lw;
  (void)m_no_lw.ComputeLoss(graphs, &rng_use3, &s_no_lw);
  EXPECT_EQ(s_no_lw.weight_norm, 0.0f);

  SgclConfig random_aug = base_cfg;
  random_aug.augmentation = AugmentationMode::kRandom;
  Rng rng_d(3);
  SgclModel m_rand(random_aug, &rng_d);
  Rng rng_use4(10);
  Tensor loss_rand = m_rand.ComputeLoss(graphs, &rng_use4);
  EXPECT_TRUE(std::isfinite(loss_rand.item()));
}

TEST(SgclModelTest, EmbeddingsHaveExpectedShapeAndNoGrad) {
  GraphDataset ds = SmallDataset();
  Rng rng(4);
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  SgclModel model(cfg, &rng);
  Tensor emb = model.EmbedGraphs(FirstGraphs(ds, 5));
  EXPECT_EQ(emb.rows(), 5);
  EXPECT_EQ(emb.cols(), cfg.encoder.hidden_dim);
  EXPECT_FALSE(emb.requires_grad());
}

TEST(SgclModelTest, PreservationProbsRespectBinarization) {
  GraphDataset ds = SmallDataset();
  Rng rng(5);
  SgclModel model(SmallConfig(ds.feat_dim()), &rng);
  const Graph& g = ds.graph(0);
  std::vector<float> k = model.NodeLipschitzConstants(g);
  std::vector<float> p = model.NodePreservationProbs(g);
  ASSERT_EQ(k.size(), p.size());
  std::vector<uint8_t> binary = BinarizeLipschitz(k);
  for (size_t v = 0; v < p.size(); ++v) {
    if (binary[v]) {
      EXPECT_FLOAT_EQ(p[v], 1.0f);
    } else {
      EXPECT_GE(p[v], 0.0f);
      EXPECT_LE(p[v], 1.0f);
    }
  }
}

TEST(SgclTrainerTest, LossDecreasesOverPretraining) {
  GraphDataset ds = SmallDataset(99);
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  cfg.epochs = 8;
  SgclTrainer trainer(cfg, /*seed=*/7);
  PretrainStats stats = trainer.Pretrain(ds).value();
  ASSERT_EQ(stats.epoch_losses.size(), 8u);
  for (float l : stats.epoch_losses) EXPECT_TRUE(std::isfinite(l));
  // Averaged late loss below averaged early loss.
  const float early = (stats.epoch_losses[0] + stats.epoch_losses[1]) / 2.0f;
  const float late = (stats.epoch_losses[6] + stats.epoch_losses[7]) / 2.0f;
  EXPECT_LT(late, early + 0.05f);
}

TEST(SgclTrainerTest, PretrainOnSubsetOnly) {
  GraphDataset ds = SmallDataset(123);
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  cfg.epochs = 2;
  SgclTrainer trainer(cfg, 8);
  PretrainStats stats = trainer.Pretrain(ds, {0, 1, 2, 3, 4, 5}).value();
  EXPECT_EQ(stats.epoch_losses.size(), 2u);
}

TEST(SgclModelTest, ExactGeneratorModeWorksEndToEnd) {
  GraphDataset ds = SmallDataset(55);
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  cfg.lipschitz_mode = LipschitzMode::kExact;
  Rng rng(9);
  SgclModel model(cfg, &rng);
  Tensor loss = model.ComputeLoss(FirstGraphs(ds, 4), &rng);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

}  // namespace
}  // namespace sgcl
