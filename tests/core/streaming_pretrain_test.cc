// Streaming pretraining over ShardedGraphStore: loss parity with the
// in-memory path, determinism across prefetch depths, and bitwise
// kill-and-resume across shard/batch boundaries.
#include <filesystem>
#include <vector>

#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

GraphDataset StreamDataset(int num_graphs = 24) {
  return MakeZincLikeDataset(num_graphs, /*seed=*/17);
}

std::string WriteStoreFor(const GraphDataset& ds, const char* name,
                          int64_t graphs_per_shard) {
  const std::string dir = TempDir(name);
  ShardWriterOptions opt;
  opt.graphs_per_shard = graphs_per_shard;
  opt.name = ds.name();
  opt.num_classes = ds.num_classes();
  EXPECT_TRUE([&]() -> Status {
    SGCL_ASSIGN_OR_RETURN(auto writer,
                          ShardedGraphStoreWriter::Create(dir, opt));
    for (int64_t i = 0; i < ds.size(); ++i) {
      SGCL_RETURN_NOT_OK(writer->Append(ds.graph(i)));
    }
    return writer->Finalize();
  }()
                  .ok());
  return dir;
}

SgclConfig StreamConfig(int epochs = 2) {
  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = 12;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 12;
  cfg.batch_size = 6;
  cfg.epochs = epochs;
  return cfg;
}

// A single-shard store has one fetch block, so the trainer's shuffle is
// the plain global shuffle — losses must match the in-memory path bit
// for bit.
TEST(StreamingPretrainTest, SingleShardMatchesInMemoryBitwise) {
  GraphDataset ds = StreamDataset();
  const std::string dir =
      WriteStoreFor(ds, "stream_single", /*graphs_per_shard=*/1000);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->num_shards(), 1);

  SgclTrainer mem_trainer(StreamConfig(), /*seed=*/5);
  auto mem_stats = mem_trainer.Pretrain(ds);
  ASSERT_TRUE(mem_stats.ok());

  SgclTrainer disk_trainer(StreamConfig(), /*seed=*/5);
  auto disk_stats = disk_trainer.Pretrain(**store);
  ASSERT_TRUE(disk_stats.ok());

  ASSERT_EQ(mem_stats->epoch_losses.size(), disk_stats->epoch_losses.size());
  for (size_t e = 0; e < mem_stats->epoch_losses.size(); ++e) {
    EXPECT_EQ(mem_stats->epoch_losses[e], disk_stats->epoch_losses[e])
        << "epoch " << e;
  }
  fs::remove_all(dir);
}

// Multi-shard runs are deterministic, and the prefetch depth only moves
// when decode happens — never what is computed.
TEST(StreamingPretrainTest, MultiShardDeterministicAcrossPrefetchDepths) {
  GraphDataset ds = StreamDataset();
  const std::string dir =
      WriteStoreFor(ds, "stream_multi", /*graphs_per_shard=*/7);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_GT((*store)->num_shards(), 1);

  std::vector<std::vector<float>> runs;
  for (int depth : {0, 1, 4}) {
    SgclTrainer trainer(StreamConfig(), /*seed=*/9);
    PretrainOptions options;
    options.prefetch_depth = depth;
    auto stats = trainer.Pretrain(**store, {}, options);
    ASSERT_TRUE(stats.ok());
    runs.push_back(stats->epoch_losses);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  fs::remove_all(dir);
}

// Kill mid-epoch (between shard-sized batches) and resume from the
// mid-epoch checkpoint: the stitched run's losses must equal the
// uninterrupted run's, bitwise.
TEST(StreamingPretrainTest, MidEpochKillResumeBitwise) {
  GraphDataset ds = StreamDataset(30);
  const std::string dir =
      WriteStoreFor(ds, "stream_resume", /*graphs_per_shard=*/8);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  const std::string ckpt_dir = TempDir("stream_resume_ckpt");

  // Reference: uninterrupted run.
  SgclTrainer ref_trainer(StreamConfig(/*epochs=*/3), /*seed=*/13);
  auto ref_stats = ref_trainer.Pretrain(**store);
  ASSERT_TRUE(ref_stats.ok());

  // Interrupted run: checkpoint every 2 batches, cancel mid-epoch-1
  // after 7 batches total (epoch 0 has 5 batches of 6 graphs).
  {
    SgclTrainer trainer(StreamConfig(/*epochs=*/3), /*seed=*/13);
    PretrainOptions options;
    options.checkpoint_dir = ckpt_dir;
    options.checkpoint_every_batches = 2;
    // should_cancel is polled once before each batch, so the 8th poll
    // (after 7 completed batches) stops the run.
    int polls = 0;
    options.should_cancel = [&polls] { return ++polls > 7; };
    auto stats = trainer.Pretrain(**store, {}, options);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->cancelled);
  }

  // Resume from the newest checkpoint (a mid-epoch one).
  const auto latest = FindLatestCheckpoint(ckpt_dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_NE(latest->find("-b"), std::string::npos)
      << "expected a mid-epoch checkpoint, got " << *latest;
  SgclTrainer resumed_trainer(StreamConfig(/*epochs=*/3), /*seed=*/999);
  PretrainOptions resume_options;
  resume_options.resume_from = *latest;
  auto resumed = resumed_trainer.Pretrain(**store, {}, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ASSERT_EQ(resumed->epoch_losses.size(), ref_stats->epoch_losses.size());
  for (size_t e = 0; e < ref_stats->epoch_losses.size(); ++e) {
    EXPECT_EQ(ref_stats->epoch_losses[e], resumed->epoch_losses[e])
        << "epoch " << e;
  }
  EXPECT_EQ(resumed->total_batches, ref_stats->total_batches);
  fs::remove_all(dir);
  fs::remove_all(ckpt_dir);
}

// End-of-epoch checkpoints now record the source fingerprint: resuming
// against different data is refused.
TEST(StreamingPretrainTest, ResumeRejectsDifferentSource) {
  GraphDataset ds = StreamDataset();
  const std::string dir =
      WriteStoreFor(ds, "stream_fp_guard", /*graphs_per_shard=*/8);
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok());
  const std::string ckpt_dir = TempDir("stream_fp_guard_ckpt");

  {
    SgclTrainer trainer(StreamConfig(), /*seed=*/3);
    PretrainOptions options;
    options.checkpoint_dir = ckpt_dir;
    auto stats = trainer.Pretrain(**store, {}, options);
    ASSERT_TRUE(stats.ok());
  }
  const auto latest = FindLatestCheckpoint(ckpt_dir);
  ASSERT_TRUE(latest.ok());

  GraphDataset other = MakeZincLikeDataset(24, /*seed=*/555);
  SgclTrainer trainer(StreamConfig(), /*seed=*/3);
  PretrainOptions options;
  options.resume_from = *latest;
  auto stats = trainer.Pretrain(other, {}, options);
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
  fs::remove_all(ckpt_dir);
}

TEST(StreamingPretrainTest, RejectsBatchCheckpointingWithoutDir) {
  GraphDataset ds = StreamDataset();
  SgclTrainer trainer(StreamConfig(), /*seed=*/1);
  PretrainOptions options;
  options.checkpoint_every_batches = 2;
  auto stats = trainer.Pretrain(ds, {}, options);
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sgcl
