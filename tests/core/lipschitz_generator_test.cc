#include "core/lipschitz_generator.h"

#include <cmath>
#include <numeric>

#include "data/synthetic_tu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

EncoderConfig SmallEncoderConfig(int64_t in_dim) {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = in_dim;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  return cfg;
}

TEST(TopologyDistanceTest, MatchesFrobeniusFormula) {
  // Degree-3 node, no self-loop: ||A - Â||_F = sqrt(6).
  EXPECT_NEAR(NodeDropTopologyDistance(3, false), std::sqrt(6.0f), 1e-5f);
  // Self-loop contributes one diagonal entry.
  EXPECT_NEAR(NodeDropTopologyDistance(3, true), std::sqrt(5.0f), 1e-5f);
  // Isolated node: guarded at 1.
  EXPECT_FLOAT_EQ(NodeDropTopologyDistance(0, false), 1.0f);
}

TEST(LipschitzGeneratorTest, ExactConstantsAreFiniteAndNonNegative) {
  Rng rng(1);
  GnnEncoder enc(SmallEncoderConfig(3), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  Graph g = testing::HouseGraph(3);
  std::vector<float> k = gen.ComputeConstants(g);
  ASSERT_EQ(k.size(), 5u);
  for (float v : k) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
  // Some variation across nodes.
  float lo = *std::min_element(k.begin(), k.end());
  float hi = *std::max_element(k.begin(), k.end());
  EXPECT_GT(hi, lo);
}

TEST(LipschitzGeneratorTest, ApproxMatchesExactLayout) {
  Rng rng(2);
  GnnEncoder enc(SmallEncoderConfig(3), &rng);
  LipschitzGenerator exact(&enc, LipschitzMode::kExact);
  LipschitzGenerator approx(&enc, LipschitzMode::kAttentionApprox);
  Graph a = testing::PathGraph3(3);
  Graph b = testing::HouseGraph(3);
  std::vector<const Graph*> graphs = {&a, &b};
  std::vector<float> ke = exact.ComputeConstants(graphs);
  std::vector<float> ka = approx.ComputeConstants(graphs);
  EXPECT_EQ(ke.size(), 8u);
  EXPECT_EQ(ka.size(), 8u);
}

// Pearson correlation helper.
double Pearson(const std::vector<float>& a, const std::vector<float>& b) {
  const double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double num = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return num / std::max(std::sqrt(va * vb), 1e-12);
}

TEST(LipschitzGeneratorTest, ApproxCorrelatesWithExact) {
  // Property test: over many random graphs, the attention approximation
  // must rank nodes similarly to the exact masked re-encoding.
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 25;
  opt.seed = 33;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  Rng rng(3);
  GnnEncoder enc(SmallEncoderConfig(ds.feat_dim()), &rng);
  LipschitzGenerator exact(&enc, LipschitzMode::kExact);
  LipschitzGenerator approx(&enc, LipschitzMode::kAttentionApprox);
  std::vector<float> all_exact, all_approx;
  for (int i = 0; i < 10; ++i) {
    const Graph& g = ds.graph(i);
    auto ke = exact.ComputeConstants(g);
    auto ka = approx.ComputeConstants(g);
    all_exact.insert(all_exact.end(), ke.begin(), ke.end());
    all_approx.insert(all_approx.end(), ka.begin(), ka.end());
  }
  EXPECT_GT(Pearson(all_exact, all_approx), 0.2);
}

TEST(LipschitzGeneratorTest, MotifNodesScoreHigherOnAverage) {
  // The planted motif (semantic) nodes should receive larger Lipschitz
  // constants than background nodes even under a random encoder, because
  // dropping them displaces the representation of the distinctive
  // structure more per unit of topology change. This is the core property
  // the paper's augmentation relies on (Fig. 7).
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 25;
  opt.seed = 44;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  Rng rng(4);
  GnnEncoder enc(SmallEncoderConfig(ds.feat_dim()), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  int hits = 0, total = 0;
  for (int i = 0; i < 12; ++i) {
    const Graph& g = ds.graph(i);
    auto k = gen.ComputeConstants(g);
    double motif = 0.0, bg = 0.0;
    int nm = 0, nb = 0;
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      if (g.semantic_mask()[v]) {
        motif += k[v];
        ++nm;
      } else {
        bg += k[v];
        ++nb;
      }
    }
    if (nm > 0 && nb > 0) {
      ++total;
      if (motif / nm > bg / nb) ++hits;
    }
  }
  // Majority of graphs should rank motif nodes above background.
  EXPECT_GE(hits * 2, total);
}

TEST(LipschitzGeneratorTest, EmptyAndSingleNodeGraphs) {
  Rng rng(5);
  GnnEncoder enc(SmallEncoderConfig(2), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  Graph single(1, 2);
  single.set_feature(0, 0, 1.0f);
  auto k = gen.ComputeConstants(single);
  ASSERT_EQ(k.size(), 1u);
  EXPECT_TRUE(std::isfinite(k[0]));
  LipschitzGenerator approx(&enc, LipschitzMode::kAttentionApprox);
  auto k2 = approx.ComputeConstants(single);
  ASSERT_EQ(k2.size(), 1u);
  EXPECT_TRUE(std::isfinite(k2[0]));
}

TEST(LipschitzGeneratorTest, DeterministicForFixedEncoder) {
  Rng rng(6);
  GnnEncoder enc(SmallEncoderConfig(3), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kAttentionApprox);
  Graph g = testing::HouseGraph(3);
  EXPECT_EQ(gen.ComputeConstants(g), gen.ComputeConstants(g));
}

}  // namespace
}  // namespace sgcl
