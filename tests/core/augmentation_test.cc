#include "core/augmentation.h"

#include <numeric>

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(BinarizeLipschitzTest, MeanThreshold) {
  std::vector<uint8_t> c = BinarizeLipschitz({1.0f, 2.0f, 3.0f, 10.0f});
  // Mean = 4: only the 10.0 node is >= mean.
  EXPECT_EQ(c, (std::vector<uint8_t>{0, 0, 0, 1}));
}

TEST(BinarizeLipschitzTest, UniformConstantsAllSemantic) {
  std::vector<uint8_t> c = BinarizeLipschitz({2.0f, 2.0f, 2.0f});
  EXPECT_EQ(c, (std::vector<uint8_t>{1, 1, 1}));
}

TEST(AugmentationPlanTest, LipschitzModeNeverDropsSemanticNodes) {
  Rng rng(1);
  // Nodes 3, 4 are clearly semantic (large K).
  std::vector<float> k = {0.1f, 0.2f, 0.15f, 5.0f, 6.0f};
  std::vector<float> keep = {0.5f, 0.5f, 0.5f, 0.5f, 0.5f};
  for (int trial = 0; trial < 30; ++trial) {
    AugmentationPlan plan = BuildAugmentationPlan(
        k, keep, AugmentationMode::kLipschitz, 0.9, &rng);
    EXPECT_EQ(plan.keep_sample[3], 1);
    EXPECT_EQ(plan.keep_sample[4], 1);
    EXPECT_EQ(plan.binary_semantic[3], 1);
    EXPECT_EQ(plan.binary_semantic[0], 0);
    // Preservation prob is 1 for semantic, learned for unrelated (Eq. 18).
    EXPECT_FLOAT_EQ(plan.preserve_prob[3], 1.0f);
    EXPECT_FLOAT_EQ(plan.preserve_prob[0], 0.5f);
  }
}

TEST(AugmentationPlanTest, RhoControlsEligibleDropCount) {
  Rng rng(2);
  std::vector<float> k = {0.1f, 0.2f, 0.15f, 0.12f, 5.0f, 6.0f};
  std::vector<float> keep(6, 0.5f);
  AugmentationPlan plan = BuildAugmentationPlan(
      k, keep, AugmentationMode::kLipschitz, 0.5, &rng);
  // (1 - rho)|V| = 3 nodes dropped, all from the 4 unrelated ones.
  int dropped = 0;
  for (int v = 0; v < 4; ++v) dropped += (plan.keep_sample[v] == 0);
  EXPECT_EQ(dropped, 3);
  // Complement: 2 related nodes, rho = 0.5 -> 1 dropped among {4, 5}.
  int dropped_rel = (plan.keep_complement[4] == 0) +
                    (plan.keep_complement[5] == 0);
  EXPECT_EQ(dropped_rel, 1);
  // Unrelated nodes are kept in the complement view.
  for (int v = 0; v < 4; ++v) EXPECT_EQ(plan.keep_complement[v], 1);
}

TEST(AugmentationPlanTest, DropWeightsFollowInversePreservation) {
  // A node with tiny learned keep probability should be dropped far more
  // often than one with a large probability.
  std::vector<float> k = {0.1f, 0.1f, 0.1f, 9.0f};  // node 3 semantic
  std::vector<float> keep = {0.05f, 0.95f, 0.95f, 0.5f};
  Rng rng(3);
  int node0_dropped = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    AugmentationPlan plan = BuildAugmentationPlan(
        k, keep, AugmentationMode::kLipschitz, 0.75, &rng);  // drop 1 node
    node0_dropped += (plan.keep_sample[0] == 0);
  }
  EXPECT_GT(node0_dropped, trials / 2);
}

TEST(AugmentationPlanTest, RandomModeDropsUniformly) {
  Rng rng(4);
  std::vector<float> keep(10, 0.5f);
  AugmentationPlan plan = BuildAugmentationPlan(
      {}, keep, AugmentationMode::kRandom, 0.9, &rng);
  int kept = std::accumulate(plan.keep_sample.begin(), plan.keep_sample.end(),
                             0);
  EXPECT_EQ(kept, 9);  // (1 - rho) of all nodes dropped
  // Binary constants are untouched in random mode.
  for (uint8_t c : plan.binary_semantic) EXPECT_EQ(c, 1);
}

TEST(AugmentationPlanTest, LearnableOnlyModeIgnoresLipschitz) {
  Rng rng(5);
  std::vector<float> k = {100.0f, 100.0f, 0.1f, 0.1f};
  std::vector<float> keep = {0.9f, 0.9f, 0.9f, 0.9f};
  AugmentationPlan plan = BuildAugmentationPlan(
      k, keep, AugmentationMode::kLearnableOnly, 0.5, &rng);
  // Without binarization every node is eligible: 2 of 4 dropped.
  int kept = std::accumulate(plan.keep_sample.begin(), plan.keep_sample.end(),
                             0);
  EXPECT_EQ(kept, 2);
  for (uint8_t c : plan.binary_semantic) EXPECT_EQ(c, 0);
}

TEST(ApplyNodeDropTest, ProducesInducedSubgraph) {
  Graph g = testing::HouseGraph(3);
  Graph view = ApplyNodeDrop(g, {1, 1, 0, 1, 1});
  EXPECT_EQ(view.num_nodes(), 4);
  EXPECT_TRUE(view.Validate().ok());
}

TEST(MaskBatchTest, ZeroesFeaturesAndFiltersEdges) {
  Graph a = testing::PathGraph3(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a});
  GraphBatch masked = MaskBatch(batch, {1, 0, 1});
  EXPECT_EQ(masked.num_nodes, 3);  // node count preserved
  // Node 1's features zeroed.
  EXPECT_FLOAT_EQ(masked.features.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(masked.features.At(1, 1), 0.0f);
  // Node 0's features intact.
  EXPECT_FLOAT_EQ(masked.features.At(0, 0), a.feature(0, 0));
  // All edges touched node 1 in a path graph -> none remain.
  EXPECT_TRUE(masked.edge_src.empty());
}

TEST(MaskBatchTest, KeepAllIsIdentity) {
  Graph a = testing::HouseGraph(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a});
  GraphBatch masked = MaskBatch(batch, std::vector<uint8_t>(5, 1));
  EXPECT_EQ(masked.edge_src, batch.edge_src);
  EXPECT_EQ(masked.features.values(), batch.features.values());
}

}  // namespace
}  // namespace sgcl
