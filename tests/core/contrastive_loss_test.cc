#include "core/contrastive_loss.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

TEST(SemanticInfoNceTest, AlignedPairsGiveLowerLoss) {
  // Anchors equal to their samples (perfect alignment) vs anchors equal
  // to *other* samples (misalignment).
  Tensor z = Tensor::FromVector({3, 4},
                                {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0});
  Tensor aligned = SemanticInfoNceLoss(z, z, 0.2f);
  // Rotate rows: anchor i pairs with sample i+1 (bad positives).
  Tensor rotated = Tensor::FromVector({3, 4},
                                      {0, 1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0});
  Tensor misaligned = SemanticInfoNceLoss(z, rotated, 0.2f);
  EXPECT_LT(aligned.item(), misaligned.item());
}

TEST(SemanticInfoNceTest, InvariantToEmbeddingScale) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 2});
  Tensor b = Tensor::FromVector({2, 3}, {2, 1, 0, 1, 1, -1});
  const float l1 = SemanticInfoNceLoss(a, b, 0.5f).item();
  const float l2 =
      SemanticInfoNceLoss(MulScalar(a, 10.0f), MulScalar(b, 0.1f), 0.5f)
          .item();
  EXPECT_NEAR(l1, l2, 1e-4f);
}

TEST(SemanticInfoNceTest, LowerTemperatureSharpensLoss) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::FromVector({2, 2}, {1, 0.1f, 0.1f, 1});
  // With aligned positives, smaller tau drives the loss lower (sharper).
  EXPECT_LT(SemanticInfoNceLoss(a, b, 0.1f).item(),
            SemanticInfoNceLoss(a, b, 1.0f).item());
}

TEST(SemanticInfoNceTest, GradCheck) {
  Tensor sample = Tensor::FromVector({3, 2}, {0.4f, -1, 1.2f, 0.6f, -0.8f, 1});
  GradCheck(Tensor::FromVector({3, 2}, {0.7f, -1.3f, 2.1f, -0.4f, 1.6f, -2.2f}),
            [&](const Tensor& x) {
              return SemanticInfoNceLoss(x, sample, 0.5f);
            });
  GradCheck(sample, [&](const Tensor& x) {
    return SemanticInfoNceLoss(
        Tensor::FromVector({3, 2}, {0.7f, -1.3f, 2.1f, -0.4f, 1.6f, -2.2f}), x,
        0.5f);
  });
}

TEST(ComplementLossTest, FartherComplementGivesLowerLoss) {
  Tensor anchor = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor sample = Tensor::FromVector({2, 2}, {1, 0.05f, 0.05f, 1});
  // Complement aligned with the anchors (bad: they're negatives).
  Tensor comp_near = Tensor::FromVector({2, 2}, {1, 0.1f, 0.1f, 1});
  // Complement orthogonal-ish to anchors (good).
  Tensor comp_far = Tensor::FromVector({2, 2}, {-1, 0.3f, 0.3f, -1});
  EXPECT_GT(ComplementLoss(anchor, sample, comp_near, 0.2f).item(),
            ComplementLoss(anchor, sample, comp_far, 0.2f).item());
}

TEST(ComplementLossTest, GradCheck) {
  Tensor sample = Tensor::FromVector({2, 2}, {0.4f, -1, 1.2f, 0.6f});
  Tensor comp = Tensor::FromVector({2, 2}, {-0.5f, 0.9f, 0.2f, -1.1f});
  GradCheck(Tensor::FromVector({2, 2}, {0.7f, -1.3f, 2.1f, -0.4f}),
            [&](const Tensor& x) {
              return ComplementLoss(x, sample, comp, 0.5f);
            });
  GradCheck(comp, [&](const Tensor& x) {
    return ComplementLoss(
        Tensor::FromVector({2, 2}, {0.7f, -1.3f, 2.1f, -0.4f}), sample, x,
        0.5f);
  });
}

TEST(WeightNormTest, SumsFrobeniusNorms) {
  Tensor w1 = Tensor::FromVector({1, 2}, {3, 4});   // norm 5
  Tensor w2 = Tensor::FromVector({2, 1}, {0, 2});   // norm 2
  EXPECT_NEAR(WeightNormRegularizer({w1, w2}).item(), 7.0f, 1e-4f);
}

TEST(WeightNormTest, GradCheck) {
  GradCheck(Tensor::FromVector({2, 2}, {0.7f, -1.3f, 2.1f, -0.4f}),
            [](const Tensor& x) { return WeightNormRegularizer({x}); });
}

}  // namespace
}  // namespace sgcl
