// Crash-safe checkpoint tests: TrainState round-trips, config
// fingerprinting, adversarial corruption (truncation at every byte,
// per-section bit flips, wrong magic/version/shape), checkpoint-file
// retention, and the bitwise-identical resume contract.
#include "core/train_state.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"

namespace sgcl {
namespace {

std::string TmpDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

GraphDataset SmallDataset(uint64_t seed = 21) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;  // ~20 MUTAG-like graphs
  opt.node_cap = 20;
  opt.seed = seed;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

SgclConfig SmallConfig(int64_t feat_dim, int epochs = 4) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  cfg.batch_size = 8;
  cfg.epochs = epochs;
  return cfg;
}

// A fully-populated synthetic TrainState with every field non-default.
TrainState MakeState() {
  TrainState state;
  state.config_fingerprint = 0x0123456789abcdefULL;
  state.model_params = std::string("model-bytes\x00\x01\x02", 14);
  state.optimizer.t = 42;
  state.optimizer.m = {{0.1f, 0.2f}, {0.3f}};
  state.optimizer.v = {{1.1f, 1.2f}, {1.3f}};
  Rng rng(99);
  rng.Normal();  // leaves a cached Box-Muller spare in the state
  state.rng = rng.GetState();
  state.next_epoch = 3;
  state.total_epochs = 7;
  state.total_batches = 55;
  state.order = {4, 0, 2, 1, 3};
  state.epoch_losses = {1.5f, 1.25f, 1.0f};
  state.epoch_seconds = {0.5, 0.25, 0.125};
  return state;
}

TEST(ConfigFingerprintTest, StableAndSensitive) {
  const SgclConfig base = SmallConfig(7);
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(base));
  struct Case {
    const char* name;
    void (*mutate)(SgclConfig*);
  };
  const Case cases[] = {
      {"arch", [](SgclConfig* c) { c->encoder.arch = GnnArch::kGcn; }},
      {"hidden_dim", [](SgclConfig* c) { c->encoder.hidden_dim = 16; }},
      {"num_layers", [](SgclConfig* c) { c->encoder.num_layers = 3; }},
      {"layer_norm", [](SgclConfig* c) { c->encoder.use_layer_norm = true; }},
      {"proj_dim", [](SgclConfig* c) { c->proj_dim = 4; }},
      {"tau", [](SgclConfig* c) { c->tau = 0.3f; }},
      {"lambda_c", [](SgclConfig* c) { c->lambda_c = 0.5f; }},
      {"rho", [](SgclConfig* c) { c->rho = 0.5; }},
      {"semantic_pooling", [](SgclConfig* c) { c->semantic_pooling = false; }},
      {"learning_rate", [](SgclConfig* c) { c->learning_rate = 2e-3f; }},
      {"epochs", [](SgclConfig* c) { c->epochs = 5; }},
      {"batch_size", [](SgclConfig* c) { c->batch_size = 4; }},
      {"grad_clip", [](SgclConfig* c) { c->grad_clip = 1.0f; }},
  };
  for (const Case& c : cases) {
    SgclConfig mutated = base;
    c.mutate(&mutated);
    EXPECT_NE(ConfigFingerprint(mutated), ConfigFingerprint(base)) << c.name;
  }
}

TEST(TrainStateTest, SerializeParseRoundTrip) {
  const TrainState state = MakeState();
  const std::string bytes = SerializeTrainState(state);
  auto parsed = ParseTrainState(bytes, "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->config_fingerprint, state.config_fingerprint);
  EXPECT_EQ(parsed->model_params, state.model_params);
  EXPECT_EQ(parsed->optimizer.t, state.optimizer.t);
  EXPECT_EQ(parsed->optimizer.m, state.optimizer.m);
  EXPECT_EQ(parsed->optimizer.v, state.optimizer.v);
  EXPECT_TRUE(parsed->rng == state.rng);
  EXPECT_EQ(parsed->next_epoch, state.next_epoch);
  EXPECT_EQ(parsed->total_epochs, state.total_epochs);
  EXPECT_EQ(parsed->total_batches, state.total_batches);
  EXPECT_EQ(parsed->order, state.order);
  EXPECT_EQ(parsed->epoch_losses, state.epoch_losses);
  EXPECT_EQ(parsed->epoch_seconds, state.epoch_seconds);
}

TEST(TrainStateTest, RestoredRngContinuesTheStream) {
  Rng original(123);
  original.Normal();
  TrainState state = MakeState();
  state.rng = original.GetState();
  auto parsed = ParseTrainState(SerializeTrainState(state), "test");
  ASSERT_TRUE(parsed.ok());
  Rng restored(1);  // seed is irrelevant once SetState runs
  restored.SetState(parsed->rng);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(restored.Next(), original.Next()) << "draw " << i;
    EXPECT_EQ(restored.Normal(), original.Normal()) << "draw " << i;
  }
}

TEST(TrainStateTest, TruncationAtEveryByteFailsCleanly) {
  const std::string bytes = SerializeTrainState(MakeState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto parsed = ParseTrainState(bytes.substr(0, len), "trunc");
    EXPECT_FALSE(parsed.ok()) << "accepted a " << len << "-byte prefix of "
                              << bytes.size() << " bytes";
  }
  EXPECT_TRUE(ParseTrainState(bytes, "full").ok());
}

TEST(TrainStateTest, TrailingGarbageIsRejected) {
  const std::string bytes = SerializeTrainState(MakeState()) + "x";
  auto parsed = ParseTrainState(bytes, "trailing");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing"), std::string::npos);
}

TEST(TrainStateTest, BitFlipInEachSectionIsCaughtByCrc) {
  const std::string bytes = SerializeTrainState(MakeState());
  // Walk the container structurally: 12-byte file header, then per
  // section a 12-byte header, payload, 4-byte CRC.
  size_t pos = 12;
  int sections = 0;
  while (pos < bytes.size()) {
    int64_t payload_size = 0;
    std::memcpy(&payload_size, bytes.data() + pos + 4, sizeof(payload_size));
    ASSERT_GE(payload_size, 0);
    const size_t payload_start = pos + 12;
    if (payload_size > 0) {
      // Flip one bit in the middle of this payload.
      std::string corrupt = bytes;
      corrupt[payload_start + static_cast<size_t>(payload_size) / 2] ^= 0x10;
      auto parsed = ParseTrainState(corrupt, "flip");
      ASSERT_FALSE(parsed.ok()) << "section " << sections;
      EXPECT_NE(parsed.status().message().find("CRC"), std::string::npos)
          << parsed.status().ToString();
    }
    pos = payload_start + static_cast<size_t>(payload_size) + 4;
    ++sections;
  }
  EXPECT_EQ(sections, 5);
}

TEST(TrainStateTest, WrongMagicAndVersionAreRejected) {
  std::string bytes = SerializeTrainState(MakeState());
  {
    std::string bad = bytes;
    bad[0] ^= 0xFF;
    auto parsed = ParseTrainState(bad, "magic");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("not an SGCL checkpoint"),
              std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[4] = 9;  // version 9
    auto parsed = ParseTrainState(bad, "version");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
  }
}

TEST(TrainStateTest, MissingSectionIsNamed) {
  // A container with only the model section is a valid v2 file but not a
  // valid training checkpoint.
  std::vector<CheckpointSection> sections;
  sections.push_back(
      {static_cast<uint32_t>(CheckpointSectionId::kModel), "payload"});
  auto parsed = ParseTrainState(SerializeCheckpointV2(sections), "partial");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("config"), std::string::npos);
}

TEST(TrainStateTest, SaveLoadRoundTripsThroughDisk) {
  const std::string dir = TmpDir("train_state_io");
  const TrainState state = MakeState();
  const std::string path = CheckpointFileName(dir, state.next_epoch);
  ASSERT_TRUE(SaveTrainCheckpoint(state, path).ok());
  auto loaded = LoadTrainCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->order, state.order);
  EXPECT_TRUE(loaded->rng == state.rng);
  auto missing = LoadTrainCheckpoint(dir + "/nope.sgcl");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFilesTest, NamingSortsByEpoch) {
  EXPECT_EQ(CheckpointFileName("d", 7), "d/ckpt-000007.sgcl");
  EXPECT_EQ(CheckpointFileName("d", 123456), "d/ckpt-123456.sgcl");
  EXPECT_LT(CheckpointFileName("d", 9), CheckpointFileName("d", 10));
}

TEST(CheckpointFilesTest, FindLatestIgnoresTempAndForeignFiles) {
  const std::string dir = TmpDir("find_latest");
  EXPECT_EQ(FindLatestCheckpoint(dir).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(AtomicWriteFile(CheckpointFileName(dir, 2), "two").ok());
  ASSERT_TRUE(AtomicWriteFile(CheckpointFileName(dir, 10), "ten").ok());
  // Distractors: a crash-orphaned temp file "newer" than every
  // checkpoint, and unrelated names.
  ASSERT_TRUE(
      AtomicWriteFile(CheckpointFileName(dir, 99) + ".tmp", "orphan").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/notes.txt", "n").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/ckpt-abc.sgcl", "bad digits").ok());
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, CheckpointFileName(dir, 10));
  EXPECT_EQ(FindLatestCheckpoint(dir + "/missing").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointFilesTest, PruneKeepsNewest) {
  const std::string dir = TmpDir("prune");
  for (int epoch : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(AtomicWriteFile(CheckpointFileName(dir, epoch), "x").ok());
  }
  ASSERT_TRUE(PruneCheckpoints(dir, 2).ok());
  EXPECT_FALSE(std::filesystem::exists(CheckpointFileName(dir, 3)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 4)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 5)));
  // keep_last <= 0 keeps everything.
  ASSERT_TRUE(PruneCheckpoints(dir, 0).ok());
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 4)));
}

TEST(ApplyModuleParamsTest, ShapeMismatchLeavesModuleUntouched) {
  Rng rng(5);
  Linear source(2, 3, &rng);
  Linear target(3, 2, &rng);
  const std::vector<float> before = target.weight().values();
  const Status st =
      ApplyModuleParams(SerializeModuleParams(source), &target, "mismatch");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shape"), std::string::npos);
  EXPECT_EQ(target.weight().values(), before);
}

TEST(TrainerCheckpointTest, SavesOnCadenceAndFinalEpoch) {
  const std::string dir = TmpDir("trainer_cadence");
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/5);
  SgclTrainer trainer(cfg, /*seed=*/3);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 2;
  options.checkpoint_keep_last = 0;
  std::vector<int> checkpoint_epochs;
  options.on_checkpoint = [&](const CheckpointReport& report) {
    checkpoint_epochs.push_back(report.epoch);
    EXPECT_TRUE(std::filesystem::exists(report.path)) << report.path;
    EXPECT_GE(report.seconds, 0.0);
  };
  const int64_t saves_before =
      MetricsRegistry::Global().GetCounter("checkpoint/saves")->value();
  auto stats = trainer.Pretrain(ds, {}, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(checkpoint_epochs, (std::vector<int>{1, 3, 4}));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 2)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 4)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 5)));
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("checkpoint/saves")->value() -
          saves_before,
      3);
  // Checkpointing shows up as a stage in the run's breakdown.
  EXPECT_TRUE(stats->stage_seconds.count("checkpoint"));
}

TEST(TrainerCheckpointTest, RetentionPrunesOldCheckpoints) {
  const std::string dir = TmpDir("trainer_retention");
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/4);
  SgclTrainer trainer(cfg, /*seed=*/3);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  options.checkpoint_keep_last = 2;
  ASSERT_TRUE(trainer.Pretrain(ds, {}, options).ok());
  EXPECT_FALSE(std::filesystem::exists(CheckpointFileName(dir, 1)));
  EXPECT_FALSE(std::filesystem::exists(CheckpointFileName(dir, 2)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 3)));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFileName(dir, 4)));
}

TEST(TrainerCheckpointTest, ResumeReproducesUninterruptedRunBitwise) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/4);

  // Baseline: one uninterrupted run.
  SgclTrainer baseline(cfg, /*seed=*/17);
  auto full = baseline.Pretrain(ds);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->epoch_losses.size(), 4u);

  // Interrupted run: same seed, checkpointing every epoch, cancelled
  // after epoch 2 (the cancel is only observed at the next batch poll).
  const std::string dir = TmpDir("trainer_resume");
  SgclTrainer interrupted(cfg, /*seed=*/17);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  int epochs_done = 0;
  options.on_epoch_end = [&](const EpochReport&) { ++epochs_done; };
  options.should_cancel = [&]() { return epochs_done >= 2; };
  auto partial = interrupted.Pretrain(ds, {}, options);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->cancelled);
  ASSERT_EQ(partial->epoch_losses.size(), 2u);

  // Resume in a "new process": a fresh trainer with a different seed —
  // every bit of trainer state must come from the checkpoint.
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, CheckpointFileName(dir, 2));
  SgclTrainer resumed(cfg, /*seed=*/9999);
  PretrainOptions resume_options;
  resume_options.resume_from = *latest;
  auto rest = resumed.Pretrain(ds, {}, resume_options);
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  EXPECT_FALSE(rest->cancelled);

  // The resumed stats hold the full run: restored prefix + new epochs,
  // bitwise equal to the uninterrupted baseline.
  ASSERT_EQ(rest->epoch_losses.size(), full->epoch_losses.size());
  for (size_t e = 0; e < full->epoch_losses.size(); ++e) {
    EXPECT_EQ(rest->epoch_losses[e], full->epoch_losses[e]) << "epoch " << e;
  }
  EXPECT_EQ(rest->total_batches, full->total_batches);
}

TEST(TrainerCheckpointTest, ResumeRejectsMismatchedConfig) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/2);
  const std::string dir = TmpDir("trainer_resume_mismatch");
  SgclTrainer trainer(cfg, /*seed=*/3);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  ASSERT_TRUE(trainer.Pretrain(ds, {}, options).ok());
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());

  SgclConfig other = cfg;
  other.tau = 0.5f;  // different dynamics -> different fingerprint
  SgclTrainer mismatched(other, /*seed=*/3);
  PretrainOptions resume_options;
  resume_options.resume_from = *latest;
  auto st = mismatched.Pretrain(ds, {}, resume_options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("fingerprint"), std::string::npos);
}

TEST(TrainerCheckpointTest, ResumeRejectsDifferentIndexSet) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/2);
  const std::string dir = TmpDir("trainer_resume_indices");
  SgclTrainer trainer(cfg, /*seed=*/3);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  ASSERT_TRUE(trainer.Pretrain(ds, {}, options).ok());
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());

  SgclTrainer resumed(cfg, /*seed=*/3);
  PretrainOptions resume_options;
  resume_options.resume_from = *latest;
  auto st = resumed.Pretrain(ds, {0, 1, 2, 3}, resume_options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("index set"), std::string::npos);
}

TEST(TrainerCheckpointTest, InvalidCheckpointEveryIsRejected) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim(), /*epochs=*/2);
  SgclTrainer trainer(cfg, /*seed=*/3);
  PretrainOptions options;
  options.checkpoint_dir = TmpDir("trainer_bad_every");
  options.checkpoint_every = 0;
  auto st = trainer.Pretrain(ds, {}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("checkpoint_every"), std::string::npos);
}

}  // namespace
}  // namespace sgcl
