// Trainer API tests: config validation, the observer-based Pretrain
// options, cancellation, error Statuses, and the no-observability-cost
// invariant (attaching an observer must not perturb training).
#include "core/sgcl_trainer.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

GraphDataset SmallDataset(uint64_t seed = 21) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;  // ~20 MUTAG-like graphs
  opt.node_cap = 20;
  opt.seed = seed;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

SgclConfig SmallConfig(int64_t feat_dim) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  cfg.encoder.hidden_dim = 16;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 16;
  cfg.batch_size = 8;
  cfg.epochs = 3;
  return cfg;
}

TEST(SgclConfigValidateTest, DefaultConfigsAreValid) {
  EXPECT_TRUE(MakeUnsupervisedConfig(7).Validate().ok());
  EXPECT_TRUE(MakeTransferConfig(7).Validate().ok());
}

TEST(SgclConfigValidateTest, RejectsBadFields) {
  struct Case {
    const char* name;
    void (*mutate)(SgclConfig*);
  };
  const Case cases[] = {
      {"in_dim", [](SgclConfig* c) { c->encoder.in_dim = 0; }},
      {"hidden_dim", [](SgclConfig* c) { c->encoder.hidden_dim = -1; }},
      {"num_layers", [](SgclConfig* c) { c->encoder.num_layers = 0; }},
      {"proj_dim", [](SgclConfig* c) { c->proj_dim = 0; }},
      {"tau", [](SgclConfig* c) { c->tau = 0.0f; }},
      {"tau", [](SgclConfig* c) { c->tau = -0.5f; }},
      {"lambda_c", [](SgclConfig* c) { c->lambda_c = -0.1f; }},
      {"lambda_w", [](SgclConfig* c) { c->lambda_w = -1.0f; }},
      {"rho", [](SgclConfig* c) { c->rho = -0.01; }},
      {"rho", [](SgclConfig* c) { c->rho = 1.01; }},
      {"max_view_nodes", [](SgclConfig* c) { c->max_view_nodes = 0; }},
      {"learning_rate", [](SgclConfig* c) { c->learning_rate = 0.0f; }},
      {"epochs", [](SgclConfig* c) { c->epochs = 0; }},
      {"batch_size", [](SgclConfig* c) { c->batch_size = 1; }},
      {"grad_clip", [](SgclConfig* c) { c->grad_clip = 0.0f; }},
  };
  for (const Case& c : cases) {
    SgclConfig cfg = MakeUnsupervisedConfig(7);
    c.mutate(&cfg);
    Status st = cfg.Validate();
    EXPECT_FALSE(st.ok()) << c.name;
    // The message names the offending field.
    EXPECT_NE(st.message().find(c.name), std::string::npos) << st.ToString();
  }
}

TEST(SgclTrainerTest, PretrainReturnsPerEpochTimings) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  SgclTrainer trainer(cfg, /*seed=*/3);
  auto stats = trainer.Pretrain(ds);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->cancelled);
  ASSERT_EQ(stats->epoch_losses.size(), 3u);
  ASSERT_EQ(stats->epoch_seconds.size(), 3u);
  EXPECT_GT(stats->total_batches, 0);
  EXPECT_GE(stats->total_seconds, 0.0);
  for (double s : stats->epoch_seconds) EXPECT_GE(s, 0.0);
  // The instrumented stages show up in the whole-run breakdown.
  for (const char* stage : {"generator", "augmentation", "encode", "loss",
                            "backward", "optimizer"}) {
    ASSERT_TRUE(stats->stage_seconds.count(stage)) << stage;
    EXPECT_GE(stats->stage_seconds.at(stage), 0.0) << stage;
  }
}

TEST(SgclTrainerTest, ObserverDoesNotPerturbTraining) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());

  SgclTrainer plain(cfg, /*seed=*/11);
  auto plain_stats = plain.Pretrain(ds);
  ASSERT_TRUE(plain_stats.ok());

  std::vector<EpochReport> reports;
  PretrainOptions options;
  options.on_epoch_end = [&](const EpochReport& r) { reports.push_back(r); };
  options.should_cancel = [] { return false; };
  SgclTrainer observed(cfg, /*seed=*/11);
  auto observed_stats = observed.Pretrain(ds, {}, options);
  ASSERT_TRUE(observed_stats.ok());

  // Bitwise-identical losses: the observer only reads timings, so the
  // training computation (RNG stream included) must be untouched.
  ASSERT_EQ(plain_stats->epoch_losses.size(),
            observed_stats->epoch_losses.size());
  for (size_t e = 0; e < plain_stats->epoch_losses.size(); ++e) {
    EXPECT_EQ(plain_stats->epoch_losses[e], observed_stats->epoch_losses[e])
        << "epoch " << e;
  }
  ASSERT_EQ(reports.size(), 3u);
  for (size_t e = 0; e < reports.size(); ++e) {
    EXPECT_EQ(reports[e].epoch, static_cast<int>(e));
    EXPECT_EQ(reports[e].total_epochs, cfg.epochs);
    EXPECT_EQ(reports[e].mean_loss, observed_stats->epoch_losses[e]);
    EXPECT_GT(reports[e].batches, 0);
  }
}

TEST(SgclTrainerTest, TraceSamplingDoesNotPerturbTraining) {
  // Sampling draws from a deterministic atomic counter, never from the
  // training RNG, so every-batch tracing must leave the losses bitwise
  // identical to an untraced run.
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());

  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
  SgclTrainer untraced(cfg, /*seed=*/17);
  auto untraced_stats = untraced.Pretrain(ds);
  ASSERT_TRUE(untraced_stats.ok());

  TraceRing::Global().SetSampleRate(1.0);
  TraceRing::Global().SetCapacity(16);
  TraceRing::Global().Clear();
  SgclTrainer traced(cfg, /*seed=*/17);
  auto traced_stats = traced.Pretrain(ds);
  ASSERT_TRUE(traced_stats.ok());

  ASSERT_EQ(untraced_stats->epoch_losses.size(),
            traced_stats->epoch_losses.size());
  for (size_t e = 0; e < untraced_stats->epoch_losses.size(); ++e) {
    EXPECT_EQ(untraced_stats->epoch_losses[e], traced_stats->epoch_losses[e])
        << "epoch " << e;
  }
  // And the run actually produced batch-rooted traces.
  EXPECT_GT(TraceRing::Global().committed_count(), 0u);
  EXPECT_NE(TraceRing::Global().ListJson(0, 1, true).find("train/batch"),
            std::string::npos);

  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
}

TEST(SgclTrainerTest, CancellationStopsEarly) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  cfg.epochs = 50;  // would be slow if cancellation failed
  int polls = 0;
  PretrainOptions options;
  options.should_cancel = [&polls] { return ++polls > 3; };
  SgclTrainer trainer(cfg, /*seed=*/5);
  auto stats = trainer.Pretrain(ds, {}, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->cancelled);
  EXPECT_LT(stats->epoch_losses.size(), 50u);
}

TEST(RecordEpochLossMetricsTest, NonfiniteLossIsCountedNotMasked) {
  Gauge* loss_gauge =
      MetricsRegistry::Global().GetGauge("train/last_epoch_loss");
  Counter* nonfinite =
      MetricsRegistry::Global().GetCounter("train/nonfinite_loss");
  nonfinite->Reset();

  RecordEpochLossMetrics(0.5f);
  EXPECT_DOUBLE_EQ(loss_gauge->value(), 0.5);
  EXPECT_EQ(nonfinite->value(), 0);

  RecordEpochLossMetrics(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(nonfinite->value(), 1);
  // The gauge carries the diverged value; JSON export turns it into null
  // rather than a healthy-looking number.
  EXPECT_TRUE(std::isnan(loss_gauge->value()));
  EXPECT_EQ(JsonDouble(loss_gauge->value()), "null");

  RecordEpochLossMetrics(std::numeric_limits<float>::infinity());
  EXPECT_EQ(nonfinite->value(), 2);
  EXPECT_EQ(JsonDouble(loss_gauge->value()), "null");

  RecordEpochLossMetrics(0.25f);
  EXPECT_EQ(nonfinite->value(), 2);  // finite losses don't count
  EXPECT_DOUBLE_EQ(loss_gauge->value(), 0.25);
  nonfinite->Reset();
}

TEST(SgclTrainerTest, RejectsTooFewGraphs) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  SgclTrainer trainer(cfg, /*seed=*/1);
  auto stats = trainer.Pretrain(ds, {0});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(SgclTrainerTest, RejectsOutOfRangeIndices) {
  GraphDataset ds = SmallDataset();
  SgclConfig cfg = SmallConfig(ds.feat_dim());
  SgclTrainer trainer(cfg, /*seed=*/1);
  auto stats = trainer.Pretrain(ds, {0, ds.size()});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sgcl
