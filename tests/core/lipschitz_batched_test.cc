// Golden tests for the batched/parallel exact Lipschitz generator: the
// block-diagonal masked-view path must reproduce the naive per-node
// re-encoding loop (ExactConstantsReference) on graphs with self-loops,
// isolated nodes, and degenerate sizes, for every chunking and thread
// count.
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "core/lipschitz_generator.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

EncoderConfig SmallEncoderConfig(int64_t in_dim) {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = in_dim;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  return cfg;
}

// Random graph with controllable self-loops and a guaranteed isolated
// node (the last one, when n >= 3).
Graph RandomGraph(int64_t n, int64_t feat_dim, bool self_loops, Rng* rng) {
  Graph g(n, feat_dim);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t j = 0; j < feat_dim; ++j) {
      g.set_feature(v, j, static_cast<float>(rng->Uniform()) - 0.5f);
    }
  }
  const int64_t wired = n >= 3 ? n - 1 : n;  // keep the last node isolated
  for (int64_t v = 1; v < wired; ++v) {
    g.AddUndirectedEdge(v, rng->UniformInt(v));
  }
  for (int64_t e = 0; e < wired; ++e) {
    const int64_t a = rng->UniformInt(wired), b = rng->UniformInt(wired);
    if (a != b) g.AddUndirectedEdge(a, b);
  }
  if (self_loops && wired > 0) {
    g.AddUndirectedEdge(0, 0);
    if (wired > 2) g.AddUndirectedEdge(2, 2);
  }
  return g;
}

void ExpectNear(const std::vector<float>& a, const std::vector<float>& b,
                float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "node " << i;
  }
}

class LipschitzBatchedTest : public ::testing::Test {
 protected:
  ~LipschitzBatchedTest() override { SetParallelThreads(0); }
};

TEST_F(LipschitzBatchedTest, MatchesNaiveReferenceOnRandomGraphs) {
  Rng rng(7);
  GnnEncoder enc(SmallEncoderConfig(4), &rng);
  for (const bool self_loops : {false, true}) {
    for (const int64_t n : {2, 5, 9, 17}) {
      Graph g = RandomGraph(n, 4, self_loops, &rng);
      LipschitzGenerator gen(&enc, LipschitzMode::kExact);
      ExpectNear(gen.ComputeConstants(g), gen.ExactConstantsReference(g),
                 1e-5f);
    }
  }
}

// The fused GIN masked-view kernel handles LayerNorm between
// convolutions; the per-row normalization must match the tape encoder.
TEST_F(LipschitzBatchedTest, MatchesNaiveReferenceWithLayerNorm) {
  Rng rng(19);
  EncoderConfig cfg = SmallEncoderConfig(4);
  cfg.use_layer_norm = true;
  GnnEncoder enc(cfg, &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  for (const int64_t n : {2, 7, 15}) {
    Graph g = RandomGraph(n, 4, /*self_loops=*/true, &rng);
    ExpectNear(gen.ComputeConstants(g), gen.ExactConstantsReference(g),
               1e-5f);
  }
}

// Non-GIN encoders take the block-diagonal batched tape fallback rather
// than the fused kernel; it must agree with the naive loop for every
// architecture.
TEST_F(LipschitzBatchedTest, MatchesNaiveReferenceOnOtherArchitectures) {
  Rng rng(20);
  for (const GnnArch arch : {GnnArch::kGcn, GnnArch::kGat, GnnArch::kSage}) {
    EncoderConfig cfg = SmallEncoderConfig(3);
    cfg.arch = arch;
    GnnEncoder enc(cfg, &rng);
    LipschitzGenerator gen(&enc, LipschitzMode::kExact, /*max_view_nodes=*/24);
    Graph g = RandomGraph(9, 3, /*self_loops=*/true, &rng);
    ExpectNear(gen.ComputeConstants(g), gen.ExactConstantsReference(g),
               1e-5f);
  }
}

TEST_F(LipschitzBatchedTest, MatchesReferenceForEveryChunking) {
  Rng rng(8);
  GnnEncoder enc(SmallEncoderConfig(3), &rng);
  Graph g = RandomGraph(11, 3, /*self_loops=*/true, &rng);
  LipschitzGenerator oracle(&enc, LipschitzMode::kExact);
  const std::vector<float> want = oracle.ExactConstantsReference(g);
  // max_view_nodes below n forces one view per chunk; larger values cover
  // partial and single-chunk batching.
  for (const int64_t cap : {1, 11, 22, 23, 40, 121, 4096}) {
    LipschitzGenerator gen(&enc, LipschitzMode::kExact, cap);
    ExpectNear(gen.ComputeConstants(g), want, 1e-5f);
  }
}

TEST_F(LipschitzBatchedTest, DegenerateGraphSizes) {
  Rng rng(9);
  GnnEncoder enc(SmallEncoderConfig(2), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  Graph empty(0, 2);
  EXPECT_TRUE(gen.ComputeConstants(empty).empty());
  Graph single(1, 2);
  single.set_feature(0, 0, 1.0f);
  ExpectNear(gen.ComputeConstants(single),
             gen.ExactConstantsReference(single), 1e-5f);
  Graph self_loop_only(1, 2);
  self_loop_only.set_feature(0, 1, -0.5f);
  self_loop_only.AddUndirectedEdge(0, 0);
  ExpectNear(gen.ComputeConstants(self_loop_only),
             gen.ExactConstantsReference(self_loop_only), 1e-5f);
}

TEST_F(LipschitzBatchedTest, MultiGraphBatchMatchesPerGraphConcatenation) {
  Rng rng(10);
  GnnEncoder enc(SmallEncoderConfig(3), &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  Graph a = testing::PathGraph3(3);
  Graph b = testing::HouseGraph(3);
  Graph c = RandomGraph(7, 3, /*self_loops=*/true, &rng);
  std::vector<float> batched =
      gen.ComputeConstants(std::vector<const Graph*>{&a, &b, &c});
  std::vector<float> want;
  for (const Graph* g : {&a, &b, &c}) {
    std::vector<float> k = gen.ExactConstantsReference(*g);
    want.insert(want.end(), k.begin(), k.end());
  }
  ExpectNear(batched, want, 1e-5f);
}

TEST_F(LipschitzBatchedTest, BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(11);
  GnnEncoder enc(SmallEncoderConfig(4), &rng);
  Graph a = RandomGraph(13, 4, /*self_loops=*/true, &rng);
  Graph b = RandomGraph(6, 4, /*self_loops=*/false, &rng);
  const std::vector<const Graph*> graphs = {&a, &b};
  LipschitzGenerator gen(&enc, LipschitzMode::kExact, /*max_view_nodes=*/32);
  SetParallelThreads(1);
  const std::vector<float> serial = gen.ComputeConstants(graphs);
  for (const int threads : {2, 4, 8}) {
    SetParallelThreads(threads);
    EXPECT_EQ(serial, gen.ComputeConstants(graphs)) << threads << " threads";
  }
}

// Regression for the ApproxConstants D_T bug: it hard-coded
// has_self_loop=false, disagreeing with ExactConstants on self-loop
// graphs. A single node with only a self-loop pins the expected value:
// D_R^2 = ||h||^2 + (alpha * ||h||)^2 with alpha = 1 (softmax over one
// edge), and D_T = NodeDropTopologyDistance(1, true) = 1.
TEST_F(LipschitzBatchedTest, ApproxUsesActualSelfLoopInTopologyDistance) {
  Rng rng(12);
  GnnEncoder enc(SmallEncoderConfig(2), &rng);
  Graph g(1, 2);
  g.set_feature(0, 0, 0.7f);
  g.set_feature(0, 1, -0.3f);
  g.AddUndirectedEdge(0, 0);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  Tensor h = enc.EncodeNodes(batch.features, batch).Detach();
  double norm_sq = 0.0;
  for (int64_t j = 0; j < h.cols(); ++j) {
    norm_sq += static_cast<double>(h.At(0, j)) * h.At(0, j);
  }
  const float want = static_cast<float>(std::sqrt(2.0 * norm_sq)) /
                     NodeDropTopologyDistance(1, /*has_self_loop=*/true);
  LipschitzGenerator approx(&enc, LipschitzMode::kAttentionApprox);
  const std::vector<float> got = approx.ComputeConstants(g);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0], want, 1e-4f);
}

}  // namespace
}  // namespace sgcl
