// Wire-format tests for the serving JSON: strict parsing with
// per-graph error messages, request limits, and float32-exact response
// formatting.
#include "serve/graph_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace sgcl {
namespace serve {
namespace {

const char kValidBody[] =
    "{\"graphs\":[{\"num_nodes\":3,"
    "\"features\":[0.1,0.2,1.0,1.5,-2.0,0.0],"
    "\"edges\":[0,1,1,2]}]}";

RequestLimits DefaultLimits() { return RequestLimits{}; }

TEST(GraphJsonTest, ParsesValidRequest) {
  auto graphs = ParseGraphsRequest(kValidBody, /*feat_dim=*/2,
                                   DefaultLimits());
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  ASSERT_EQ(graphs->size(), 1u);
  const Graph& g = (*graphs)[0];
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.feat_dim(), 2);
  EXPECT_FLOAT_EQ(g.feature(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(g.feature(2, 1), 0.0f);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphJsonTest, EdgesFieldIsOptional) {
  auto graphs = ParseGraphsRequest(
      "{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3,4]}]}", 2,
      DefaultLimits());
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  EXPECT_EQ((*graphs)[0].num_directed_edges(), 0);
}

TEST(GraphJsonTest, RejectsMalformedShapes) {
  const RequestLimits limits = DefaultLimits();
  const struct {
    const char* body;
    const char* needle;  // expected fragment of the error message
  } kCases[] = {
      {"not json at all", ""},
      {"[1,2,3]", "JSON object"},
      {"{}", "\"graphs\""},
      {"{\"graphs\":{}}", "\"graphs\""},
      {"{\"graphs\":[]}", "empty"},
      {"{\"graphs\":[42]}", "graphs[0]"},
      {"{\"graphs\":[{\"features\":[1,2]}]}", "num_nodes"},
      {"{\"graphs\":[{\"num_nodes\":0,\"features\":[]}]}", "positive"},
      {"{\"graphs\":[{\"num_nodes\":1.5,\"features\":[1,2]}]}", "positive"},
      {"{\"graphs\":[{\"num_nodes\":1}]}", "features"},
      {"{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3]}]}", "expected"},
      {"{\"graphs\":[{\"num_nodes\":1,\"features\":[1,\"x\"]}]}",
       "not a number"},
      {"{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3,4],"
       "\"edges\":[0]}]}",
       "even number"},
      {"{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3,4],"
       "\"edges\":[0,5]}]}",
       "out of range"},
      {"{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3,4],"
       "\"edges\":[0,-1]}]}",
       "out of range"},
      {"{\"graphs\":[{\"num_nodes\":2,\"features\":[1,2,3,4],"
       "\"edges\":7}]}",
       "edges"},
  };
  for (const auto& test_case : kCases) {
    auto graphs = ParseGraphsRequest(test_case.body, /*feat_dim=*/2, limits);
    ASSERT_FALSE(graphs.ok()) << test_case.body;
    EXPECT_EQ(graphs.status().code(), StatusCode::kInvalidArgument)
        << test_case.body;
    EXPECT_NE(graphs.status().message().find(test_case.needle),
              std::string::npos)
        << test_case.body << " -> " << graphs.status().message();
  }
}

TEST(GraphJsonTest, TruncatedBodiesNeverCrash) {
  // Fuzz-ish sweep: every prefix of a valid body must parse-fail
  // gracefully (InvalidArgument), never crash or succeed.
  const std::string body = kValidBody;
  for (size_t len = 0; len < body.size(); ++len) {
    auto graphs =
        ParseGraphsRequest(body.substr(0, len), 2, DefaultLimits());
    EXPECT_FALSE(graphs.ok()) << "prefix length " << len;
  }
}

TEST(GraphJsonTest, EnforcesGraphAndNodeLimits) {
  RequestLimits limits;
  limits.max_graphs = 1;
  auto too_many = ParseGraphsRequest(
      "{\"graphs\":[{\"num_nodes\":1,\"features\":[1,2]},"
      "{\"num_nodes\":1,\"features\":[3,4]}]}",
      2, limits);
  ASSERT_FALSE(too_many.ok());
  EXPECT_NE(too_many.status().message().find("limit"), std::string::npos);

  limits = DefaultLimits();
  limits.max_total_nodes = 2;
  auto too_big = ParseGraphsRequest(
      "{\"graphs\":[{\"num_nodes\":3,\"features\":[1,2,3,4,5,6]}]}", 2,
      limits);
  ASSERT_FALSE(too_big.ok());
  EXPECT_NE(too_big.status().message().find("node limit"), std::string::npos);
}

TEST(GraphJsonTest, FormatRoundTripsFloat32Exactly) {
  // %.9g prints enough digits that parsing the response back recovers
  // the float bit pattern — the batching-determinism test depends on it.
  const std::vector<std::vector<float>> rows = {
      {0.1f, -1.5f, 3.14159274f},
      {1.0e-38f, std::numeric_limits<float>::max()}};
  const std::string body = FormatRowsResponse("embeddings", rows, 3);
  EXPECT_NE(body.find("\"embeddings\":[["), std::string::npos);
  EXPECT_NE(body.find("\"dim\":3"), std::string::npos);
  // Spot-check exact round trip on the first value.
  const size_t start = body.find("[[") + 2;
  const size_t end = body.find(',', start);
  const float parsed = std::strtof(body.substr(start, end - start).c_str(),
                                   nullptr);
  EXPECT_EQ(parsed, 0.1f);
}

TEST(GraphJsonTest, NonFiniteValuesFormatAsNull) {
  const std::vector<std::vector<float>> rows = {
      {std::numeric_limits<float>::quiet_NaN(),
       std::numeric_limits<float>::infinity()}};
  const std::string body = FormatRowsResponse("keep_probs", rows, -1);
  EXPECT_NE(body.find("[null,null]"), std::string::npos);
  EXPECT_EQ(body.find("\"dim\""), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace sgcl
