// End-to-end tests for the embedding inference service: real HTTP on an
// ephemeral port, batching determinism (micro-batched == served alone,
// bitwise), request robustness (garbage never crashes or hangs the
// server), and the overload path (503 + Retry-After) via the batch-
// function override seam.
#include "serve/service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/sgcl_config.h"
#include "core/sgcl_model.h"

namespace sgcl {
namespace serve {
namespace {

constexpr int64_t kFeatDim = 4;
constexpr int64_t kHidden = 8;

// One model per test binary: construction is cheap but not free, and
// every test serves the same weights.
const SgclModel& TestModel() {
  static const SgclModel* model = [] {
    SgclConfig cfg = MakeUnsupervisedConfig(kFeatDim);
    cfg.encoder.hidden_dim = kHidden;
    cfg.encoder.num_layers = 2;
    cfg.proj_dim = 8;
    static Rng rng(7);
    return new SgclModel(cfg, &rng);  // NOLINT(sgcl-R5): leaked singleton
  }();
  return *model;
}

// One-shot HTTP client: sends a raw request with Connection: close and
// reads until EOF. Returns the full response text.
std::string RawRequest(int port, const std::string& raw) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return "";
  }
  send(fd, raw.data(), raw.size(), 0);
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Post(int port, const std::string& path, const std::string& body) {
  return RawRequest(port,
                    "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                    "Content-Type: application/json\r\nContent-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body);
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n");
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

bool HasStatus(const std::string& response, const char* code) {
  return response.find(std::string("HTTP/1.1 ") + code) != std::string::npos;
}

// A valid single-graph body: 3-node path with fixed features.
std::string OneGraphBody() {
  return "{\"graphs\":[{\"num_nodes\":3,"
         "\"features\":[0.5,-0.25,1,0, 0.1,0.2,0.3,0.4, -1,2,-3,4],"
         "\"edges\":[0,1,1,2]}]}";
}

// A different graph to pad batches with.
std::string OtherGraph() {
  return "{\"num_nodes\":2,\"features\":[1,1,0,0, 0,0,1,1],\"edges\":[0,1]}";
}

// The first row of an "embeddings"/"keep_probs" matrix, as raw text
// (bitwise comparison works on the %.9g strings directly).
std::string FirstRow(const std::string& body) {
  const size_t start = body.find("[[");
  if (start == std::string::npos) return "";
  const size_t end = body.find(']', start + 2);
  if (end == std::string::npos) return "";
  return body.substr(start + 2, end - start - 2);
}

class ServiceTest : public ::testing::Test {
 protected:
  void StartService(ServeOptions options, BatchFn embed_override = nullptr,
                    BatchFn predict_override = nullptr) {
    options.http_port = 0;
    service_ = std::make_unique<ServeService>(&TestModel(), options,
                                              std::move(embed_override),
                                              std::move(predict_override));
    ASSERT_TRUE(service_->Start().ok());
    port_ = service_->port();
    ASSERT_GT(port_, 0);
  }

  void TearDown() override {
    if (service_ != nullptr) service_->Stop();
  }

  std::unique_ptr<ServeService> service_;
  int port_ = 0;
};

TEST_F(ServiceTest, EmbedReturnsOneRowPerGraphWithDim) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  StartService(options);
  const std::string response = Post(port_, "/v1/embed", OneGraphBody());
  ASSERT_TRUE(HasStatus(response, "200")) << response;
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"embeddings\":[["), std::string::npos);
  EXPECT_NE(body.find("\"dim\":8"), std::string::npos);
}

TEST_F(ServiceTest, PredictReturnsPerNodeProbabilities) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  StartService(options);
  const std::string response = Post(port_, "/v1/predict", OneGraphBody());
  ASSERT_TRUE(HasStatus(response, "200")) << response;
  const std::string row = FirstRow(Body(response));
  // 3 nodes -> 3 comma-separated probabilities.
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 2) << row;
}

TEST_F(ServiceTest, MicroBatchedEmbeddingIsBitwiseIdenticalToAlone) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  StartService(options);
  // Alone: a request whose only graph is the target.
  const std::string alone =
      FirstRow(Body(Post(port_, "/v1/embed", OneGraphBody())));
  ASSERT_FALSE(alone.empty());
  // Batched: the same graph runs first inside a coalesced multi-graph
  // block-diagonal forward (one request with company = one batch).
  const std::string target = OneGraphBody();
  std::string multi = target;
  multi.insert(multi.rfind("]}"), "," + OtherGraph());
  const std::string batched = FirstRow(Body(Post(port_, "/v1/embed", multi)));
  EXPECT_EQ(alone, batched);

  // Same invariant under true cross-request coalescing: concurrent
  // requests share a fused forward (wide timeout window forces it).
  service_->Stop();
  ServeOptions wide;
  wide.batcher.batch_timeout_us = 100000;
  StartService(wide);
  constexpr int kClients = 4;
  std::vector<std::string> rows(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      rows[i] = FirstRow(Body(Post(port_, "/v1/embed", OneGraphBody())));
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(rows[i], alone) << i;
}

TEST_F(ServiceTest, PredictBatchedIsBitwiseIdenticalToAlone) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  StartService(options);
  const std::string alone =
      FirstRow(Body(Post(port_, "/v1/predict", OneGraphBody())));
  ASSERT_FALSE(alone.empty());
  std::string multi = OneGraphBody();
  multi.insert(multi.rfind("]}"), "," + OtherGraph());
  const std::string batched =
      FirstRow(Body(Post(port_, "/v1/predict", multi)));
  EXPECT_EQ(alone, batched);
}

TEST_F(ServiceTest, MalformedRequestsGet4xxAndNeverWedgeTheServer) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  options.max_body_bytes = 4096;
  StartService(options);

  // Garbage / wrong-shape bodies: 400 with a JSON error envelope.
  for (const char* bad :
       {"", "garbage", "{}", "[1,2]", "{\"graphs\":[]}",
        "{\"graphs\":[{\"num_nodes\":2,\"features\":[1]}]}",
        "{\"graphs\":[{\"num_nodes\":1,\"features\":[1,2,3,4],"
        "\"edges\":[0,9]}]}"}) {
    const std::string response = Post(port_, "/v1/embed", bad);
    EXPECT_TRUE(HasStatus(response, "400")) << bad << "\n" << response;
    EXPECT_NE(Body(response).find("\"error\""), std::string::npos) << bad;
  }

  // Fuzz-ish: truncated prefixes of a valid body, all 400, no crash.
  const std::string valid = OneGraphBody();
  for (size_t len = 0; len < valid.size(); len += 7) {
    const std::string response =
        Post(port_, "/v1/embed", valid.substr(0, len));
    EXPECT_TRUE(HasStatus(response, "400")) << "prefix " << len;
  }

  // Unknown route -> 404; wrong method -> 405; oversized body -> 413.
  EXPECT_TRUE(HasStatus(Post(port_, "/v1/nope", valid), "404"));
  EXPECT_TRUE(HasStatus(Get(port_, "/v1/embed"), "405"));
  EXPECT_TRUE(
      HasStatus(Post(port_, "/v1/embed", std::string(8192, 'x')), "413"));

  // Raw non-HTTP bytes -> 400, connection closed, server stays up.
  EXPECT_TRUE(HasStatus(RawRequest(port_, "\x01\x02\x03garbage\r\n\r\n"),
                        "400"));

  // After all that abuse a valid request still succeeds.
  EXPECT_TRUE(HasStatus(Post(port_, "/v1/embed", valid), "200"));
}

TEST_F(ServiceTest, OverloadGets503WithRetryAfter) {
  ServeOptions options;
  options.batcher.max_queue_requests = 1;
  options.batcher.batch_timeout_us = 0;
  options.retry_after_s = 3;
  // Deterministic overload: the embed path blocks until released.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> first{true};
  BatchFn blocking = [&](const std::vector<const Graph*>& graphs,
                         std::vector<std::vector<float>>* rows) {
    if (first.exchange(false)) {
      entered.set_value();
      release_future.wait();
    }
    for (const Graph* g : graphs) {
      rows->push_back(std::vector<float>(kHidden, 0.0f));
    }
    return Status::OK();
  };
  StartService(options, blocking);

  std::thread executing([&] {
    EXPECT_TRUE(HasStatus(Post(port_, "/v1/embed", OneGraphBody()), "200"));
  });
  entered.get_future().wait();  // dispatch thread is stuck in the model
  std::thread queued([&] {
    EXPECT_TRUE(HasStatus(Post(port_, "/v1/embed", OneGraphBody()), "200"));
  });
  while (MetricsRegistry::Global()
             .GetGauge("serve/embed/queue_depth")
             ->value() < 1.0) {
    std::this_thread::yield();
  }
  const std::string overloaded = Post(port_, "/v1/embed", OneGraphBody());
  EXPECT_TRUE(HasStatus(overloaded, "503")) << overloaded;
  EXPECT_NE(overloaded.find("Retry-After: 3"), std::string::npos)
      << overloaded;
  EXPECT_NE(Body(overloaded).find("\"error\""), std::string::npos);

  release.set_value();
  executing.join();
  queued.join();
}

// Value of a response header (empty when absent).
std::string HeaderValue(const std::string& response, const std::string& name) {
  const size_t pos = response.find(name + ": ");
  if (pos == std::string::npos) return "";
  const size_t start = pos + name.size() + 2;
  const size_t end = response.find("\r\n", start);
  return response.substr(start, end - start);
}

TEST_F(ServiceTest, TracedRequestEchoesIdAndServesSpanTree) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  options.trace_sample_rate = 1.0;
  options.trace_ring_size = 16;
  StartService(options);
  TraceRing::Global().Clear();

  const std::string response = Post(port_, "/v1/embed", OneGraphBody());
  ASSERT_TRUE(HasStatus(response, "200")) << response;
  const std::string id = HeaderValue(response, "X-Sgcl-Trace");
  ASSERT_EQ(id.size(), 16u) << response;

  // The id resolves to a span tree whose root is the request and whose
  // children tile the request's life: parse, queue wait, batch
  // formation, forward (with the model forward nested under it), and
  // response encode.
  const std::string tree = Body(Get(port_, "/v1/traces/" + id));
  EXPECT_NE(tree.find("\"trace_id\":\"" + id + "\""), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("\"root\":{\"name\":\"serve/request\""),
            std::string::npos)
      << tree;
  for (const char* stage :
       {"serve/parse", "serve/queue_wait", "serve/batch_form",
        "serve/forward", "serve/infer_embed", "serve/encode"}) {
    EXPECT_NE(tree.find(stage), std::string::npos) << stage << "\n" << tree;
  }
  // serve/infer_embed must nest *under* serve/forward, not beside it
  // (otherwise stage self-times double-count the model forward).
  const size_t forward = tree.find("\"name\":\"serve/forward\"");
  const size_t infer = tree.find("\"name\":\"serve/infer_embed\"");
  ASSERT_NE(forward, std::string::npos);
  ASSERT_NE(infer, std::string::npos);
  EXPECT_LT(forward, infer);

  // The list endpoint sees the same trace; the p99-path exemplar in
  // /metrics points at a committed trace id — this is the p99 debugging
  // loop: /metrics exemplar -> /v1/traces/<id>.
  const std::string list = Body(Get(port_, "/v1/traces"));
  EXPECT_NE(list.find("\"trace_id\":\"" + id + "\""), std::string::npos);
  const std::string metrics = Body(Get(port_, "/metrics"));
  EXPECT_NE(metrics.find("# {trace_id=\"" + id + "\"}"), std::string::npos)
      << metrics;

  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
}

TEST_F(ServiceTest, UnsampledRequestsCarryNoTraceArtifacts) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  options.trace_sample_rate = 0.0;
  StartService(options);
  TraceRing::Global().Clear();
  const std::string response = Post(port_, "/v1/embed", OneGraphBody());
  ASSERT_TRUE(HasStatus(response, "200"));
  EXPECT_EQ(HeaderValue(response, "X-Sgcl-Trace"), "");
  const std::string list = Body(Get(port_, "/v1/traces"));
  EXPECT_NE(list.find("\"traces\":[]"), std::string::npos) << list;
}

TEST_F(ServiceTest, SampledEmbeddingsAreBitwiseIdenticalToUnsampled) {
  // Tracing must be observation-only: the served bytes cannot change
  // when every request is sampled.
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  options.trace_sample_rate = 0.0;
  StartService(options);
  const std::string untraced = Body(Post(port_, "/v1/embed", OneGraphBody()));
  ASSERT_FALSE(FirstRow(untraced).empty());
  service_->Stop();

  ServeOptions traced_options = options;
  traced_options.trace_sample_rate = 1.0;
  StartService(traced_options);
  TraceRing::Global().Clear();
  const std::string traced = Body(Post(port_, "/v1/embed", OneGraphBody()));
  EXPECT_EQ(untraced, traced);

  TraceRing::Global().SetSampleRate(0.0);
  TraceRing::Global().Clear();
}

TEST_F(ServiceTest, InfoAndStatusDescribeTheService) {
  ServeOptions options;
  options.batcher.batch_timeout_us = 0;
  StartService(options);
  const std::string info = Body(Get(port_, "/v1/info"));
  EXPECT_NE(info.find("\"feat_dim\":4"), std::string::npos) << info;
  EXPECT_NE(info.find("\"embed_dim\":8"), std::string::npos);
  EXPECT_NE(info.find("\"max_batch_graphs\""), std::string::npos);

  ASSERT_TRUE(HasStatus(Post(port_, "/v1/embed", OneGraphBody()), "200"));
  const std::string status = Body(Get(port_, "/status"));
  EXPECT_NE(status.find("\"embed\""), std::string::npos) << status;
  EXPECT_NE(status.find("\"batches\""), std::string::npos);
  EXPECT_NE(status.find("\"queue_depth\""), std::string::npos);
  // The shared diagnostics handlers ride along.
  EXPECT_TRUE(HasStatus(Get(port_, "/healthz"), "200"));
  EXPECT_TRUE(HasStatus(Get(port_, "/metrics"), "200"));
}

}  // namespace
}  // namespace serve
}  // namespace sgcl
