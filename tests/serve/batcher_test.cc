// MicroBatcher unit tests: coalescing, FIFO no-overtake batch closing,
// cap enforcement, timeout flushes, overload rejection, stop draining,
// and error propagation. Timing-sensitive tests use generous windows and
// explicit synchronization instead of sleeps wherever possible.
#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace sgcl {
namespace serve {
namespace {

std::vector<Graph> MakeGraphs(int count, int64_t nodes_each) {
  std::vector<Graph> graphs;
  for (int i = 0; i < count; ++i) {
    Graph g(nodes_each, /*feat_dim=*/2);
    for (int64_t v = 0; v + 1 < nodes_each; ++v) g.AddUndirectedEdge(v, v + 1);
    graphs.push_back(std::move(g));
  }
  return graphs;
}

// BatchFn returning row i = {graph i's node count} so callers can verify
// both slicing and FIFO order.
Status NodeCountFn(const std::vector<const Graph*>& graphs,
                   std::vector<std::vector<float>>* rows) {
  for (const Graph* g : graphs) {
    rows->push_back({static_cast<float>(g->num_nodes())});
  }
  return Status::OK();
}

TEST(MicroBatcherTest, SingleRequestFlushesOnTimeout) {
  MicroBatcherOptions options;
  options.max_batch_graphs = 64;
  options.batch_timeout_us = 1000;  // nothing else arrives: timeout ships it
  MicroBatcher batcher("t_single", options, NodeCountFn);
  ASSERT_TRUE(batcher.Start().ok());
  const std::vector<Graph> graphs = MakeGraphs(3, 5);
  auto rows = batcher.Submit(graphs);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  for (const auto& row : *rows) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0], 5.0f);
  }
  EXPECT_EQ(batcher.batches_executed(), 1);
  batcher.Stop();
}

TEST(MicroBatcherTest, ConcurrentRequestsCoalesce) {
  MicroBatcherOptions options;
  options.max_batch_graphs = 64;
  options.max_batch_nodes = 1 << 20;
  options.batch_timeout_us = 200000;  // wide window: all requests coalesce
  MicroBatcher batcher("t_coalesce", options, NodeCountFn);
  ASSERT_TRUE(batcher.Start().ok());

  constexpr int kThreads = 6;
  std::vector<std::vector<Graph>> inputs;
  for (int i = 0; i < kThreads; ++i) inputs.push_back(MakeGraphs(2, 4));
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto rows = batcher.Submit(inputs[i]);
      if (rows.ok() && rows->size() == 2u) ok_count.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads);
  // All six requests landed within one timeout window, so they ran in
  // far fewer batches than requests (typically 1-2; the first request
  // can slip into its own batch before the others enqueue).
  EXPECT_LE(batcher.batches_executed(), 3);
  batcher.Stop();
}

TEST(MicroBatcherTest, GraphCapClosesBatch) {
  MicroBatcherOptions options;
  options.max_batch_graphs = 2;
  options.batch_timeout_us = 200000;
  // The batch function observes at most 2 graphs per call.
  std::mutex mu;
  std::vector<size_t> batch_sizes;
  auto fn = [&](const std::vector<const Graph*>& graphs,
                std::vector<std::vector<float>>* rows) {
    {
      std::lock_guard<std::mutex> lock(mu);
      batch_sizes.push_back(graphs.size());
    }
    return NodeCountFn(graphs, rows);
  };
  MicroBatcher batcher("t_graph_cap", options, fn);
  ASSERT_TRUE(batcher.Start().ok());
  constexpr int kThreads = 4;
  std::vector<std::vector<Graph>> inputs;
  for (int i = 0; i < kThreads; ++i) inputs.push_back(MakeGraphs(1, 3));
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { (void)batcher.Submit(inputs[i]); });
  }
  for (std::thread& t : threads) t.join();
  batcher.Stop();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(batch_sizes.empty());
  for (size_t size : batch_sizes) EXPECT_LE(size, 2u);
}

TEST(MicroBatcherTest, OversizedRequestStillRunsAlone) {
  MicroBatcherOptions options;
  options.max_batch_graphs = 64;
  options.max_batch_nodes = 4;  // each 10-node graph exceeds the cap
  options.batch_timeout_us = 0;
  MicroBatcher batcher("t_oversized", options, NodeCountFn);
  ASSERT_TRUE(batcher.Start().ok());
  // A single graph above max_batch_nodes is indivisible: it must still
  // be served (alone, as its own forward) rather than rejected.
  const std::vector<Graph> graphs = MakeGraphs(1, 10);
  auto rows = batcher.Submit(graphs);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], 10.0f);
  EXPECT_EQ(batcher.batches_executed(), 1);
  batcher.Stop();
}

TEST(MicroBatcherTest, CapsSplitOversizedRequestsAcrossForwards) {
  // The caps bound every forward, not just batch formation: a 6-graph
  // request under max_batch_graphs=1 must execute as 6 single-graph
  // forwards (this is what makes a --max-batch-graphs=1 server an honest
  // batch-size-1 baseline), and results still arrive in request order.
  MicroBatcherOptions options;
  options.max_batch_graphs = 1;
  options.batch_timeout_us = 0;
  std::mutex mu;
  std::vector<size_t> forward_sizes;
  auto fn = [&](const std::vector<const Graph*>& graphs,
                std::vector<std::vector<float>>* rows) {
    {
      std::lock_guard<std::mutex> lock(mu);
      forward_sizes.push_back(graphs.size());
    }
    return NodeCountFn(graphs, rows);
  };
  MicroBatcher batcher("t_split", options, fn);
  ASSERT_TRUE(batcher.Start().ok());
  const std::vector<Graph> graphs = MakeGraphs(6, 3);
  auto rows = batcher.Submit(graphs);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 6u);
  for (const auto& row : *rows) EXPECT_EQ(row[0], 3.0f);
  EXPECT_EQ(batcher.batches_executed(), 6);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(forward_sizes.size(), 6u);
    for (const size_t s : forward_sizes) EXPECT_EQ(s, 1u);
  }
  batcher.Stop();
}

TEST(MicroBatcherTest, NodeCapSplitsMixedRequest) {
  // 3-node graphs under max_batch_nodes=7: forwards hold two graphs
  // (6 nodes; a third would exceed the cap), so 5 graphs -> 3 forwards.
  MicroBatcherOptions options;
  options.max_batch_graphs = 64;
  options.max_batch_nodes = 7;
  options.batch_timeout_us = 0;
  MicroBatcher batcher("t_nodecap", options, NodeCountFn);
  ASSERT_TRUE(batcher.Start().ok());
  const std::vector<Graph> graphs = MakeGraphs(5, 3);
  auto rows = batcher.Submit(graphs);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ(batcher.batches_executed(), 3);
  batcher.Stop();
}

TEST(MicroBatcherTest, RejectsWhenQueueFullAndWhenStopped) {
  MicroBatcherOptions options;
  options.max_queue_requests = 1;
  options.batch_timeout_us = 0;
  // Block the dispatch thread inside the batch function so the queue
  // backs up deterministically.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> first{true};
  auto fn = [&](const std::vector<const Graph*>& graphs,
                std::vector<std::vector<float>>* rows) {
    if (first.exchange(false)) {
      entered.set_value();
      release_future.wait();
    }
    return NodeCountFn(graphs, rows);
  };
  MicroBatcher batcher("t_overload", options, fn);
  ASSERT_TRUE(batcher.Start().ok());

  const std::vector<Graph> a = MakeGraphs(1, 3);
  const std::vector<Graph> b = MakeGraphs(1, 3);
  const std::vector<Graph> c = MakeGraphs(1, 3);
  std::thread blocker([&] { (void)batcher.Submit(a); });
  entered.get_future().wait();  // dispatch is now stuck in fn(a)
  std::thread queued([&] {
    auto rows = batcher.Submit(b);  // fills the 1-slot queue
    EXPECT_TRUE(rows.ok());
  });
  // Wait until b is actually queued before overflowing.
  while (MetricsRegistry::Global()
             .GetGauge("serve/t_overload/queue_depth")
             ->value() < 1.0) {
    std::this_thread::yield();
  }
  auto rejected = batcher.Submit(c);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  release.set_value();
  blocker.join();
  queued.join();
  batcher.Stop();

  // After Stop every Submit is refused.
  auto after_stop = batcher.Submit(a);
  ASSERT_FALSE(after_stop.ok());
  EXPECT_EQ(after_stop.status().code(), StatusCode::kUnavailable);
}

TEST(MicroBatcherTest, BatchFnErrorReachesEveryCaller) {
  MicroBatcherOptions options;
  options.batch_timeout_us = 0;
  auto fn = [](const std::vector<const Graph*>&,
               std::vector<std::vector<float>>*) {
    return Status::InvalidArgument("model rejected the batch");
  };
  MicroBatcher batcher("t_error", options, fn);
  ASSERT_TRUE(batcher.Start().ok());
  const std::vector<Graph> graphs = MakeGraphs(2, 3);
  auto rows = batcher.Submit(graphs);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  batcher.Stop();
}

TEST(MicroBatcherTest, RowCountMismatchIsInternalError) {
  MicroBatcherOptions options;
  options.batch_timeout_us = 0;
  auto fn = [](const std::vector<const Graph*>&,
               std::vector<std::vector<float>>* rows) {
    rows->push_back({1.0f});  // always one row, regardless of batch size
    return Status::OK();
  };
  MicroBatcher batcher("t_mismatch", options, fn);
  ASSERT_TRUE(batcher.Start().ok());
  const std::vector<Graph> graphs = MakeGraphs(2, 3);
  auto rows = batcher.Submit(graphs);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
  batcher.Stop();
}

TEST(MicroBatcherTest, EmptySubmitIsInvalidAndStopIsIdempotent) {
  MicroBatcherOptions options;
  MicroBatcher batcher("t_empty", options, NodeCountFn);
  ASSERT_TRUE(batcher.Start().ok());
  auto rows = batcher.Submit({});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  batcher.Stop();
  batcher.Stop();  // no-op
}

}  // namespace
}  // namespace serve
}  // namespace sgcl
