// Parameterized property-style sweeps over the library's invariants:
// encoder behavior across every (architecture x pooling) combination,
// augmentation invariants across the rho grid, generator invariants
// across all TU datasets, and metric identities over random inputs.
#include <cmath>
#include <numeric>
#include <tuple>

#include "core/augmentation.h"
#include "core/lipschitz_generator.h"
#include "data/synthetic_tu.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "nn/encoder.h"
#include "test_util.h"

namespace sgcl {
namespace {

// ---------- Encoder sweep: every arch x pooling must be well-behaved ----

using ArchPooling = std::tuple<GnnArch, PoolingKind>;

class EncoderSweepTest : public ::testing::TestWithParam<ArchPooling> {};

TEST_P(EncoderSweepTest, FiniteOutputsAndGradients) {
  auto [arch, pooling] = GetParam();
  Rng rng(11);
  EncoderConfig cfg;
  cfg.arch = arch;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.pooling = pooling;
  GnnEncoder enc(cfg, &rng);
  Graph a = testing::PathGraph3(3);
  Graph b = testing::HouseGraph(3);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &b});
  Tensor graphs = enc.EncodeGraphs(batch);
  ASSERT_EQ(graphs.rows(), 2);
  for (float v : graphs.values()) ASSERT_TRUE(std::isfinite(v));
  // Gradients reach every parameter.
  Tensor loss = SumSquares(graphs);
  loss.Backward();
  for (const Tensor& p : enc.Parameters()) {
    double mass = 0.0;
    for (float g : p.impl()->grad) mass += std::fabs(g);
    EXPECT_TRUE(std::isfinite(mass));
  }
}

TEST_P(EncoderSweepTest, PermutationInvariantGraphEmbedding) {
  auto [arch, pooling] = GetParam();
  Rng rng(12);
  EncoderConfig cfg;
  cfg.arch = arch;
  cfg.in_dim = 3;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.pooling = pooling;
  GnnEncoder enc(cfg, &rng);
  Graph g = testing::HouseGraph(3);
  // Relabel nodes by a fixed permutation.
  auto perm = [](int64_t v) { return (v * 2 + 1) % 5; };
  Graph pg(5, 3);
  for (int64_t v = 0; v < 5; ++v) {
    for (int64_t j = 0; j < 3; ++j) pg.set_feature(perm(v), j, g.feature(v, j));
  }
  for (size_t e = 0; e < g.edge_src().size(); ++e) {
    if (g.edge_src()[e] < g.edge_dst()[e]) {
      pg.AddUndirectedEdge(perm(g.edge_src()[e]), perm(g.edge_dst()[e]));
    }
  }
  GraphBatch b1 = GraphBatch::FromGraphPtrs({&g});
  GraphBatch b2 = GraphBatch::FromGraphPtrs({&pg});
  Tensor y1 = enc.EncodeGraphs(b1);
  Tensor y2 = enc.EncodeGraphs(b2);
  for (int64_t j = 0; j < y1.numel(); ++j) {
    EXPECT_NEAR(y1.data()[j], y2.data()[j], 2e-3f)
        << GnnArchToString(arch) << "/" << PoolingKindToString(pooling);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchsAndPoolings, EncoderSweepTest,
    ::testing::Combine(::testing::Values(GnnArch::kGin, GnnArch::kGcn,
                                         GnnArch::kGat, GnnArch::kSage),
                       ::testing::Values(PoolingKind::kSum,
                                         PoolingKind::kMean,
                                         PoolingKind::kMax)),
    [](const ::testing::TestParamInfo<ArchPooling>& info) {
      return std::string(GnnArchToString(std::get<0>(info.param))) + "_" +
             PoolingKindToString(std::get<1>(info.param));
    });

// ---------- Augmentation sweep over the paper's rho grid ----------------

class RhoSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RhoSweepTest, SemanticNodesSurviveAnyRho) {
  const double rho = GetParam();
  Rng rng(21);
  // 12 nodes: 5 clearly semantic.
  std::vector<float> k(12, 0.1f);
  for (int v = 0; v < 5; ++v) k[v] = 5.0f;
  std::vector<float> keep(12, 0.5f);
  for (int trial = 0; trial < 20; ++trial) {
    AugmentationPlan plan = BuildAugmentationPlan(
        k, keep, AugmentationMode::kLipschitz, rho, &rng);
    for (int v = 0; v < 5; ++v) {
      ASSERT_EQ(plan.keep_sample[v], 1) << "rho=" << rho;
    }
    // Sample view drops exactly min((1-rho)*n, #unrelated) nodes.
    int dropped = 0;
    for (uint8_t kept : plan.keep_sample) dropped += (kept == 0);
    const int expected = std::min<int>(
        7, static_cast<int>(std::lround((1.0 - rho) * 12)));
    ASSERT_EQ(dropped, expected);
  }
}

TEST_P(RhoSweepTest, ComplementDropsOnlySemanticNodes) {
  const double rho = GetParam();
  Rng rng(22);
  std::vector<float> k(12, 0.1f);
  for (int v = 0; v < 5; ++v) k[v] = 5.0f;
  std::vector<float> keep(12, 0.5f);
  AugmentationPlan plan = BuildAugmentationPlan(
      k, keep, AugmentationMode::kLipschitz, rho, &rng);
  for (int v = 5; v < 12; ++v) {
    EXPECT_EQ(plan.keep_complement[v], 1) << "rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, RhoSweepTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

// ---------- Dataset sweep over all eight TU stand-ins -------------------

class TuSweepTest : public ::testing::TestWithParam<TuDataset> {};

TEST_P(TuSweepTest, GeneratorInvariants) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.03;
  opt.node_cap = 20;
  opt.seed = 31;
  GraphDataset ds = MakeTuDataset(GetParam(), opt);
  ASSERT_TRUE(ds.Validate().ok());
  const TuConfig cfg = GetTuConfig(GetParam());
  EXPECT_EQ(ds.num_classes(), cfg.num_classes);
  for (const Graph& g : ds.graphs()) {
    // Connectivity of message passing: no graph is edgeless.
    EXPECT_GT(g.num_undirected_edges(), 0);
    // Semantic ground truth exists and is a proper subset.
    int semantic = 0;
    for (uint8_t m : g.semantic_mask()) semantic += m;
    EXPECT_GT(semantic, 0);
    EXPECT_LT(semantic, g.num_nodes());
    // One-hot-ish features: every node has a nonzero feature row.
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      float total = 0.0f;
      for (int64_t j = 0; j < g.feat_dim(); ++j) {
        total += std::fabs(g.feature(v, j));
      }
      EXPECT_GT(total, 0.0f);
    }
  }
}

TEST_P(TuSweepTest, LipschitzConstantsFiniteOnRealisticGraphs) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.03;
  opt.node_cap = 20;
  opt.seed = 32;
  GraphDataset ds = MakeTuDataset(GetParam(), opt);
  Rng rng(33);
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = ds.feat_dim();
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  GnnEncoder enc(cfg, &rng);
  LipschitzGenerator gen(&enc, LipschitzMode::kAttentionApprox);
  for (int i = 0; i < std::min<int64_t>(5, ds.size()); ++i) {
    std::vector<float> k = gen.ComputeConstants(ds.graph(i));
    ASSERT_EQ(static_cast<int64_t>(k.size()), ds.graph(i).num_nodes());
    for (float v : k) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTu, TuSweepTest, ::testing::ValuesIn(AllTuDatasets()),
    [](const ::testing::TestParamInfo<TuDataset>& info) {
      std::string name = GetTuConfig(info.param).name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------- Lipschitz generator invariants over random graphs -----------

// Random connected graph: spanning-tree backbone plus Bernoulli extra
// edges, Gaussian features.
Graph RandomConnectedGraph(Rng* rng, int64_t num_nodes, int64_t feat_dim) {
  Graph g(num_nodes, feat_dim);
  for (int64_t v = 0; v < num_nodes; ++v) {
    for (int64_t j = 0; j < feat_dim; ++j) {
      g.set_feature(v, j, static_cast<float>(rng->Normal(0.0, 0.6)));
    }
  }
  for (int64_t v = 1; v < num_nodes; ++v) {
    g.AddUndirectedEdge(rng->UniformInt(v), v);
  }
  for (int64_t a = 0; a < num_nodes; ++a) {
    for (int64_t b = a + 1; b < num_nodes; ++b) {
      if (rng->Bernoulli(0.15)) g.AddUndirectedEdge(a, b);
    }
  }
  return g;
}

GnnEncoder RandomEncoder(Rng* rng, int64_t feat_dim) {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = feat_dim;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  return GnnEncoder(cfg, rng);
}

class LipschitzSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LipschitzSweepTest, ConstantsNonNegativeAndFiniteInBothModes) {
  Rng rng(300 + GetParam());
  const int64_t n = rng.UniformInt(4, 14);
  Graph g = RandomConnectedGraph(&rng, n, 3);
  GnnEncoder enc = RandomEncoder(&rng, 3);
  for (LipschitzMode mode :
       {LipschitzMode::kExact, LipschitzMode::kAttentionApprox}) {
    LipschitzGenerator gen(&enc, mode);
    const std::vector<float> k = gen.ComputeConstants(g);
    ASSERT_EQ(static_cast<int64_t>(k.size()), n);
    for (float v : k) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0f);
    }
  }
}

TEST_P(LipschitzSweepTest, ConstantsAreNodePermutationEquivariant) {
  Rng rng(400 + GetParam());
  const int64_t n = rng.UniformInt(4, 12);
  Graph g = RandomConnectedGraph(&rng, n, 3);
  // Random relabeling pi; pg is g with node v renamed pi(v).
  std::vector<int64_t> pi(n);
  std::iota(pi.begin(), pi.end(), 0);
  rng.Shuffle(&pi);
  Graph pg(n, 3);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t j = 0; j < 3; ++j) pg.set_feature(pi[v], j, g.feature(v, j));
  }
  for (size_t e = 0; e < g.edge_src().size(); ++e) {
    if (g.edge_src()[e] < g.edge_dst()[e]) {
      pg.AddUndirectedEdge(pi[g.edge_src()[e]], pi[g.edge_dst()[e]]);
    }
  }
  GnnEncoder enc = RandomEncoder(&rng, 3);
  for (LipschitzMode mode :
       {LipschitzMode::kExact, LipschitzMode::kAttentionApprox}) {
    LipschitzGenerator gen(&enc, mode);
    const std::vector<float> k = gen.ComputeConstants(g);
    const std::vector<float> pk = gen.ComputeConstants(pg);
    ASSERT_EQ(k.size(), pk.size());
    for (int64_t v = 0; v < n; ++v) {
      EXPECT_NEAR(k[v], pk[pi[v]], 2e-3f)
          << "node " << v << " mode "
          << (mode == LipschitzMode::kExact ? "exact" : "approx");
    }
  }
}

TEST_P(LipschitzSweepTest, BatchedExactMatchesPerNodeReference) {
  Rng rng(500 + GetParam());
  const int64_t n = rng.UniformInt(4, 16);
  Graph g = RandomConnectedGraph(&rng, n, 3);
  GnnEncoder enc = RandomEncoder(&rng, 3);
  // Small max_view_nodes forces several block-diagonal chunks even on
  // these small graphs, so the chunking logic is actually exercised.
  LipschitzGenerator batched(&enc, LipschitzMode::kExact,
                             /*max_view_nodes=*/3 * n);
  const std::vector<float> fast = batched.ComputeConstants(g);
  const std::vector<float> golden = batched.ExactConstantsReference(g);
  ASSERT_EQ(fast.size(), golden.size());
  for (size_t v = 0; v < golden.size(); ++v) {
    EXPECT_NEAR(fast[v], golden[v], 1e-3f) << "node " << v;
  }
}

TEST_P(LipschitzSweepTest, MultiGraphBatchMatchesPerGraphCalls) {
  Rng rng(600 + GetParam());
  Graph a = RandomConnectedGraph(&rng, rng.UniformInt(4, 10), 3);
  Graph b = RandomConnectedGraph(&rng, rng.UniformInt(4, 10), 3);
  GnnEncoder enc = RandomEncoder(&rng, 3);
  LipschitzGenerator gen(&enc, LipschitzMode::kExact);
  std::vector<float> joint = gen.ComputeConstants({&a, &b});
  std::vector<float> ka = gen.ComputeConstants(a);
  std::vector<float> kb = gen.ComputeConstants(b);
  ASSERT_EQ(joint.size(), ka.size() + kb.size());
  for (size_t v = 0; v < ka.size(); ++v) {
    EXPECT_NEAR(joint[v], ka[v], 1e-4f);
  }
  for (size_t v = 0; v < kb.size(); ++v) {
    EXPECT_NEAR(joint[ka.size() + v], kb[v], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LipschitzSweepTest,
                         ::testing::Range(0, 6));

// ---------- Metric identities over random inputs ------------------------

class AucPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AucPropertyTest, NegatedScoresMirrorAuc) {
  Rng rng(100 + GetParam());
  const int n = 40;
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Normal();
    labels[i] = rng.Bernoulli(0.4) ? 1 : 0;
  }
  if (std::accumulate(labels.begin(), labels.end(), 0) == 0) labels[0] = 1;
  if (std::accumulate(labels.begin(), labels.end(), 0) == n) labels[0] = 0;
  std::vector<double> negated(n);
  for (int i = 0; i < n; ++i) negated[i] = -scores[i];
  EXPECT_NEAR(RocAuc(scores, labels) + RocAuc(negated, labels), 1.0, 1e-9);
}

TEST_P(AucPropertyTest, MonotoneTransformInvariant) {
  Rng rng(200 + GetParam());
  const int n = 30;
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Uniform(-3, 3);
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  if (std::accumulate(labels.begin(), labels.end(), 0) == 0) labels[0] = 1;
  if (std::accumulate(labels.begin(), labels.end(), 0) == n) labels[0] = 0;
  std::vector<double> transformed(n);
  for (int i = 0; i < n; ++i) transformed[i] = std::exp(scores[i]);
  EXPECT_NEAR(RocAuc(scores, labels), RocAuc(transformed, labels), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace sgcl
