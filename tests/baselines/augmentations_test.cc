#include <cmath>

#include "baselines/graphcl.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(RandomAugTest, IdentityReturnsSameGraph) {
  Rng rng(1);
  Graph g = testing::HouseGraph(3);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kIdentity, 0.2f, &rng);
  EXPECT_EQ(a.num_nodes(), g.num_nodes());
  EXPECT_EQ(a.features(), g.features());
  EXPECT_EQ(a.num_directed_edges(), g.num_directed_edges());
}

TEST(RandomAugTest, NodeDropRemovesExpectedCount) {
  Rng rng(2);
  Graph g(10, 2);
  for (int v = 1; v < 10; ++v) g.AddUndirectedEdge(v, v - 1);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kNodeDrop, 0.3f, &rng);
  EXPECT_EQ(a.num_nodes(), 7);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(RandomAugTest, NodeDropKeepsAtLeastTwoNodes) {
  Rng rng(3);
  Graph g(3, 2);
  g.AddUndirectedEdge(0, 1);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kNodeDrop, 0.9f, &rng);
  EXPECT_GE(a.num_nodes(), 2);
}

TEST(RandomAugTest, EdgePerturbKeepsNodeCount) {
  Rng rng(4);
  Graph g = testing::HouseGraph(3);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kEdgePerturb, 0.3f, &rng);
  EXPECT_EQ(a.num_nodes(), g.num_nodes());
  EXPECT_TRUE(a.Validate().ok());
}

TEST(RandomAugTest, AttrMaskZeroesSomeRows) {
  Rng rng(5);
  Graph g(30, 4);
  for (int v = 0; v < 30; ++v) g.set_feature(v, v % 4, 1.0f);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kAttrMask, 0.4f, &rng);
  int zero_rows = 0;
  for (int v = 0; v < 30; ++v) {
    float total = 0.0f;
    for (int j = 0; j < 4; ++j) total += std::fabs(a.feature(v, j));
    zero_rows += (total == 0.0f);
  }
  EXPECT_GT(zero_rows, 3);
  EXPECT_LT(zero_rows, 27);
  EXPECT_EQ(a.num_directed_edges(), g.num_directed_edges());
}

TEST(RandomAugTest, SubgraphKeepsConnectedPortion) {
  Rng rng(6);
  Graph g(12, 2);
  for (int v = 1; v < 12; ++v) g.AddUndirectedEdge(v, v - 1);
  Graph a = ApplyRandomAugmentation(g, GraphAug::kSubgraph, 0.4f, &rng);
  EXPECT_GE(a.num_nodes(), 2);
  EXPECT_LE(a.num_nodes(), 12);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(RandomAugTest, NamesAreStable) {
  EXPECT_STREQ(GraphAugToString(GraphAug::kNodeDrop), "node_drop");
  EXPECT_STREQ(GraphAugToString(GraphAug::kSubgraph), "subgraph");
}

}  // namespace
}  // namespace sgcl
