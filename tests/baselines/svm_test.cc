#include "baselines/svm.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

// Two well-separated Gaussian blobs.
void MakeBlobs(int per_class, std::vector<float>* x, std::vector<int>* y,
               uint64_t seed, double separation = 4.0) {
  Rng rng(seed);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_class; ++i) {
      x->push_back(static_cast<float>(rng.Normal(c * separation, 1.0)));
      x->push_back(static_cast<float>(rng.Normal(c * separation, 1.0)));
      y->push_back(c);
    }
  }
}

TEST(SvmTest, SeparatesLinearBlobs) {
  std::vector<float> x;
  std::vector<int> y;
  MakeBlobs(30, &x, &y, 1);
  SvmClassifier svm;
  svm.Train(x, 60, 2, y, 2);
  EXPECT_GT(svm.Evaluate(x, 60, y), 0.95);
}

TEST(SvmTest, LinearKernelAlsoWorks) {
  std::vector<float> x;
  std::vector<int> y;
  MakeBlobs(30, &x, &y, 2);
  SvmConfig cfg;
  cfg.kernel = SvmKernel::kLinear;
  SvmClassifier svm(cfg);
  svm.Train(x, 60, 2, y, 2);
  EXPECT_GT(svm.Evaluate(x, 60, y), 0.9);
}

TEST(SvmTest, RbfSolvesXorWhereLinearFails) {
  // XOR pattern: non-linearly separable.
  std::vector<float> x;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    const float a = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    const float b = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    x.push_back(a + static_cast<float>(rng.Normal(0, 0.15)));
    x.push_back(b + static_cast<float>(rng.Normal(0, 0.15)));
    y.push_back(a * b > 0 ? 1 : 0);
  }
  SvmConfig rbf;
  rbf.kernel = SvmKernel::kRbf;
  rbf.gamma = 1.0;
  SvmClassifier svm(rbf);
  svm.Train(x, 120, 2, y, 2);
  EXPECT_GT(svm.Evaluate(x, 120, y), 0.9);
}

TEST(SvmTest, MulticlassOneVsRest) {
  Rng rng(4);
  std::vector<float> x;
  std::vector<int> y;
  const double centers[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 25; ++i) {
      x.push_back(static_cast<float>(rng.Normal(centers[c][0], 0.8)));
      x.push_back(static_cast<float>(rng.Normal(centers[c][1], 0.8)));
      y.push_back(c);
    }
  }
  SvmClassifier svm;
  svm.Train(x, 75, 2, y, 3);
  EXPECT_GT(svm.Evaluate(x, 75, y), 0.93);
}

TEST(SvmTest, PrecomputedKernelPath) {
  // Linear kernel computed manually must reproduce the linear SVM.
  std::vector<float> x;
  std::vector<int> y;
  MakeBlobs(20, &x, &y, 5);
  const int64_t n = 40;
  std::vector<double> gram(n * n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      gram[i * n + j] = static_cast<double>(x[i * 2]) * x[j * 2] +
                        static_cast<double>(x[i * 2 + 1]) * x[j * 2 + 1];
    }
  }
  SvmClassifier svm;
  svm.TrainOnKernel(gram, n, y, 2);
  // Predict the training points through kernel rows.
  std::vector<int> preds = svm.PredictFromKernelRows(gram, n);
  int correct = 0;
  for (int64_t i = 0; i < n; ++i) correct += (preds[i] == y[i]);
  EXPECT_GT(correct, 36);
}

TEST(SvmTest, GeneralizationOnHeldOut) {
  std::vector<float> train_x, test_x;
  std::vector<int> train_y, test_y;
  MakeBlobs(40, &train_x, &train_y, 6);
  MakeBlobs(15, &test_x, &test_y, 7);
  SvmClassifier svm;
  svm.Train(train_x, 80, 2, train_y, 2);
  EXPECT_GT(svm.Evaluate(test_x, 30, test_y), 0.9);
}

}  // namespace
}  // namespace sgcl
