#include "baselines/registry.h"

#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

BaselineConfig SmallBaselineConfig(int64_t feat_dim) {
  BaselineConfig cfg;
  cfg.encoder.arch = GnnArch::kGin;
  cfg.encoder.in_dim = feat_dim;
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  return cfg;
}

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  SgclConfig sgcl_cfg = MakeUnsupervisedConfig(8);
  sgcl_cfg.encoder.hidden_dim = 8;
  sgcl_cfg.encoder.num_layers = 2;
  sgcl_cfg.proj_dim = 8;
  for (const std::string& name : RegisteredPretrainerNames()) {
    auto method =
        MakePretrainer(name, SmallBaselineConfig(8), sgcl_cfg, /*seed=*/1);
    ASSERT_TRUE(method.ok()) << name;
    EXPECT_EQ((*method)->name(), name);
    EXPECT_NE((*method)->mutable_encoder(), nullptr) << name;
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  SgclConfig sgcl_cfg = MakeUnsupervisedConfig(8);
  auto method = MakePretrainer("DoesNotExist", SmallBaselineConfig(8),
                               sgcl_cfg, 1);
  EXPECT_FALSE(method.ok());
  EXPECT_EQ(method.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, ConstructedMethodsCanTrainOneEpoch) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 12;
  opt.seed = 44;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  SgclConfig sgcl_cfg = MakeUnsupervisedConfig(ds.feat_dim());
  sgcl_cfg.encoder.hidden_dim = 8;
  sgcl_cfg.encoder.num_layers = 2;
  sgcl_cfg.proj_dim = 8;
  sgcl_cfg.epochs = 1;
  sgcl_cfg.batch_size = 8;
  // A representative subset (full sweep lives in pretrainers_test).
  for (const std::string name : {"SGCL", "GraphCL", "GAE", "Infomax"}) {
    auto method = MakePretrainer(name, SmallBaselineConfig(ds.feat_dim()),
                                 sgcl_cfg, 2);
    ASSERT_TRUE(method.ok()) << name;
    (*method)->Pretrain(ds, {});
    Tensor emb = (*method)->EmbedGraphs({&ds.graph(0), &ds.graph(1)});
    EXPECT_EQ(emb.rows(), 2) << name;
  }
}

}  // namespace
}  // namespace sgcl
