#include "baselines/graph_kernels.h"

#include <cmath>

#include "data/synthetic_tu.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(WlKernelTest, IdenticalGraphsHaveIdenticalFeatures) {
  GraphKernel wl(KernelKind::kWlSubtree);
  Graph g = testing::HouseGraph(3);
  auto f1 = wl.WlFeatureMap(g);
  auto f2 = wl.WlFeatureMap(g);
  EXPECT_EQ(f1.size(), f2.size());
  for (const auto& [k, v] : f1) {
    auto it = f2.find(k);
    ASSERT_NE(it, f2.end());
    EXPECT_DOUBLE_EQ(v, it->second);
  }
}

TEST(WlKernelTest, DistinguishesCycleFromPath) {
  // Same degree sequence locally differs after 1 WL iteration's horizon
  // in a small graph: a 6-cycle vs a 6-path.
  Graph cycle(6, 2), path(6, 2);
  for (int v = 0; v < 6; ++v) {
    cycle.set_feature(v, 0, 1.0f);
    path.set_feature(v, 0, 1.0f);
    cycle.AddUndirectedEdge(v, (v + 1) % 6);
    if (v > 0) path.AddUndirectedEdge(v, v - 1);
  }
  GraphKernel wl(KernelKind::kWlSubtree);
  std::vector<const Graph*> graphs = {&cycle, &path};
  std::vector<double> gram = wl.GramMatrix(graphs);
  EXPECT_NEAR(gram[0], 1.0, 1e-9);          // self-similarity normalized
  EXPECT_NEAR(gram[3], 1.0, 1e-9);
  EXPECT_LT(gram[1], 0.999);                // off-diagonal strictly smaller
}

TEST(GraphletKernelTest, HistogramSumsToOne) {
  GraphKernel gl(KernelKind::kGraphlet);
  Graph g = testing::HouseGraph(2);
  auto hist = gl.GraphletHistogram(g, 42);
  double total = 0.0;
  for (double h : hist) total += h;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GraphletKernelTest, CliqueIsAllTriangles) {
  Graph clique(5, 1);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) clique.AddUndirectedEdge(a, b);
  }
  GraphKernel gl(KernelKind::kGraphlet);
  auto hist = gl.GraphletHistogram(clique, 7);
  EXPECT_NEAR(hist[3], 1.0, 1e-9);  // every sampled trio has 3 edges
}

TEST(GraphletKernelTest, EmptyGraphIsAllEmptyTriples) {
  Graph empty(6, 1);
  GraphKernel gl(KernelKind::kGraphlet);
  auto hist = gl.GraphletHistogram(empty, 7);
  EXPECT_NEAR(hist[0], 1.0, 1e-9);
}

void CheckGramBasics(KernelKind kind) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 15;
  opt.seed = 9;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  std::vector<const Graph*> graphs;
  for (int i = 0; i < 10; ++i) graphs.push_back(&ds.graph(i));
  GraphKernel kernel(kind);
  std::vector<double> gram = kernel.GramMatrix(graphs);
  ASSERT_EQ(gram.size(), 100u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(gram[i * 10 + i], 1.0, 1e-6) << kernel.name();
    for (int j = 0; j < 10; ++j) {
      EXPECT_TRUE(std::isfinite(gram[i * 10 + j]));
      EXPECT_NEAR(gram[i * 10 + j], gram[j * 10 + i], 1e-9)
          << kernel.name() << " not symmetric";
    }
  }
}

TEST(GraphKernelTest, GramWellFormedGL) { CheckGramBasics(KernelKind::kGraphlet); }
TEST(GraphKernelTest, GramWellFormedWL) { CheckGramBasics(KernelKind::kWlSubtree); }
TEST(GraphKernelTest, GramWellFormedDGK) { CheckGramBasics(KernelKind::kDeepWl); }

TEST(GraphKernelTest, NamesMatchPaperRows) {
  EXPECT_EQ(GraphKernel(KernelKind::kGraphlet).name(), "GL");
  EXPECT_EQ(GraphKernel(KernelKind::kWlSubtree).name(), "WL");
  EXPECT_EQ(GraphKernel(KernelKind::kDeepWl).name(), "DGK");
}

}  // namespace
}  // namespace sgcl
