// Smoke + behavior tests for every baseline pretrainer: losses are
// finite, decrease over a short run, embeddings come out frozen and the
// encoder is exposed for fine-tuning.
#include <cmath>

#include "baselines/adgcl.h"
#include "baselines/attr_masking.h"
#include "baselines/context_pred.h"
#include "baselines/gae.h"
#include "baselines/graphcl.h"
#include "baselines/infograph.h"
#include "baselines/joao.h"
#include "baselines/simgrace.h"
#include "baselines/view_generator.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

GraphDataset SmallDataset() {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 15;
  opt.seed = 101;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

BaselineConfig SmallConfig(const GraphDataset& ds) {
  BaselineConfig cfg;
  cfg.encoder.arch = GnnArch::kGin;
  cfg.encoder.in_dim = ds.feat_dim();
  cfg.encoder.hidden_dim = 16;
  cfg.encoder.num_layers = 2;
  cfg.batch_size = 8;
  cfg.epochs = 4;
  cfg.seed = 5;
  return cfg;
}

void CheckPretrainer(Pretrainer* method, const GraphDataset& ds) {
  PretrainStats stats = method->Pretrain(ds, {});
  ASSERT_FALSE(stats.epoch_losses.empty()) << method->name();
  for (float l : stats.epoch_losses) {
    EXPECT_TRUE(std::isfinite(l)) << method->name();
  }
  std::vector<const Graph*> some = {&ds.graph(0), &ds.graph(1),
                                    &ds.graph(2)};
  Tensor emb = method->EmbedGraphs(some);
  EXPECT_EQ(emb.rows(), 3);
  EXPECT_EQ(emb.cols(), 16);
  EXPECT_FALSE(emb.requires_grad());
  for (float v : emb.values()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NE(method->mutable_encoder(), nullptr);
}

TEST(PretrainersTest, GraphCl) {
  GraphDataset ds = SmallDataset();
  GraphClBaseline method(SmallConfig(ds));
  EXPECT_EQ(method.name(), "GraphCL");
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, Joao) {
  GraphDataset ds = SmallDataset();
  JoaoBaseline method(SmallConfig(ds));
  EXPECT_EQ(method.name(), "JOAOv2");
  CheckPretrainer(&method, ds);
  // The augmentation distribution was updated away from all-equal.
  const auto& w = method.aug_weights();
  bool any_diff = false;
  for (double x : w) {
    if (std::fabs(x - w[0]) > 1e-12) any_diff = true;
  }
  // After epochs with differing losses this is overwhelmingly likely;
  // equal weights would mean OnEpochEnd never ran.
  EXPECT_TRUE(any_diff || w[0] != 1.0);
}

TEST(PretrainersTest, SimGrace) {
  GraphDataset ds = SmallDataset();
  SimGraceBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, AdGcl) {
  GraphDataset ds = SmallDataset();
  AdGclBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, InfoGraph) {
  GraphDataset ds = SmallDataset();
  InfoGraphBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, AutoGcl) {
  GraphDataset ds = SmallDataset();
  LearnableViewBaseline method(SmallConfig(ds), ViewGenVariant::kAutoGcl);
  EXPECT_EQ(method.name(), "AutoGCL");
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, Rgcl) {
  GraphDataset ds = SmallDataset();
  LearnableViewBaseline method(SmallConfig(ds), ViewGenVariant::kRgcl);
  EXPECT_EQ(method.name(), "RGCL");
  CheckPretrainer(&method, ds);
  // Keep probabilities are proper probabilities.
  std::vector<float> p = method.NodeKeepProbs(ds.graph(0));
  ASSERT_EQ(static_cast<int64_t>(p.size()), ds.graph(0).num_nodes());
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(PretrainersTest, AttrMasking) {
  GraphDataset ds = SmallDataset();
  AttrMaskingBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, ContextPred) {
  GraphDataset ds = SmallDataset();
  ContextPredBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, Gae) {
  GraphDataset ds = SmallDataset();
  GaeBaseline method(SmallConfig(ds));
  CheckPretrainer(&method, ds);
}

TEST(PretrainersTest, NoPretrainEmbedsWithoutTraining) {
  GraphDataset ds = SmallDataset();
  NoPretrain method(SmallConfig(ds), 3);
  PretrainStats stats = method.Pretrain(ds, {});
  EXPECT_TRUE(stats.epoch_losses.empty());
  Tensor emb = method.EmbedGraphs({&ds.graph(0), &ds.graph(1)});
  EXPECT_EQ(emb.rows(), 2);
}

TEST(PretrainersTest, TrainingReducesLoss) {
  // GraphCL over more epochs: late loss should not exceed early loss by
  // much (contrastive losses are noisy but trend down).
  GraphDataset ds = SmallDataset();
  BaselineConfig cfg = SmallConfig(ds);
  cfg.epochs = 10;
  GraphClBaseline method(cfg);
  PretrainStats stats = method.Pretrain(ds, {});
  const float early = stats.epoch_losses[0];
  const float late = stats.epoch_losses.back();
  EXPECT_LT(late, early + 0.1f);
}

}  // namespace
}  // namespace sgcl
