// End-to-end integration tests that walk the full paper pipeline:
// generate data -> pretrain -> checkpoint -> reload -> embed -> evaluate,
// and the transfer pipeline zinc-pretrain -> scaffold split -> fine-tune.
#include <cstdio>

#include "baselines/registry.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_molecule.h"
#include "data/synthetic_tu.h"
#include "eval/cross_validation.h"
#include "eval/finetune.h"
#include "graph/dataset_io.h"
#include "graph/splits.h"
#include "gtest/gtest.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(PipelineTest, UnsupervisedEndToEndThroughDisk) {
  // 1. Generate and freeze a dataset.
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.2;
  opt.node_cap = 15;
  opt.seed = 71;
  GraphDataset generated = MakeTuDataset(TuDataset::kMutag, opt);
  const std::string data_path = TempPath("pipeline_data.bin");
  ASSERT_TRUE(SaveDataset(generated, data_path).ok());
  auto dataset = LoadDataset(data_path);
  ASSERT_TRUE(dataset.ok());

  // 2. Pretrain SGCL and checkpoint it.
  SgclConfig cfg = MakeUnsupervisedConfig(dataset->feat_dim());
  cfg.encoder.hidden_dim = 16;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 16;
  cfg.epochs = 6;
  cfg.batch_size = 8;
  SgclTrainer trainer(cfg, 72);
  PretrainStats stats = trainer.Pretrain(*dataset).value();
  ASSERT_EQ(static_cast<int>(stats.epoch_losses.size()), cfg.epochs);
  const std::string ckpt_path = TempPath("pipeline_model.ckpt");
  ASSERT_TRUE(SaveCheckpoint(trainer.model(), ckpt_path).ok());

  // 3. Reload into a fresh model and evaluate embeddings with SVM CV.
  Rng rng(73);
  SgclModel restored(cfg, &rng);
  ASSERT_TRUE(LoadCheckpoint(ckpt_path, &restored).ok());
  std::vector<const Graph*> all;
  for (int64_t i = 0; i < dataset->size(); ++i) {
    all.push_back(&dataset->graph(i));
  }
  Tensor emb = restored.EmbedGraphs(all);
  MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                dataset->Labels().value(), dataset->num_classes(),
                                /*folds=*/5, &rng);
  // Pretrained embeddings on the planted-motif data must beat chance
  // clearly.
  EXPECT_GT(cv.mean, 0.6);
  // And must match the original (non-restored) model exactly.
  Tensor emb_orig = trainer.model().EmbedGraphs(all);
  for (int64_t i = 0; i < emb.numel(); ++i) {
    EXPECT_FLOAT_EQ(emb.data()[i], emb_orig.data()[i]);
  }
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(PipelineTest, TransferEndToEnd) {
  GraphDataset zinc = MakeZincLikeDataset(60, 81);
  MolDatasetOptions mopt;
  mopt.graph_fraction = 0.05;
  mopt.max_graphs = 120;
  mopt.seed = 82;
  GraphDataset bbbp = MakeMolTaskDataset(MolTask::kBbbp, mopt);

  SgclConfig cfg = MakeTransferConfig(kMoleculeFeatDim, /*hidden_dim=*/16);
  cfg.encoder.num_layers = 2;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  SgclTrainer trainer(cfg, 83);
  ASSERT_TRUE(trainer.Pretrain(zinc).ok());

  ThreeWaySplit split = ScaffoldSplit(bbbp, 0.7, 0.1);
  FinetuneConfig ft;
  ft.epochs = 8;
  Rng rng(84);
  const double auc = FinetuneAndEvalRocAuc(
      trainer.model().mutable_encoder_k(), bbbp, split.train, split.test, ft,
      &rng);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(PipelineTest, RegistryDrivenComparison) {
  // A miniature of the Table III harness: two registry-built methods run
  // the same protocol and produce comparable finite numbers.
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.1;
  opt.node_cap = 12;
  opt.seed = 91;
  GraphDataset ds = MakeTuDataset(TuDataset::kProteins, opt);
  BaselineConfig bcfg;
  bcfg.encoder.arch = GnnArch::kGin;
  bcfg.encoder.in_dim = ds.feat_dim();
  bcfg.encoder.hidden_dim = 16;
  bcfg.encoder.num_layers = 2;
  bcfg.epochs = 3;
  bcfg.batch_size = 8;
  SgclConfig scfg = MakeUnsupervisedConfig(ds.feat_dim());
  scfg.encoder.hidden_dim = 16;
  scfg.encoder.num_layers = 2;
  scfg.proj_dim = 16;
  scfg.epochs = 3;
  scfg.batch_size = 8;
  for (const std::string name : {"SGCL", "GraphCL"}) {
    auto method = MakePretrainer(name, bcfg, scfg, 92);
    ASSERT_TRUE(method.ok());
    (*method)->Pretrain(ds, {});
    std::vector<const Graph*> all;
    for (int64_t i = 0; i < ds.size(); ++i) all.push_back(&ds.graph(i));
    Tensor emb = (*method)->EmbedGraphs(all);
    Rng rng(93);
    MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                  ds.Labels().value(), ds.num_classes(), 3, &rng);
    EXPECT_GT(cv.mean, 0.4) << name;
    EXPECT_LE(cv.mean, 1.0) << name;
  }
}

}  // namespace
}  // namespace sgcl
