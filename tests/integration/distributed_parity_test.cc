// The tentpole acceptance test: multi-process data-parallel
// pretraining is bitwise-identical to --workers=1 for every worker
// count, over in-memory and sharded sources, and stays so when a
// worker is killed mid-epoch and elastically rejoins from its
// checkpoint.
#include <filesystem>
#include <string>
#include <vector>

#include "comms/distributed_test_util.h"
#include "common/fault.h"
#include "core/sgcl_trainer.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

using ::sgcl::testing::ClusterConfig;
using ::sgcl::testing::RunCluster;

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

GraphDataset ParityDataset() {
  return MakeZincLikeDataset(/*num_graphs=*/26, /*seed=*/33);
}

SgclConfig ParityConfig(int epochs = 3) {
  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = 10;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 10;
  cfg.batch_size = 4;  // 6 batches/epoch -> rounds of 4 + tail of 2
  cfg.epochs = epochs;
  return cfg;
}

ClusterConfig ParityCluster(int world) {
  ClusterConfig cc;
  cc.config = ParityConfig();
  cc.seed = 23;
  cc.world = world;
  cc.accum = 4;
  return cc;
}

// Per-epoch losses of an N-worker cluster, after asserting every rank
// reported the identical loss vector.
std::vector<float> ClusterLosses(const ClusterConfig& cc,
                                 const GraphSource& source) {
  const std::vector<PretrainStats> stats = RunCluster(cc, source);
  EXPECT_EQ(static_cast<int>(stats.size()), cc.world);
  for (size_t rank = 1; rank < stats.size(); ++rank) {
    EXPECT_EQ(stats[rank].epoch_losses, stats[0].epoch_losses)
        << "rank " << rank << " diverged from rank 0";
  }
  return stats.empty() ? std::vector<float>() : stats[0].epoch_losses;
}

TEST(DistributedParityTest, WorkerCountsAreBitwiseIdenticalInMemory) {
  GraphDataset ds = ParityDataset();
  const InMemorySource source(&ds);
  const std::vector<float> one = ClusterLosses(ParityCluster(1), source);
  ASSERT_EQ(one.size(), 3u);
  const std::vector<float> two = ClusterLosses(ParityCluster(2), source);
  const std::vector<float> four = ClusterLosses(ParityCluster(4), source);
  // Bitwise float equality — the whole point of the fixed-order
  // reduction.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(DistributedParityTest, WorkerCountsAreBitwiseIdenticalSharded) {
  GraphDataset ds = ParityDataset();
  const std::string dir = TempDir("dist_parity_shards");
  ShardWriterOptions opt;
  opt.graphs_per_shard = 7;  // multiple blocks: block-aware shuffle path
  opt.name = ds.name();
  opt.num_classes = ds.num_classes();
  ASSERT_TRUE([&]() -> Status {
    SGCL_ASSIGN_OR_RETURN(auto writer,
                          ShardedGraphStoreWriter::Create(dir, opt));
    for (int64_t i = 0; i < ds.size(); ++i) {
      SGCL_RETURN_NOT_OK(writer->Append(ds.graph(i)));
    }
    return writer->Finalize();
  }()
                  .ok());
  auto store = ShardedGraphStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_GT((*store)->num_shards(), 1);

  const std::vector<float> one = ClusterLosses(ParityCluster(1), **store);
  ASSERT_EQ(one.size(), 3u);
  const std::vector<float> two = ClusterLosses(ParityCluster(2), **store);
  EXPECT_EQ(one, two);
}

// Changing the worker count must not silently change the schedule:
// the single-process plain Pretrain loop (no accumulation) is a
// DIFFERENT training run. Guard against accidentally "proving" parity
// by comparing against it.
TEST(DistributedParityTest, DistributedScheduleDiffersFromPlainLoop) {
  GraphDataset ds = ParityDataset();
  const InMemorySource source(&ds);
  SgclTrainer plain(ParityConfig(), /*seed=*/23);
  auto plain_stats = plain.Pretrain(source, {}, {});
  ASSERT_TRUE(plain_stats.ok());
  const std::vector<float> one = ClusterLosses(ParityCluster(1), source);
  EXPECT_NE(plain_stats->epoch_losses, one)
      << "grad-accum rounds should not reproduce per-batch SGD";
}

// Mid-run worker death: a worker crashes via an injected comms fault,
// restarts from its checkpoint (with a different ctor seed — the
// checkpointed train_seed must carry the stream), rejoins, and the
// final losses still match the undisturbed 1-worker run bitwise.
TEST(DistributedParityTest, KillAndRejoinKeepsBitwiseParity) {
  GraphDataset ds = ParityDataset();
  const InMemorySource source(&ds);
  const std::vector<float> baseline =
      ClusterLosses(ParityCluster(1), source);

  ClusterConfig cc = ParityCluster(2);
  cc.ckpt_root = TempDir("dist_parity_kill");
  cc.ckpt_every_batches = 4;  // checkpoint at every full round
  ScopedFaultInjection faults;
  // Fire deep enough into the run that checkpoints exist, so the
  // restart exercises resume + cache catch-up rather than a from-
  // scratch replay.
  FaultInjector::Global().Arm("comms/send", FaultKind::kCrash, /*nth=*/20);
  int restarts = 0;
  const std::vector<PretrainStats> stats =
      RunCluster(cc, source, &restarts);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(restarts, 1) << "the armed crash never fired";
  EXPECT_GT(FaultInjector::Global().hits("comms/send"), 0);
  EXPECT_EQ(stats[0].epoch_losses, baseline);
  EXPECT_EQ(stats[1].epoch_losses, baseline);
}

}  // namespace
}  // namespace sgcl
