// In-process multi-worker harness for distributed pretraining tests.
//
// Each "worker process" is a thread with its own SgclTrainer and
// AllReduceClient; the coordinator runs alongside, exactly as it does
// inside rank 0's process in production. Elastic restarts are modeled
// by the harness thread catching a failed PretrainDistributed (a
// simulated crash, a torn connection, a coordinator-side fault), then
// constructing a FRESH trainer — with a deliberately different ctor
// seed when a checkpoint exists, to prove TrainState::train_seed replay
// — and rejoining from the latest checkpoint, just like a relaunched
// process would.
#ifndef SGCL_TESTS_COMMS_DISTRIBUTED_TEST_UTIL_H_
#define SGCL_TESTS_COMMS_DISTRIBUTED_TEST_UTIL_H_

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "comms/allreduce.h"
#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "graph/graph_source.h"
#include "gtest/gtest.h"

namespace sgcl::testing {

struct ClusterConfig {
  SgclConfig config;
  uint64_t seed = 17;
  int world = 2;
  int accum = 4;
  // Per-rank checkpoint subdirs are created under this root; empty
  // disables checkpointing (crashed workers then restart from scratch
  // and replay every round from the coordinator cache).
  std::string ckpt_root;
  int64_t ckpt_every_batches = 0;
  int cache_rounds = 1 << 16;  // tests never evict unless they say so
  int timeout_ms = 60000;
  int max_restarts = 25;
};

inline std::string RankCheckpointDir(const ClusterConfig& cc, int rank) {
  return cc.ckpt_root + "/rank-" + std::to_string(rank);
}

// The coordinator-side schedule for `cc` over `source` (a probe trainer
// supplies grad_dim the same way the CLI does).
inline AllReduceSchedule MakeSchedule(const ClusterConfig& cc,
                                      const GraphSource& source) {
  SgclTrainer probe(cc.config, cc.seed);
  AllReduceSchedule schedule;
  schedule.world_size = static_cast<uint32_t>(cc.world);
  schedule.accum = static_cast<uint32_t>(cc.accum);
  schedule.epochs = static_cast<uint32_t>(cc.config.epochs);
  schedule.grad_dim = static_cast<uint64_t>(probe.model().NumParameters());
  schedule.batches_per_epoch = static_cast<uint64_t>(
      PretrainBatchesPerEpoch(source.size(), cc.config.batch_size));
  schedule.config_fingerprint = ConfigFingerprint(cc.config);
  schedule.source_fingerprint = source.ContentFingerprint();
  schedule.run_seed = cc.seed;
  return schedule;
}

// One worker lifetime: fresh trainer, join, train (to completion or
// death).
inline Result<PretrainStats> RunWorkerOnce(const ClusterConfig& cc,
                                           const GraphSource& source,
                                           int rank, int port,
                                           uint64_t ctor_seed,
                                           const std::string& resume_from) {
  SgclTrainer trainer(cc.config, ctor_seed);
  PretrainOptions options;
  if (!cc.ckpt_root.empty()) {
    options.checkpoint_dir = RankCheckpointDir(cc, rank);
    options.checkpoint_every_batches = cc.ckpt_every_batches;
    options.checkpoint_keep_last = 0;  // keep all: eviction is a
                                       // separate, targeted test
  }
  options.resume_from = resume_from;
  DistributedPretrainOptions dist;
  dist.rank = rank;
  dist.world_size = cc.world;
  dist.grad_accum = cc.accum;
  dist.coordinator_port = port;
  dist.allreduce_timeout_ms = cc.timeout_ms;
  dist.connect_deadline_ms = cc.timeout_ms;
  return trainer.PretrainDistributed(source, {}, options, dist);
}

// Worker with elastic restarts: any failure (simulated crash, torn
// frame, dead connection) kills this "process"; a new one rejoins from
// the rank's latest checkpoint. `restarts_out` reports how many deaths
// were survived.
inline Result<PretrainStats> RunWorkerElastic(const ClusterConfig& cc,
                                              const GraphSource& source,
                                              int rank, int port,
                                              int* restarts_out = nullptr) {
  int restarts = 0;
  while (true) {
    std::string resume;
    if (!cc.ckpt_root.empty()) {
      Result<std::string> latest =
          FindLatestCheckpoint(RankCheckpointDir(cc, rank));
      if (latest.ok()) resume = *latest;
    }
    // With a checkpoint in hand the relaunch uses a DIFFERENT ctor
    // seed: resume must replay bit-exactly off the checkpointed
    // train_seed, never off process-local state.
    const uint64_t ctor_seed =
        resume.empty() ? cc.seed
                       : cc.seed + 1000 + static_cast<uint64_t>(restarts);
    Result<PretrainStats> result =
        RunWorkerOnce(cc, source, rank, port, ctor_seed, resume);
    if (result.ok()) {
      if (restarts_out != nullptr) *restarts_out = restarts;
      return result;
    }
    if (++restarts > cc.max_restarts) return result;
  }
}

// Owns a started coordinator; Shutdown() drains goodbyes then stops.
class TestCoordinator {
 public:
  TestCoordinator(const ClusterConfig& cc, const GraphSource& source)
      : world_(cc.world), timeout_ms_(cc.timeout_ms) {
    AllReduceCoordinatorOptions options;
    options.schedule = MakeSchedule(cc, source);
    options.cache_rounds = cc.cache_rounds;
    coordinator_ = std::make_unique<AllReduceCoordinator>(options);
    const Status st = coordinator_->Start(0);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  int port() const { return coordinator_->port(); }
  AllReduceCoordinator& get() { return *coordinator_; }

  void Shutdown() {
    EXPECT_TRUE(coordinator_->WaitForGoodbyes(world_, timeout_ms_));
    coordinator_->Stop();
  }

 private:
  std::unique_ptr<AllReduceCoordinator> coordinator_;
  int world_;
  int timeout_ms_;
};

// Runs a full cluster (coordinator + cc.world elastic workers) to
// completion and returns every worker's stats, indexed by rank.
inline std::vector<PretrainStats> RunCluster(const ClusterConfig& cc,
                                             const GraphSource& source,
                                             int* total_restarts = nullptr) {
  TestCoordinator coordinator(cc, source);
  std::vector<std::optional<Result<PretrainStats>>> results(cc.world);
  std::vector<int> restarts(cc.world, 0);
  std::vector<std::thread> threads;
  threads.reserve(cc.world);
  for (int rank = 0; rank < cc.world; ++rank) {
    threads.emplace_back([&, rank] {
      results[rank] = RunWorkerElastic(cc, source, rank,
                                       coordinator.port(), &restarts[rank]);
    });
  }
  for (std::thread& t : threads) t.join();
  coordinator.Shutdown();
  std::vector<PretrainStats> stats;
  for (int rank = 0; rank < cc.world; ++rank) {
    EXPECT_TRUE(results[rank].has_value());
    EXPECT_TRUE(results[rank]->ok())
        << "rank " << rank << ": " << results[rank]->status().ToString();
    if (results[rank]->ok()) stats.push_back(**results[rank]);
  }
  if (total_restarts != nullptr) {
    *total_restarts = 0;
    for (int r : restarts) *total_restarts += r;
  }
  return stats;
}

}  // namespace sgcl::testing

#endif  // SGCL_TESTS_COMMS_DISTRIBUTED_TEST_UTIL_H_
