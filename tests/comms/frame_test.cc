// Property tests for the comms wire format (comms/frame.h): random
// round-trips, truncation at every byte boundary, and corruption of
// every header and payload byte.
#include <cstdint>
#include <string>
#include <vector>

#include "comms/frame.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

std::string RandomPayload(Rng* rng, size_t size) {
  std::string payload(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>(rng->UniformInt(0, 255));
  }
  return payload;
}

TEST(FrameTest, RoundTripsRandomPayloads) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t type = static_cast<uint32_t>(rng.UniformInt(1, 7));
    const size_t size = static_cast<size_t>(rng.UniformInt(0, 512));
    const std::string payload = RandomPayload(&rng, size);
    std::string buffer = EncodeFrame(type, payload);
    ASSERT_EQ(buffer.size(), kFrameHeaderBytes + size);
    Frame frame;
    auto decoded = TryDecodeFrame(&buffer, &frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_TRUE(buffer.empty()) << "decode must consume the frame";
  }
}

TEST(FrameTest, DecodesBackToBackFramesFromOneBuffer) {
  std::string buffer = EncodeFrame(FrameType::kHello, "first") +
                       EncodeFrame(FrameType::kLeaf, "second") +
                       EncodeFrame(FrameType::kGoodbye, "");
  std::vector<std::string> payloads;
  Frame frame;
  while (true) {
    auto decoded = TryDecodeFrame(&buffer, &frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    if (!*decoded) break;
    payloads.push_back(frame.payload);
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "first");
  EXPECT_EQ(payloads[1], "second");
  EXPECT_EQ(payloads[2], "");
  EXPECT_TRUE(buffer.empty());
}

// A prefix of a valid frame is never an error — it is "need more
// bytes" at every truncation point, which is what lets the channel
// accumulate partial reads.
TEST(FrameTest, TruncationAtEveryByteNeedsMoreNeverErrors) {
  const std::string full = EncodeFrame(FrameType::kRoundResult,
                                       "truncation-probe-payload");
  for (size_t keep = 0; keep < full.size(); ++keep) {
    std::string buffer = full.substr(0, keep);
    Frame frame;
    auto decoded = TryDecodeFrame(&buffer, &frame);
    ASSERT_TRUE(decoded.ok())
        << "truncated at " << keep << ": " << decoded.status().ToString();
    EXPECT_FALSE(*decoded) << "truncated at " << keep;
    EXPECT_EQ(buffer.size(), keep) << "partial frame must stay buffered";
  }
}

// Flipping any single bit of any byte must be caught: magic bytes fail
// the magic check, length bytes either fail the cap or starve the
// decoder (declared length grows past the buffer), and everything else
// fails the CRC. No corruption may decode successfully.
TEST(FrameTest, CorruptionOfEveryByteIsNeverSilentlyAccepted) {
  const std::string full =
      EncodeFrame(FrameType::kLeaf, "crc-guarded-payload-bytes");
  for (size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string buffer = full;
      buffer[pos] = static_cast<char>(buffer[pos] ^ (1 << bit));
      Frame frame;
      auto decoded = TryDecodeFrame(&buffer, &frame);
      if (decoded.ok()) {
        // Corrupt length fields may legitimately leave the decoder
        // waiting for bytes that never come; they must not produce a
        // frame.
        EXPECT_FALSE(*decoded)
            << "byte " << pos << " bit " << bit << " decoded as a frame";
      } else {
        EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(FrameTest, RejectsOversizedDeclaredPayload) {
  std::string buffer = EncodeFrame(FrameType::kLeaf, "x");
  // Rewrite the length field to just over the cap.
  const uint32_t huge = kMaxFramePayload + 1;
  buffer[8] = static_cast<char>(huge & 0xff);
  buffer[9] = static_cast<char>((huge >> 8) & 0xff);
  buffer[10] = static_cast<char>((huge >> 16) & 0xff);
  buffer[11] = static_cast<char>((huge >> 24) & 0xff);
  Frame frame;
  auto decoded = TryDecodeFrame(&buffer, &frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, BadMagicRejectsAsSoonAsFourBytesArrive) {
  std::string buffer = "HTTP/1.1 200 OK";  // not an SGCF stream
  Frame frame;
  auto decoded = TryDecodeFrame(&buffer, &frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, FrameTypeNamesAreStable) {
  EXPECT_STREQ(FrameTypeToString(static_cast<uint32_t>(FrameType::kHello)),
               "HELLO");
  EXPECT_STREQ(FrameTypeToString(static_cast<uint32_t>(FrameType::kGoodbye)),
               "GOODBYE");
  EXPECT_STREQ(FrameTypeToString(999), "UNKNOWN");
}

}  // namespace
}  // namespace sgcl
