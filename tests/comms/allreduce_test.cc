// AllReduceCoordinator / AllReduceClient protocol tests: fixed-order
// reduction invariance across worker counts and submission orders,
// handshake validation, rejoin catch-up from the round cache, cache
// eviction, and duplicate-leaf dedup.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "comms/allreduce.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

constexpr uint64_t kGradDim = 4;

AllReduceSchedule TinySchedule(int world, uint32_t accum = 4,
                               uint64_t batches_per_epoch = 8,
                               uint32_t epochs = 1) {
  AllReduceSchedule schedule;
  schedule.world_size = static_cast<uint32_t>(world);
  schedule.accum = accum;
  schedule.epochs = epochs;
  schedule.grad_dim = kGradDim;
  schedule.batches_per_epoch = batches_per_epoch;
  schedule.config_fingerprint = 0xc0ffee;
  schedule.source_fingerprint = 0xdada;
  schedule.run_seed = 99;
  return schedule;
}

std::unique_ptr<AllReduceCoordinator> StartCoordinator(
    const AllReduceSchedule& schedule, int cache_rounds = 64) {
  AllReduceCoordinatorOptions options;
  options.schedule = schedule;
  options.cache_rounds = cache_rounds;
  auto coordinator = std::make_unique<AllReduceCoordinator>(options);
  EXPECT_TRUE(coordinator->Start(0).ok());
  EXPECT_GT(coordinator->port(), 0);
  return coordinator;
}

Result<JoinReply> Join(AllReduceClient* client, int port,
                       const AllReduceSchedule& schedule, uint32_t rank,
                       uint64_t next_round = 0) {
  WorkerHello hello;
  hello.rank = rank;
  hello.schedule = schedule;
  hello.next_round = next_round;
  return client->Join(port, hello, /*connect_deadline_ms=*/5000,
                      /*io_timeout_ms=*/10000);
}

// Leaf gradients whose float sum depends on addition order: summing
// slot-order (0,1,2,3) gives a different bit pattern than (3,2,1,0)
// for these magnitudes, so bitwise-equal results across submission
// orders prove the coordinator imposes its own order.
std::vector<float> LeafGrad(uint32_t slot) {
  const float magnitudes[] = {3e7f, 1.0f, -3e7f, 1e-3f};
  std::vector<float> grad(kGradDim);
  for (uint64_t i = 0; i < kGradDim; ++i) {
    grad[i] = magnitudes[(slot + i) % 4] + static_cast<float>(slot);
  }
  return grad;
}

double LeafLoss(uint32_t slot) { return 0.25 + 1e9 * (slot % 2); }

// Runs the full two-round schedule with `world` clients, each
// submitting its owned slots in the given per-client order, and
// returns the reduced rounds in order.
std::vector<ReducedRound> ReduceWithWorld(int world, bool reverse_slots) {
  const AllReduceSchedule schedule = TinySchedule(world);
  auto coordinator = StartCoordinator(schedule);
  std::vector<std::vector<ReducedRound>> per_rank(world);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      AllReduceClient client;
      auto reply = Join(&client, coordinator->port(), schedule,
                        static_cast<uint32_t>(rank));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      for (uint64_t round = 0; round < schedule.total_rounds(); ++round) {
        const uint32_t leaves = schedule.leaves_in_round(round);
        std::vector<uint32_t> slots;
        for (uint32_t slot = 0; slot < leaves; ++slot) {
          if (RankOwningSlot(slot, world) == rank) slots.push_back(slot);
        }
        if (reverse_slots) std::reverse(slots.begin(), slots.end());
        for (uint32_t slot : slots) {
          ASSERT_TRUE(client
                          .SubmitLeaf(round, slot, LeafLoss(slot),
                                      LeafGrad(slot))
                          .ok());
        }
        auto reduced = client.GetRound(round);
        ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
        per_rank[rank].push_back(*reduced);
      }
      ASSERT_TRUE(client.Goodbye(static_cast<uint32_t>(rank)).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(coordinator->WaitForGoodbyes(world, 10000));
  EXPECT_EQ(coordinator->completed_rounds(), schedule.total_rounds());
  coordinator->Stop();
  // Every rank must have seen identical broadcasts.
  for (int rank = 1; rank < world; ++rank) {
    EXPECT_EQ(per_rank[rank].size(), per_rank[0].size());
    for (size_t r = 0; r < per_rank[0].size(); ++r) {
      EXPECT_EQ(per_rank[rank][r].grad_sum, per_rank[0][r].grad_sum);
      EXPECT_EQ(per_rank[rank][r].loss_sum, per_rank[0][r].loss_sum);
    }
  }
  return per_rank[0];
}

TEST(AllReduceTest, ReductionIsBitwiseInvariantAcrossWorldAndOrder) {
  const std::vector<ReducedRound> one = ReduceWithWorld(1, false);
  const std::vector<ReducedRound> one_rev = ReduceWithWorld(1, true);
  const std::vector<ReducedRound> two = ReduceWithWorld(2, false);
  const std::vector<ReducedRound> four = ReduceWithWorld(4, true);
  ASSERT_EQ(one.size(), 2u);
  for (size_t r = 0; r < one.size(); ++r) {
    EXPECT_EQ(one[r].leaf_count, 4u);
    // Bitwise: same vector<float> contents, not approximate equality.
    EXPECT_EQ(one[r].grad_sum, one_rev[r].grad_sum);
    EXPECT_EQ(one[r].grad_sum, two[r].grad_sum);
    EXPECT_EQ(one[r].grad_sum, four[r].grad_sum);
    EXPECT_EQ(one[r].loss_sum, two[r].loss_sum);
    EXPECT_EQ(one[r].loss_sum, four[r].loss_sum);
  }
  // The magnitudes were chosen so order matters in isolation — prove
  // the premise, or the invariance assertions above are vacuous.
  float forward = 0.0f, backward = 0.0f;
  for (uint32_t slot = 0; slot < 4; ++slot) forward += LeafGrad(slot)[0];
  for (int slot = 3; slot >= 0; --slot) {
    backward += LeafGrad(static_cast<uint32_t>(slot))[0];
  }
  EXPECT_NE(forward, backward)
      << "pick nastier magnitudes: float addition commuted here";
}

TEST(AllReduceTest, RejectsMismatchedSchedule) {
  const AllReduceSchedule schedule = TinySchedule(1);
  auto coordinator = StartCoordinator(schedule);
  AllReduceSchedule wrong = schedule;
  wrong.config_fingerprint ^= 1;
  AllReduceClient client;
  auto reply = Join(&client, coordinator->port(), wrong, 0);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  coordinator->Stop();
}

TEST(AllReduceTest, RejectsOutOfRangeRank) {
  const AllReduceSchedule schedule = TinySchedule(2);
  auto coordinator = StartCoordinator(schedule);
  AllReduceClient client;
  auto reply = Join(&client, coordinator->port(), schedule, /*rank=*/7);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  coordinator->Stop();
}

TEST(AllReduceTest, RejoinerFetchesCompletedRoundFromCache) {
  const AllReduceSchedule schedule = TinySchedule(1);
  auto coordinator = StartCoordinator(schedule);
  AllReduceClient first;
  ASSERT_TRUE(Join(&first, coordinator->port(), schedule, 0).ok());
  for (uint32_t slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(
        first.SubmitLeaf(0, slot, LeafLoss(slot), LeafGrad(slot)).ok());
  }
  auto live = first.GetRound(0);
  ASSERT_TRUE(live.ok());
  first.Disconnect();  // dies without goodbye

  AllReduceClient rejoiner;
  auto reply = Join(&rejoiner, coordinator->port(), schedule, 0,
                    /*next_round=*/0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->completed_rounds, 1u);
  auto cached = rejoiner.GetRound(0);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_EQ(cached->grad_sum, live->grad_sum);
  EXPECT_EQ(cached->loss_sum, live->loss_sum);
  coordinator->Stop();
}

TEST(AllReduceTest, EvictedRoundFailsPrecondition) {
  const AllReduceSchedule schedule = TinySchedule(1, /*accum=*/2,
                                                  /*batches=*/6);
  auto coordinator = StartCoordinator(schedule, /*cache_rounds=*/1);
  AllReduceClient client;
  ASSERT_TRUE(Join(&client, coordinator->port(), schedule, 0).ok());
  for (uint64_t round = 0; round < 3; ++round) {
    for (uint32_t slot = 0; slot < schedule.leaves_in_round(round);
         ++slot) {
      ASSERT_TRUE(
          client.SubmitLeaf(round, slot, 1.0, LeafGrad(slot)).ok());
    }
    ASSERT_TRUE(client.GetRound(round).ok());
  }
  auto evicted = client.GetRound(0);
  ASSERT_FALSE(evicted.ok());
  EXPECT_EQ(evicted.status().code(), StatusCode::kFailedPrecondition);
  coordinator->Stop();
}

TEST(AllReduceTest, DuplicateLeafSubmissionsAreFirstWriteWins) {
  const AllReduceSchedule schedule = TinySchedule(1);
  auto coordinator = StartCoordinator(schedule);
  AllReduceClient client;
  ASSERT_TRUE(Join(&client, coordinator->port(), schedule, 0).ok());
  // Slot 0 twice: the second (different) payload must be dropped.
  ASSERT_TRUE(client.SubmitLeaf(0, 0, LeafLoss(0), LeafGrad(0)).ok());
  std::vector<float> imposter(kGradDim, 1e6f);
  ASSERT_TRUE(client.SubmitLeaf(0, 0, 777.0, imposter).ok());
  for (uint32_t slot = 1; slot < 4; ++slot) {
    ASSERT_TRUE(
        client.SubmitLeaf(0, slot, LeafLoss(slot), LeafGrad(slot)).ok());
  }
  auto reduced = client.GetRound(0);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  float want = 0.0f;
  for (uint32_t slot = 0; slot < 4; ++slot) want += LeafGrad(slot)[0];
  EXPECT_EQ(reduced->grad_sum[0], want);
  coordinator->Stop();
}

TEST(AllReduceTest, WrongGradDimensionIsRejected) {
  const AllReduceSchedule schedule = TinySchedule(1);
  auto coordinator = StartCoordinator(schedule);
  AllReduceClient client;
  ASSERT_TRUE(Join(&client, coordinator->port(), schedule, 0).ok());
  std::vector<float> wrong(kGradDim + 1, 0.0f);
  // The coordinator drops the bad leaf and keeps the connection's
  // error surfacing to the worker on its next exchange; SubmitLeaf
  // itself is fire-and-forget so the failure shows up in GetRound.
  (void)client.SubmitLeaf(0, 0, 1.0, wrong);
  auto reduced = client.GetRound(0);
  EXPECT_FALSE(reduced.ok());
  coordinator->Stop();
}

TEST(AllReduceTest, DescribeMismatchNamesTheDifferingFields) {
  const AllReduceSchedule a = TinySchedule(2);
  AllReduceSchedule b = a;
  EXPECT_TRUE(a.DescribeMismatch(b).empty());
  b.accum = 9;
  b.run_seed = 123;
  const std::string diff = a.DescribeMismatch(b);
  EXPECT_NE(diff.find("accum"), std::string::npos) << diff;
  EXPECT_NE(diff.find("run_seed"), std::string::npos) << diff;
}

}  // namespace
}  // namespace sgcl
