// FramedChannel / FrameListener tests: loopback round-trips, recv
// deadlines, peer-close detection, fault-injected short/failed I/O,
// and full-duplex use from two threads (the TSan target).
#include <string>
#include <thread>
#include <vector>

#include "comms/channel.h"
#include "comms/frame.h"
#include "common/fault.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

// A connected (server, client) channel pair over an ephemeral loopback
// port — every listener in the tests binds port 0, so `ctest -j` never
// races for a fixed port.
struct ChannelPair {
  FrameListener listener{"comms_srv"};
  FramedChannel server{"comms_srv"};
  FramedChannel client;

  void Wire() {
    ASSERT_TRUE(listener.Listen(0).ok());
    ASSERT_GT(listener.port(), 0);
    ASSERT_TRUE(client.Connect(listener.port()).ok());
    auto fd = listener.AcceptFd();
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    server.Adopt(*fd);
  }
};

TEST(ChannelTest, RoundTripsFramesBothDirections) {
  ChannelPair pair;
  pair.Wire();
  ASSERT_TRUE(pair.client.Send(FrameType::kHello, "ping").ok());
  auto at_server = pair.server.Recv();
  ASSERT_TRUE(at_server.ok()) << at_server.status().ToString();
  EXPECT_EQ(at_server->type, static_cast<uint32_t>(FrameType::kHello));
  EXPECT_EQ(at_server->payload, "ping");

  ASSERT_TRUE(pair.server.Send(FrameType::kWelcome, "pong").ok());
  auto at_client = pair.client.Recv();
  ASSERT_TRUE(at_client.ok()) << at_client.status().ToString();
  EXPECT_EQ(at_client->payload, "pong");
}

TEST(ChannelTest, RecvTimesOutWhenPeerIsSilent) {
  ChannelPair pair;
  pair.Wire();
  pair.server.SetIoTimeout(50);
  auto frame = pair.server.Recv();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(IsIoTimeout(frame.status())) << frame.status().ToString();
  EXPECT_FALSE(IsPeerClosed(frame.status()));
}

TEST(ChannelTest, RecvReportsPeerClose) {
  ChannelPair pair;
  pair.Wire();
  pair.client.Disconnect();
  auto frame = pair.server.Recv();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(IsPeerClosed(frame.status())) << frame.status().ToString();
}

TEST(ChannelTest, InjectedSendErrorSurfacesAsUnavailable) {
  ChannelPair pair;
  pair.Wire();
  ScopedFaultInjection faults;
  FaultInjector::Global().Arm("comms/send", FaultKind::kError);
  Status st = pair.client.Send(FrameType::kLeaf, "never-arrives");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(FaultInjector::Global().hits("comms/send"), 1);
}

// A short write transmits a prefix of the frame then fails: the peer
// must see either "need more bytes" forever (and then EOF once the
// torn sender closes) — never a successfully decoded frame.
TEST(ChannelTest, InjectedShortWriteTearsTheFrameDetectably) {
  ChannelPair pair;
  pair.Wire();
  {
    ScopedFaultInjection faults;
    FaultInjector::Global().Arm("comms/send", FaultKind::kShortWrite);
    Status st = pair.client.Send(FrameType::kLeaf, "torn-frame-payload");
    ASSERT_FALSE(st.ok());
  }
  pair.client.Disconnect();  // the "crashed" sender's socket goes away
  auto frame = pair.server.Recv();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(IsPeerClosed(frame.status())) << frame.status().ToString();
}

TEST(ChannelTest, InjectedRecvFaultSurfaces) {
  ChannelPair pair;
  pair.Wire();
  ASSERT_TRUE(pair.client.Send(FrameType::kHello, "x").ok());
  ScopedFaultInjection faults;
  FaultInjector::Global().Arm("comms_srv/recv", FaultKind::kError);
  auto frame = pair.server.Recv();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(ChannelTest, InjectedConnectCrashIsSimulatedCrash) {
  FrameListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  ScopedFaultInjection faults;
  FaultInjector::Global().Arm("comms/connect", FaultKind::kCrash);
  FramedChannel channel;
  Status st = channel.Connect(listener.port());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsSimulatedCrash(st)) << st.ToString();
  EXPECT_FALSE(channel.connected());
}

// Full-duplex: one thread streams frames out while another drains the
// inbound direction of the SAME channel. Run under TSan this proves
// Send and Recv never race on shared channel state.
TEST(ChannelTest, ConcurrentSendAndRecvOnOneChannelIsRaceFree) {
  ChannelPair pair;
  pair.Wire();
  constexpr int kFrames = 200;
  std::thread echo([&] {
    for (int i = 0; i < kFrames; ++i) {
      auto frame = pair.server.Recv();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_TRUE(pair.server.Send(frame->type, frame->payload).ok());
    }
  });
  std::thread sender([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(
          pair.client.Send(FrameType::kLeaf, std::to_string(i)).ok());
    }
  });
  // This thread drains echoes while `sender` pushes on the same
  // client channel.
  for (int i = 0; i < kFrames; ++i) {
    auto frame = pair.client.Recv();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->payload, std::to_string(i));
  }
  sender.join();
  echo.join();
}

TEST(ChannelTest, ShutdownWakeUnblocksARecvFromAnotherThread) {
  ChannelPair pair;
  pair.Wire();
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.server.ShutdownWake();
  });
  auto frame = pair.server.Recv();  // no deadline: only the wake ends it
  EXPECT_FALSE(frame.ok());
  waker.join();
}

TEST(ChannelTest, ListenerPicksDistinctEphemeralPorts) {
  FrameListener a, b;
  ASSERT_TRUE(a.Listen(0).ok());
  ASSERT_TRUE(b.Listen(0).ok());
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

}  // namespace
}  // namespace sgcl
