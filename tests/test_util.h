// Shared test helpers: finite-difference gradient checking and tiny
// fixture graphs.
#ifndef SGCL_TESTS_TEST_UTIL_H_
#define SGCL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace sgcl::testing {

// Checks d(loss)/d(input) against central finite differences.
// `make_loss` must rebuild the full forward graph from the given input
// tensor and return a scalar loss. Gradients of ops with kinks (relu,
// max) should be probed at points away from the kink.
inline void GradCheck(
    Tensor input,
    const std::function<Tensor(const Tensor&)>& make_loss,
    float eps = 1e-3f, float rtol = 5e-2f, float atol = 1e-4f) {
  input.set_requires_grad(true);
  input.ZeroGrad();
  Tensor loss = make_loss(input);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<float> analytic(input.impl()->grad);
  for (size_t i = 0; i < input.impl()->data.size(); ++i) {
    const float orig = input.impl()->data[i];
    input.impl()->data[i] = orig + eps;
    const float up = make_loss(input).item();
    input.impl()->data[i] = orig - eps;
    const float down = make_loss(input).item();
    input.impl()->data[i] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    const float tol = atol + rtol * std::fabs(numeric);
    EXPECT_NEAR(analytic[i], numeric, tol)
        << "grad mismatch at flat index " << i;
  }
}

// A 5-node "house" graph: a 4-cycle with a roof node, feat_dim features
// filled with node-index-derived values.
inline Graph HouseGraph(int64_t feat_dim = 3) {
  Graph g(5, feat_dim);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  g.AddUndirectedEdge(3, 0);
  g.AddUndirectedEdge(0, 4);
  g.AddUndirectedEdge(1, 4);
  for (int64_t v = 0; v < 5; ++v) {
    for (int64_t j = 0; j < feat_dim; ++j) {
      g.set_feature(v, j, 0.1f * static_cast<float>(v + 1) +
                              0.01f * static_cast<float>(j));
    }
  }
  g.set_label(1);
  return g;
}

// A 3-node path graph.
inline Graph PathGraph3(int64_t feat_dim = 2) {
  Graph g(3, feat_dim);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  for (int64_t v = 0; v < 3; ++v) {
    for (int64_t j = 0; j < feat_dim; ++j) {
      g.set_feature(v, j, static_cast<float>(v) - 0.5f * static_cast<float>(j));
    }
  }
  g.set_label(0);
  return g;
}

}  // namespace sgcl::testing

#endif  // SGCL_TESTS_TEST_UTIL_H_
