// Distributed kill-and-rejoin battery (ctest label: faultinject).
//
// A 2-worker cluster is crashed deterministically at EVERY catalogued
// comms injection point — worker-side ("comms/*") and coordinator-side
// ("comms_srv/*") — and then swept with seeded random crashes. The
// harness plays init: any worker whose PretrainDistributed fails is
// relaunched with a fresh trainer (and a different ctor seed once a
// checkpoint exists) that rejoins from its latest checkpoint. The
// contract under test is the ISSUE's acceptance criterion: whatever
// dies, wherever it dies, the surviving cluster finishes with
// per-epoch losses bitwise-identical to an undisturbed --workers=1
// run.
#include <filesystem>
#include <string>
#include <vector>

#include "comms/distributed_test_util.h"
#include "common/fault.h"
#include "core/sgcl_trainer.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

using ::sgcl::testing::ClusterConfig;
using ::sgcl::testing::RunCluster;

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

GraphDataset BatteryDataset() {
  return MakeZincLikeDataset(/*num_graphs=*/18, /*seed=*/44);
}

SgclConfig BatteryConfig() {
  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  cfg.batch_size = 4;  // 4 batches/epoch -> one round of 4 per epoch
  cfg.epochs = 3;
  return cfg;
}

ClusterConfig BatteryCluster(const std::string& ckpt_root) {
  ClusterConfig cc;
  cc.config = BatteryConfig();
  cc.seed = 31;
  cc.world = 2;
  cc.accum = 4;
  cc.ckpt_root = ckpt_root;
  cc.ckpt_every_batches = 4;
  return cc;
}

// The undisturbed truth: one worker, no faults, no checkpoints.
std::vector<float> BaselineLosses(const GraphDataset& ds) {
  FaultInjector::Global().Reset();
  ClusterConfig cc = BatteryCluster("");
  cc.world = 1;
  const InMemorySource source(&ds);
  const std::vector<PretrainStats> stats = RunCluster(cc, source);
  EXPECT_EQ(stats.size(), 1u);
  return stats.empty() ? std::vector<float>() : stats[0].epoch_losses;
}

// Every comms injection point compiled into the library (the DESIGN.md
// §14 catalog). Worker-side crashes kill a worker outright;
// coordinator-side crashes kill one coordinator handler, which the
// affected worker experiences as a dead connection — either way the
// harness relaunches and the run must converge to the baseline.
constexpr const char* kCommsPoints[] = {
    "comms/connect",          "comms/send",
    "comms/recv",             "comms/frame_decode",
    "comms_srv/send",         "comms_srv/recv",
    "comms_srv/frame_decode", "comms_srv/accept",
};

class CommsCrashPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CommsCrashPointTest, KillAndRejoinConvergesBitwise) {
  const std::string point = GetParam();
  GraphDataset ds = BatteryDataset();
  const std::vector<float> baseline = BaselineLosses(ds);
  ASSERT_EQ(baseline.size(), 3u);

  const InMemorySource source(&ds);
  std::string safe_name = point;
  for (char& c : safe_name) {
    if (c == '/') c = '_';
  }
  ClusterConfig cc = BatteryCluster(TempDir("comms_crash_" + safe_name));
  ScopedFaultInjection faults;
  // nth=3: past the very first exchange for most points, so the run is
  // warm; points visited less than 3 times simply never fire (the
  // assertion below tolerates a fired-or-not crash but requires the
  // point to be ON the path).
  FaultInjector::Global().Arm(point, FaultKind::kCrash, /*nth=*/3);
  const std::vector<PretrainStats> stats = RunCluster(cc, source);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(FaultInjector::Global().hits(point), 0)
      << point << " is not on any distributed code path";
  EXPECT_EQ(stats[0].epoch_losses, baseline) << "rank 0 diverged";
  EXPECT_EQ(stats[1].epoch_losses, baseline) << "rank 1 diverged";
}

INSTANTIATE_TEST_SUITE_P(AllCommsPoints, CommsCrashPointTest,
                         ::testing::ValuesIn(kCommsPoints),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

// Seeded random-kill sweep: every Check at any injection point — comms,
// checkpoint I/O, everything — crashes with probability p. The fault
// schedule is a pure function of the seed, the workload replays it, and
// however the deaths land the final losses must still be the baseline.
class RandomKillSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomKillSweepTest, ConvergesBitwiseUnderRandomCrashes) {
  const uint64_t sweep_seed = GetParam();
  GraphDataset ds = BatteryDataset();
  const std::vector<float> baseline = BaselineLosses(ds);

  const InMemorySource source(&ds);
  ClusterConfig cc = BatteryCluster(
      TempDir("comms_sweep_" + std::to_string(sweep_seed)));
  cc.max_restarts = 60;  // the sweep can kill the same worker repeatedly
  ScopedFaultInjection faults;
  FaultInjector::Global().ArmRandom(/*p=*/0.004, sweep_seed,
                                    FaultKind::kCrash);
  const std::vector<PretrainStats> stats = RunCluster(cc, source);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].epoch_losses, baseline);
  EXPECT_EQ(stats[1].epoch_losses, baseline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKillSweepTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace sgcl
