// Fault-injected crash tests for the sharded graph store (ctest label:
// faultinject).
//
// Contracts under test:
//   * A crash at any point in the shard-write or manifest-write path
//     never publishes a readable-but-wrong store: the store is either
//     absent (no manifest — the commit point) or fully valid.
//   * Rebuilding after a crash produces a store whose content the
//     reader round-trips bit-exactly.
//   * A crash during a *mid-epoch* streaming checkpoint save leaves the
//     newest published checkpoint loadable, and resuming from it
//     reproduces the uninterrupted run's losses bitwise.
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "data/shard_store.h"
#include "data/synthetic_molecule.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

std::string TmpDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Status WriteStoreStreaming(const GraphDataset& ds, const std::string& dir,
                           int64_t graphs_per_shard) {
  ShardWriterOptions opt;
  opt.graphs_per_shard = graphs_per_shard;
  opt.name = ds.name();
  opt.num_classes = ds.num_classes();
  SGCL_ASSIGN_OR_RETURN(auto writer,
                        ShardedGraphStoreWriter::Create(dir, opt));
  for (int64_t i = 0; i < ds.size(); ++i) {
    SGCL_RETURN_NOT_OK(writer->Append(ds.graph(i)));
  }
  return writer->Finalize();
}

class ShardCrashPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardCrashPointTest, CrashNeverPublishesPartialStore) {
  const char* point = GetParam();
  GraphDataset ds = MakeZincLikeDataset(14, /*seed=*/31);
  const std::string dir =
      TmpDir(std::string("shard_crash_") +
             fs::path(point).filename().string());

  // Crash at the first, then deeper occurrences of the injection point,
  // covering every shard boundary plus the manifest publish.
  for (int nth = 1; nth <= 4; ++nth) {
    fs::remove_all(dir);
    Status crash;
    {
      ScopedFaultInjection scoped;
      FaultInjector::Global().Arm(point, FaultKind::kCrash, nth);
      crash = WriteStoreStreaming(ds, dir, /*graphs_per_shard=*/4);
    }
    if (crash.ok()) break;  // nth beyond the path's occurrence count
    EXPECT_TRUE(IsSimulatedCrash(crash)) << crash.ToString();
    // The manifest is written last, so the interrupted store must read
    // as absent — never as a smaller-but-valid store.
    auto store = ShardedGraphStore::Open(dir);
    EXPECT_FALSE(store.ok())
        << point << " nth=" << nth << " left an openable partial store";

    // Rebuild from scratch in the same directory: fully valid again.
    ASSERT_TRUE(WriteStoreStreaming(ds, dir, 4).ok());
    auto rebuilt = ShardedGraphStore::Open(dir);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ASSERT_EQ((*rebuilt)->size(), ds.size());
    std::vector<int64_t> all(ds.size());
    for (int64_t i = 0; i < ds.size(); ++i) all[i] = i;
    FetchedGraphs out;
    ASSERT_TRUE((*rebuilt)->Fetch(all, &out).ok());
    for (int64_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(ds.graph(i).features(), out.graph(i).features());
      EXPECT_EQ(ds.graph(i).edge_src(), out.graph(i).edge_src());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShardInjectionPoints, ShardCrashPointTest,
    ::testing::Values(kFaultShardWrite, kFaultManifestWrite, "io/open_tmp",
                      "io/write", "io/fsync", "io/rename", "io/fsync_dir"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      return name;
    });

TEST(ShardFaultTest, WriteErrorFailsFinalizeCleanly) {
  GraphDataset ds = MakeZincLikeDataset(10, /*seed=*/32);
  const std::string dir = TmpDir("shard_eio");
  ScopedFaultInjection scoped;
  FaultInjector::Global().Arm(kFaultManifestWrite, FaultKind::kError);
  const Status st = WriteStoreStreaming(ds, dir, 4);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(IsSimulatedCrash(st));
  EXPECT_FALSE(ShardedGraphStore::Open(dir).ok());
}

// Crash inside a mid-epoch checkpoint save during streaming training,
// then resume: stitched losses must equal the uninterrupted run's.
TEST(ShardFaultTest, MidEpochCheckpointCrashResumesBitwise) {
  GraphDataset ds = MakeZincLikeDataset(30, /*seed=*/33);
  const std::string store_dir = TmpDir("shard_stream_crash_store");
  ASSERT_TRUE(WriteStoreStreaming(ds, store_dir, /*graphs_per_shard=*/8).ok());
  auto store = ShardedGraphStore::Open(store_dir);
  ASSERT_TRUE(store.ok());

  SgclConfig cfg = MakeUnsupervisedConfig(kMoleculeFeatDim);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  cfg.batch_size = 6;
  cfg.epochs = 2;

  // Ground truth: uninterrupted run.
  std::vector<float> baseline;
  {
    SgclTrainer trainer(cfg, /*seed=*/41);
    auto stats = trainer.Pretrain(**store);
    ASSERT_TRUE(stats.ok());
    baseline = stats->epoch_losses;
  }

  const std::string ckpt_dir = TmpDir("shard_stream_crash_ckpt");
  {
    ScopedFaultInjection scoped;
    // First mid-epoch save (2 batches) publishes; the second (4 batches)
    // crashes during the atomic rename.
    FaultInjector::Global().Arm("io/rename", FaultKind::kCrash, /*nth=*/2);
    SgclTrainer trainer(cfg, /*seed=*/41);
    PretrainOptions options;
    options.checkpoint_dir = ckpt_dir;
    options.checkpoint_every_batches = 2;
    auto stats = trainer.Pretrain(**store, {}, options);
    ASSERT_FALSE(stats.ok());
    EXPECT_TRUE(IsSimulatedCrash(stats.status()));
  }

  auto latest = FindLatestCheckpoint(ckpt_dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_NE(latest->find("-b"), std::string::npos) << *latest;
  SgclTrainer resumed(cfg, /*seed=*/31337);
  PretrainOptions options;
  options.resume_from = *latest;
  auto stats = resumed.Pretrain(**store, {}, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch_losses, baseline);
  fs::remove_all(store_dir);
  fs::remove_all(ckpt_dir);
}

}  // namespace
}  // namespace sgcl
