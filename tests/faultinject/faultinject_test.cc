// Kill-and-resume integration tests (ctest label: faultinject).
//
// A checkpointed pretraining run is crashed deterministically at every
// injection point in the save path, then resumed in a fresh trainer.
// The contract under test is the ISSUE's acceptance criterion: a crash
// at *any* point leaves the newest published checkpoint loadable, and
// the resumed run's per-epoch losses are bitwise identical to an
// uninterrupted run with the same seed.
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/sgcl_trainer.h"
#include "core/train_state.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

constexpr uint64_t kTrainSeed = 17;
constexpr int kEpochs = 4;

std::string TmpDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

GraphDataset SmallDataset() {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;  // ~20 MUTAG-like graphs
  opt.node_cap = 20;
  opt.seed = 21;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

SgclConfig SmallConfig(int64_t feat_dim) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  cfg.encoder.hidden_dim = 8;
  cfg.encoder.num_layers = 2;
  cfg.proj_dim = 8;
  cfg.batch_size = 8;
  cfg.epochs = kEpochs;
  return cfg;
}

// The ground truth: one uninterrupted run, no checkpointing.
PretrainStats BaselineStats(const GraphDataset& ds) {
  SgclTrainer trainer(SmallConfig(ds.feat_dim()), kTrainSeed);
  auto stats = trainer.Pretrain(ds);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(static_cast<int>(stats->epoch_losses.size()), kEpochs);
  return *stats;
}

// Every *.sgcl file under `dir` (the published, non-temp names) must
// parse: a crash may abandon a ".tmp" orphan but never a torn
// checkpoint under the final name. Returns the published count.
int ExpectAllPublishedCheckpointsLoadable(const std::string& dir) {
  int published = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".sgcl") continue;
    ++published;
    auto state = LoadTrainCheckpoint(entry.path().string());
    EXPECT_TRUE(state.ok()) << name << ": " << state.status().ToString();
  }
  return published;
}

class CrashPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashPointTest, CrashLeavesLoadableCheckpointAndBitwiseResume) {
  const char* point = GetParam();
  GraphDataset ds = SmallDataset();
  const PretrainStats baseline = BaselineStats(ds);
  const std::string dir = TmpDir(std::string("crash_") +
                                 std::filesystem::path(point).filename()
                                     .string());

  // Run with a crash armed at the second save attempt (after epoch 1),
  // so one complete checkpoint (after epoch 0) is already published.
  Status crash;
  {
    ScopedFaultInjection scoped;
    FaultInjector::Global().Arm(point, FaultKind::kCrash, /*nth=*/2);
    SgclTrainer trainer(SmallConfig(ds.feat_dim()), kTrainSeed);
    PretrainOptions options;
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;
    auto stats = trainer.Pretrain(ds, {}, options);
    ASSERT_FALSE(stats.ok()) << point;
    crash = stats.status();
  }
  EXPECT_TRUE(IsSimulatedCrash(crash)) << crash.ToString();
  EXPECT_GT(ExpectAllPublishedCheckpointsLoadable(dir), 0)
      << "no published checkpoint in " << dir;

  // "Reboot": a fresh trainer (different seed — every bit of resumed
  // state must come from the checkpoint) resumes from the latest
  // published file and finishes the run.
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  SgclTrainer resumed(SmallConfig(ds.feat_dim()), /*seed=*/9999);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  options.resume_from = *latest;
  auto stats = resumed.Pretrain(ds, {}, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->epoch_losses.size(), baseline.epoch_losses.size());
  for (size_t e = 0; e < baseline.epoch_losses.size(); ++e) {
    EXPECT_EQ(stats->epoch_losses[e], baseline.epoch_losses[e])
        << "epoch " << e << " diverged after crash at " << point;
  }
  EXPECT_EQ(stats->total_batches, baseline.total_batches);
}

INSTANTIATE_TEST_SUITE_P(
    AllInjectionPoints, CrashPointTest,
    ::testing::Values("checkpoint/serialize", "io/open_tmp", "io/write",
                      "io/fsync", "io/rename", "io/fsync_dir"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      return name;
    });

TEST(FaultInjectTest, CrashDuringPruneKeepsNewestCheckpoint) {
  GraphDataset ds = SmallDataset();
  const std::vector<float> baseline = BaselineStats(ds).epoch_losses;
  const std::string dir = TmpDir("crash_prune");
  {
    ScopedFaultInjection scoped;
    // keep_last=1 makes the prune after the second save delete the
    // first; crash inside that deletion pass.
    FaultInjector::Global().Arm("checkpoint/prune", FaultKind::kCrash);
    SgclTrainer trainer(SmallConfig(ds.feat_dim()), kTrainSeed);
    PretrainOptions options;
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;
    options.checkpoint_keep_last = 1;
    auto stats = trainer.Pretrain(ds, {}, options);
    ASSERT_FALSE(stats.ok());
    EXPECT_TRUE(IsSimulatedCrash(stats.status()));
  }
  // The newest checkpoint was published before the prune crashed.
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  SgclTrainer resumed(SmallConfig(ds.feat_dim()), 31337);
  PretrainOptions options;
  options.resume_from = *latest;
  auto stats = resumed.Pretrain(ds, {}, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch_losses, baseline);
}

TEST(FaultInjectTest, WriteErrorFailsRunButPreservesOldCheckpoints) {
  GraphDataset ds = SmallDataset();
  const std::string dir = TmpDir("eio_write");
  ScopedFaultInjection scoped;
  FaultInjector::Global().Arm("io/write", FaultKind::kError, /*nth=*/3);
  SgclTrainer trainer(SmallConfig(ds.feat_dim()), kTrainSeed);
  PretrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  auto stats = trainer.Pretrain(ds, {}, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_FALSE(IsSimulatedCrash(stats.status()));
  // The two checkpoints published before the EIO are intact.
  ExpectAllPublishedCheckpointsLoadable(dir);
  auto latest = FindLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, CheckpointFileName(dir, 2));
}

// Randomized kill-and-resume: seeded Bernoulli crashes at every
// injection point, rebooting from the latest checkpoint after each
// crash until the run completes. However many times it dies, the final
// loss history must be the baseline's, bit for bit.
TEST(FaultInjectTest, RandomCrashSweepConvergesToBaseline) {
  GraphDataset ds = SmallDataset();
  const std::vector<float> baseline = BaselineStats(ds).epoch_losses;
  const std::string dir = TmpDir("random_sweep");
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  int crashes = 0;
  bool finished = false;
  for (int attempt = 0; attempt < 64 && !finished; ++attempt) {
    faults.Reset();
    faults.ArmRandom(/*probability=*/0.05, /*seed=*/7000 + attempt,
                     FaultKind::kCrash);
    auto latest = FindLatestCheckpoint(dir);
    // Fresh starts must replay the baseline seed; on resume the seed is
    // irrelevant (all state comes from the checkpoint), so use a
    // different one to prove exactly that.
    const uint64_t seed = latest.ok() ? 1000 + attempt : kTrainSeed;
    SgclTrainer trainer(SmallConfig(ds.feat_dim()), seed);
    PretrainOptions options;
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;
    if (latest.ok()) options.resume_from = *latest;
    auto stats = trainer.Pretrain(ds, {}, options);
    if (stats.ok()) {
      EXPECT_EQ(stats->epoch_losses, baseline);
      finished = true;
      break;
    }
    ASSERT_TRUE(IsSimulatedCrash(stats.status()))
        << stats.status().ToString();
    ++crashes;
    ExpectAllPublishedCheckpointsLoadable(dir);
  }
  faults.Reset();
  EXPECT_TRUE(finished) << "never completed within 64 attempts";
  // The sweep is deterministic (seeded), so this documents that the
  // schedule actually exercised the crash path.
  EXPECT_GT(crashes, 0);
}

}  // namespace
}  // namespace sgcl
