// Protocol drivers: transfer, kernel and semi-supervised-style runs
// through the public evaluator APIs.
#include <memory>

#include "baselines/graph_kernels.h"
#include "data/synthetic_molecule.h"
#include "data/synthetic_tu.h"
#include "eval/evaluator.h"
#include "graph/splits.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(TransferProtocolTest, RunsAndAggregatesSeeds) {
  MolDatasetOptions opt;
  opt.graph_fraction = 0.04;
  opt.max_graphs = 90;
  opt.seed = 61;
  GraphDataset bbbp = MakeMolTaskDataset(MolTask::kBbbp, opt);
  TransferProtocolOptions proto;
  proto.num_seeds = 2;
  proto.finetune.epochs = 4;
  proto.finetune.batch_size = 16;
  int factory_calls = 0;
  MeanStd result = RunTransferProtocol(
      [&](uint64_t seed) {
        ++factory_calls;
        Rng rng(seed);
        EncoderConfig cfg;
        cfg.arch = GnnArch::kGin;
        cfg.in_dim = bbbp.feat_dim();
        cfg.hidden_dim = 8;
        cfg.num_layers = 2;
        return std::make_unique<GnnEncoder>(cfg, &rng);
      },
      bbbp, proto);
  EXPECT_EQ(factory_calls, 2);
  EXPECT_GE(result.mean, 0.0);
  EXPECT_LE(result.mean, 1.0);
}

TEST(KernelProtocolTest, AggregatesFoldSeeds) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.1;
  opt.node_cap = 12;
  opt.seed = 62;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  std::vector<const Graph*> graphs;
  for (int64_t i = 0; i < ds.size(); ++i) graphs.push_back(&ds.graph(i));
  GraphKernel wl(KernelKind::kWlSubtree);
  std::vector<double> gram = wl.GramMatrix(graphs);
  UnsupervisedProtocolOptions proto;
  proto.num_seeds = 2;
  proto.cv_folds = 3;
  MeanStd result = RunKernelProtocol(gram, ds, proto);
  EXPECT_GT(result.mean, 0.4);
  EXPECT_LE(result.mean, 1.0);
}

TEST(SemiSupervisedStyleTest, MoreLabelsNeverMuchWorse) {
  // Fine-tuning with 60% of labels should not be dramatically worse than
  // with 15% (monotonicity up to noise) — the Table VI sanity direction.
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.4;
  opt.node_cap = 15;
  opt.seed = 63;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  Rng rng(64);
  HoldoutSplit holdout = TrainTestSplit(ds.size(), 0.25, &rng);
  std::vector<int> train_labels;
  for (int64_t i : holdout.train) train_labels.push_back(ds.graph(i).label());
  FinetuneConfig ft;
  ft.epochs = 20;
  double acc_low = 0.0, acc_high = 0.0;
  for (double rate : {0.15, 0.6}) {
    Rng seed_rng(65);
    std::vector<int64_t> subset_local =
        LabelRateSubset(train_labels, rate, &seed_rng);
    std::vector<int64_t> train;
    for (int64_t j : subset_local) train.push_back(holdout.train[j]);
    Rng ft_rng(66);
    EncoderConfig cfg;
    cfg.arch = GnnArch::kGin;
    cfg.in_dim = ds.feat_dim();
    cfg.hidden_dim = 16;
    cfg.num_layers = 2;
    GnnEncoder encoder(cfg, &ft_rng);
    const double acc = FinetuneAndEvalAccuracy(&encoder, ds, train,
                                               holdout.test, ft, &ft_rng);
    if (rate < 0.5) {
      acc_low = acc;
    } else {
      acc_high = acc;
    }
  }
  EXPECT_GT(acc_high, acc_low - 0.15);
}

}  // namespace
}  // namespace sgcl
