#include "eval/metrics.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({2, 2}, {2, 2}), 1.0);
}

TEST(RocAucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomScoresGiveHalf) {
  // Symmetric construction: AUC exactly 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0.3, 0.7, 0.3, 0.7}, {0, 0, 1, 1}), 0.5);
}

TEST(RocAucTest, TiesGetMidranks) {
  // One tie between a positive and a negative at the same score.
  const double auc = RocAuc({0.5, 0.5, 0.9}, {0, 1, 1});
  EXPECT_NEAR(auc, 0.75, 1e-9);
}

TEST(RocAucTest, SingleClassFallsBackToHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(MeanStdTest, Computation) {
  MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
}

TEST(AverageRanksTest, SimpleOrdering) {
  // Method 0 wins both datasets, method 2 loses both.
  std::vector<std::vector<double>> scores = {
      {0.9, 0.8}, {0.5, 0.6}, {0.1, 0.2}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(AverageRanksTest, TiesShareRank) {
  std::vector<std::vector<double>> scores = {{0.5}, {0.5}, {0.1}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(AverageRanksTest, MissingEntriesSkipped) {
  const double nan = std::nan("");
  std::vector<std::vector<double>> scores = {
      {0.9, nan}, {0.5, 0.7}, {0.1, 0.3}};
  auto ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);       // only dataset 0
  EXPECT_DOUBLE_EQ(ranks[1], (2.0 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], (3.0 + 2.0) / 2.0);
}

}  // namespace
}  // namespace sgcl
