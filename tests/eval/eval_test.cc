// Cross-validation, fine-tuning, the end-to-end unsupervised protocol,
// and the result-table printer.
#include <cmath>
#include <memory>

#include "baselines/graph_kernels.h"
#include "baselines/pretrainer.h"
#include "core/sgcl_model.h"
#include "data/synthetic_molecule.h"
#include "data/synthetic_tu.h"
#include "eval/cross_validation.h"
#include "eval/evaluator.h"
#include "eval/finetune.h"
#include "eval/table.h"
#include "graph/splits.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

GraphDataset SmallDataset(uint64_t seed = 202) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.15;
  opt.node_cap = 15;
  opt.seed = seed;
  return MakeTuDataset(TuDataset::kMutag, opt);
}

TEST(SvmCrossValidateTest, SeparableEmbeddingsScoreHigh) {
  // Embeddings = label-determined clusters.
  Rng rng(1);
  const int n = 60;
  std::vector<float> emb;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int y = i % 2;
    emb.push_back(static_cast<float>(rng.Normal(y * 5.0, 0.5)));
    emb.push_back(static_cast<float>(rng.Normal(-y * 5.0, 0.5)));
    labels.push_back(y);
  }
  MeanStd result = SvmCrossValidate(emb, n, 2, labels, 2, 5, &rng);
  EXPECT_GT(result.mean, 0.9);
  EXPECT_GE(result.std, 0.0);
}

TEST(SvmCrossValidateTest, RandomEmbeddingsScoreNearChance) {
  Rng rng(2);
  const int n = 80;
  std::vector<float> emb;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    emb.push_back(static_cast<float>(rng.Normal()));
    emb.push_back(static_cast<float>(rng.Normal()));
    labels.push_back(i % 2);
  }
  MeanStd result = SvmCrossValidate(emb, n, 2, labels, 2, 5, &rng);
  EXPECT_LT(result.mean, 0.75);
}

TEST(KernelCrossValidateTest, WlKernelBeatsChanceOnPlantedMotifs) {
  GraphDataset ds = SmallDataset();
  std::vector<const Graph*> graphs;
  for (int64_t i = 0; i < ds.size(); ++i) graphs.push_back(&ds.graph(i));
  GraphKernel wl(KernelKind::kWlSubtree);
  std::vector<double> gram = wl.GramMatrix(graphs);
  Rng rng(3);
  MeanStd result = KernelSvmCrossValidate(gram, ds.size(), ds.Labels().value(),
                                          ds.num_classes(), 5, &rng);
  EXPECT_GT(result.mean, 0.55);
}

TEST(FinetuneTest, AccuracyImprovesOverChance) {
  SyntheticTuOptions dopt;
  dopt.graph_fraction = 0.4;  // ~75 graphs
  dopt.node_cap = 15;
  dopt.seed = 404;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, dopt);
  Rng rng(4);
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = ds.feat_dim();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  GnnEncoder encoder(cfg, &rng);
  HoldoutSplit split = TrainTestSplit(ds.size(), 0.3, &rng);
  FinetuneConfig ft;
  ft.epochs = 40;
  const double acc = FinetuneAndEvalAccuracy(&encoder, ds, split.train,
                                             split.test, ft, &rng);
  EXPECT_GT(acc, 0.55);
}

TEST(FinetuneTest, RocAucOnMultiTask) {
  MolDatasetOptions opt;
  opt.graph_fraction = 0.05;
  opt.max_graphs = 120;
  opt.seed = 5;
  GraphDataset ds = MakeMolTaskDataset(MolTask::kTox21, opt);
  Rng rng(6);
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = ds.feat_dim();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  GnnEncoder encoder(cfg, &rng);
  ThreeWaySplit split = ScaffoldSplit(ds, 0.7, 0.1);
  FinetuneConfig ft;
  ft.epochs = 10;
  const double auc = FinetuneAndEvalRocAuc(&encoder, ds, split.train,
                                           split.test, ft, &rng);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  EXPECT_GT(auc, 0.45);  // should not be anti-predictive
}

TEST(UnsupervisedProtocolTest, RunsEndToEndWithSgcl) {
  GraphDataset ds = SmallDataset(505);
  UnsupervisedProtocolOptions opt;
  opt.num_seeds = 1;
  opt.cv_folds = 3;
  MeanStd result = RunUnsupervisedProtocol(
      [&](uint64_t seed) -> std::unique_ptr<Pretrainer> {
        SgclConfig cfg = MakeUnsupervisedConfig(ds.feat_dim());
        cfg.encoder.hidden_dim = 16;
        cfg.encoder.num_layers = 2;
        cfg.proj_dim = 16;
        cfg.epochs = 2;
        cfg.batch_size = 8;
        return std::make_unique<SgclPretrainer>(cfg, seed);
      },
      ds, opt);
  EXPECT_GT(result.mean, 0.3);
  EXPECT_LE(result.mean, 1.0);
}

TEST(ResultTableTest, FormatsWithRanksAndMissing) {
  ResultTable table({"A", "B"});
  table.AddRow("M1", {MeanStd{90.0, 1.0}, MeanStd{80.0, 2.0}});
  table.AddRow("M2", {MeanStd{85.0, 1.5}, std::nullopt});
  std::string s = table.ToString();
  EXPECT_NE(s.find("M1"), std::string::npos);
  EXPECT_NE(s.find("90.00±1.00*"), std::string::npos);  // best marker
  EXPECT_NE(s.find("-"), std::string::npos);            // missing cell
  EXPECT_NE(s.find("A.R."), std::string::npos);
  // M1 wins everything -> rank 1.0.
  EXPECT_NE(s.find("1.0"), std::string::npos);
}

TEST(ResultTableTest, NoRanksMode) {
  ResultTable table({"X"});
  table.AddRow("M", {MeanStd{1.0, 0.1}});
  std::string s = table.ToString(/*with_ranks=*/false);
  EXPECT_EQ(s.find("A.R."), std::string::npos);
}

}  // namespace
}  // namespace sgcl
