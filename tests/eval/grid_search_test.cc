#include "eval/grid_search.h"

#include <cmath>

#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(GridSearchTest, FindsBestScoreWithStubEvaluator) {
  // Stub evaluator: score peaks at tau = 0.3 and rho = 0.7.
  auto evaluate = [](const SgclConfig& cfg) {
    return 1.0 - std::fabs(cfg.tau - 0.3) - std::fabs(cfg.rho - 0.7);
  };
  SgclConfig base = MakeUnsupervisedConfig(8);
  GridSearchSpace space;
  GridSearchResult result = GridSearchSgcl(base, space, evaluate);
  EXPECT_FLOAT_EQ(result.best_config.tau, 0.3f);
  EXPECT_DOUBLE_EQ(result.best_config.rho, 0.7);
  EXPECT_NEAR(result.best_score, 1.0, 1e-6);
  // base + every non-duplicate grid point was tried.
  EXPECT_GT(result.trials.size(), 15u);
}

TEST(GridSearchTest, EmptyAxesKeepBaseValues) {
  int calls = 0;
  auto evaluate = [&](const SgclConfig&) {
    ++calls;
    return 0.5;
  };
  SgclConfig base = MakeUnsupervisedConfig(8);
  GridSearchSpace space;
  space.lambda_c.clear();
  space.lambda_w.clear();
  space.rho.clear();
  space.tau.clear();
  GridSearchResult result = GridSearchSgcl(base, space, evaluate);
  EXPECT_EQ(calls, 1);  // only the base config
  EXPECT_FLOAT_EQ(result.best_config.tau, base.tau);
}

TEST(GridSearchTest, TrialsRecordDescriptions) {
  auto evaluate = [](const SgclConfig& cfg) { return cfg.tau; };
  SgclConfig base = MakeUnsupervisedConfig(8);
  GridSearchSpace space;
  space.lambda_c.clear();
  space.lambda_w.clear();
  space.rho.clear();
  space.tau = {0.1f, 0.5f};
  GridSearchResult result = GridSearchSgcl(base, space, evaluate);
  ASSERT_EQ(result.trials.size(), 3u);  // base + two taus
  EXPECT_EQ(result.trials[0].first, "base");
  EXPECT_NE(result.trials[1].first.find("tau="), std::string::npos);
  EXPECT_FLOAT_EQ(result.best_config.tau, 0.5f);
}

TEST(GridSearchTest, EndToEndOnTinyDataset) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 12;
  opt.seed = 77;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  SgclConfig base = MakeUnsupervisedConfig(ds.feat_dim());
  base.encoder.hidden_dim = 8;
  base.encoder.num_layers = 2;
  base.proj_dim = 8;
  base.epochs = 2;
  base.batch_size = 8;
  GridSearchSpace space;
  space.lambda_c.clear();
  space.lambda_w.clear();
  space.rho.clear();
  space.tau = {0.2f, 0.4f};
  auto evaluate = MakeUnsupervisedGridEvaluator(&ds, /*num_seeds=*/1,
                                                /*cv_folds=*/3,
                                                /*base_seed=*/5);
  GridSearchResult result = GridSearchSgcl(base, space, evaluate);
  EXPECT_GT(result.best_score, 0.3);
  EXPECT_LE(result.best_score, 1.0);
}

}  // namespace
}  // namespace sgcl
