#include "graph/dataset_io.h"

#include <cstdio>
#include <unistd.h>

#include "data/synthetic_molecule.h"
#include "data/synthetic_tu.h"
#include "gtest/gtest.h"

namespace sgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectDatasetsEqual(const GraphDataset& a, const GraphDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  for (int64_t i = 0; i < a.size(); ++i) {
    const Graph& ga = a.graph(i);
    const Graph& gb = b.graph(i);
    EXPECT_EQ(ga.num_nodes(), gb.num_nodes());
    EXPECT_EQ(ga.features(), gb.features());
    EXPECT_EQ(ga.num_directed_edges(), gb.num_directed_edges());
    EXPECT_EQ(ga.label(), gb.label());
    EXPECT_EQ(ga.scaffold_id(), gb.scaffold_id());
    EXPECT_EQ(ga.task_labels(), gb.task_labels());
    EXPECT_EQ(ga.semantic_mask(), gb.semantic_mask());
    // Edge sets match (order may differ; use HasEdge).
    for (size_t e = 0; e < ga.edge_src().size(); ++e) {
      EXPECT_TRUE(gb.HasEdge(ga.edge_src()[e], ga.edge_dst()[e]));
    }
  }
}

TEST(DatasetIoTest, TuRoundTrip) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 15;
  opt.seed = 10;
  GraphDataset original = MakeTuDataset(TuDataset::kProteins, opt);
  const std::string path = TempPath("proteins.bin");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MultiTaskRoundTrip) {
  MolDatasetOptions opt;
  opt.graph_fraction = 0.02;
  opt.max_graphs = 70;
  opt.seed = 11;
  GraphDataset original = MakeMolTaskDataset(MolTask::kTox21, opt);
  const std::string path = TempPath("tox21.bin");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  auto result = LoadDataset(TempPath("missing_dataset.bin"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage_dataset.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("nope", f);
    std::fclose(f);
  }
  auto result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, FuzzTruncationNeverCrashes) {
  // Property: loading a prefix of a valid file at any cut point must
  // return an error status (never crash, never return a bogus dataset
  // that fails validation silently).
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.03;
  opt.node_cap = 10;
  opt.seed = 99;
  GraphDataset original = MakeTuDataset(TuDataset::kMutag, opt);
  const std::string full_path = TempPath("fuzz_full.bin");
  ASSERT_TRUE(SaveDataset(original, full_path).ok());
  std::FILE* f = std::fopen(full_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  Rng rng(7);
  const std::string cut_path = TempPath("fuzz_cut.bin");
  for (int trial = 0; trial < 25; ++trial) {
    const long cut = 1 + rng.UniformInt(size - 1);
    // Copy a prefix.
    std::FILE* in = std::fopen(full_path.c_str(), "rb");
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    std::vector<char> buffer(static_cast<size_t>(cut));
    ASSERT_EQ(std::fread(buffer.data(), 1, buffer.size(), in), buffer.size());
    ASSERT_EQ(std::fwrite(buffer.data(), 1, buffer.size(), out),
              buffer.size());
    std::fclose(in);
    std::fclose(out);
    auto result = LoadDataset(cut_path);
    EXPECT_FALSE(result.ok()) << "cut at " << cut << " of " << size;
  }
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(DatasetIoTest, FuzzByteFlipsNeverCrash) {
  // Property: flipping a random byte either still parses into a dataset
  // that passes Validate() (flips in float payloads) or errors cleanly.
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.03;
  opt.node_cap = 10;
  opt.seed = 100;
  GraphDataset original = MakeTuDataset(TuDataset::kMutag, opt);
  const std::string full_path = TempPath("fuzzflip_full.bin");
  ASSERT_TRUE(SaveDataset(original, full_path).ok());
  std::FILE* f = std::fopen(full_path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  Rng rng(8);
  const std::string flip_path = TempPath("fuzzflip_cut.bin");
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<char> corrupted = bytes;
    const long pos = rng.UniformInt(size);
    corrupted[pos] ^= static_cast<char>(1 + rng.UniformInt(255));
    std::FILE* out = std::fopen(flip_path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(corrupted.data(), 1, corrupted.size(), out),
              corrupted.size());
    std::fclose(out);
    auto result = LoadDataset(flip_path);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
  std::remove(full_path.c_str());
  std::remove(flip_path.c_str());
}

TEST(DatasetIoTest, TruncatedFileRejected) {
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 12;
  opt.seed = 12;
  GraphDataset original = MakeTuDataset(TuDataset::kMutag, opt);
  const std::string path = TempPath("trunc_dataset.bin");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Chop the file in half.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  auto result = LoadDataset(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgcl
