#include "graph/dataset.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

GraphDataset TwoGraphDataset() {
  GraphDataset ds("toy", /*num_classes=*/2);
  Graph a = testing::PathGraph3(3);
  a.set_label(0);
  Graph b = testing::HouseGraph(3);
  b.set_label(1);
  ds.Add(std::move(a));
  ds.Add(std::move(b));
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_EQ(ds.name(), "toy");
  EXPECT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.feat_dim(), 3);
  EXPECT_EQ(ds.Labels().value(), (std::vector<int>{0, 1}));
}

TEST(DatasetTest, Stats) {
  GraphDataset ds = TwoGraphDataset();
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_graphs, 2);
  EXPECT_DOUBLE_EQ(s.avg_nodes, 4.0);       // (3 + 5) / 2
  EXPECT_DOUBLE_EQ(s.avg_edges, 4.0);       // (2 + 6) / 2
}

TEST(DatasetTest, ValidatePassesAndCatchesBadLabel) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_TRUE(ds.Validate().ok());
  Graph bad = testing::PathGraph3(3);
  bad.set_label(5);  // outside [0, 2)
  ds.Add(std::move(bad));
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, TryAddRejectsFeatDimMismatch) {
  GraphDataset ds = TwoGraphDataset();
  Graph other = testing::PathGraph3(7);
  other.set_label(0);
  const Status st = ds.TryAdd(std::move(other));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The mismatched graph was rejected, so the dataset stays valid.
  EXPECT_EQ(ds.size(), 2);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetTest, TryAddAcceptsMatchingFeatDim) {
  GraphDataset ds = TwoGraphDataset();
  Graph ok = testing::PathGraph3(3);
  ok.set_label(0);
  EXPECT_TRUE(ds.TryAdd(std::move(ok)).ok());
  EXPECT_EQ(ds.size(), 3);
}

TEST(DatasetTest, FeatDimOnEmptyIsCheckedError) {
  GraphDataset ds("empty", /*num_classes=*/2);
  const Result<int64_t> fd = ds.FeatDim();
  EXPECT_EQ(fd.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ds.Labels().status().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, FeatDimMatchesFirstGraph) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_EQ(ds.FeatDim().value(), 3);
}

TEST(DatasetTest, MultiTaskValidation) {
  GraphDataset ds("mt", /*num_classes=*/2, /*num_tasks=*/3);
  Graph g = testing::PathGraph3(2);
  g.set_task_labels({1.0f, -1.0f, 0.0f});  // -1 = missing
  ds.Add(std::move(g));
  EXPECT_TRUE(ds.Validate().ok());
  Graph bad = testing::PathGraph3(2);
  bad.set_task_labels({1.0f});  // wrong task count
  ds.Add(std::move(bad));
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, SubsetCopiesSelectedGraphs) {
  GraphDataset ds = TwoGraphDataset();
  GraphDataset sub = ds.Subset({1}).value();
  EXPECT_EQ(sub.size(), 1);
  EXPECT_EQ(sub.graph(0).num_nodes(), 5);
  EXPECT_EQ(sub.num_classes(), 2);
  EXPECT_EQ(sub.name(), "toy");
  // The lvalue overload copies: the original still owns its graphs.
  EXPECT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.graph(1).num_nodes(), 5);
}

TEST(DatasetTest, SubsetRejectsOutOfRangeIndex) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_EQ(ds.Subset({2}).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ds.Subset({-1}).status().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, RvalueSubsetMovesWithoutCopying) {
  GraphDataset ds = TwoGraphDataset();
  const float* payload_before = ds.graph(1).features().data();
  GraphDataset sub = std::move(ds).Subset({1}).value();
  EXPECT_EQ(sub.size(), 1);
  // Moved, not copied: the feature buffer keeps its address.
  EXPECT_EQ(sub.graph(0).features().data(), payload_before);
}

TEST(DatasetTest, RvalueSubsetRejectsDuplicateIndices) {
  GraphDataset ds = TwoGraphDataset();
  const Result<GraphDataset> sub = std::move(ds).Subset({1, 1});
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sgcl
