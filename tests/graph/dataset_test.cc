#include "graph/dataset.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

GraphDataset TwoGraphDataset() {
  GraphDataset ds("toy", /*num_classes=*/2);
  Graph a = testing::PathGraph3(3);
  a.set_label(0);
  Graph b = testing::HouseGraph(3);
  b.set_label(1);
  ds.Add(std::move(a));
  ds.Add(std::move(b));
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_EQ(ds.name(), "toy");
  EXPECT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.feat_dim(), 3);
  EXPECT_EQ(ds.Labels(), (std::vector<int>{0, 1}));
}

TEST(DatasetTest, Stats) {
  GraphDataset ds = TwoGraphDataset();
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_graphs, 2);
  EXPECT_DOUBLE_EQ(s.avg_nodes, 4.0);       // (3 + 5) / 2
  EXPECT_DOUBLE_EQ(s.avg_edges, 4.0);       // (2 + 6) / 2
}

TEST(DatasetTest, ValidatePassesAndCatchesBadLabel) {
  GraphDataset ds = TwoGraphDataset();
  EXPECT_TRUE(ds.Validate().ok());
  Graph bad = testing::PathGraph3(3);
  bad.set_label(5);  // outside [0, 2)
  ds.Add(std::move(bad));
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesFeatDimMismatch) {
  GraphDataset ds = TwoGraphDataset();
  Graph other = testing::PathGraph3(7);
  other.set_label(0);
  ds.Add(std::move(other));
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, MultiTaskValidation) {
  GraphDataset ds("mt", /*num_classes=*/2, /*num_tasks=*/3);
  Graph g = testing::PathGraph3(2);
  g.set_task_labels({1.0f, -1.0f, 0.0f});  // -1 = missing
  ds.Add(std::move(g));
  EXPECT_TRUE(ds.Validate().ok());
  Graph bad = testing::PathGraph3(2);
  bad.set_task_labels({1.0f});  // wrong task count
  ds.Add(std::move(bad));
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, SubsetCopiesSelectedGraphs) {
  GraphDataset ds = TwoGraphDataset();
  GraphDataset sub = ds.Subset({1});
  EXPECT_EQ(sub.size(), 1);
  EXPECT_EQ(sub.graph(0).num_nodes(), 5);
  EXPECT_EQ(sub.num_classes(), 2);
  EXPECT_EQ(sub.name(), "toy");
}

}  // namespace
}  // namespace sgcl
