#include "graph/graph_source.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

GraphDataset SmallDataset() {
  GraphDataset ds("toy", /*num_classes=*/2);
  for (int i = 0; i < 6; ++i) {
    Graph g = i % 2 == 0 ? testing::PathGraph3(4) : testing::HouseGraph(4);
    g.set_label(i % 2);
    ds.Add(std::move(g));
  }
  return ds;
}

TEST(InMemorySourceTest, MirrorsDatasetMetadata) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  EXPECT_EQ(source.name(), "toy");
  EXPECT_EQ(source.num_classes(), 2);
  EXPECT_EQ(source.num_tasks(), 1);
  EXPECT_EQ(source.size(), 6);
  EXPECT_EQ(source.FeatDim().value(), 4);
}

TEST(InMemorySourceTest, FetchBorrowsPointersInOrder) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  FetchedGraphs out;
  const std::vector<int64_t> idx = {4, 0, 2};
  ASSERT_TRUE(source.Fetch(idx, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  // Zero-copy: pointers are the dataset's own graphs.
  EXPECT_EQ(out.graphs()[0], &ds.graph(4));
  EXPECT_EQ(out.graphs()[1], &ds.graph(0));
  EXPECT_EQ(out.graphs()[2], &ds.graph(2));
}

TEST(InMemorySourceTest, FetchRejectsOutOfRange) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  FetchedGraphs out;
  const std::vector<int64_t> bad = {0, 6};
  EXPECT_EQ(source.Fetch(bad, &out).code(), StatusCode::kOutOfRange);
  const std::vector<int64_t> neg = {-1};
  EXPECT_EQ(source.Fetch(neg, &out).code(), StatusCode::kOutOfRange);
}

TEST(InMemorySourceTest, LabelsMatchDataset) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  EXPECT_EQ(source.Labels().value(), ds.Labels().value());
}

TEST(InMemorySourceTest, FetchAllCoversEveryGraph) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  const FetchedGraphs all = source.FetchAll().value();
  ASSERT_EQ(all.size(), 6u);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(all.graphs()[i], &ds.graph(i));
  }
}

TEST(InMemorySourceTest, EmptySourceFailsChecked) {
  GraphDataset ds("empty", 2);
  InMemorySource source(&ds);
  EXPECT_EQ(source.FeatDim().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(source.Labels().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InMemorySourceTest, OwningCtorKeepsDatasetAlive) {
  InMemorySource source(SmallDataset());
  EXPECT_EQ(source.size(), 6);
  const FetchedGraphs all = source.FetchAll().value();
  EXPECT_EQ(all.size(), 6u);
}

TEST(InMemorySourceTest, DefaultFetchBlocksIsOneRange) {
  GraphDataset ds = SmallDataset();
  InMemorySource source(&ds);
  const std::vector<IndexRange> blocks = source.FetchBlocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].begin, 0);
  EXPECT_EQ(blocks[0].end, 6);
}

TEST(InMemorySourceTest, FingerprintIsStableAndContentSensitive) {
  GraphDataset a = SmallDataset();
  GraphDataset b = SmallDataset();
  InMemorySource sa(&a);
  InMemorySource sb(&b);
  EXPECT_NE(sa.ContentFingerprint(), 0u);
  EXPECT_EQ(sa.ContentFingerprint(), sb.ContentFingerprint());

  GraphDataset c = SmallDataset();
  Graph extra = testing::PathGraph3(4);
  extra.set_label(0);
  c.Add(std::move(extra));
  InMemorySource sc(&c);
  EXPECT_NE(sa.ContentFingerprint(), sc.ContentFingerprint());
}

TEST(FetchedGraphsTest, OwnedGraphsHaveStableAddresses) {
  FetchedGraphs batch;
  for (int i = 0; i < 100; ++i) {
    batch.AppendOwned(testing::PathGraph3(3));
  }
  // Every handed-out pointer must still point at a live graph even after
  // many appends (deque storage: no reallocation moves).
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.graph(i).num_nodes(), 3);
  }
}

}  // namespace
}  // namespace sgcl
