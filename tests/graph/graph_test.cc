#include "graph/graph.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(GraphTest, ConstructionAndFeatures) {
  Graph g(3, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.feat_dim(), 2);
  EXPECT_EQ(g.num_directed_edges(), 0);
  g.set_feature(1, 1, 7.0f);
  EXPECT_FLOAT_EQ(g.feature(1, 1), 7.0f);
  EXPECT_FLOAT_EQ(g.feature(0, 0), 0.0f);
}

TEST(GraphTest, AddEdgeStoresBothDirections) {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 2);
  EXPECT_EQ(g.num_directed_edges(), 2);
  EXPECT_EQ(g.num_undirected_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(GraphTest, DuplicateEdgeIgnored) {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 0);
  g.AddUndirectedEdge(0, 1);
  EXPECT_EQ(g.num_directed_edges(), 2);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  EXPECT_TRUE(g.RemoveUndirectedEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.num_directed_edges(), 2);
  EXPECT_FALSE(g.RemoveUndirectedEdge(0, 1));
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g = testing::HouseGraph();
  auto deg = g.Degrees();
  EXPECT_EQ(deg[0], 3);  // 1, 3, 4
  EXPECT_EQ(deg[4], 2);  // 0, 1
  auto nbrs = g.Neighbors(4);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<int32_t>{0, 1}));
}

TEST(GraphTest, SelfLoopCountsOnce) {
  Graph g(2, 1);
  g.AddUndirectedEdge(0, 0);
  EXPECT_EQ(g.num_directed_edges(), 1);
  EXPECT_EQ(g.Degrees()[0], 1);
}

TEST(GraphTest, ValidateAcceptsWellFormed) {
  Graph g = testing::HouseGraph();
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, ValidateRejectsBadSemanticMask) {
  Graph g = testing::PathGraph3();
  g.set_semantic_mask({1, 0});  // wrong size
  EXPECT_FALSE(g.Validate().ok());
}

TEST(InducedSubgraphTest, KeepsStructureAndRenumbers) {
  Graph g = testing::HouseGraph();
  // Keep nodes 0, 1, 4 (a triangle).
  std::vector<uint8_t> keep = {1, 1, 0, 0, 1};
  Graph sub = g.InducedSubgraph(keep);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_undirected_edges(), 3);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(0, 2));  // old 0-4
  EXPECT_TRUE(sub.HasEdge(1, 2));  // old 1-4
  // Features carried over: new node 2 is old node 4.
  EXPECT_FLOAT_EQ(sub.feature(2, 0), g.feature(4, 0));
  EXPECT_EQ(sub.label(), g.label());
}

TEST(InducedSubgraphTest, CarriesSemanticMask) {
  Graph g = testing::HouseGraph();
  g.set_semantic_mask({1, 1, 0, 0, 1});
  Graph sub = g.InducedSubgraph({0, 1, 1, 1, 1});
  ASSERT_EQ(sub.semantic_mask().size(), 4u);
  EXPECT_EQ(sub.semantic_mask()[0], 1);  // old node 1
  EXPECT_EQ(sub.semantic_mask()[1], 0);  // old node 2
  EXPECT_EQ(sub.semantic_mask()[3], 1);  // old node 4
}

TEST(InducedSubgraphTest, EmptyKeepYieldsEmptyGraph) {
  Graph g = testing::PathGraph3();
  Graph sub = g.InducedSubgraph({0, 0, 0});
  EXPECT_EQ(sub.num_nodes(), 0);
  EXPECT_EQ(sub.num_directed_edges(), 0);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(InducedSubgraphTest, PreservesSelfLoop) {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 0);
  g.AddUndirectedEdge(0, 1);
  Graph sub = g.InducedSubgraph({1, 0, 1});
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_TRUE(sub.HasEdge(0, 0));
  EXPECT_FALSE(sub.HasEdge(0, 1));
}

}  // namespace
}  // namespace sgcl
