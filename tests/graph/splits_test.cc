#include "graph/splits.h"

#include <algorithm>
#include <map>
#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(KFoldTest, PartitionsAllIndices) {
  Rng rng(1);
  auto folds = KFoldIndices(23, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<int64_t> all;
  for (const auto& f : folds) {
    EXPECT_GE(f.size(), 4u);
    EXPECT_LE(f.size(), 5u);
    all.insert(f.begin(), f.end());
  }
  EXPECT_EQ(all.size(), 23u);
}

TEST(StratifiedKFoldTest, PreservesClassBalance) {
  Rng rng(2);
  // 40 of class 0, 20 of class 1.
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(0);
  for (int i = 0; i < 20; ++i) labels.push_back(1);
  auto folds = StratifiedKFoldIndices(labels, 4, &rng);
  std::set<int64_t> all;
  for (const auto& f : folds) {
    int c0 = 0, c1 = 0;
    for (int64_t i : f) {
      (labels[i] == 0 ? c0 : c1)++;
      all.insert(i);
    }
    EXPECT_EQ(c0, 10);
    EXPECT_EQ(c1, 5);
  }
  EXPECT_EQ(all.size(), 60u);
}

TEST(TrainTestSplitTest, FractionsAndDisjointness) {
  Rng rng(3);
  auto split = TrainTestSplit(100, 0.1, &rng);
  EXPECT_EQ(split.test.size(), 10u);
  EXPECT_EQ(split.train.size(), 90u);
  std::set<int64_t> test_set(split.test.begin(), split.test.end());
  for (int64_t i : split.train) EXPECT_FALSE(test_set.count(i));
}

TEST(TrainTestSplitTest, AlwaysLeavesBothSidesNonEmpty) {
  Rng rng(4);
  auto split = TrainTestSplit(3, 0.01, &rng);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

GraphDataset ScaffoldDataset() {
  GraphDataset ds("sc", 2);
  // 10 graphs: scaffolds sized 4, 3, 2, 1.
  const int scaffold_of[10] = {0, 0, 0, 0, 1, 1, 1, 2, 2, 3};
  for (int i = 0; i < 10; ++i) {
    Graph g = testing::PathGraph3(2);
    g.set_label(i % 2);
    g.set_scaffold_id(scaffold_of[i]);
    ds.Add(std::move(g));
  }
  return ds;
}

TEST(ScaffoldSplitTest, GroupsNeverStraddleSplits) {
  GraphDataset ds = ScaffoldDataset();
  auto split = ScaffoldSplit(ds, 0.5, 0.2);
  auto side_of = [&](int64_t i) {
    if (std::count(split.train.begin(), split.train.end(), i)) return 0;
    if (std::count(split.valid.begin(), split.valid.end(), i)) return 1;
    return 2;
  };
  std::map<int, int> scaffold_side;
  for (int64_t i = 0; i < ds.size(); ++i) {
    const int sc = ds.graph(i).scaffold_id();
    const int side = side_of(i);
    auto [it, inserted] = scaffold_side.emplace(sc, side);
    if (!inserted) {
      EXPECT_EQ(it->second, side) << "scaffold " << sc;
    }
  }
  EXPECT_EQ(split.train.size() + split.valid.size() + split.test.size(), 10u);
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test.empty());
}

TEST(ScaffoldSplitTest, LargestGroupsGoToTrain) {
  GraphDataset ds = ScaffoldDataset();
  auto split = ScaffoldSplit(ds, 0.5, 0.2);
  // Scaffold 0 (size 4) must be in train.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::count(split.train.begin(), split.train.end(), i));
  }
}

TEST(ScaffoldSplitTest, DeterministicAcrossCalls) {
  GraphDataset ds = ScaffoldDataset();
  auto a = ScaffoldSplit(ds, 0.6, 0.2);
  auto b = ScaffoldSplit(ds, 0.6, 0.2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.test, b.test);
}

TEST(LabelRateSubsetTest, TakesRequestedRatePerClass) {
  Rng rng(5);
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i < 100 ? 0 : 1);
  auto subset = LabelRateSubset(labels, 0.1, &rng);
  int c0 = 0, c1 = 0;
  for (int64_t i : subset) (labels[i] == 0 ? c0 : c1)++;
  EXPECT_EQ(c0, 10);
  EXPECT_EQ(c1, 10);
}

TEST(LabelRateSubsetTest, AtLeastOnePerClass) {
  Rng rng(6);
  std::vector<int> labels = {0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  auto subset = LabelRateSubset(labels, 0.01, &rng);
  std::set<int> classes;
  for (int64_t i : subset) classes.insert(labels[i]);
  EXPECT_EQ(classes.size(), 2u);
}

}  // namespace
}  // namespace sgcl
