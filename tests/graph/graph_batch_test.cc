#include "graph/graph_batch.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace sgcl {
namespace {

TEST(GraphBatchTest, SingleGraph) {
  Graph g = testing::HouseGraph();
  GraphBatch b = GraphBatch::FromGraphPtrs({&g});
  EXPECT_EQ(b.num_graphs, 1);
  EXPECT_EQ(b.num_nodes, 5);
  EXPECT_EQ(b.features.rows(), 5);
  EXPECT_EQ(b.features.cols(), 3);
  EXPECT_EQ(b.edge_src.size(), g.edge_src().size());
  EXPECT_EQ(b.node_offsets, (std::vector<int64_t>{0, 5}));
}

TEST(GraphBatchTest, OffsetsShiftEdges) {
  Graph a = testing::PathGraph3();
  Graph b = testing::HouseGraph(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &b});
  EXPECT_EQ(batch.num_nodes, 8);
  EXPECT_EQ(batch.node_offsets, (std::vector<int64_t>{0, 3, 8}));
  // All edges of the second graph reference nodes >= 3.
  for (size_t r = a.edge_src().size(); r < batch.edge_src.size(); ++r) {
    EXPECT_GE(batch.edge_src[r], 3);
    EXPECT_GE(batch.edge_dst[r], 3);
  }
  // Node -> graph mapping.
  EXPECT_EQ(batch.node_graph_ids[0], 0);
  EXPECT_EQ(batch.node_graph_ids[2], 0);
  EXPECT_EQ(batch.node_graph_ids[3], 1);
  EXPECT_EQ(batch.node_graph_ids[7], 1);
}

TEST(GraphBatchTest, FeaturesConcatenatedInOrder) {
  Graph a = testing::PathGraph3(2);
  Graph b = testing::HouseGraph(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &b});
  EXPECT_FLOAT_EQ(batch.features.At(0, 0), a.feature(0, 0));
  EXPECT_FLOAT_EQ(batch.features.At(2, 1), a.feature(2, 1));
  EXPECT_FLOAT_EQ(batch.features.At(3, 0), b.feature(0, 0));
  EXPECT_FLOAT_EQ(batch.features.At(7, 1), b.feature(4, 1));
}

TEST(GraphBatchTest, EmptyGraphContributesEmptySegment) {
  Graph a = testing::PathGraph3(2);
  Graph empty(0, 2);
  Graph c = testing::HouseGraph(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &empty, &c});
  EXPECT_EQ(batch.num_graphs, 3);
  EXPECT_EQ(batch.node_offsets, (std::vector<int64_t>{0, 3, 3, 8}));
}

TEST(GraphBatchTest, DegreesMatchPerGraphDegrees) {
  Graph a = testing::PathGraph3(3);
  Graph b = testing::HouseGraph(3);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &b});
  auto deg = batch.Degrees();
  auto da = a.Degrees();
  auto db = b.Degrees();
  for (int64_t v = 0; v < 3; ++v) EXPECT_EQ(deg[v], da[v]);
  for (int64_t v = 0; v < 5; ++v) EXPECT_EQ(deg[3 + v], db[v]);
}

TEST(GraphBatchTest, VectorOverloadMatchesPointerOverload) {
  std::vector<Graph> graphs = {testing::PathGraph3(2),
                               testing::HouseGraph(2)};
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.num_nodes, 8);
}

}  // namespace
}  // namespace sgcl
