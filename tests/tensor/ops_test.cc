#include "tensor/ops.h"

#include <cmath>

#include "gtest/gtest.h"

namespace sgcl {
namespace {

TEST(TensorTest, FactoriesShapeAndFill) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.values()) EXPECT_EQ(v, 0.0f);

  Tensor o = Tensor::Ones({1, 4});
  for (float v : o.values()) EXPECT_EQ(v, 1.0f);

  Tensor f = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(f.At(1, 0), 3.0f);
  EXPECT_EQ(Tensor::Scalar(7.0f).item(), 7.0f);
}

TEST(MatMulTest, Forward) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTransBTest, MatchesExplicitTranspose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, -2, 3, 0.5f, 5, -6});
  Tensor b = Tensor::FromVector({4, 3},
                                {1, 0, 2, -1, 3, 1, 0.5f, 0.5f, 0.5f, 2, 2, 2});
  Tensor direct = MatMulTransB(a, b);
  Tensor viaT = MatMul(a, Transpose(b));
  ASSERT_EQ(direct.shape(), viaT.shape());
  for (int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct.data()[i], viaT.data()[i], 1e-5f);
  }
}

TEST(AddTest, RowBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({1, 2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 24.0f);
}

TEST(ElementwiseTest, SubMulScalarOps) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({1, 3}, {3, 2, 1});
  Tensor d = Sub(a, b);
  EXPECT_FLOAT_EQ(d.data()[0], -2.0f);
  Tensor m = Mul(a, b);
  EXPECT_FLOAT_EQ(m.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(m.data()[2], 3.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f).data()[2], 4.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, -2.0f).data()[1], -4.0f);
  EXPECT_FLOAT_EQ(Neg(a).data()[0], -1.0f);
}

TEST(MulBroadcastColTest, ScalesRows) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 1, 1, 2, 2, 2});
  Tensor c = Tensor::FromVector({2, 1}, {3, 0.5f});
  Tensor y = MulBroadcastCol(x, c);
  EXPECT_FLOAT_EQ(y.At(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(y.At(1, 0), 1.0f);
}

TEST(ActivationTest, ForwardValues) {
  Tensor x = Tensor::FromVector({1, 4}, {-2, -0.5f, 0.5f, 2});
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(r.data()[3], 2.0f);
  Tensor lr = LeakyRelu(x, 0.1f);
  EXPECT_FLOAT_EQ(lr.data()[0], -0.2f);
  EXPECT_FLOAT_EQ(lr.data()[3], 2.0f);
  Tensor s = Sigmoid(Tensor::Scalar(0.0f));
  EXPECT_FLOAT_EQ(s.item(), 0.5f);
  EXPECT_NEAR(Tanh(Tensor::Scalar(100.0f)).item(), 1.0f, 1e-6f);
  EXPECT_NEAR(Exp(Tensor::Scalar(1.0f)).item(), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(Log(Tensor::Scalar(std::exp(2.0f))).item(), 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(Square(Tensor::Scalar(-3.0f)).item(), 9.0f);
}

TEST(LogTest, GuardsAgainstNonPositive) {
  Tensor x = Tensor::FromVector({1, 2}, {0.0f, -1.0f});
  Tensor y = Log(x, 1e-12f);
  EXPECT_TRUE(std::isfinite(y.data()[0]));
  EXPECT_TRUE(std::isfinite(y.data()[1]));
}

TEST(ReductionTest, SumMeanSumSquares) {
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(x).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(x).item(), 2.5f);
  EXPECT_FLOAT_EQ(SumSquares(x).item(), 30.0f);
  EXPECT_NEAR(FrobeniusNorm(x).item(), std::sqrt(30.0f), 1e-4f);
}

TEST(RowSumTest, SumsEachRow) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, -1, -2, -3});
  Tensor s = RowSum(x);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_FLOAT_EQ(s.data()[0], 6.0f);
  EXPECT_FLOAT_EQ(s.data()[1], -6.0f);
}

TEST(RowL2NormalizeTest, RowsHaveUnitNorm) {
  Tensor x = Tensor::FromVector({2, 2}, {3, 4, 0.1f, 0});
  Tensor y = RowL2Normalize(x);
  EXPECT_NEAR(y.At(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(y.At(0, 1), 0.8f, 1e-5f);
  EXPECT_NEAR(y.At(1, 0), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, RowsSumToOneAndAreShiftInvariant) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 1001, 1002, 1003});
  Tensor p = Softmax(x);
  for (int64_t i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 3; ++j) total += p.At(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  // Shift invariance: both rows identical distributions.
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(p.At(0, j), p.At(1, j), 1e-5f);
  }
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Tensor x = Tensor::FromVector({1, 4}, {0.5f, -1, 2, 0});
  Tensor lp = LogSoftmax(x);
  Tensor p = Softmax(x);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(lp.data()[j], std::log(p.data()[j]), 1e-5f);
  }
}

TEST(DropoutTest, EvalModeIsIdentityAndTrainZeroes) {
  Rng rng(5);
  Tensor x = Tensor::Ones({10, 10});
  Tensor eval = Dropout(x, 0.5f, &rng, /*training=*/false);
  for (float v : eval.values()) EXPECT_EQ(v, 1.0f);
  Tensor train = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  for (float v : train.values()) {
    EXPECT_TRUE(v == 0.0f || v == 2.0f);  // inverted dropout scaling
    zeros += (v == 0.0f);
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(ConcatColsTest, StacksColumns) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.At(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 5.0f);
}

TEST(CrossEntropyTest, PerfectPredictionHasLowLoss) {
  Tensor logits = Tensor::FromVector({2, 2}, {10, -10, -10, 10});
  const float loss = CrossEntropyWithLogits(logits, {0, 1}).item();
  EXPECT_LT(loss, 1e-3f);
  Tensor bad = Tensor::FromVector({2, 2}, {-10, 10, 10, -10});
  EXPECT_GT(CrossEntropyWithLogits(bad, {0, 1}).item(), 5.0f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({3, 4});
  EXPECT_NEAR(CrossEntropyWithLogits(logits, {0, 1, 2}).item(),
              std::log(4.0f), 1e-5f);
}

TEST(BceWithLogitsTest, MaskSkipsMissingLabels) {
  Tensor logits = Tensor::FromVector({1, 3}, {100.0f, -100.0f, 0.0f});
  Tensor targets = Tensor::FromVector({1, 3}, {1.0f, 0.0f, 1.0f});
  Tensor mask = Tensor::FromVector({1, 3}, {1.0f, 1.0f, 0.0f});
  // Both unmasked entries are perfectly predicted -> ~0 loss.
  EXPECT_NEAR(BceWithLogits(logits, targets, mask).item(), 0.0f, 1e-4f);
  Tensor full_mask = Tensor::Ones({1, 3});
  // Adding the uncertain entry (z=0, t=1) contributes log(2)/3.
  EXPECT_NEAR(BceWithLogits(logits, targets, full_mask).item(),
              std::log(2.0f) / 3.0f, 1e-4f);
}

TEST(DetachTest, BreaksAutogradHistory) {
  Tensor x = Tensor::FromVector({1, 2}, {1, 2}, /*requires_grad=*/true);
  Tensor y = MulScalar(x, 2.0f);
  Tensor d = y.Detach();
  EXPECT_FALSE(d.requires_grad());
  Tensor loss = Sum(d);
  EXPECT_FALSE(loss.requires_grad());
}

}  // namespace
}  // namespace sgcl
