// Edge-case coverage for the tensor engine: empty shapes, zero-edge
// graphs, Softplus, edge-weighted GIN messages, and debug formatting.
#include <cmath>

#include "gtest/gtest.h"
#include "nn/gin_conv.h"
#include "nn/pooling.h"
#include "tensor/graph_ops.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

TEST(TensorEdgeCaseTest, DefaultTensorIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.dim(), 0);
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorEdgeCaseTest, ZeroRowMatMul) {
  Tensor a = Tensor::Zeros({0, 3});
  Tensor b = Tensor::Zeros({3, 4});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 4);
  EXPECT_EQ(c.numel(), 0);
}

TEST(TensorEdgeCaseTest, EmptyGatherAndScatter) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor gathered = GatherRows(x, {});
  EXPECT_EQ(gathered.rows(), 0);
  Tensor scattered = ScatterAddRows(gathered, {}, 3);
  EXPECT_EQ(scattered.rows(), 3);
  for (float v : scattered.values()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorEdgeCaseTest, DebugStringMentionsShape) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const std::string s = t.DebugString();
  EXPECT_NE(s.find("2 x 3"), std::string::npos);
}

TEST(SoftplusTest, ForwardValuesAndStability) {
  EXPECT_NEAR(Softplus(Tensor::Scalar(0.0f)).item(), std::log(2.0f), 1e-5f);
  // Large positive: softplus(x) ~ x.
  EXPECT_NEAR(Softplus(Tensor::Scalar(50.0f)).item(), 50.0f, 1e-3f);
  // Large negative: ~0, no overflow.
  const float v = Softplus(Tensor::Scalar(-50.0f)).item();
  EXPECT_GE(v, 0.0f);
  EXPECT_LT(v, 1e-6f);
}

TEST(SoftplusTest, GradCheck) {
  GradCheck(Tensor::FromVector({1, 4}, {-2.0f, -0.3f, 0.4f, 1.7f}),
            [](const Tensor& x) { return Sum(Softplus(x)); });
}

TEST(GinConvTest, EdgeWeightsScaleMessages) {
  Rng rng(1);
  GinConv conv(2, 3, &rng);
  Graph g(2, 2);
  g.AddUndirectedEdge(0, 1);
  g.set_feature(0, 0, 1.0f);
  g.set_feature(1, 0, 2.0f);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  // Zero edge weights must equal an edgeless graph.
  GraphBatch weighted = batch;
  weighted.edge_weights = Tensor::Zeros({2, 1});
  Graph isolated(2, 2);
  isolated.set_feature(0, 0, 1.0f);
  isolated.set_feature(1, 0, 2.0f);
  GraphBatch iso_batch = GraphBatch::FromGraphPtrs({&isolated});
  Tensor yw = conv.Forward(weighted.features, weighted);
  Tensor yi = conv.Forward(iso_batch.features, iso_batch);
  for (int64_t i = 0; i < yw.numel(); ++i) {
    EXPECT_NEAR(yw.data()[i], yi.data()[i], 1e-5f);
  }
  // Unit edge weights must equal the unweighted forward.
  GraphBatch unit = batch;
  unit.edge_weights = Tensor::Ones({2, 1});
  Tensor yu = conv.Forward(unit.features, unit);
  Tensor y = conv.Forward(batch.features, batch);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(yu.data()[i], y.data()[i], 1e-5f);
  }
}

TEST(GinConvTest, GradientFlowsThroughEdgeWeights) {
  Rng rng(2);
  GinConv conv(2, 3, &rng);
  Graph g = testing::PathGraph3(2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&g});
  Tensor w = Tensor::Full({static_cast<int64_t>(batch.edge_src.size()), 1},
                          0.7f, /*requires_grad=*/true);
  GraphBatch weighted = batch;
  weighted.edge_weights = w;
  Tensor loss = SumSquares(conv.Forward(weighted.features, weighted));
  loss.Backward();
  double mass = 0.0;
  for (float gv : w.impl()->grad) mass += std::fabs(gv);
  EXPECT_GT(mass, 1e-8);
}

TEST(PoolingEdgeCaseTest, EmptyGraphPoolsToZeros) {
  Graph a = testing::PathGraph3(2);
  Graph empty(0, 2);
  GraphBatch batch = GraphBatch::FromGraphPtrs({&a, &empty});
  Tensor x = Tensor::Ones({batch.num_nodes, 4});
  for (PoolingKind kind :
       {PoolingKind::kSum, PoolingKind::kMean, PoolingKind::kMax}) {
    Tensor pooled = Pool(x, batch, kind);
    ASSERT_EQ(pooled.rows(), 2);
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(pooled.At(1, j), 0.0f) << PoolingKindToString(kind);
    }
  }
}

TEST(GraphEdgeCaseTest, AddNodesExtendsFeaturesAndMask) {
  Graph g(2, 3);
  g.set_feature(1, 2, 5.0f);
  g.set_semantic_mask({1, 0});
  const int64_t first = g.AddNodes(2);
  EXPECT_EQ(first, 2);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_FLOAT_EQ(g.feature(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(g.feature(3, 0), 0.0f);
  ASSERT_EQ(g.semantic_mask().size(), 4u);
  EXPECT_EQ(g.semantic_mask()[0], 1);
  EXPECT_EQ(g.semantic_mask()[2], 0);
}

TEST(GraphEdgeCaseTest, RemoveSelfLoop) {
  Graph g(2, 1);
  g.AddUndirectedEdge(0, 0);
  g.AddUndirectedEdge(0, 1);
  EXPECT_TRUE(g.RemoveUndirectedEdge(0, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_directed_edges(), 2);
}

TEST(GraphEdgeCaseTest, InducedSubgraphKeepsTaskLabels) {
  Graph g = testing::PathGraph3(2);
  g.set_task_labels({1.0f, -1.0f, 0.0f});
  Graph sub = g.InducedSubgraph({1, 0, 1});
  EXPECT_EQ(sub.task_labels(), g.task_labels());
}

}  // namespace
}  // namespace sgcl
