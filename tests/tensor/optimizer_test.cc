#include "tensor/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace sgcl {
namespace {

// Minimizes f(w) = ||w - target||^2 and expects convergence.
template <typename MakeOpt>
void ExpectConvergence(MakeOpt make_opt, int steps, float tol) {
  Tensor w = Tensor::FromVector({1, 3}, {5.0f, -3.0f, 1.0f},
                                /*requires_grad=*/true);
  Tensor target = Tensor::FromVector({1, 3}, {1.0f, 2.0f, -1.0f});
  auto opt = make_opt(std::vector<Tensor>{w});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Tensor loss = SumSquares(Sub(w, target));
    loss.Backward();
    opt->Step();
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(w.data()[j], target.data()[j], tol) << "coord " << j;
  }
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ExpectConvergence(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), /*lr=*/0.1f);
      },
      200, 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  ExpectConvergence(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), /*lr=*/0.05f,
                                     /*momentum=*/0.9f);
      },
      300, 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ExpectConvergence(
      [](std::vector<Tensor> p) {
        return std::make_unique<Adam>(std::move(p), /*lr=*/0.1f);
      },
      500, 1e-2f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::FromVector({1, 2}, {4.0f, -4.0f}, /*requires_grad=*/true);
  Adam opt({w}, /*lr=*/0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    // Zero data gradient: only decay acts.
    opt.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.1f);
  EXPECT_NEAR(w.data()[1], 0.0f, 0.1f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor w = Tensor::FromVector({1, 2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  SumSquares(w).Backward();
  EXPECT_NE(w.grad()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(w.grad()[0], 0.0f);
  EXPECT_EQ(w.grad()[1], 0.0f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::FromVector({1, 2}, {0.0f, 0.0f}, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  w.impl()->grad = {3.0f, 4.0f};  // norm 5
  const float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-4f);
  const float post = std::hypot(w.grad()[0], w.grad()[1]);
  EXPECT_NEAR(post, 1.0f, 1e-3f);
}

TEST(OptimizerTest, ClipGradNormNoOpBelowThreshold) {
  Tensor w = Tensor::FromVector({1, 2}, {0.0f, 0.0f}, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  w.impl()->grad = {0.3f, 0.4f};  // norm 0.5
  opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(w.grad()[1], 0.4f);
}

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor w = XavierUniform(50, 50, &rng);
  EXPECT_TRUE(w.requires_grad());
  const double bound = std::sqrt(6.0 / 100.0);
  for (float v : w.values()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Tensor w = HeNormal(200, 200, &rng);
  double sq = 0.0;
  for (float v : w.values()) sq += static_cast<double>(v) * v;
  const double var = sq / static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(InitTest, ZerosParamTrainable) {
  Tensor b = ZerosParam(1, 8);
  EXPECT_TRUE(b.requires_grad());
  for (float v : b.values()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace sgcl
