#include "tensor/graph_ops.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

TEST(GatherRowsTest, Forward) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = GatherRows(x, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.At(2, 1), 6.0f);
}

TEST(ScatterAddRowsTest, ForwardAccumulates) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor y = ScatterAddRows(x, {0, 0, 2}, 4);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_FLOAT_EQ(y.At(0, 0), 3.0f);  // rows 0 and 1 summed
  EXPECT_FLOAT_EQ(y.At(1, 0), 0.0f);  // untouched
  EXPECT_FLOAT_EQ(y.At(2, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.At(3, 0), 0.0f);
}

TEST(GatherScatterTest, RoundTripNeighborSum) {
  // Path 0-1-2: neighbor sum at node 1 is x0+x2.
  std::vector<int32_t> src = {0, 1, 1, 2};
  std::vector<int32_t> dst = {1, 0, 2, 1};
  Tensor x = Tensor::FromVector({3, 1}, {1, 10, 100});
  Tensor agg = ScatterAddRows(GatherRows(x, src), dst, 3);
  EXPECT_FLOAT_EQ(agg.At(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(agg.At(1, 0), 101.0f);
  EXPECT_FLOAT_EQ(agg.At(2, 0), 10.0f);
}

TEST(GradCheckTest, GatherAndScatter) {
  std::vector<int32_t> idx = {1, 0, 1, 2};
  GradCheck(Tensor::FromVector({3, 2}, {0.5f, -1, 2, 0.3f, -0.7f, 1.1f}),
            [&](const Tensor& x) { return SumSquares(GatherRows(x, idx)); });
  GradCheck(Tensor::FromVector({4, 2},
                               {0.5f, -1, 2, 0.3f, -0.7f, 1.1f, 1, -2}),
            [&](const Tensor& x) {
              return SumSquares(ScatterAddRows(x, idx, 3));
            });
}

TEST(SegmentMeanTest, ForwardAndEmptySegment) {
  Tensor x = Tensor::FromVector({4, 1}, {1, 3, 10, 20});
  Tensor y = SegmentMean(x, {0, 0, 2, 2}, 3);
  EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.At(1, 0), 0.0f);  // empty segment
  EXPECT_FLOAT_EQ(y.At(2, 0), 15.0f);
}

TEST(SegmentMaxTest, ForwardAndEmptySegment) {
  Tensor x = Tensor::FromVector({4, 2}, {1, -5, 3, -7, -1, 2, 0, 4});
  Tensor y = SegmentMax(x, {0, 0, 1, 1}, 3);
  EXPECT_FLOAT_EQ(y.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), -5.0f);
  EXPECT_FLOAT_EQ(y.At(1, 1), 4.0f);
  EXPECT_FLOAT_EQ(y.At(2, 0), 0.0f);  // empty segment -> zeros
}

TEST(GradCheckTest, SegmentMeanAndMax) {
  std::vector<int32_t> seg = {0, 0, 1, 1};
  GradCheck(Tensor::FromVector({4, 2},
                               {0.5f, -1, 2, 0.3f, -0.7f, 1.1f, 1, -2}),
            [&](const Tensor& x) {
              return SumSquares(SegmentMean(x, seg, 2));
            });
  // Max: distinct values so the argmax is stable under the FD probe.
  GradCheck(Tensor::FromVector({4, 2}, {0.5f, -1, 2, 0.3f, -0.7f, 1.1f, 1, -2}),
            [&](const Tensor& x) {
              return SumSquares(SegmentMax(x, seg, 2));
            });
}

TEST(SegmentSoftmaxTest, SumsToOnePerSegment) {
  Tensor s = Tensor::FromVector({5, 1}, {1, 2, 3, -1, 5});
  Tensor p = SegmentSoftmax(s, {0, 0, 0, 1, 1}, 2);
  EXPECT_NEAR(p.data()[0] + p.data()[1] + p.data()[2], 1.0f, 1e-5f);
  EXPECT_NEAR(p.data()[3] + p.data()[4], 1.0f, 1e-5f);
  EXPECT_GT(p.data()[2], p.data()[0]);
}

TEST(SegmentSoftmaxTest, NumericallyStableForLargeScores) {
  Tensor s = Tensor::FromVector({2, 1}, {1000.0f, 999.0f});
  Tensor p = SegmentSoftmax(s, {0, 0}, 1);
  EXPECT_NEAR(p.data()[0] + p.data()[1], 1.0f, 1e-5f);
  EXPECT_GT(p.data()[0], p.data()[1]);
}

TEST(GradCheckTest, SegmentSoftmax) {
  std::vector<int32_t> seg = {0, 0, 0, 1, 1};
  Tensor weights = Tensor::FromVector({5, 1}, {1, -2, 0.5f, 3, -1});
  GradCheck(Tensor::FromVector({5, 1}, {0.5f, -1, 2, 0.3f, -0.7f}),
            [&](const Tensor& x) {
              return Sum(Mul(SegmentSoftmax(x, seg, 2), weights));
            });
}

TEST(SegmentSumTest, MatchesScatterAdd) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  std::vector<int32_t> seg = {1, 1, 0};
  Tensor a = SegmentSum(x, seg, 2);
  Tensor b = ScatterAddRows(x, seg, 2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace sgcl
