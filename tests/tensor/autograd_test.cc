// Finite-difference gradient checks over the op library, plus tape
// mechanics (accumulation, reuse, deep chains).
#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace sgcl {
namespace {

using testing::GradCheck;

Tensor SmallInput() {
  // Values away from relu/max kinks.
  return Tensor::FromVector({2, 3}, {0.7f, -1.3f, 2.1f, -0.4f, 1.6f, -2.2f});
}

TEST(GradCheckTest, MatMul) {
  Tensor b = Tensor::FromVector({3, 2}, {0.5f, -1, 2, 0.3f, -0.7f, 1.1f});
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return Sum(MatMul(x, b)); });
}

TEST(GradCheckTest, MatMulSecondArg) {
  Tensor a = Tensor::FromVector({2, 2}, {1, -0.5f, 0.25f, 2});
  GradCheck(Tensor::FromVector({2, 3}, {1, 2, -1, 0.5f, -2, 0.1f}),
            [&](const Tensor& x) { return SumSquares(MatMul(a, x)); });
}

TEST(GradCheckTest, MatMulTransB) {
  Tensor b = Tensor::FromVector({4, 3},
                                {0.5f, -1, 2, 0.3f, -0.7f, 1.1f, 1, 0, -1, 2,
                                 0.2f, -0.4f});
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return SumSquares(MatMulTransB(x, b)); });
  GradCheck(b, [&](const Tensor& x) {
    return SumSquares(MatMulTransB(SmallInput(), x));
  });
}

TEST(GradCheckTest, Transpose) {
  GradCheck(SmallInput(),
            [](const Tensor& x) { return SumSquares(Transpose(x)); });
}

TEST(GradCheckTest, AddBothArgsAndBroadcast) {
  Tensor other = Tensor::FromVector({2, 3}, {1, 1, -1, 2, 0.5f, 0});
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return SumSquares(Add(x, other)); });
  Tensor row = Tensor::FromVector({1, 3}, {0.3f, -0.6f, 0.9f});
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return SumSquares(Add(x, row)); });
  // Gradient through the broadcast side.
  GradCheck(row, [&](const Tensor& r) {
    return SumSquares(Add(SmallInput(), r));
  });
}

TEST(GradCheckTest, SubMul) {
  Tensor other = Tensor::FromVector({2, 3}, {2, -1, 0.5f, 1, 1, -2});
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return SumSquares(Sub(x, other)); });
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return Sum(Mul(x, other)); });
  GradCheck(SmallInput(),
            [&](const Tensor& x) { return SumSquares(Mul(x, x)); });
}

TEST(GradCheckTest, MulBroadcastCol) {
  Tensor c = Tensor::FromVector({2, 1}, {1.5f, -0.5f});
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return SumSquares(MulBroadcastCol(x, c));
  });
  GradCheck(c, [&](const Tensor& cc) {
    return SumSquares(MulBroadcastCol(SmallInput(), cc));
  });
}

TEST(GradCheckTest, Activations) {
  GradCheck(SmallInput(), [](const Tensor& x) { return Sum(Relu(x)); });
  GradCheck(SmallInput(),
            [](const Tensor& x) { return Sum(LeakyRelu(x, 0.2f)); });
  GradCheck(SmallInput(), [](const Tensor& x) { return Sum(Sigmoid(x)); });
  GradCheck(SmallInput(), [](const Tensor& x) { return Sum(Tanh(x)); });
  GradCheck(SmallInput(), [](const Tensor& x) { return Sum(Exp(x)); });
  GradCheck(SmallInput(), [](const Tensor& x) { return Sum(Square(x)); });
}

TEST(GradCheckTest, LogOnPositiveInput) {
  Tensor pos = Tensor::FromVector({1, 4}, {0.5f, 1.2f, 3.3f, 0.9f});
  GradCheck(pos, [](const Tensor& x) { return Sum(Log(x)); });
}

TEST(GradCheckTest, Reductions) {
  GradCheck(SmallInput(), [](const Tensor& x) { return Mean(x); });
  GradCheck(SmallInput(), [](const Tensor& x) { return SumSquares(x); });
  GradCheck(SmallInput(), [](const Tensor& x) { return FrobeniusNorm(x); });
  GradCheck(SmallInput(), [](const Tensor& x) { return SumSquares(RowSum(x)); });
}

TEST(GradCheckTest, RowL2Normalize) {
  Tensor w = Tensor::FromVector({3, 2}, {0.3f, -0.8f, 1.0f, 0.5f, -0.5f, 0.5f});
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return Sum(Mul(RowL2Normalize(x), RowL2Normalize(x)));
  });
  GradCheck(SmallInput(), [&](const Tensor& x) {
    // Asymmetric downstream use to exercise the full Jacobian.
    Tensor y = RowL2Normalize(x);
    return Sum(MatMul(y, Tensor::FromVector({3, 1}, {1.0f, -2.0f, 0.5f})));
  });
  (void)w;
}

TEST(GradCheckTest, SoftmaxAndLogSoftmax) {
  Tensor weights = Tensor::FromVector({2, 3}, {1, -1, 2, 0.5f, 1, -0.5f});
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return Sum(Mul(Softmax(x), weights));
  });
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return Sum(Mul(LogSoftmax(x), weights));
  });
}

TEST(GradCheckTest, ConcatCols) {
  Tensor b = Tensor::FromVector({2, 2}, {0.1f, 0.2f, 0.3f, 0.4f});
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return SumSquares(ConcatCols(x, b));
  });
  GradCheck(b, [&](const Tensor& x) {
    return SumSquares(ConcatCols(SmallInput(), x));
  });
}

TEST(GradCheckTest, CrossEntropy) {
  GradCheck(SmallInput(), [](const Tensor& x) {
    return CrossEntropyWithLogits(x, {2, 0});
  });
}

TEST(GradCheckTest, BceWithLogits) {
  Tensor targets = Tensor::FromVector({2, 3}, {1, 0, 1, 0, 1, 0});
  Tensor mask = Tensor::FromVector({2, 3}, {1, 1, 0, 1, 1, 1});
  GradCheck(SmallInput(), [&](const Tensor& x) {
    return BceWithLogits(x, targets, mask);
  });
}

TEST(AutogradTest, GradAccumulatesWhenTensorReused) {
  Tensor x = Tensor::FromVector({1, 1}, {3.0f}, /*requires_grad=*/true);
  // y = x*x via Mul(x, x): dy/dx = 2x = 6.
  Tensor y = Mul(x, x);
  Sum(y).Backward();
  EXPECT_NEAR(x.grad()[0], 6.0f, 1e-5f);
}

TEST(AutogradTest, DiamondGraphAccumulatesBothPaths) {
  Tensor x = Tensor::FromVector({1, 1}, {2.0f}, /*requires_grad=*/true);
  Tensor a = MulScalar(x, 3.0f);
  Tensor b = MulScalar(x, 5.0f);
  Tensor out = Add(a, b);  // d/dx = 8
  Sum(out).Backward();
  EXPECT_NEAR(x.grad()[0], 8.0f, 1e-5f);
}

TEST(AutogradTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::FromVector({1, 1}, {1.0f}, /*requires_grad=*/true);
  Tensor loss = MulScalar(x, 4.0f);
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
  Tensor loss2 = MulScalar(x, 4.0f);
  loss2.Backward();
  EXPECT_NEAR(x.grad()[0], 8.0f, 1e-5f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::FromVector({1, 1}, {1.0f}, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  Sum(y).Backward();
  EXPECT_NEAR(x.grad()[0], 1.0f, 1e-5f);
}

TEST(AutogradTest, NoGradInputsProduceNoTape) {
  Tensor x = Tensor::FromVector({1, 2}, {1, 2});
  Tensor y = Relu(MatMulTransB(x, Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1})));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

}  // namespace
}  // namespace sgcl
