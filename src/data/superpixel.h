// MNIST-superpixel-like digit graphs (paper Fig. 7 substitution).
//
// Digits 0-9 are rasterized from seven-segment strokes onto a 28x28
// canvas with per-sample jitter, then coarsened into a grid of
// superpixels. Node features are [mean intensity, x, y]; edges connect
// 8-neighboring superpixels. Ground-truth semantic nodes are the
// superpixels covering stroke pixels, which is what the visualization
// experiment compares Lipschitz constants against.
#ifndef SGCL_DATA_SUPERPIXEL_H_
#define SGCL_DATA_SUPERPIXEL_H_

#include <array>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"

namespace sgcl {

inline constexpr int kCanvasSize = 28;
inline constexpr int kSuperpixelGrid = 7;   // 7x7 = 49 superpixels
inline constexpr int kSuperpixelFeatDim = 3;

// Rasterizes digit `digit` (0-9) with jitter into a kCanvasSize^2 canvas
// of intensities in [0, 1].
std::array<float, kCanvasSize * kCanvasSize> RasterizeDigit(int digit,
                                                            Rng* rng);

// Converts a canvas to a superpixel graph. Superpixels with mean
// intensity above `semantic_threshold` are marked semantic.
Graph CanvasToSuperpixelGraph(
    const std::array<float, kCanvasSize * kCanvasSize>& canvas,
    float semantic_threshold = 0.25f);

// `per_digit` samples of each of the 10 digits (labels = digit).
GraphDataset MakeSuperpixelDataset(int per_digit, uint64_t seed);

}  // namespace sgcl

#endif  // SGCL_DATA_SUPERPIXEL_H_
