// Synthetic stand-ins for the TU benchmark datasets (paper Table I).
//
// The real TU data cannot be shipped; these generators reproduce each
// dataset's *statistics* (#graphs, avg nodes, avg undirected edges,
// #classes, molecule vs. social) while planting class-determining motifs
// so that (a) graph classification is learnable, (b) a ground-truth
// semantic-node mask exists, and (c) node-type histograms alone do not
// determine the class — structure does, which is exactly the regime where
// semantic-aware augmentation should beat probability-based augmentation.
//
// Molecule-style datasets use one-hot atom-type features with a noisy
// background whose type marginals overlap the motif types. Social-style
// datasets have no intrinsic features; following standard practice the
// features are one-hot bucketed degrees, and the planted structure is a
// dense community motif.
#ifndef SGCL_DATA_SYNTHETIC_TU_H_
#define SGCL_DATA_SYNTHETIC_TU_H_

#include <string>
#include <vector>

#include "graph/dataset.h"

namespace sgcl {

enum class TuDataset {
  kMutag,
  kDd,
  kProteins,
  kNci1,
  kCollab,
  kRdtB,
  kRdtM5k,
  kImdbB,
};

// All eight, in paper Table I order (molecules then social).
std::vector<TuDataset> AllTuDatasets();

struct TuConfig {
  std::string name;
  int num_graphs = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;  // undirected
  int num_classes = 2;
  bool social = false;
  int feat_dim = 8;  // atom types (molecule) or degree buckets (social)
};

// Paper Table I statistics for `which`.
TuConfig GetTuConfig(TuDataset which);

struct SyntheticTuOptions {
  // Fraction of the paper's #graphs to generate (CI runs use ~0.1).
  double graph_fraction = 1.0;
  // Upper bound on a dataset's average node count (large TU datasets like
  // DD/RDT are capped for single-core runs; density is preserved).
  double node_cap = 1e9;
  uint64_t seed = 0;
};

// Generates the synthetic counterpart of `which`. Every graph carries a
// semantic mask marking its planted motif nodes.
GraphDataset MakeTuDataset(TuDataset which, const SyntheticTuOptions& options);

}  // namespace sgcl

#endif  // SGCL_DATA_SYNTHETIC_TU_H_
