#include "data/prefetcher.h"

#include <utility>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace sgcl {

BatchPrefetcher::BatchPrefetcher(const GraphSource* source,
                                 const PrefetcherOptions& options)
    : source_(source), options_(options) {
  SGCL_CHECK(source_ != nullptr);
}

BatchPrefetcher::~BatchPrefetcher() { DrainInFlight(); }

void BatchPrefetcher::DrainInFlight() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
  inflight_.clear();
}

void BatchPrefetcher::BeginEpoch(std::vector<std::vector<int64_t>> batches) {
  DrainInFlight();
  batches_ = std::move(batches);
  next_to_schedule_ = 0;
  next_to_return_ = 0;
  if (options_.depth <= 0) return;
  for (int i = 0; i < options_.depth &&
                  next_to_schedule_ < batches_.size();
       ++i) {
    Schedule();
  }
}

void BatchPrefetcher::Schedule() {
  if (next_to_schedule_ >= batches_.size()) return;
  static Gauge* const queue_depth =
      MetricsRegistry::Global().GetGauge("prefetch/queue_depth");
  auto slot = std::make_shared<Slot>();
  const std::vector<int64_t>* indices = &batches_[next_to_schedule_];
  ++next_to_schedule_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.push_back(slot);
    ++outstanding_;
    queue_depth->Set(static_cast<double>(outstanding_));
  }
  // Capture the scheduler's ambient TraceContext: when a sampled
  // training batch schedules this fetch, the fetch's spans join that
  // batch's trace across the pool-thread boundary.
  const TraceContext trace_ctx = CurrentTraceContext();
  GlobalThreadPool().Submit([this, slot, indices, trace_ctx] {
    ScopedTraceContext trace_install(trace_ctx);
    FetchedGraphs fetched;
    Status status = Status::OK();
    {
      SGCL_TRACE_SPAN("stream/prefetch_fetch");
      status = source_->Fetch(*indices, &fetched);
    }
    std::lock_guard<std::mutex> lock(mu_);
    slot->status = status;
    if (status.ok()) slot->result = std::move(fetched);
    slot->done = true;
    --outstanding_;
    queue_depth->Set(static_cast<double>(outstanding_));
    cv_.notify_all();
  });
}

Result<FetchedGraphs> BatchPrefetcher::Next() {
  SGCL_CHECK(next_to_return_ < batches_.size());
  if (options_.depth <= 0) {
    FetchedGraphs fetched;
    SGCL_RETURN_NOT_OK(source_->Fetch(batches_[next_to_return_], &fetched));
    ++next_to_return_;
    return fetched;
  }
  static Counter* const stall_counter =
      MetricsRegistry::Global().GetCounter("prefetch/consumer_stalls");
  static Histogram* const stall_us = MetricsRegistry::Global().GetHistogram(
      "prefetch/stall_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000});
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    SGCL_CHECK(!inflight_.empty());
    slot = inflight_.front();
    inflight_.pop_front();
    if (!slot->done) {
      // The consumer outran the pipeline — the stall the bench watches.
      stall_counter->Increment();
      const int64_t stall_start_us = TraceCollector::Global().NowUs();
      cv_.wait(lock, [&] { return slot->done; });
      const int64_t stall_end_us = TraceCollector::Global().NowUs();
      stall_us->Observe(static_cast<double>(stall_end_us - stall_start_us));
      RecordManualSpan("stream/consumer_stall", CurrentTraceContext(),
                       stall_start_us, stall_end_us);
    }
  }
  ++next_to_return_;
  // Refill the pipeline before handing the batch out, so decode of the
  // next batch overlaps the caller's compute on this one.
  Schedule();
  if (!slot->status.ok()) return slot->status;
  return std::move(slot->result);
}

int64_t BatchPrefetcher::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(batches_.size()) -
         static_cast<int64_t>(next_to_return_);
}

}  // namespace sgcl
