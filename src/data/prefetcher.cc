#include "data/prefetcher.h"

#include <utility>

#include "common/metrics.h"
#include "common/parallel.h"

namespace sgcl {

BatchPrefetcher::BatchPrefetcher(const GraphSource* source,
                                 const PrefetcherOptions& options)
    : source_(source), options_(options) {
  SGCL_CHECK(source_ != nullptr);
}

BatchPrefetcher::~BatchPrefetcher() { DrainInFlight(); }

void BatchPrefetcher::DrainInFlight() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
  inflight_.clear();
}

void BatchPrefetcher::BeginEpoch(std::vector<std::vector<int64_t>> batches) {
  DrainInFlight();
  batches_ = std::move(batches);
  next_to_schedule_ = 0;
  next_to_return_ = 0;
  if (options_.depth <= 0) return;
  for (int i = 0; i < options_.depth &&
                  next_to_schedule_ < batches_.size();
       ++i) {
    Schedule();
  }
}

void BatchPrefetcher::Schedule() {
  if (next_to_schedule_ >= batches_.size()) return;
  auto slot = std::make_shared<Slot>();
  const std::vector<int64_t>* indices = &batches_[next_to_schedule_];
  ++next_to_schedule_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.push_back(slot);
    ++outstanding_;
  }
  GlobalThreadPool().Submit([this, slot, indices] {
    FetchedGraphs fetched;
    const Status status = source_->Fetch(*indices, &fetched);
    std::lock_guard<std::mutex> lock(mu_);
    slot->status = status;
    if (status.ok()) slot->result = std::move(fetched);
    slot->done = true;
    --outstanding_;
    cv_.notify_all();
  });
}

Result<FetchedGraphs> BatchPrefetcher::Next() {
  SGCL_CHECK(next_to_return_ < batches_.size());
  if (options_.depth <= 0) {
    FetchedGraphs fetched;
    SGCL_RETURN_NOT_OK(source_->Fetch(batches_[next_to_return_], &fetched));
    ++next_to_return_;
    return fetched;
  }
  static Counter* const stall_counter =
      MetricsRegistry::Global().GetCounter("prefetch/consumer_stalls");
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    SGCL_CHECK(!inflight_.empty());
    slot = inflight_.front();
    inflight_.pop_front();
    if (!slot->done) {
      // The consumer outran the pipeline — the stall the bench watches.
      stall_counter->Increment();
      cv_.wait(lock, [&] { return slot->done; });
    }
  }
  ++next_to_return_;
  // Refill the pipeline before handing the batch out, so decode of the
  // next batch overlaps the caller's compute on this one.
  Schedule();
  if (!slot->status.ok()) return slot->status;
  return std::move(slot->result);
}

int64_t BatchPrefetcher::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(batches_.size()) -
         static_cast<int64_t>(next_to_return_);
}

}  // namespace sgcl
