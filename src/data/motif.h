// Motif library for planted-semantics graph generation.
//
// A motif is a small labeled pattern (cycle, clique, star, path, wheel,
// complete bipartite, ...). Synthetic datasets plant class-determining
// motifs into background graphs; the motif's nodes are recorded in the
// graph's semantic mask so experiments can verify that SGCL's Lipschitz
// constants recover them (paper Fig. 7 / RQ5).
#ifndef SGCL_DATA_MOTIF_H_
#define SGCL_DATA_MOTIF_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace sgcl {

struct Motif {
  std::string name;
  int num_nodes = 0;
  // Undirected edges over [0, num_nodes).
  std::vector<std::pair<int, int>> edges;
  // Per-node type id (an index into the dataset's one-hot feature space).
  std::vector<int> node_types;
};

// Structural constructors. `node_type` is assigned to every motif node.
Motif MakeCycleMotif(int k, int node_type);
Motif MakePathMotif(int k, int node_type);
Motif MakeCliqueMotif(int k, int node_type);
// A star with `k` leaves (k+1 nodes); the hub gets `node_type`,
// leaves get `node_type + 1`.
Motif MakeStarMotif(int k, int node_type);
// A wheel: cycle of k nodes plus a hub connected to all of them.
Motif MakeWheelMotif(int k, int node_type);
// Complete bipartite K_{a,b}; sides typed `node_type` / `node_type + 1`.
Motif MakeBipartiteMotif(int a, int b, int node_type);

// A deterministic catalog of structurally diverse motifs; `Get(i)` wraps
// around so any class count can be served. Motifs are arranged so that
// adjacent catalog entries share node types but differ in structure —
// type histograms alone cannot separate classes, the failure mode that
// motivates semantic-aware augmentation (paper Fig. 1).
class MotifCatalog {
 public:
  // `max_node_type` bounds the type ids used (exclusive).
  explicit MotifCatalog(int max_node_type);

  int size() const { return static_cast<int>(motifs_.size()); }
  const Motif& Get(int i) const { return motifs_[i % motifs_.size()]; }

 private:
  std::vector<Motif> motifs_;
};

// Appends `motif` to `g` (which must have one-hot features of width
// >= max type id + 1), connects it to `num_bridges` random existing nodes,
// and marks the new nodes in `semantic_mask` (resized to match g).
// Returns the new nodes' indices. When g is empty the motif stands alone.
std::vector<int64_t> PlantMotif(const Motif& motif, int num_bridges, Rng* rng,
                                Graph* g, std::vector<uint8_t>* semantic_mask);

}  // namespace sgcl

#endif  // SGCL_DATA_MOTIF_H_
