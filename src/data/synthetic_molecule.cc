#include "data/synthetic_molecule.h"

#include <algorithm>
#include <cmath>

#include "data/motif.h"

namespace sgcl {
namespace {

// Functional-group motif for group id `gid`. Each group has a distinct
// small typed structure; types cycle over the atom vocabulary so several
// groups share atom types (histograms are ambiguous, structure is not).
Motif GroupMotif(int gid) {
  const int t = 2 + (gid % (kMoleculeFeatDim - 4));  // types 2..9
  switch (gid % 7) {
    case 0:
      return MakeCycleMotif(5, t);
    case 1:
      return MakePathMotif(4, t);
    case 2:
      return MakeStarMotif(3, t);
    case 3:
      return MakeCycleMotif(6, t);
    case 4:
      return MakeCliqueMotif(4, t);
    case 5:
      return MakeBipartiteMotif(2, 2, t);
    default:
      return MakeWheelMotif(4, t);
  }
}

}  // namespace

MoleculeSampler::MoleculeSampler(bool use_ood_groups)
    : use_ood_groups_(use_ood_groups) {}

SampledMolecule MoleculeSampler::Sample(Rng* rng) const {
  SGCL_CHECK(rng != nullptr);
  SampledMolecule mol;
  mol.groups_present.assign(kNumAllGroups, 0);
  Graph& g = mol.graph;
  g = Graph(0, kMoleculeFeatDim);

  // Backbone: a carbon-like chain (types 0/1) with optional ring closures.
  const int backbone_len = static_cast<int>(rng->UniformInt(8, 21));
  const int num_rings = static_cast<int>(rng->UniformInt(0, 3));
  g.AddNodes(backbone_len);
  for (int v = 0; v < backbone_len; ++v) {
    g.set_feature(v, rng->Bernoulli(0.25) ? 1 : 0, 1.0f);
    if (v > 0) g.AddUndirectedEdge(v, v - 1);
  }
  for (int r = 0; r < num_rings; ++r) {
    const int64_t a = rng->UniformInt(backbone_len);
    const int64_t span = rng->UniformInt(4, 7);
    if (a + span < backbone_len) g.AddUndirectedEdge(a, a + span);
  }
  std::vector<uint8_t> mask(static_cast<size_t>(backbone_len), 0);

  // Attach 1-4 functional groups.
  const int group_limit = use_ood_groups_ ? kNumAllGroups : kNumCoreGroups;
  const int num_groups = static_cast<int>(rng->UniformInt(1, 5));
  for (int k = 0; k < num_groups; ++k) {
    const int gid = static_cast<int>(rng->UniformInt(group_limit));
    if (mol.groups_present[gid]) continue;
    mol.groups_present[gid] = 1;
    PlantMotif(GroupMotif(gid), /*num_bridges=*/1, rng, &g, &mask);
  }
  g.set_semantic_mask(std::move(mask));
  // Scaffold: backbone shape class (length bucket x ring count), the
  // grouping used by the scaffold split.
  g.set_scaffold_id(static_cast<int>((backbone_len / 3) * 4 + num_rings));
  g.set_label(0);
  return mol;
}

GraphDataset MakeZincLikeDataset(int num_graphs, uint64_t seed) {
  SGCL_CHECK_GT(num_graphs, 0);
  Rng rng(seed ^ 0x5a5a5a5aULL);
  MoleculeSampler sampler;
  GraphDataset ds("ZINC-like", /*num_classes=*/1);
  ds.Reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    ds.Add(std::move(sampler.Sample(&rng).graph));
  }
  return ds;
}

std::vector<MolTask> AllMolTasks() {
  return {MolTask::kBbbp, MolTask::kTox21, MolTask::kToxcast,
          MolTask::kSider, MolTask::kClintox, MolTask::kMuv,
          MolTask::kHiv,  MolTask::kBace};
}

MolTaskConfig GetMolTaskConfig(MolTask task) {
  // Graph counts follow paper Table II; ToxCast's 617 tasks are capped to
  // 20 synthetic tasks (the label-rule vocabulary only supports meaningful
  // diversity up to ~tens of tasks) — documented in DESIGN.md.
  switch (task) {
    case MolTask::kBbbp:
      return {"BBBP", 2039, 1, 0.0, false};
    case MolTask::kTox21:
      return {"TOX21", 7831, 12, 0.05, false};
    case MolTask::kToxcast:
      return {"TOXCAST", 8575, 20, 0.1, false};
    case MolTask::kSider:
      return {"SIDER", 1427, 27, 0.0, false};
    case MolTask::kClintox:
      return {"CLINTOX", 1478, 2, 0.0, /*out_of_vocabulary=*/true};
    case MolTask::kMuv:
      return {"MUV", 93087, 17, 0.6, false};
    case MolTask::kHiv:
      return {"HIV", 41127, 1, 0.0, false};
    case MolTask::kBace:
      return {"BACE", 1513, 1, 0.0, false};
  }
  SGCL_CHECK(false);
  return {};
}

namespace {

// Sparse +/-1 logistic rule over group indicators for one task.
struct TaskRule {
  std::vector<float> weights;  // size kNumAllGroups
  float bias = 0.0f;
};

TaskRule MakeTaskRule(uint64_t seed, bool ood) {
  Rng rng(seed);
  TaskRule rule;
  rule.weights.assign(kNumAllGroups, 0.0f);
  const int lo = ood ? kNumCoreGroups : 0;
  const int hi = ood ? kNumAllGroups : kNumCoreGroups;
  // 3 informative groups per task.
  auto picks = rng.SampleWithoutReplacement(hi - lo, 3);
  for (int64_t p : picks) {
    rule.weights[lo + p] = rng.Bernoulli(0.5) ? 2.5f : -2.5f;
  }
  rule.bias = static_cast<float>(rng.Normal(0.0, 0.4));
  return rule;
}

float RuleLogit(const TaskRule& rule,
                const std::vector<uint8_t>& groups_present) {
  float z = rule.bias;
  for (int gid = 0; gid < kNumAllGroups; ++gid) {
    if (groups_present[gid]) z += rule.weights[gid];
  }
  return z;
}

}  // namespace

GraphDataset MakeMolTaskDataset(MolTask task,
                                const MolDatasetOptions& options) {
  const MolTaskConfig cfg = GetMolTaskConfig(task);
  SGCL_CHECK(options.graph_fraction > 0.0 && options.graph_fraction <= 1.0);
  int num_graphs = static_cast<int>(
      std::lround(cfg.paper_num_graphs * options.graph_fraction));
  num_graphs = std::clamp(num_graphs, 60, options.max_graphs);
  Rng rng(options.seed ^ (static_cast<uint64_t>(task) * 0x9e3779b9ULL));
  MoleculeSampler sampler(cfg.out_of_vocabulary);
  std::vector<TaskRule> rules;
  rules.reserve(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    rules.push_back(MakeTaskRule(options.seed + 1000003ULL * (t + 1) +
                                     static_cast<uint64_t>(task),
                                 cfg.out_of_vocabulary));
  }
  GraphDataset ds(cfg.name, /*num_classes=*/2, cfg.num_tasks);
  ds.Reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    SampledMolecule mol = sampler.Sample(&rng);
    std::vector<float> labels(cfg.num_tasks);
    for (int t = 0; t < cfg.num_tasks; ++t) {
      if (rng.Bernoulli(cfg.missing_rate)) {
        labels[t] = -1.0f;
        continue;
      }
      const float z = RuleLogit(rules[t], mol.groups_present);
      const float p = 1.0f / (1.0f + std::exp(-z));
      labels[t] = rng.Bernoulli(p) ? 1.0f : 0.0f;
    }
    mol.graph.set_task_labels(std::move(labels));
    // Single-task view for code paths that want a class label.
    mol.graph.set_label(mol.graph.task_labels()[0] == 1.0f ? 1 : 0);
    ds.Add(std::move(mol.graph));
  }
  return ds;
}

}  // namespace sgcl
