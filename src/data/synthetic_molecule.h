// Synthetic molecular graphs for transfer learning (paper Table II).
//
// A MoleculeSampler draws molecule-like graphs: a backbone (chain + optional
// rings) of typed atoms with functional-group motifs attached at random
// sites. Downstream tasks label molecules through sparse logistic rules
// over the functional-group indicator vector, so the group atoms are the
// semantic nodes, mirroring how real molecular properties hinge on
// substructures. Pretraining (ZINC-2M stand-in) samples unlabeled molecules
// from the same distribution; ClinTox deliberately samples from an
// out-of-vocabulary group set to reproduce the paper's observed OOD
// degradation on that dataset.
#ifndef SGCL_DATA_SYNTHETIC_MOLECULE_H_
#define SGCL_DATA_SYNTHETIC_MOLECULE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "graph/graph.h"

namespace sgcl {

// Atom-type feature width shared by all molecular data (one-hot).
inline constexpr int kMoleculeFeatDim = 12;
// Functional groups 0..kNumCoreGroups-1 appear in pretraining molecules;
// groups up to kNumAllGroups-1 exist but are OOD (used by ClinTox).
inline constexpr int kNumCoreGroups = 10;
inline constexpr int kNumAllGroups = 14;

struct SampledMolecule {
  Graph graph;
  // Indicator per functional group (size kNumAllGroups).
  std::vector<uint8_t> groups_present;
};

class MoleculeSampler {
 public:
  // `use_ood_groups` widens the group vocabulary beyond the pretraining
  // core set (ClinTox substitution).
  explicit MoleculeSampler(bool use_ood_groups = false);

  // Samples a molecule; the graph's semantic mask marks functional-group
  // atoms and its scaffold id encodes the backbone shape.
  SampledMolecule Sample(Rng* rng) const;

 private:
  bool use_ood_groups_;
};

// Unlabeled pretraining set (ZINC-2M stand-in; labels fixed to 0).
GraphDataset MakeZincLikeDataset(int num_graphs, uint64_t seed);

enum class MolTask {
  kBbbp,
  kTox21,
  kToxcast,
  kSider,
  kClintox,
  kMuv,
  kHiv,
  kBace,
};

std::vector<MolTask> AllMolTasks();

struct MolTaskConfig {
  std::string name;
  int paper_num_graphs = 0;  // Table II "#Graphs"
  int num_tasks = 1;         // Table II "#Tasks" (ToxCast capped, see .cc)
  double missing_rate = 0.0; // fraction of task labels hidden (MUV-style)
  bool out_of_vocabulary = false;  // ClinTox
};

MolTaskConfig GetMolTaskConfig(MolTask task);

struct MolDatasetOptions {
  double graph_fraction = 1.0;  // fraction of the paper's #graphs
  int max_graphs = 100000;      // hard cap for CI runs
  uint64_t seed = 0;
};

// A multi-task binary classification dataset for `task`. task_labels
// entries are 1/0, or -1 where the label is missing.
GraphDataset MakeMolTaskDataset(MolTask task, const MolDatasetOptions& options);

}  // namespace sgcl

#endif  // SGCL_DATA_SYNTHETIC_MOLECULE_H_
