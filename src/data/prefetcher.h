// Async batch prefetch pipeline over a GraphSource.
//
// The trainer consumes batches strictly in order; the prefetcher keeps up
// to `depth` Fetch calls in flight on the shared ThreadPool so shard
// read + CRC + decode overlaps the previous batch's compute. depth=2 is
// classic double buffering: while batch k trains, batch k+1 decodes.
//
// State machine per slot (one slot per scheduled batch):
//   SCHEDULED --(pool worker runs Fetch)--> READY{result|error}
//   READY --(Next() pops in FIFO order)--> consumed
// BeginEpoch seeds `depth` SCHEDULED slots; every Next() schedules one
// more until the epoch's batch list is exhausted. depth <= 0 disables
// the pipeline: Next() fetches synchronously on the caller's thread,
// which is bitwise-identical in results and useful for debugging.
//
// The prefetcher never touches training RNG — Fetch is read-only — so
// enabling it cannot perturb losses; it only changes *when* decode work
// happens. Thread-safety: one consumer thread calls BeginEpoch/Next; the
// source's Fetch must be thread-safe (GraphSource contract).
#ifndef SGCL_DATA_PREFETCHER_H_
#define SGCL_DATA_PREFETCHER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph_source.h"

namespace sgcl {

struct PrefetcherOptions {
  // Batches in flight ahead of the consumer; <= 0 means synchronous.
  int depth = 2;
};

class BatchPrefetcher {
 public:
  explicit BatchPrefetcher(const GraphSource* source,
                           const PrefetcherOptions& options = {});
  // Drains in-flight work before destruction (slots reference members).
  ~BatchPrefetcher();

  BatchPrefetcher(const BatchPrefetcher&) = delete;
  BatchPrefetcher& operator=(const BatchPrefetcher&) = delete;

  // Resets the pipeline to serve `batches` in order. Any batches left
  // unconsumed from a previous epoch are abandoned (after draining).
  void BeginEpoch(std::vector<std::vector<int64_t>> batches);

  // The next batch, blocking until its fetch completes. Propagates the
  // Fetch error of exactly that batch. Fatal if the epoch is exhausted —
  // callers know their batch count.
  // Next and DrainInFlight wait on cv_ through std::unique_lock,
  // which libc++'s analysis does not model; sgcl_lint's R8 does and
  // keeps them machine-checked.
  [[nodiscard]] Result<FetchedGraphs> Next() SGCL_NO_THREAD_SAFETY_ANALYSIS;

  // Batches not yet handed out this epoch.
  int64_t remaining() const;

 private:
  struct Slot {
    bool done = false;
    Status status = Status::OK();
    FetchedGraphs result;
  };

  void Schedule();  // schedules batches_[next_to_schedule_] if any
  void DrainInFlight() SGCL_NO_THREAD_SAFETY_ANALYSIS;

  const GraphSource* source_;
  PrefetcherOptions options_;
  std::vector<std::vector<int64_t>> batches_;
  size_t next_to_schedule_ = 0;
  size_t next_to_return_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // FIFO, same order as batches.
  std::deque<std::shared_ptr<Slot>> inflight_ SGCL_GUARDED_BY(mu_);
  int64_t outstanding_ SGCL_GUARDED_BY(mu_) = 0;  // scheduled, not yet READY
};

}  // namespace sgcl

#endif  // SGCL_DATA_PREFETCHER_H_
