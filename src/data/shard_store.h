// Sharded on-disk graph store: the out-of-core GraphSource backing
// paper-scale (ZINC-2M) streaming pretraining.
//
// Directory layout ("the store"):
//   <dir>/manifest.sgsm        — store metadata + per-shard digest table
//   <dir>/shard-000000.sgshard — fixed-capacity runs of graph records
//   <dir>/shard-000001.sgshard
//   ...
//
// Shard file (little-endian):
//   u32 magic 'SGSH' | u32 version | i64 shard_index | i64 num_records |
//   i64 offsets[num_records + 1] (record byte offsets, relative to the
//   records region; offsets[n] is the region size) | records... |
//   u32 crc32 of every preceding byte
//
// Manifest:
//   u32 magic 'SGSM' | u32 version | str name | i64 num_classes |
//   i64 num_tasks | i64 feat_dim | i64 total_graphs | i64 num_shards |
//   per shard { i64 num_records, i64 file_size, u32 crc } |
//   u32 crc32 of every preceding byte
//
// Every file is published via AtomicWriteFile, so a crash mid-write can
// only leave (a) a complete previous version, (b) an orphaned .tmp, or
// (c) shards without a manifest — Open treats (c) as "store absent"
// because the manifest is written last and is the commit point.
//
// The reader keeps at most `max_cached_shards` decoded shards in an LRU
// cache, so resident memory is bounded by the cache size and shard
// capacity — independent of the total graph count. Fetch is thread-safe;
// decoded shards are handed out as shared_ptr pins, so FetchedGraphs
// batches stay valid after eviction.
#ifndef SGCL_DATA_SHARD_STORE_H_
#define SGCL_DATA_SHARD_STORE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph_source.h"

namespace sgcl {

// Fault-injection points (common/fault.h) hit before each file publish.
inline constexpr char kFaultShardWrite[] = "shard_store/write_shard";
inline constexpr char kFaultManifestWrite[] = "shard_store/write_manifest";

struct ShardWriterOptions {
  int64_t graphs_per_shard = 4096;
  std::string name = "sharded";
  int num_classes = 1;
  int num_tasks = 1;
};

// Streaming writer: Append graphs one at a time (bounded memory — only
// the open shard is buffered), then Finalize to publish the manifest.
// Without Finalize the store does not exist to readers.
class ShardedGraphStoreWriter {
 public:
  [[nodiscard]] static Result<std::unique_ptr<ShardedGraphStoreWriter>>
  Create(const std::string& dir, const ShardWriterOptions& options);

  // Feature-dim disagreement with earlier appends is InvalidArgument.
  [[nodiscard]] Status Append(const Graph& graph);

  // Flushes the open shard and atomically publishes the manifest (the
  // store's commit point). Append/Finalize afterwards are errors.
  [[nodiscard]] Status Finalize();

  int64_t graphs_appended() const { return total_graphs_; }
  int64_t shards_written() const {
    return static_cast<int64_t>(shards_.size());
  }

 private:
  struct ShardMeta {
    int64_t num_records = 0;
    int64_t file_size = 0;
    uint32_t crc = 0;
  };

  ShardedGraphStoreWriter(std::string dir, ShardWriterOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  Status FlushShard();

  std::string dir_;
  ShardWriterOptions options_;
  std::vector<ShardMeta> shards_;
  // Open-shard accumulation.
  std::string pending_records_;
  std::vector<int64_t> pending_offsets_{0};
  int64_t pending_count_ = 0;
  int64_t total_graphs_ = 0;
  int64_t feat_dim_ = -1;  // pinned by the first Append
  bool finalized_ = false;
};

struct ShardStoreOptions {
  // Decoded shards kept resident. 2 suffices for the double-buffered
  // prefetch pipeline; higher trades RSS for fewer re-decodes.
  int max_cached_shards = 2;
};

// Read side: a GraphSource over a finalized store directory.
class ShardedGraphStore : public GraphSource {
 public:
  [[nodiscard]] static Result<std::unique_ptr<ShardedGraphStore>> Open(
      const std::string& dir, const ShardStoreOptions& options = {});

  const std::string& name() const override { return name_; }
  int num_classes() const override { return num_classes_; }
  int num_tasks() const override { return num_tasks_; }
  int64_t size() const override { return total_graphs_; }
  [[nodiscard]] Result<int64_t> FeatDim() const override;
  [[nodiscard]] Status Fetch(std::span<const int64_t> indices,
                             FetchedGraphs* out) const override;
  uint64_t ContentFingerprint() const override { return fingerprint_; }
  // One block per shard: indices within a shard decode together.
  std::vector<IndexRange> FetchBlocks() const override;

  int64_t num_shards() const {
    return static_cast<int64_t>(shards_.size());
  }
  // Decoded-shard cache misses since Open (monotone; for tests/benches).
  int64_t shard_decodes() const;

  static std::string ManifestPath(const std::string& dir);
  static std::string ShardPath(const std::string& dir, int64_t shard);

 private:
  struct ShardInfo {
    int64_t num_records = 0;
    int64_t file_size = 0;
    uint32_t crc = 0;
    int64_t first_index = 0;  // global index of the shard's first record
  };
  struct DecodedShard {
    std::vector<Graph> graphs;
  };

  ShardedGraphStore() = default;

  // Shard holding global index `i` (indices are dense and ordered).
  int64_t ShardOf(int64_t index) const;
  Result<std::shared_ptr<const DecodedShard>> GetShard(int64_t shard) const;
  Result<std::shared_ptr<const DecodedShard>> DecodeShard(
      int64_t shard) const;

  std::string dir_;
  std::string name_;
  int num_classes_ = 1;
  int num_tasks_ = 1;
  int64_t feat_dim_ = -1;
  int64_t total_graphs_ = 0;
  uint64_t fingerprint_ = 0;
  std::vector<ShardInfo> shards_;
  ShardStoreOptions options_;

  // LRU of decoded shards, most-recent first.
  mutable std::mutex mu_;
  mutable std::list<std::pair<int64_t, std::shared_ptr<const DecodedShard>>>
      cache_ SGCL_GUARDED_BY(mu_);
  mutable int64_t decode_count_ SGCL_GUARDED_BY(mu_) = 0;
};

}  // namespace sgcl

#endif  // SGCL_DATA_SHARD_STORE_H_
