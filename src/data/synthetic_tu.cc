#include "data/synthetic_tu.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/motif.h"

namespace sgcl {

std::vector<TuDataset> AllTuDatasets() {
  return {TuDataset::kMutag, TuDataset::kDd,    TuDataset::kProteins,
          TuDataset::kNci1,  TuDataset::kCollab, TuDataset::kRdtB,
          TuDataset::kRdtM5k, TuDataset::kImdbB};
}

TuConfig GetTuConfig(TuDataset which) {
  // Statistics from paper Table I.
  switch (which) {
    case TuDataset::kMutag:
      return {"MUTAG", 188, 17.93, 19.79, 2, /*social=*/false, 8};
    case TuDataset::kDd:
      return {"DD", 1178, 284.32, 715.66, 2, false, 8};
    case TuDataset::kProteins:
      return {"PROTEINS", 1113, 39.06, 72.82, 2, false, 8};
    case TuDataset::kNci1:
      return {"NCI1", 4110, 29.87, 32.30, 2, false, 8};
    case TuDataset::kCollab:
      return {"COLLAB", 5000, 74.49, 2457.78, 3, /*social=*/true, 8};
    case TuDataset::kRdtB:
      return {"RDT-B", 2000, 429.63, 497.75, 2, true, 8};
    case TuDataset::kRdtM5k:
      return {"RDT-M-5K", 4999, 508.52, 594.87, 5, true, 8};
    case TuDataset::kImdbB:
      return {"IMDB-B", 1000, 19.77, 96.53, 2, true, 8};
  }
  SGCL_CHECK(false);
  return {};
}

namespace {

// Background node-type distribution for molecule graphs: a skewed marginal
// that *includes* the motif types, so type frequency does not reveal
// semantic membership.
int SampleBackgroundType(int feat_dim, Rng* rng) {
  std::vector<double> weights(feat_dim);
  for (int t = 0; t < feat_dim; ++t) {
    weights[t] = 1.0 / static_cast<double>(1 + t);
  }
  return static_cast<int>(rng->Categorical(weights));
}

// Connected background: random recursive tree plus degree-capped extra
// edges until ~target_edges undirected edges. The degree cap mirrors
// chemistry (valence <= 4-ish) and keeps the degree distribution
// homogeneous, as in the real molecular TU datasets.
void BuildMoleculeBackground(int64_t n, int64_t target_edges, int feat_dim,
                             Rng* rng, Graph* g) {
  g->AddNodes(n);
  for (int64_t v = 0; v < n; ++v) {
    g->set_feature(v, SampleBackgroundType(feat_dim, rng), 1.0f);
  }
  std::vector<int64_t> deg(static_cast<size_t>(n), 0);
  for (int64_t v = 1; v < n; ++v) {
    // Prefer attachment points that are not yet saturated.
    int64_t u = rng->UniformInt(v);
    for (int tries = 0; tries < 4 && deg[u] >= 3; ++tries) {
      u = rng->UniformInt(v);
    }
    g->AddUndirectedEdge(v, u);
    ++deg[v];
    ++deg[u];
  }
  const int64_t degree_cap = 5;
  int64_t attempts = 0;
  while (g->num_undirected_edges() < target_edges && attempts < 12 * n) {
    ++attempts;
    const int64_t a = rng->UniformInt(n);
    const int64_t b = rng->UniformInt(n);
    if (a == b || deg[a] >= degree_cap || deg[b] >= degree_cap) continue;
    if (g->HasEdge(a, b)) continue;
    g->AddUndirectedEdge(a, b);
    ++deg[a];
    ++deg[b];
  }
}

// Two-community Erdos-Renyi background matching a target density.
void BuildSocialBackground(int64_t n, double density, Rng* rng, Graph* g) {
  g->AddNodes(n);
  if (n < 2) return;
  const int64_t split = n / 2 + rng->UniformInt(std::max<int64_t>(1, n / 4));
  // Cap the in-community density below 1 so capped-size stand-ins for the
  // densest datasets (COLLAB) do not degenerate into complete graphs in
  // which planted structure would be invisible.
  // p_in is capped so the planted pattern (a dense community-scale motif)
  // remains at least as connected as the background; without the cap the
  // capped-size stand-ins for COLLAB degenerate into complete graphs.
  const double p_in = std::min(0.55, density * 1.8);
  const double p_out = std::min(0.2, density * 0.2);
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a + 1; b < n; ++b) {
      const bool same = (a < split) == (b < split);
      if (rng->Bernoulli(same ? p_in : p_out)) g->AddUndirectedEdge(a, b);
    }
  }
  // Guarantee connectivity so message passing reaches every node.
  for (int64_t v = 1; v < n; ++v) {
    if (g->Degrees()[v] == 0) g->AddUndirectedEdge(v, rng->UniformInt(v));
  }
}

// The structural pattern planted into social graphs for class `cls`.
Motif SocialClassMotif(int cls, int size) {
  size = std::max(size, 4);
  switch (cls % 5) {
    case 0:
      return MakeCliqueMotif(size, 0);
    case 1:
      return MakeStarMotif(size - 1, 0);
    case 2:
      return MakeBipartiteMotif(size / 2, size - size / 2, 0);
    case 3:
      return MakeWheelMotif(size - 1, 0);
    default:
      return MakeCycleMotif(size, 0);
  }
}

// One-hot degree-bucket features (social graphs have no attributes; the
// standard practice is degree encodings). Buckets are linear in degree
// up to feat_dim - 1 so structurally different planted patterns (clique
// vs star vs bipartite) produce distinct histograms.
void AssignDegreeFeatures(int feat_dim, Graph* g) {
  std::vector<int64_t> deg = g->Degrees();
  std::fill(g->mutable_features().begin(), g->mutable_features().end(), 0.0f);
  for (int64_t v = 0; v < g->num_nodes(); ++v) {
    const int bucket =
        std::min<int>(feat_dim - 1, static_cast<int>(deg[v]));
    g->set_feature(v, bucket, 1.0f);
  }
}

Graph MakeMoleculeGraph(const TuConfig& cfg, const MotifCatalog& catalog,
                        int label, Rng* rng) {
  const double edge_factor = cfg.avg_edges / cfg.avg_nodes;
  // Intra-class variability: each class owns one structural motif per
  // "slot"; slot k of class c is catalog entry 2k + c, so classes share
  // node types slot-wise but differ in topology.
  const int slot = static_cast<int>(rng->UniformInt(2));
  Motif motif = catalog.Get(2 * slot + label);
  // Class-specific motif node type (drawn from the same vocabulary the
  // background uses, so type counts are informative but not clean): the
  // class signal is the *joint* of structure and type, which node
  // dropping on motif nodes destroys.
  const int class_type = (2 + label + 3 * slot) % cfg.feat_dim;
  for (int& t : motif.node_types) t = class_type;
  // Two copies of the class motif are planted so the semantic signal is
  // strong enough to be learnable at small graph counts, yet still
  // destroyed when augmentation drops motif nodes.
  const int num_copies = 1;
  const int64_t motif_nodes =
      static_cast<int64_t>(num_copies) * motif.num_nodes;
  const double spread = 0.25 * cfg.avg_nodes;
  int64_t n_total = static_cast<int64_t>(
      std::lround(rng->Normal(cfg.avg_nodes, spread)));
  n_total = std::max<int64_t>(n_total, motif_nodes + 3);
  const int64_t n_bg = n_total - motif_nodes;
  Graph g(0, cfg.feat_dim);
  // Bridges scale with the dataset's density so that motif-node degrees
  // track background degrees: sparse sets (MUTAG/NCI1) get ~2 bridges,
  // dense ones (DD) get up to 2 per motif node.
  const int num_bridges = static_cast<int>(std::clamp<int64_t>(
      std::lround((edge_factor - 1.0) * 2.0 * motif.num_nodes), 3,
      2 * motif.num_nodes));
  // Budget the background so that background + motif internals + bridges
  // lands near the paper's avg edge count (Table I statistics).
  const int64_t motif_edge_budget =
      static_cast<int64_t>(num_copies) *
      (static_cast<int64_t>(motif.edges.size()) + num_bridges);
  const int64_t target_bg_edges = std::max<int64_t>(
      n_bg - 1, static_cast<int64_t>(std::lround(edge_factor * n_total)) -
                    motif_edge_budget);
  BuildMoleculeBackground(n_bg, target_bg_edges, cfg.feat_dim, rng, &g);
  std::vector<uint8_t> mask(static_cast<size_t>(n_bg), 0);
  for (int copy = 0; copy < num_copies; ++copy) {
    const int64_t planted_base = g.num_nodes();
    PlantMotif(motif, num_bridges, rng, &g, &mask);
    // Difficulty: occasionally corrupt one motif edge so the class signal
    // is strong but not perfectly clean.
    if (rng->Bernoulli(0.05) && !motif.edges.empty()) {
      const auto& [a, b] = motif.edges[rng->UniformInt(
          static_cast<int64_t>(motif.edges.size()))];
      g.RemoveUndirectedEdge(planted_base + a, planted_base + b);
    }
    // Measurement noise on motif atom types (like real molecular data,
    // where substituent atoms vary): each motif node's type is resampled
    // with a small probability. Sum-aggregating GNNs degrade gracefully;
    // exact-multiset methods (WL relabeling) lose whole subtrees.
    for (int i = 0; i < motif.num_nodes; ++i) {
      if (!rng->Bernoulli(0.15)) continue;
      const int64_t v = planted_base + i;
      for (int64_t j = 0; j < cfg.feat_dim; ++j) g.set_feature(v, j, 0.0f);
      g.set_feature(v, SampleBackgroundType(cfg.feat_dim, rng), 1.0f);
    }
  }
  g.set_semantic_mask(std::move(mask));
  g.set_label(label);
  return g;
}

Graph MakeSocialGraph(const TuConfig& cfg, int label, Rng* rng) {
  const double density =
      2.0 * cfg.avg_edges / (cfg.avg_nodes * (cfg.avg_nodes - 1.0));
  const double spread = 0.2 * cfg.avg_nodes;
  int64_t n_total = static_cast<int64_t>(
      std::lround(rng->Normal(cfg.avg_nodes, spread)));
  n_total = std::max<int64_t>(n_total, 10);
  const int motif_size = std::max<int>(
      6, static_cast<int>(0.3 * static_cast<double>(n_total)));
  const Motif motif = SocialClassMotif(label, motif_size);
  const int64_t n_bg = std::max<int64_t>(4, n_total - motif.num_nodes);
  Graph g(0, cfg.feat_dim);
  BuildSocialBackground(n_bg, density, rng, &g);
  std::vector<uint8_t> mask(static_cast<size_t>(n_bg), 0);
  // One bridge per motif node: the planted community is as connected as
  // the background, so its nodes are not low-degree outliers.
  PlantMotif(motif, /*num_bridges=*/motif.num_nodes, rng, &g, &mask);
  g.set_semantic_mask(std::move(mask));
  AssignDegreeFeatures(cfg.feat_dim, &g);
  g.set_label(label);
  return g;
}

}  // namespace

GraphDataset MakeTuDataset(TuDataset which, const SyntheticTuOptions& options) {
  TuConfig cfg = GetTuConfig(which);
  SGCL_CHECK(options.graph_fraction > 0.0 && options.graph_fraction <= 1.0);
  int num_graphs = static_cast<int>(
      std::lround(cfg.num_graphs * options.graph_fraction));
  num_graphs = std::max(num_graphs, 10 * cfg.num_classes);
  if (cfg.avg_nodes > options.node_cap) {
    const double shrink = options.node_cap / cfg.avg_nodes;
    cfg.avg_nodes *= shrink;
    cfg.avg_edges *= shrink;  // preserves edge factor; density grows, which
                              // keeps capped social graphs dense as in TU
  }
  Rng rng(options.seed ^ (static_cast<uint64_t>(which) << 32));
  MotifCatalog catalog(cfg.feat_dim);
  GraphDataset ds(cfg.name, cfg.num_classes);
  ds.Reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    const int label = static_cast<int>(rng.UniformInt(cfg.num_classes));
    Graph g = cfg.social ? MakeSocialGraph(cfg, label, &rng)
                         : MakeMoleculeGraph(cfg, catalog, label, &rng);
    // Label noise keeps test accuracy in the realistic (sub-100%) range.
    if (rng.Bernoulli(0.03)) {
      g.set_label(static_cast<int>(rng.UniformInt(cfg.num_classes)));
    }
    ds.Add(std::move(g));
  }
  return ds;
}

}  // namespace sgcl
