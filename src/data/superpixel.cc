#include "data/superpixel.h"

#include <algorithm>
#include <cmath>

namespace sgcl {
namespace {

// Seven-segment layout on a logical 0..1 square:
//   A: top, B: top-right, C: bottom-right, D: bottom, E: bottom-left,
//   F: top-left, G: middle.
struct Segment {
  float x0, y0, x1, y1;
};

constexpr Segment kSegments[7] = {
    {0.2f, 0.1f, 0.8f, 0.1f},  // A
    {0.8f, 0.1f, 0.8f, 0.5f},  // B
    {0.8f, 0.5f, 0.8f, 0.9f},  // C
    {0.2f, 0.9f, 0.8f, 0.9f},  // D
    {0.2f, 0.5f, 0.2f, 0.9f},  // E
    {0.2f, 0.1f, 0.2f, 0.5f},  // F
    {0.2f, 0.5f, 0.8f, 0.5f},  // G
};

// Active segments per digit (A..G).
constexpr uint8_t kDigitSegments[10] = {
    0b1111110,  // 0: ABCDEF
    0b0110000,  // 1: BC
    0b1101101,  // 2: ABDEG
    0b1111001,  // 3: ABCDG
    0b0110011,  // 4: BCFG
    0b1011011,  // 5: ACDFG
    0b1011111,  // 6: ACDEFG
    0b1110000,  // 7: ABC
    0b1111111,  // 8
    0b1111011,  // 9: ABCDFG
};

void DrawSegment(const Segment& seg, float dx, float dy, float thickness,
                 std::array<float, kCanvasSize * kCanvasSize>* canvas) {
  const float scale = static_cast<float>(kCanvasSize - 1);
  const float x0 = (seg.x0 + dx) * scale, y0 = (seg.y0 + dy) * scale;
  const float x1 = (seg.x1 + dx) * scale, y1 = (seg.y1 + dy) * scale;
  const int steps = 2 * kCanvasSize;
  for (int s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / static_cast<float>(steps);
    const float cx = x0 + t * (x1 - x0);
    const float cy = y0 + t * (y1 - y0);
    const int lo_x = std::max(0, static_cast<int>(cx - thickness));
    const int hi_x = std::min(kCanvasSize - 1, static_cast<int>(cx + thickness));
    const int lo_y = std::max(0, static_cast<int>(cy - thickness));
    const int hi_y = std::min(kCanvasSize - 1, static_cast<int>(cy + thickness));
    for (int py = lo_y; py <= hi_y; ++py) {
      for (int px = lo_x; px <= hi_x; ++px) {
        const float d = std::hypot(static_cast<float>(px) - cx,
                                   static_cast<float>(py) - cy);
        if (d <= thickness) {
          const float v = 1.0f - 0.4f * (d / thickness);
          auto& cell = (*canvas)[py * kCanvasSize + px];
          cell = std::max(cell, v);
        }
      }
    }
  }
}

}  // namespace

std::array<float, kCanvasSize * kCanvasSize> RasterizeDigit(int digit,
                                                            Rng* rng) {
  SGCL_CHECK(digit >= 0 && digit < 10);
  SGCL_CHECK(rng != nullptr);
  std::array<float, kCanvasSize * kCanvasSize> canvas{};
  const float dx = static_cast<float>(rng->Uniform(-0.06, 0.06));
  const float dy = static_cast<float>(rng->Uniform(-0.06, 0.06));
  const float thickness = static_cast<float>(rng->Uniform(1.4, 2.2));
  for (int s = 0; s < 7; ++s) {
    if (kDigitSegments[digit] & (1 << (6 - s))) {
      DrawSegment(kSegments[s], dx, dy, thickness, &canvas);
    }
  }
  // Background speckle noise.
  for (auto& v : canvas) {
    if (rng->Bernoulli(0.02)) v = std::max(v, 0.15f);
  }
  return canvas;
}

Graph CanvasToSuperpixelGraph(
    const std::array<float, kCanvasSize * kCanvasSize>& canvas,
    float semantic_threshold) {
  constexpr int cell = kCanvasSize / kSuperpixelGrid;
  const int n = kSuperpixelGrid * kSuperpixelGrid;
  Graph g(n, kSuperpixelFeatDim);
  std::vector<uint8_t> mask(static_cast<size_t>(n), 0);
  for (int gy = 0; gy < kSuperpixelGrid; ++gy) {
    for (int gx = 0; gx < kSuperpixelGrid; ++gx) {
      const int node = gy * kSuperpixelGrid + gx;
      float total = 0.0f;
      for (int py = gy * cell; py < (gy + 1) * cell; ++py) {
        for (int px = gx * cell; px < (gx + 1) * cell; ++px) {
          total += canvas[py * kCanvasSize + px];
        }
      }
      const float intensity = total / static_cast<float>(cell * cell);
      // Intensity is the primary signal (as in MNIST-superpixel);
      // coordinates are auxiliary and down-weighted so they do not
      // drown the semantic channel.
      g.set_feature(node, 0, 2.0f * intensity);
      g.set_feature(node, 1,
                    0.3f * static_cast<float>(gx) / (kSuperpixelGrid - 1));
      g.set_feature(node, 2,
                    0.3f * static_cast<float>(gy) / (kSuperpixelGrid - 1));
      if (intensity > semantic_threshold) mask[node] = 1;
    }
  }
  // 8-neighborhood grid adjacency.
  for (int gy = 0; gy < kSuperpixelGrid; ++gy) {
    for (int gx = 0; gx < kSuperpixelGrid; ++gx) {
      const int node = gy * kSuperpixelGrid + gx;
      for (int oy = 0; oy <= 1; ++oy) {
        for (int ox = -1; ox <= 1; ++ox) {
          if (oy == 0 && ox <= 0) continue;  // visit each pair once
          const int nx = gx + ox, ny = gy + oy;
          if (nx < 0 || nx >= kSuperpixelGrid || ny >= kSuperpixelGrid) {
            continue;
          }
          g.AddUndirectedEdge(node, ny * kSuperpixelGrid + nx);
        }
      }
    }
  }
  g.set_semantic_mask(std::move(mask));
  return g;
}

GraphDataset MakeSuperpixelDataset(int per_digit, uint64_t seed) {
  SGCL_CHECK_GT(per_digit, 0);
  Rng rng(seed ^ 0xd161a1ULL);
  GraphDataset ds("MNIST-superpixel-like", /*num_classes=*/10);
  ds.Reserve(10 * per_digit);
  for (int digit = 0; digit < 10; ++digit) {
    for (int i = 0; i < per_digit; ++i) {
      Graph g = CanvasToSuperpixelGraph(RasterizeDigit(digit, &rng));
      g.set_label(digit);
      ds.Add(std::move(g));
    }
  }
  return ds;
}

}  // namespace sgcl
