#include "data/shard_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "graph/graph_record.h"

namespace sgcl {
namespace {

constexpr uint32_t kShardMagic = 0x53475348u;     // "SGSH"
constexpr uint32_t kManifestMagic = 0x5347534du;  // "SGSM"
constexpr uint32_t kFormatVersion = 1;
constexpr int64_t kMaxShards = int64_t{1} << 20;

// FNV-1a 64-bit over a byte string.
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Validates the whole-file trailing CRC and returns the body (all bytes
// before the 4-byte trailer).
Result<size_t> CheckTrailingCrc(const std::string& bytes,
                                const std::string& what) {
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument(
        StrFormat("%s is too short to hold a CRC", what.c_str()));
  }
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body_size, sizeof(stored));
  if (Crc32(bytes.data(), body_size) != stored) {
    return Status::InvalidArgument(StrFormat(
        "%s failed its CRC check (truncated or corrupt)", what.c_str()));
  }
  return body_size;
}

}  // namespace

std::string ShardedGraphStore::ManifestPath(const std::string& dir) {
  return dir + "/manifest.sgsm";
}

std::string ShardedGraphStore::ShardPath(const std::string& dir,
                                         int64_t shard) {
  return StrFormat("%s/shard-%06lld.sgshard", dir.c_str(),
                   static_cast<long long>(shard));
}

// ---------------------------------------------------------------------------
// Writer

Result<std::unique_ptr<ShardedGraphStoreWriter>>
ShardedGraphStoreWriter::Create(const std::string& dir,
                                const ShardWriterOptions& options) {
  if (options.graphs_per_shard < 1) {
    return Status::InvalidArgument("graphs_per_shard must be >= 1");
  }
  if (options.num_classes < 0 || options.num_tasks < 1) {
    return Status::InvalidArgument("invalid store task metadata");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create store directory %s: %s",
                                      dir.c_str(), ec.message().c_str()));
  }
  // NOLINTNEXTLINE(sgcl-R5): private ctor, make_unique cannot reach it
  auto* writer = new ShardedGraphStoreWriter(dir, options);
  return std::unique_ptr<ShardedGraphStoreWriter>(writer);
}

Status ShardedGraphStoreWriter::Append(const Graph& graph) {
  if (finalized_) {
    return Status::FailedPrecondition("store already finalized");
  }
  if (feat_dim_ < 0) {
    feat_dim_ = graph.feat_dim();
  } else if (graph.feat_dim() != feat_dim_) {
    return Status::InvalidArgument(
        StrFormat("graph has feat_dim %lld, store holds feat_dim %lld",
                  static_cast<long long>(graph.feat_dim()),
                  static_cast<long long>(feat_dim_)));
  }
  BufferWriter record;
  AppendGraphRecord(graph, &record);
  pending_records_.append(record.bytes());
  pending_offsets_.push_back(static_cast<int64_t>(pending_records_.size()));
  ++pending_count_;
  ++total_graphs_;
  if (pending_count_ >= options_.graphs_per_shard) {
    SGCL_RETURN_NOT_OK(FlushShard());
  }
  return Status::OK();
}

Status ShardedGraphStoreWriter::FlushShard() {
  if (pending_count_ == 0) return Status::OK();
  const int64_t shard_index = static_cast<int64_t>(shards_.size());
  BufferWriter writer;
  writer.WriteU32(kShardMagic);
  writer.WriteU32(kFormatVersion);
  writer.WriteI64(shard_index);
  writer.WriteI64(pending_count_);
  for (int64_t off : pending_offsets_) writer.WriteI64(off);
  writer.WriteBytes(pending_records_.data(), pending_records_.size());
  const uint32_t crc = Crc32(writer.bytes());
  writer.WriteU32(crc);

  if (auto fault = FaultInjector::Global().Check(kFaultShardWrite);
      fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash(kFaultShardWrite);
    return Status::Internal(StrFormat(
        "injected failure writing shard %lld",
        static_cast<long long>(shard_index)));
  }
  const std::string path = ShardedGraphStore::ShardPath(dir_, shard_index);
  SGCL_RETURN_NOT_OK(AtomicWriteFile(path, writer.bytes()));

  ShardMeta meta;
  meta.num_records = pending_count_;
  meta.file_size = static_cast<int64_t>(writer.bytes().size());
  meta.crc = crc;
  shards_.push_back(meta);
  pending_records_.clear();
  pending_offsets_.assign(1, 0);
  pending_count_ = 0;
  return Status::OK();
}

Status ShardedGraphStoreWriter::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("store already finalized");
  }
  SGCL_RETURN_NOT_OK(FlushShard());
  BufferWriter writer;
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kFormatVersion);
  writer.WriteString(options_.name);
  writer.WriteI64(options_.num_classes);
  writer.WriteI64(options_.num_tasks);
  writer.WriteI64(feat_dim_);
  writer.WriteI64(total_graphs_);
  writer.WriteI64(static_cast<int64_t>(shards_.size()));
  for (const ShardMeta& meta : shards_) {
    writer.WriteI64(meta.num_records);
    writer.WriteI64(meta.file_size);
    writer.WriteU32(meta.crc);
  }
  writer.WriteU32(Crc32(writer.bytes()));

  if (auto fault = FaultInjector::Global().Check(kFaultManifestWrite);
      fault.has_value()) {
    if (*fault == FaultKind::kCrash) {
      return SimulatedCrash(kFaultManifestWrite);
    }
    return Status::Internal("injected failure writing store manifest");
  }
  SGCL_RETURN_NOT_OK(
      AtomicWriteFile(ShardedGraphStore::ManifestPath(dir_), writer.bytes()));
  finalized_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

Result<std::unique_ptr<ShardedGraphStore>> ShardedGraphStore::Open(
    const std::string& dir, const ShardStoreOptions& options) {
  if (options.max_cached_shards < 1) {
    return Status::InvalidArgument("max_cached_shards must be >= 1");
  }
  const std::string manifest_path = ManifestPath(dir);
  SGCL_ASSIGN_OR_RETURN(const std::string bytes,
                        ReadFileToString(manifest_path));
  SGCL_ASSIGN_OR_RETURN(const size_t body_size,
                        CheckTrailingCrc(bytes, manifest_path));
  BufferReader reader(bytes);
  if (reader.ReadU32() != kManifestMagic || !reader.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is not a shard-store manifest", manifest_path.c_str()));
  }
  const uint32_t version = reader.ReadU32();
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported shard-store version %u in %s", version,
                  manifest_path.c_str()));
  }
  // NOLINTNEXTLINE(sgcl-R5): private ctor, make_unique cannot reach it
  std::unique_ptr<ShardedGraphStore> store(new ShardedGraphStore());
  store->dir_ = dir;
  store->options_ = options;
  store->name_ = reader.ReadString();
  const int64_t num_classes = reader.ReadI64();
  const int64_t num_tasks = reader.ReadI64();
  store->feat_dim_ = reader.ReadI64();
  store->total_graphs_ = reader.ReadI64();
  const int64_t num_shards = reader.ReadI64();
  if (!reader.ok() || num_classes < 0 || num_classes > (1 << 20) ||
      num_tasks < 1 || num_tasks > (1 << 20) || store->total_graphs_ < 0 ||
      store->total_graphs_ > kMaxRecordGraphs || num_shards < 0 ||
      num_shards > kMaxShards) {
    return Status::InvalidArgument(
        StrFormat("corrupt manifest header in %s", manifest_path.c_str()));
  }
  store->num_classes_ = static_cast<int>(num_classes);
  store->num_tasks_ = static_cast<int>(num_tasks);
  store->shards_.reserve(static_cast<size_t>(num_shards));
  int64_t first_index = 0;
  for (int64_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    info.num_records = reader.ReadI64();
    info.file_size = reader.ReadI64();
    info.crc = reader.ReadU32();
    info.first_index = first_index;
    if (!reader.ok() || info.num_records < 1 || info.file_size < 1) {
      return Status::InvalidArgument(StrFormat(
          "corrupt shard table entry %lld in %s",
          static_cast<long long>(s), manifest_path.c_str()));
    }
    first_index += info.num_records;
    store->shards_.push_back(info);
  }
  if (reader.position() != body_size) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", manifest_path.c_str()));
  }
  if (first_index != store->total_graphs_) {
    return Status::InvalidArgument(StrFormat(
        "manifest %s declares %lld graphs but shards hold %lld",
        manifest_path.c_str(), static_cast<long long>(store->total_graphs_),
        static_cast<long long>(first_index)));
  }
  // The manifest bytes (CRC included) are the store's identity.
  const uint64_t fp = Fnv1a(bytes);
  store->fingerprint_ = fp == 0 ? 1 : fp;
  return store;
}

Result<int64_t> ShardedGraphStore::FeatDim() const {
  if (total_graphs_ == 0 || feat_dim_ < 0) {
    return Status::FailedPrecondition(StrFormat(
        "store %s is empty: feature dimension is undefined", name_.c_str()));
  }
  return feat_dim_;
}

std::vector<IndexRange> ShardedGraphStore::FetchBlocks() const {
  std::vector<IndexRange> blocks;
  blocks.reserve(shards_.size());
  for (const ShardInfo& info : shards_) {
    blocks.push_back(
        IndexRange{info.first_index, info.first_index + info.num_records});
  }
  if (blocks.empty()) blocks.push_back(IndexRange{0, 0});
  return blocks;
}

int64_t ShardedGraphStore::ShardOf(int64_t index) const {
  // Largest shard whose first_index <= index.
  int64_t lo = 0, hi = static_cast<int64_t>(shards_.size()) - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (shards_[static_cast<size_t>(mid)].first_index <= index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int64_t ShardedGraphStore::shard_decodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decode_count_;
}

Result<std::shared_ptr<const ShardedGraphStore::DecodedShard>>
ShardedGraphStore::DecodeShard(int64_t shard) const {
  const ShardInfo& info = shards_[static_cast<size_t>(shard)];
  const std::string path = ShardPath(dir_, shard);
  SGCL_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  if (static_cast<int64_t>(bytes.size()) != info.file_size) {
    return Status::InvalidArgument(StrFormat(
        "%s holds %zu bytes, manifest expects %lld", path.c_str(),
        bytes.size(), static_cast<long long>(info.file_size)));
  }
  SGCL_ASSIGN_OR_RETURN(const size_t body_size,
                        CheckTrailingCrc(bytes, path));
  uint32_t file_crc = 0;
  std::memcpy(&file_crc, bytes.data() + body_size, sizeof(file_crc));
  if (file_crc != info.crc) {
    return Status::InvalidArgument(StrFormat(
        "%s does not match the manifest's digest (stale or swapped shard)",
        path.c_str()));
  }
  BufferReader reader(bytes);
  if (reader.ReadU32() != kShardMagic || !reader.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is not a shard file", path.c_str()));
  }
  if (reader.ReadU32() != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported shard version in %s", path.c_str()));
  }
  const int64_t declared_index = reader.ReadI64();
  const int64_t num_records = reader.ReadI64();
  if (!reader.ok() || declared_index != shard ||
      num_records != info.num_records) {
    return Status::InvalidArgument(StrFormat(
        "%s header disagrees with the manifest", path.c_str()));
  }
  std::vector<int64_t> offsets(static_cast<size_t>(num_records) + 1);
  for (int64_t& off : offsets) off = reader.ReadI64();
  const size_t records_begin = reader.position();
  if (!reader.ok() || offsets.front() != 0 ||
      records_begin + static_cast<size_t>(offsets.back()) != body_size) {
    return Status::InvalidArgument(
        StrFormat("corrupt offset table in %s", path.c_str()));
  }
  auto decoded = std::make_shared<DecodedShard>();
  decoded->graphs.reserve(static_cast<size_t>(num_records));
  for (int64_t r = 0; r < num_records; ++r) {
    if (offsets[static_cast<size_t>(r)] >
        offsets[static_cast<size_t>(r) + 1]) {
      return Status::InvalidArgument(
          StrFormat("non-monotone offset table in %s", path.c_str()));
    }
    if (reader.position() !=
        records_begin + static_cast<size_t>(offsets[static_cast<size_t>(r)])) {
      return Status::InvalidArgument(StrFormat(
          "record %lld in %s does not start at its declared offset",
          static_cast<long long>(r), path.c_str()));
    }
    SGCL_ASSIGN_OR_RETURN(Graph g, ParseGraphRecord(&reader));
    if (g.feat_dim() != feat_dim_) {
      return Status::InvalidArgument(StrFormat(
          "record %lld in %s has feat_dim %lld, store holds %lld",
          static_cast<long long>(r), path.c_str(),
          static_cast<long long>(g.feat_dim()),
          static_cast<long long>(feat_dim_)));
    }
    decoded->graphs.push_back(std::move(g));
  }
  if (reader.position() != body_size) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", path.c_str()));
  }
  return std::shared_ptr<const DecodedShard>(std::move(decoded));
}

Result<std::shared_ptr<const ShardedGraphStore::DecodedShard>>
ShardedGraphStore::GetShard(int64_t shard) const {
  // Decoded-shard LRU cache visibility: hit/miss/eviction counters plus
  // the read+CRC+decode latency of every miss. Process-wide names (one
  // series across stores), matching the "stream/" metric family.
  static Counter* const cache_hits =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_hits");
  static Counter* const cache_misses =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_misses");
  static Counter* const cache_evictions =
      MetricsRegistry::Global().GetCounter("stream/shard_cache_evictions");
  static Histogram* const fetch_us = MetricsRegistry::Global().GetHistogram(
      "stream/shard_fetch_us",
      {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000});
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first == shard) {
        cache_.splice(cache_.begin(), cache_, it);  // move to front (MRU)
        cache_hits->Increment();
        return cache_.front().second;
      }
    }
  }
  cache_misses->Increment();
  // Decode outside the lock so concurrent Fetches of different shards
  // overlap. Two threads may race on the same shard and both decode it —
  // harmless (both results are identical; the second insert wins).
  const int64_t decode_start_us = TraceCollector::Global().NowUs();
  std::shared_ptr<const DecodedShard> decoded;
  {
    SGCL_TRACE_SPAN("stream/shard_decode");
    SGCL_ASSIGN_OR_RETURN(decoded, DecodeShard(shard));
  }
  fetch_us->Observe(static_cast<double>(TraceCollector::Global().NowUs() -
                                        decode_start_us));
  std::lock_guard<std::mutex> lock(mu_);
  ++decode_count_;
  cache_.emplace_front(shard, decoded);
  while (static_cast<int>(cache_.size()) > options_.max_cached_shards) {
    cache_.pop_back();
    cache_evictions->Increment();
  }
  return decoded;
}

Status ShardedGraphStore::Fetch(std::span<const int64_t> indices,
                                FetchedGraphs* out) const {
  for (int64_t i : indices) {
    if (i < 0 || i >= total_graphs_) {
      return Status::OutOfRange(
          StrFormat("index %lld outside store %s of size %lld",
                    static_cast<long long>(i), name_.c_str(),
                    static_cast<long long>(total_graphs_)));
    }
  }
  // Resolve shard-by-shard so each needed shard is pinned exactly once
  // per batch, however the indices interleave.
  std::shared_ptr<const DecodedShard> current;
  int64_t current_shard = -1;
  std::vector<std::pair<int64_t, std::shared_ptr<const DecodedShard>>> pinned;
  std::vector<const Graph*> resolved;
  resolved.reserve(indices.size());
  for (int64_t i : indices) {
    const int64_t shard = ShardOf(i);
    if (shard != current_shard) {
      current.reset();
      for (const auto& [id, ptr] : pinned) {
        if (id == shard) {
          current = ptr;
          break;
        }
      }
      if (!current) {
        SGCL_ASSIGN_OR_RETURN(current, GetShard(shard));
        pinned.emplace_back(shard, current);
      }
      current_shard = shard;
    }
    const int64_t local =
        i - shards_[static_cast<size_t>(shard)].first_index;
    resolved.push_back(&current->graphs[static_cast<size_t>(local)]);
  }
  for (auto& [id, ptr] : pinned) out->AddPin(std::move(ptr));
  for (const Graph* g : resolved) out->AppendBorrowed(g);
  return Status::OK();
}

}  // namespace sgcl
