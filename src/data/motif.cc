#include "data/motif.h"

namespace sgcl {
namespace {

void FillTypes(Motif* m, int node_type) {
  m->node_types.assign(m->num_nodes, node_type);
}

}  // namespace

Motif MakeCycleMotif(int k, int node_type) {
  SGCL_CHECK_GE(k, 3);
  Motif m;
  m.name = "cycle" + std::to_string(k);
  m.num_nodes = k;
  for (int i = 0; i < k; ++i) m.edges.emplace_back(i, (i + 1) % k);
  FillTypes(&m, node_type);
  return m;
}

Motif MakePathMotif(int k, int node_type) {
  SGCL_CHECK_GE(k, 2);
  Motif m;
  m.name = "path" + std::to_string(k);
  m.num_nodes = k;
  for (int i = 0; i + 1 < k; ++i) m.edges.emplace_back(i, i + 1);
  FillTypes(&m, node_type);
  return m;
}

Motif MakeCliqueMotif(int k, int node_type) {
  SGCL_CHECK_GE(k, 3);
  Motif m;
  m.name = "clique" + std::to_string(k);
  m.num_nodes = k;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) m.edges.emplace_back(i, j);
  }
  FillTypes(&m, node_type);
  return m;
}

Motif MakeStarMotif(int k, int node_type) {
  SGCL_CHECK_GE(k, 2);
  Motif m;
  m.name = "star" + std::to_string(k);
  m.num_nodes = k + 1;
  for (int i = 1; i <= k; ++i) m.edges.emplace_back(0, i);
  m.node_types.assign(m.num_nodes, node_type + 1);
  m.node_types[0] = node_type;
  return m;
}

Motif MakeWheelMotif(int k, int node_type) {
  SGCL_CHECK_GE(k, 3);
  Motif m = MakeCycleMotif(k, node_type);
  m.name = "wheel" + std::to_string(k);
  const int hub = m.num_nodes;
  m.num_nodes += 1;
  for (int i = 0; i < k; ++i) m.edges.emplace_back(hub, i);
  m.node_types.push_back(node_type);
  return m;
}

Motif MakeBipartiteMotif(int a, int b, int node_type) {
  SGCL_CHECK_GE(a, 1);
  SGCL_CHECK_GE(b, 1);
  Motif m;
  m.name = "bipartite" + std::to_string(a) + "x" + std::to_string(b);
  m.num_nodes = a + b;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) m.edges.emplace_back(i, a + j);
  }
  m.node_types.assign(m.num_nodes, node_type);
  for (int j = 0; j < b; ++j) m.node_types[a + j] = node_type + 1;
  return m;
}

MotifCatalog::MotifCatalog(int max_node_type) {
  SGCL_CHECK_GE(max_node_type, 3);
  // Pairs with identical type histograms but different structure are
  // adjacent: (cycle5, path5), (clique4, wheel3 = K4), (star4, bipartite),
  // so class boundaries hinge on topology, not node-type counts.
  auto t = [max_node_type](int x) { return x % (max_node_type - 1); };
  motifs_.push_back(MakeCycleMotif(5, t(0)));
  motifs_.push_back(MakePathMotif(5, t(0)));
  motifs_.push_back(MakeCliqueMotif(4, t(1)));
  motifs_.push_back(MakeCycleMotif(4, t(1)));
  motifs_.push_back(MakeStarMotif(4, t(2)));
  motifs_.push_back(MakeBipartiteMotif(2, 3, t(2)));
  motifs_.push_back(MakeWheelMotif(5, t(3)));
  motifs_.push_back(MakeCycleMotif(6, t(3)));
  motifs_.push_back(MakeCliqueMotif(5, t(4)));
  motifs_.push_back(MakeStarMotif(5, t(4)));
  motifs_.push_back(MakePathMotif(6, t(5)));
  motifs_.push_back(MakeBipartiteMotif(3, 3, t(5)));
}

std::vector<int64_t> PlantMotif(const Motif& motif, int num_bridges, Rng* rng,
                                Graph* g, std::vector<uint8_t>* semantic_mask) {
  SGCL_CHECK(g != nullptr);
  SGCL_CHECK(rng != nullptr);
  SGCL_CHECK(semantic_mask != nullptr);
  SGCL_CHECK_GT(g->feat_dim(), 0);
  const int64_t background_nodes = g->num_nodes();
  const int64_t first = g->AddNodes(motif.num_nodes);
  std::vector<int64_t> planted;
  planted.reserve(motif.num_nodes);
  for (int i = 0; i < motif.num_nodes; ++i) {
    const int64_t v = first + i;
    planted.push_back(v);
    const int type = motif.node_types[i];
    SGCL_CHECK_LT(type, g->feat_dim());
    g->set_feature(v, type, 1.0f);
  }
  for (const auto& [a, b] : motif.edges) {
    g->AddUndirectedEdge(first + a, first + b);
  }
  if (background_nodes > 0) {
    for (int i = 0; i < num_bridges; ++i) {
      const int64_t bg = rng->UniformInt(background_nodes);
      const int64_t mn = planted[rng->UniformInt(motif.num_nodes)];
      g->AddUndirectedEdge(bg, mn);
    }
  }
  semantic_mask->resize(static_cast<size_t>(g->num_nodes()), 0);
  for (int64_t v : planted) (*semantic_mask)[v] = 1;
  return planted;
}

}  // namespace sgcl
