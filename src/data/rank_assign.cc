#include "data/rank_assign.h"

#include "common/check.h"

namespace sgcl {

uint64_t RoundsPerEpoch(uint64_t batches_per_epoch, uint32_t accum) {
  SGCL_CHECK(accum > 0);
  return (batches_per_epoch + accum - 1) / accum;
}

uint32_t LeavesInRound(uint64_t batches_per_epoch, uint32_t accum,
                       uint64_t round_in_epoch) {
  SGCL_CHECK(accum > 0);
  const uint64_t begin = round_in_epoch * accum;
  if (begin >= batches_per_epoch) return 0;
  const uint64_t remaining = batches_per_epoch - begin;
  return remaining < accum ? static_cast<uint32_t>(remaining) : accum;
}

int RankOwningSlot(uint32_t slot, int world_size) {
  SGCL_CHECK(world_size > 0);
  return static_cast<int>(slot % static_cast<uint32_t>(world_size));
}

std::vector<int64_t> OwnedBatchesInEpoch(uint64_t batches_per_epoch,
                                         uint32_t accum, int world_size,
                                         int rank) {
  SGCL_CHECK(world_size > 0);
  SGCL_CHECK(rank >= 0 && rank < world_size);
  std::vector<int64_t> owned;
  for (uint64_t b = 0; b < batches_per_epoch; ++b) {
    const uint32_t slot = static_cast<uint32_t>(b % accum);
    if (RankOwningSlot(slot, world_size) == rank) {
      owned.push_back(static_cast<int64_t>(b));
    }
  }
  return owned;
}

}  // namespace sgcl
