// Deterministic work assignment for multi-process data-parallel
// pretraining (comms/allreduce.h, core PretrainDistributed).
//
// The distributed schedule is defined entirely by *global* quantities —
// batches per epoch K, the gradient-accumulation width W ("accum"), and
// the epoch count — none of which depend on how many workers execute
// it. Each epoch's K batches are grouped into rounds of W consecutive
// batches (the last round of an epoch may be shorter); batch `b` of an
// epoch is leaf `b % W` ("slot") of round `b / W`. A worker owns slot
// `s` of every round iff `s % world_size == rank`, so for any world
// size the same leaves exist with the same global indices and the
// coordinator can sum them in fixed slot order — the reduction that
// makes N-worker training bitwise-identical to --workers=1.
#ifndef SGCL_DATA_RANK_ASSIGN_H_
#define SGCL_DATA_RANK_ASSIGN_H_

#include <cstdint>
#include <vector>

namespace sgcl {

// Rounds in one epoch of `batches_per_epoch` batches with `accum`-wide
// rounds: ceil(K / W). 0 when the epoch has no batches.
uint64_t RoundsPerEpoch(uint64_t batches_per_epoch, uint32_t accum);

// Leaves (batches) in round `round_in_epoch`: `accum` for full rounds,
// the K % W remainder for a short tail round, 0 past the epoch's end.
uint32_t LeavesInRound(uint64_t batches_per_epoch, uint32_t accum,
                       uint64_t round_in_epoch);

// The rank that computes slot `slot` of every round: round-robin over
// slots so short tail rounds stay balanced.
int RankOwningSlot(uint32_t slot, int world_size);

// The global batch indices in [0, batches_per_epoch) whose leaves
// `rank` owns, ascending. Over all ranks these partition the epoch.
std::vector<int64_t> OwnedBatchesInEpoch(uint64_t batches_per_epoch,
                                         uint32_t accum, int world_size,
                                         int rank);

}  // namespace sgcl

#endif  // SGCL_DATA_RANK_ASSIGN_H_
