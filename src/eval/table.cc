#include "eval/table.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace sgcl {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(const std::string& method,
                         std::vector<std::optional<MeanStd>> cells) {
  SGCL_CHECK_EQ(cells.size(), columns_.size());
  methods_.push_back(method);
  rows_.push_back(std::move(cells));
}

std::string ResultTable::ToString(bool with_ranks) const {
  const size_t m = rows_.size();
  const size_t d = columns_.size();
  // Ranks and best-in-column flags.
  std::vector<double> ranks;
  std::vector<std::vector<bool>> best(m, std::vector<bool>(d, false));
  if (with_ranks && m > 0) {
    std::vector<std::vector<double>> scores(m, std::vector<double>(d));
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < d; ++j) {
        scores[i][j] = rows_[i][j] ? rows_[i][j]->mean : std::nan("");
      }
    }
    ranks = AverageRanks(scores);
    for (size_t j = 0; j < d; ++j) {
      double best_score = -1e300;
      for (size_t i = 0; i < m; ++i) {
        if (rows_[i][j] && rows_[i][j]->mean > best_score) {
          best_score = rows_[i][j]->mean;
        }
      }
      for (size_t i = 0; i < m; ++i) {
        if (rows_[i][j] && rows_[i][j]->mean == best_score) {
          best[i][j] = true;
        }
      }
    }
  }
  // Cell strings.
  std::vector<std::vector<std::string>> cells(m + 1);
  cells[0].push_back("Method");
  for (const std::string& c : columns_) cells[0].push_back(c);
  if (with_ranks) cells[0].push_back("A.R.");
  for (size_t i = 0; i < m; ++i) {
    auto& row = cells[i + 1];
    row.push_back(methods_[i]);
    for (size_t j = 0; j < d; ++j) {
      if (!rows_[i][j]) {
        row.push_back("-");
      } else {
        row.push_back(StrFormat("%.2f±%.2f%s", rows_[i][j]->mean,
                                rows_[i][j]->std, best[i][j] ? "*" : ""));
      }
    }
    if (with_ranks) row.push_back(StrFormat("%.1f", ranks[i]));
  }
  // Column widths.
  const size_t ncols = cells[0].size();
  std::vector<size_t> width(ncols, 0);
  for (const auto& row : cells) {
    for (size_t j = 0; j < ncols; ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t j = 0; j < ncols; ++j) {
      out += cells[r][j];
      out.append(width[j] - cells[r][j].size() + 2, ' ');
    }
    out += "\n";
    if (r == 0) {
      for (size_t j = 0; j < ncols; ++j) {
        out.append(width[j], '-');
        out.append(2, ' ');
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace sgcl
