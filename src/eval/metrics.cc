#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sgcl {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  SGCL_CHECK_EQ(predictions.size(), labels.size());
  SGCL_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    correct += (predictions[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  SGCL_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  SGCL_CHECK_GT(n, 0u);
  int64_t positives = 0;
  for (int y : labels) {
    SGCL_CHECK(y == 0 || y == 1);
    positives += y;
  }
  const int64_t negatives = static_cast<int64_t>(n) - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  // Midranks of the scores.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) rank_sum += ranks[k];
  }
  const double u = rank_sum - static_cast<double>(positives) *
                                  (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  SGCL_CHECK(!values.empty());
  MeanStd out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(sq / static_cast<double>(values.size()));
  return out;
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores) {
  SGCL_CHECK(!scores.empty());
  const size_t methods = scores.size();
  const size_t datasets = scores[0].size();
  for (const auto& row : scores) SGCL_CHECK_EQ(row.size(), datasets);
  std::vector<double> rank_sum(methods, 0.0);
  std::vector<int> rank_count(methods, 0);
  for (size_t d = 0; d < datasets; ++d) {
    // Methods with a valid score on this dataset, sorted descending.
    std::vector<size_t> valid;
    for (size_t m = 0; m < methods; ++m) {
      if (!std::isnan(scores[m][d])) valid.push_back(m);
    }
    std::sort(valid.begin(), valid.end(), [&](size_t a, size_t b) {
      return scores[a][d] > scores[b][d];
    });
    size_t i = 0;
    while (i < valid.size()) {
      size_t j = i;
      while (j + 1 < valid.size() &&
             scores[valid[j + 1]][d] == scores[valid[i]][d]) {
        ++j;
      }
      const double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
      for (size_t k = i; k <= j; ++k) {
        rank_sum[valid[k]] += midrank;
        rank_count[valid[k]] += 1;
      }
      i = j + 1;
    }
  }
  std::vector<double> out(methods, 0.0);
  for (size_t m = 0; m < methods; ++m) {
    out[m] = rank_count[m] > 0 ? rank_sum[m] / rank_count[m]
                               : std::nan("");
  }
  return out;
}

}  // namespace sgcl
