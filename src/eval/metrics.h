// Evaluation metrics: accuracy, ROC-AUC (rank-based, tie-aware),
// mean/std aggregation, and average rank across methods.
#ifndef SGCL_EVAL_METRICS_H_
#define SGCL_EVAL_METRICS_H_

#include <vector>

namespace sgcl {

// Fraction of positions where predictions[i] == labels[i].
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

// Area under the ROC curve via the rank statistic (Mann-Whitney U), with
// midranks for tied scores. labels in {0,1}. Returns 0.5 when one class
// is absent (undefined AUC, the conventional fallback).
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

struct MeanStd {
  double mean = 0.0;
  double std = 0.0;  // population std
};

MeanStd ComputeMeanStd(const std::vector<double>& values);

// Average rank per method given a score matrix scores[method][dataset]
// (higher is better). Missing entries marked NaN are skipped for that
// dataset. Ties share the average rank, as in the paper's A.R. column.
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores);

}  // namespace sgcl

#endif  // SGCL_EVAL_METRICS_H_
