// ASCII table builder for bench output (mean±std cells, A.R. column,
// best-in-column marking) mirroring the paper's table layout.
#ifndef SGCL_EVAL_TABLE_H_
#define SGCL_EVAL_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace sgcl {

class ResultTable {
 public:
  // `columns` are dataset names; a final "A.R." column is appended
  // automatically when PrintWithRanks is used.
  explicit ResultTable(std::vector<std::string> columns);

  // Adds a method row; cells may be missing (the paper's "-").
  void AddRow(const std::string& method,
              std::vector<std::optional<MeanStd>> cells);

  // Renders the table. When `with_ranks`, appends an average-rank column
  // (higher scores are better) and marks the best cell per column with
  // an asterisk.
  std::string ToString(bool with_ranks = true) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::string> methods_;
  std::vector<std::vector<std::optional<MeanStd>>> rows_;
};

}  // namespace sgcl

#endif  // SGCL_EVAL_TABLE_H_
