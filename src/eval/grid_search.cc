#include "eval/grid_search.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

// Evaluates `config` if unseen, tracking the best seen so far.
void Consider(const SgclConfig& config, const std::string& description,
              const std::function<double(const SgclConfig&)>& evaluate,
              GridSearchResult* result) {
  const double score = evaluate(config);
  result->trials.emplace_back(description, score);
  SGCL_LOG(DEBUG) << "grid " << description << " -> " << score;
  if (score > result->best_score || result->trials.size() == 1) {
    result->best_score = score;
    result->best_config = config;
  }
}

}  // namespace

GridSearchResult GridSearchSgcl(
    const SgclConfig& base, const GridSearchSpace& space,
    const std::function<double(const SgclConfig&)>& evaluate) {
  SGCL_CHECK(evaluate != nullptr);
  GridSearchResult result;
  result.best_config = base;
  Consider(base, "base", evaluate, &result);

  // Coordinate descent: sweep each axis with the others at current best.
  for (float v : space.lambda_c) {
    SgclConfig cfg = result.best_config;
    if (v == cfg.lambda_c) continue;
    cfg.lambda_c = v;
    Consider(cfg, StrFormat("lambda_c=%g", v), evaluate, &result);
  }
  for (float v : space.lambda_w) {
    SgclConfig cfg = result.best_config;
    if (v == cfg.lambda_w) continue;
    cfg.lambda_w = v;
    Consider(cfg, StrFormat("lambda_W=%g", v), evaluate, &result);
  }
  for (double v : space.rho) {
    SgclConfig cfg = result.best_config;
    if (v == cfg.rho) continue;
    cfg.rho = v;
    Consider(cfg, StrFormat("rho=%g", v), evaluate, &result);
  }
  for (float v : space.tau) {
    SgclConfig cfg = result.best_config;
    if (v == cfg.tau) continue;
    cfg.tau = v;
    Consider(cfg, StrFormat("tau=%g", v), evaluate, &result);
  }
  return result;
}

std::function<double(const SgclConfig&)> MakeUnsupervisedGridEvaluator(
    const GraphDataset* dataset, int num_seeds, int cv_folds,
    uint64_t base_seed) {
  SGCL_CHECK(dataset != nullptr);
  return [dataset, num_seeds, cv_folds, base_seed](const SgclConfig& config) {
    UnsupervisedProtocolOptions proto;
    proto.num_seeds = num_seeds;
    proto.cv_folds = cv_folds;
    proto.base_seed = base_seed;
    MeanStd acc = RunUnsupervisedProtocol(
        [&](uint64_t seed) {
          return std::make_unique<SgclPretrainer>(config, seed);
        },
        *dataset, proto);
    return acc.mean;
  };
}

}  // namespace sgcl
