// SVM cross-validation over fixed embeddings or precomputed kernels —
// the paper's unsupervised evaluation protocol (§VI-B).
#ifndef SGCL_EVAL_CROSS_VALIDATION_H_
#define SGCL_EVAL_CROSS_VALIDATION_H_

#include <vector>

#include "baselines/svm.h"
#include "common/rng.h"
#include "eval/metrics.h"

namespace sgcl {

// 10-fold (configurable) stratified CV of an RBF-SVM on dense embeddings
// [n, dim]; returns mean/std of fold accuracies.
MeanStd SvmCrossValidate(const std::vector<float>& embeddings, int64_t n,
                         int64_t dim, const std::vector<int>& labels,
                         int num_classes, int folds, Rng* rng,
                         const SvmConfig& svm_config = SvmConfig());

// Same protocol over a precomputed n x n Gram matrix (graph kernels).
MeanStd KernelSvmCrossValidate(const std::vector<double>& gram, int64_t n,
                               const std::vector<int>& labels,
                               int num_classes, int folds, Rng* rng,
                               const SvmConfig& svm_config = SvmConfig());

}  // namespace sgcl

#endif  // SGCL_EVAL_CROSS_VALIDATION_H_
