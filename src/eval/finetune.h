// Supervised fine-tuning of a pretrained encoder: single-task
// classification heads (semi-supervised protocol, Table VI) and
// multi-task binary heads with ROC-AUC (transfer protocol, Table IV).
#ifndef SGCL_EVAL_FINETUNE_H_
#define SGCL_EVAL_FINETUNE_H_

#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "nn/encoder.h"

namespace sgcl {

struct FinetuneConfig {
  float learning_rate = 1e-3f;
  int epochs = 30;
  int batch_size = 32;
  float grad_clip = 5.0f;
};

// Fine-tunes `encoder` (in place) plus a fresh linear head on
// dataset[train] single-task labels; returns accuracy on dataset[test].
double FinetuneAndEvalAccuracy(GnnEncoder* encoder,
                               const GraphDataset& dataset,
                               const std::vector<int64_t>& train,
                               const std::vector<int64_t>& test,
                               const FinetuneConfig& config, Rng* rng);

// Fine-tunes `encoder` plus a multi-task binary head on dataset[train];
// returns the mean ROC-AUC over tasks with both classes present in
// dataset[test] (missing labels, -1, are excluded).
double FinetuneAndEvalRocAuc(GnnEncoder* encoder, const GraphDataset& dataset,
                             const std::vector<int64_t>& train,
                             const std::vector<int64_t>& test,
                             const FinetuneConfig& config, Rng* rng);

}  // namespace sgcl

#endif  // SGCL_EVAL_FINETUNE_H_
