#include "eval/finetune.h"

#include "eval/metrics.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sgcl {
namespace {

std::vector<const Graph*> Gather(const GraphDataset& dataset,
                                 const std::vector<int64_t>& idx,
                                 size_t start, size_t end) {
  std::vector<const Graph*> out;
  out.reserve(end - start);
  for (size_t i = start; i < end; ++i) out.push_back(&dataset.graph(idx[i]));
  return out;
}

}  // namespace

double FinetuneAndEvalAccuracy(GnnEncoder* encoder,
                               const GraphDataset& dataset,
                               const std::vector<int64_t>& train,
                               const std::vector<int64_t>& test,
                               const FinetuneConfig& config, Rng* rng) {
  SGCL_CHECK(encoder != nullptr);
  SGCL_CHECK(!train.empty());
  SGCL_CHECK(!test.empty());
  const int num_classes = dataset.num_classes();
  Linear head(encoder->config().hidden_dim, num_classes, rng);
  std::vector<Tensor> params = ConcatParameters({encoder, &head});
  Adam opt(std::move(params), config.learning_rate);
  std::vector<int64_t> order = train;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end = std::min(order.size(),
                                  start + config.batch_size);
      auto graphs = Gather(dataset, order, start, end);
      std::vector<int> labels;
      labels.reserve(graphs.size());
      for (const Graph* g : graphs) labels.push_back(g->label());
      GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
      opt.ZeroGrad();
      Tensor logits = head.Forward(encoder->EncodeGraphs(batch));
      Tensor loss = CrossEntropyWithLogits(logits, labels);
      loss.Backward();
      opt.ClipGradNorm(config.grad_clip);
      opt.Step();
    }
  }
  // Evaluation.
  std::vector<int> preds, truths;
  for (size_t start = 0; start < test.size(); start += config.batch_size) {
    const size_t end = std::min(test.size(), start + config.batch_size);
    auto graphs = Gather(dataset, test, start, end);
    GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
    Tensor logits = head.Forward(encoder->EncodeGraphs(batch)).Detach();
    for (int64_t i = 0; i < logits.rows(); ++i) {
      int best = 0;
      for (int c = 1; c < num_classes; ++c) {
        if (logits.At(i, c) > logits.At(i, best)) best = c;
      }
      preds.push_back(best);
      truths.push_back(graphs[i]->label());
    }
  }
  return Accuracy(preds, truths);
}

double FinetuneAndEvalRocAuc(GnnEncoder* encoder, const GraphDataset& dataset,
                             const std::vector<int64_t>& train,
                             const std::vector<int64_t>& test,
                             const FinetuneConfig& config, Rng* rng) {
  SGCL_CHECK(encoder != nullptr);
  SGCL_CHECK(!train.empty());
  SGCL_CHECK(!test.empty());
  const int num_tasks = dataset.num_tasks();
  SGCL_CHECK_GE(num_tasks, 1);
  Linear head(encoder->config().hidden_dim, num_tasks, rng);
  std::vector<Tensor> params = ConcatParameters({encoder, &head});
  Adam opt(std::move(params), config.learning_rate);
  std::vector<int64_t> order = train;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end = std::min(order.size(),
                                  start + config.batch_size);
      auto graphs = Gather(dataset, order, start, end);
      const int64_t b = static_cast<int64_t>(graphs.size());
      std::vector<float> targets(static_cast<size_t>(b * num_tasks), 0.0f);
      std::vector<float> mask(static_cast<size_t>(b * num_tasks), 0.0f);
      double valid = 0.0;
      for (int64_t i = 0; i < b; ++i) {
        const auto& labels = graphs[i]->task_labels();
        for (int t = 0; t < num_tasks; ++t) {
          if (labels[t] >= 0.0f) {
            targets[i * num_tasks + t] = labels[t];
            mask[i * num_tasks + t] = 1.0f;
            valid += 1.0;
          }
        }
      }
      if (valid == 0.0) continue;  // all labels missing in this batch
      GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
      opt.ZeroGrad();
      Tensor logits = head.Forward(encoder->EncodeGraphs(batch));
      Tensor loss = BceWithLogits(
          logits, Tensor::FromVector({b, num_tasks}, std::move(targets)),
          Tensor::FromVector({b, num_tasks}, std::move(mask)));
      loss.Backward();
      opt.ClipGradNorm(config.grad_clip);
      opt.Step();
    }
  }
  // Per-task ROC-AUC over the test split.
  std::vector<std::vector<double>> scores(num_tasks);
  std::vector<std::vector<int>> truths(num_tasks);
  for (size_t start = 0; start < test.size(); start += config.batch_size) {
    const size_t end = std::min(test.size(), start + config.batch_size);
    auto graphs = Gather(dataset, test, start, end);
    GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
    Tensor logits = head.Forward(encoder->EncodeGraphs(batch)).Detach();
    for (int64_t i = 0; i < logits.rows(); ++i) {
      const auto& labels = graphs[i]->task_labels();
      for (int t = 0; t < num_tasks; ++t) {
        if (labels[t] >= 0.0f) {
          scores[t].push_back(logits.At(i, t));
          truths[t].push_back(labels[t] == 1.0f ? 1 : 0);
        }
      }
    }
  }
  std::vector<double> aucs;
  for (int t = 0; t < num_tasks; ++t) {
    if (truths[t].empty()) continue;
    int positives = 0;
    for (int y : truths[t]) positives += y;
    if (positives == 0 ||
        positives == static_cast<int>(truths[t].size())) {
      continue;  // AUC undefined for single-class tasks
    }
    aucs.push_back(RocAuc(scores[t], truths[t]));
  }
  if (aucs.empty()) return 0.5;
  return ComputeMeanStd(aucs).mean;
}

}  // namespace sgcl
