// Hyperparameter grid search for SGCL over the paper's §VI-A grids
// (lambda_c, lambda_W, rho, tau), scored by the unsupervised protocol on
// a validation dataset. The paper tunes "by manually searching"; this
// utility automates the same sweep.
#ifndef SGCL_EVAL_GRID_SEARCH_H_
#define SGCL_EVAL_GRID_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "core/sgcl_config.h"
#include "eval/evaluator.h"

namespace sgcl {

struct GridSearchSpace {
  // Empty vector = keep the base config's value for that parameter.
  std::vector<float> lambda_c = {0.0001f, 0.001f, 0.005f, 0.01f, 0.05f, 0.1f};
  std::vector<float> lambda_w = {0.001f, 0.01f, 0.05f, 0.1f, 0.2f, 0.5f};
  std::vector<double> rho = {0.5, 0.6, 0.7, 0.8, 0.9};
  std::vector<float> tau = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
};

struct GridSearchResult {
  SgclConfig best_config;
  double best_score = 0.0;
  // One entry per evaluated configuration: (description, score).
  std::vector<std::pair<std::string, double>> trials;
};

// Coordinate-descent sweep: each parameter's grid is scanned in the
// declared order while the others stay at their current best, exactly
// one pass (the paper's per-parameter sensitivity protocol rather than
// the full Cartesian product, which would be |grid|^4 pretrainings).
// `evaluate` scores a config (higher is better); use
// MakeUnsupervisedGridEvaluator for the paper's protocol.
GridSearchResult GridSearchSgcl(
    const SgclConfig& base, const GridSearchSpace& space,
    const std::function<double(const SgclConfig&)>& evaluate);

// An evaluate callback running the unsupervised protocol (pretrain on
// `dataset`, SVM CV accuracy) with the given seed count.
std::function<double(const SgclConfig&)> MakeUnsupervisedGridEvaluator(
    const GraphDataset* dataset, int num_seeds, int cv_folds,
    uint64_t base_seed);

}  // namespace sgcl

#endif  // SGCL_EVAL_GRID_SEARCH_H_
