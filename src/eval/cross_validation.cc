#include "eval/cross_validation.h"

#include "graph/splits.h"

namespace sgcl {

MeanStd SvmCrossValidate(const std::vector<float>& embeddings, int64_t n,
                         int64_t dim, const std::vector<int>& labels,
                         int num_classes, int folds, Rng* rng,
                         const SvmConfig& svm_config) {
  SGCL_CHECK_EQ(static_cast<int64_t>(embeddings.size()), n * dim);
  SGCL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  auto fold_indices = StratifiedKFoldIndices(labels, folds, rng);
  std::vector<double> fold_accuracies;
  fold_accuracies.reserve(folds);
  for (int f = 0; f < folds; ++f) {
    std::vector<float> train_x, test_x;
    std::vector<int> train_y, test_y;
    std::vector<uint8_t> is_test(static_cast<size_t>(n), 0);
    for (int64_t i : fold_indices[f]) is_test[i] = 1;
    for (int64_t i = 0; i < n; ++i) {
      auto begin = embeddings.begin() + i * dim;
      if (is_test[i]) {
        test_x.insert(test_x.end(), begin, begin + dim);
        test_y.push_back(labels[i]);
      } else {
        train_x.insert(train_x.end(), begin, begin + dim);
        train_y.push_back(labels[i]);
      }
    }
    SvmClassifier svm(svm_config);
    svm.Train(train_x, static_cast<int64_t>(train_y.size()), dim, train_y,
              num_classes);
    fold_accuracies.push_back(
        svm.Evaluate(test_x, static_cast<int64_t>(test_y.size()), test_y));
  }
  return ComputeMeanStd(fold_accuracies);
}

MeanStd KernelSvmCrossValidate(const std::vector<double>& gram, int64_t n,
                               const std::vector<int>& labels,
                               int num_classes, int folds, Rng* rng,
                               const SvmConfig& svm_config) {
  SGCL_CHECK_EQ(static_cast<int64_t>(gram.size()), n * n);
  auto fold_indices = StratifiedKFoldIndices(labels, folds, rng);
  std::vector<double> fold_accuracies;
  for (int f = 0; f < folds; ++f) {
    std::vector<uint8_t> is_test(static_cast<size_t>(n), 0);
    for (int64_t i : fold_indices[f]) is_test[i] = 1;
    std::vector<int64_t> train_idx, test_idx;
    for (int64_t i = 0; i < n; ++i) {
      (is_test[i] ? test_idx : train_idx).push_back(i);
    }
    const int64_t tn = static_cast<int64_t>(train_idx.size());
    const int64_t mn = static_cast<int64_t>(test_idx.size());
    std::vector<double> train_gram(static_cast<size_t>(tn * tn));
    std::vector<int> train_y(static_cast<size_t>(tn));
    for (int64_t a = 0; a < tn; ++a) {
      train_y[a] = labels[train_idx[a]];
      for (int64_t b = 0; b < tn; ++b) {
        train_gram[a * tn + b] = gram[train_idx[a] * n + train_idx[b]];
      }
    }
    std::vector<double> test_rows(static_cast<size_t>(mn * tn));
    std::vector<int> test_y(static_cast<size_t>(mn));
    for (int64_t a = 0; a < mn; ++a) {
      test_y[a] = labels[test_idx[a]];
      for (int64_t b = 0; b < tn; ++b) {
        test_rows[a * tn + b] = gram[test_idx[a] * n + train_idx[b]];
      }
    }
    SvmClassifier svm(svm_config);
    svm.TrainOnKernel(train_gram, tn, train_y, num_classes);
    std::vector<int> preds = svm.PredictFromKernelRows(test_rows, mn);
    fold_accuracies.push_back(Accuracy(preds, test_y));
  }
  return ComputeMeanStd(fold_accuracies);
}

}  // namespace sgcl
