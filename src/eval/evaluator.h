// End-to-end evaluation protocols matching the paper's §VI-A/§VI-B.
#ifndef SGCL_EVAL_EVALUATOR_H_
#define SGCL_EVAL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "baselines/pretrainer.h"
#include "eval/cross_validation.h"
#include "eval/finetune.h"
#include "graph/graph_source.h"

namespace sgcl {

struct UnsupervisedProtocolOptions {
  double pretrain_fraction = 0.9;  // unlabeled pretraining share
  int cv_folds = 10;
  int num_seeds = 5;  // paper repeats 5 seeds and averages
  uint64_t base_seed = 0;
};

// Unsupervised protocol (Table III): per seed, pretrain on 90% of the
// graphs, embed the full source, run a 10-fold RBF-SVM CV on the
// embeddings; aggregate mean/std over seeds. `make_pretrainer` builds a
// fresh method instance for a given seed. The source may be in-memory or
// a sharded on-disk store; batches stream through GraphSource::Fetch.
MeanStd RunUnsupervisedProtocol(
    const std::function<std::unique_ptr<Pretrainer>(uint64_t seed)>&
        make_pretrainer,
    const GraphSource& source, const UnsupervisedProtocolOptions& options);

// In-memory convenience overload (borrowing InMemorySource for the call).
MeanStd RunUnsupervisedProtocol(
    const std::function<std::unique_ptr<Pretrainer>(uint64_t seed)>&
        make_pretrainer,
    const GraphDataset& dataset, const UnsupervisedProtocolOptions& options);

// Graph-kernel protocol: a kernel SVM CV on the precomputed Gram matrix,
// repeated over fold seeds.
MeanStd RunKernelProtocol(const std::vector<double>& gram,
                          const GraphSource& source,
                          const UnsupervisedProtocolOptions& options);

MeanStd RunKernelProtocol(const std::vector<double>& gram,
                          const GraphDataset& dataset,
                          const UnsupervisedProtocolOptions& options);

struct TransferProtocolOptions {
  FinetuneConfig finetune;
  int num_seeds = 3;  // paper: 10; scaled for single-core runs
  uint64_t base_seed = 0;
  double train_fraction = 0.8;
  double valid_fraction = 0.1;
};

// Transfer protocol (Table IV): given an encoder factory that returns a
// *pretrained* encoder for a seed, fine-tune on the scaffold-split
// downstream dataset and aggregate test ROC-AUC over seeds.
MeanStd RunTransferProtocol(
    const std::function<std::unique_ptr<GnnEncoder>(uint64_t seed)>&
        make_pretrained_encoder,
    const GraphDataset& downstream, const TransferProtocolOptions& options);

}  // namespace sgcl

#endif  // SGCL_EVAL_EVALUATOR_H_
