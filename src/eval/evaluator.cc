#include "eval/evaluator.h"

#include "common/logging.h"
#include "graph/splits.h"

namespace sgcl {

MeanStd RunUnsupervisedProtocol(
    const std::function<std::unique_ptr<Pretrainer>(uint64_t seed)>&
        make_pretrainer,
    const GraphDataset& dataset,
    const UnsupervisedProtocolOptions& options) {
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    const uint64_t seed = options.base_seed + 1000ULL * (s + 1);
    Rng rng(seed);
    std::unique_ptr<Pretrainer> method = make_pretrainer(seed);
    // Pretrain on (1 - test_fraction) of the graphs, unlabeled.
    HoldoutSplit split = TrainTestSplit(
        dataset.size(), 1.0 - options.pretrain_fraction, &rng);
    // Pretrainer::Pretrain returns plain PretrainStats — the lint R1 hit
    // is a name collision with SgclTrainer's fallible Pretrain.
    // NOLINTNEXTLINE(sgcl-R1)
    method->Pretrain(dataset, split.train);
    // Embed the whole dataset.
    std::vector<const Graph*> all;
    all.reserve(dataset.size());
    for (int64_t i = 0; i < dataset.size(); ++i) {
      all.push_back(&dataset.graph(i));
    }
    Tensor emb = method->EmbedGraphs(all);
    MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                  dataset.Labels(), dataset.num_classes(),
                                  options.cv_folds, &rng);
    per_seed.push_back(cv.mean);
    SGCL_LOG(DEBUG) << method->name() << " on " << dataset.name() << " seed "
                    << s << ": " << cv.mean;
  }
  return ComputeMeanStd(per_seed);
}

MeanStd RunKernelProtocol(const std::vector<double>& gram,
                          const GraphDataset& dataset,
                          const UnsupervisedProtocolOptions& options) {
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    Rng rng(options.base_seed + 1000ULL * (s + 1));
    MeanStd cv = KernelSvmCrossValidate(gram, dataset.size(),
                                        dataset.Labels(),
                                        dataset.num_classes(),
                                        options.cv_folds, &rng);
    per_seed.push_back(cv.mean);
  }
  return ComputeMeanStd(per_seed);
}

MeanStd RunTransferProtocol(
    const std::function<std::unique_ptr<GnnEncoder>(uint64_t seed)>&
        make_pretrained_encoder,
    const GraphDataset& downstream, const TransferProtocolOptions& options) {
  ThreeWaySplit split = ScaffoldSplit(downstream, options.train_fraction,
                                      options.valid_fraction);
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    const uint64_t seed = options.base_seed + 777ULL * (s + 1);
    Rng rng(seed);
    std::unique_ptr<GnnEncoder> encoder = make_pretrained_encoder(seed);
    const double auc =
        downstream.num_tasks() > 1 ||
                downstream.graph(0).task_labels().size() == 1
            ? FinetuneAndEvalRocAuc(encoder.get(), downstream, split.train,
                                    split.test, options.finetune, &rng)
            : FinetuneAndEvalAccuracy(encoder.get(), downstream, split.train,
                                      split.test, options.finetune, &rng);
    per_seed.push_back(auc);
    SGCL_LOG(DEBUG) << downstream.name() << " seed " << s << ": " << auc;
  }
  return ComputeMeanStd(per_seed);
}

}  // namespace sgcl
