#include "eval/evaluator.h"

#include "common/logging.h"
#include "graph/splits.h"

namespace sgcl {

MeanStd RunUnsupervisedProtocol(
    const std::function<std::unique_ptr<Pretrainer>(uint64_t seed)>&
        make_pretrainer,
    const GraphSource& source,
    const UnsupervisedProtocolOptions& options) {
  // Labels and embeddings for the SVM stage need every graph once; the
  // protocol holds them resident even for on-disk sources (the SVM is
  // dense in the graph count anyway).
  const std::vector<int> labels = source.Labels().value();
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    const uint64_t seed = options.base_seed + 1000ULL * (s + 1);
    Rng rng(seed);
    std::unique_ptr<Pretrainer> method = make_pretrainer(seed);
    // Pretrain on (1 - test_fraction) of the graphs, unlabeled.
    HoldoutSplit split = TrainTestSplit(
        source.size(), 1.0 - options.pretrain_fraction, &rng);
    // Pretrainer::Pretrain returns plain PretrainStats — the lint R1 hit
    // is a name collision with SgclTrainer's fallible Pretrain.
    // NOLINTNEXTLINE(sgcl-R1)
    method->Pretrain(source, split.train);
    // Embed the whole source.
    const FetchedGraphs all = source.FetchAll().value();
    Tensor emb = method->EmbedGraphs(all.graphs());
    MeanStd cv = SvmCrossValidate(emb.values(), emb.rows(), emb.cols(),
                                  labels, source.num_classes(),
                                  options.cv_folds, &rng);
    per_seed.push_back(cv.mean);
    SGCL_LOG(DEBUG) << method->name() << " on " << source.name() << " seed "
                    << s << ": " << cv.mean;
  }
  return ComputeMeanStd(per_seed);
}

MeanStd RunUnsupervisedProtocol(
    const std::function<std::unique_ptr<Pretrainer>(uint64_t seed)>&
        make_pretrainer,
    const GraphDataset& dataset,
    const UnsupervisedProtocolOptions& options) {
  const InMemorySource source(&dataset);
  return RunUnsupervisedProtocol(make_pretrainer, source, options);
}

MeanStd RunKernelProtocol(const std::vector<double>& gram,
                          const GraphSource& source,
                          const UnsupervisedProtocolOptions& options) {
  const std::vector<int> labels = source.Labels().value();
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    Rng rng(options.base_seed + 1000ULL * (s + 1));
    MeanStd cv = KernelSvmCrossValidate(gram, source.size(), labels,
                                        source.num_classes(),
                                        options.cv_folds, &rng);
    per_seed.push_back(cv.mean);
  }
  return ComputeMeanStd(per_seed);
}

MeanStd RunKernelProtocol(const std::vector<double>& gram,
                          const GraphDataset& dataset,
                          const UnsupervisedProtocolOptions& options) {
  const InMemorySource source(&dataset);
  return RunKernelProtocol(gram, source, options);
}

MeanStd RunTransferProtocol(
    const std::function<std::unique_ptr<GnnEncoder>(uint64_t seed)>&
        make_pretrained_encoder,
    const GraphDataset& downstream, const TransferProtocolOptions& options) {
  ThreeWaySplit split = ScaffoldSplit(downstream, options.train_fraction,
                                      options.valid_fraction);
  std::vector<double> per_seed;
  per_seed.reserve(options.num_seeds);
  for (int s = 0; s < options.num_seeds; ++s) {
    const uint64_t seed = options.base_seed + 777ULL * (s + 1);
    Rng rng(seed);
    std::unique_ptr<GnnEncoder> encoder = make_pretrained_encoder(seed);
    const double auc =
        downstream.num_tasks() > 1 ||
                downstream.graph(0).task_labels().size() == 1
            ? FinetuneAndEvalRocAuc(encoder.get(), downstream, split.train,
                                    split.test, options.finetune, &rng)
            : FinetuneAndEvalAccuracy(encoder.get(), downstream, split.train,
                                      split.test, options.finetune, &rng);
    per_seed.push_back(auc);
    SGCL_LOG(DEBUG) << downstream.name() << " seed " << s << ": " << auc;
  }
  return ComputeMeanStd(per_seed);
}

}  // namespace sgcl
