#include "baselines/adgcl.h"

#include "core/contrastive_loss.h"
#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

AdGclBaseline::AdGclBaseline(const BaselineConfig& config,
                             float retention_weight)
    : GclPretrainerBase(config, "AD-GCL"),
      retention_weight_(retention_weight) {
  EncoderConfig aug_cfg = config_.encoder;
  aug_cfg.num_layers = 2;
  augmenter_gnn_ = std::make_unique<GnnEncoder>(aug_cfg, &rng_);
  edge_head_ = std::make_unique<Linear>(2 * config_.encoder.hidden_dim, 1,
                                        &rng_);
  projection_ = std::make_unique<Mlp>(
      std::vector<int64_t>{config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim},
      &rng_);
  std::vector<Tensor> aug_params = augmenter_gnn_->Parameters();
  auto head_params = edge_head_->Parameters();
  aug_params.insert(aug_params.end(), head_params.begin(), head_params.end());
  augmenter_optimizer_ =
      std::make_unique<Adam>(std::move(aug_params), config_.learning_rate);
}

std::vector<Tensor> AdGclBaseline::TrainableParameters() const {
  // The augmenter is optimized adversarially by its own optimizer.
  return ConcatParameters({encoder_.get(), projection_.get()});
}

Tensor AdGclBaseline::EdgeKeepWeights(const GraphBatch& batch) const {
  Tensor h = augmenter_gnn_->EncodeNodes(batch.features, batch);
  Tensor pair = ConcatCols(GatherRows(h, batch.edge_src),
                           GatherRows(h, batch.edge_dst));
  return Sigmoid(edge_head_->Forward(pair));  // [E, 1]
}

Tensor AdGclBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                Rng* rng) {
  (void)rng;
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  if (batch.edge_src.empty()) {
    // Degenerate batch with no edges: plain anchor-vs-anchor loss.
    Tensor z = projection_->Forward(encoder_->EncodeGraphs(batch));
    return SemanticInfoNceLoss(z, z, config_.tau);
  }

  // --- Augmenter (max) step: ascent on the contrastive loss. ---
  {
    Tensor w = EdgeKeepWeights(batch);
    GraphBatch view = batch;
    view.edge_weights = w;
    Tensor z_anchor = projection_->Forward(encoder_->EncodeGraphs(batch));
    Tensor z_view = projection_->Forward(encoder_->EncodeGraphs(view));
    // maximize InfoNCE <=> minimize -InfoNCE + retention penalty.
    Tensor adv = Add(Neg(SemanticInfoNceLoss(z_anchor, z_view, config_.tau)),
                     MulScalar(Mean(AddScalar(Neg(w), 1.0f)),
                               retention_weight_));
    augmenter_optimizer_->ZeroGrad();
    adv.Backward();
    augmenter_optimizer_->ClipGradNorm(config_.grad_clip);
    augmenter_optimizer_->Step();
    // This backward also deposited gradients into the encoder/projection;
    // clear them so the encoder (min) step below starts clean.
    for (Tensor& p : TrainableParameters()) p.ZeroGrad();
  }

  // --- Encoder (min) step loss, with the augmenter frozen. ---
  Tensor w = EdgeKeepWeights(batch).Detach();
  GraphBatch view = batch;
  view.edge_weights = w;
  Tensor z_anchor = projection_->Forward(encoder_->EncodeGraphs(batch));
  Tensor z_view = projection_->Forward(encoder_->EncodeGraphs(view));
  return SemanticInfoNceLoss(z_anchor, z_view, config_.tau);
}

}  // namespace sgcl
