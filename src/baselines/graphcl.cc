#include "baselines/graphcl.h"

#include <algorithm>
#include <cmath>

#include "core/contrastive_loss.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace sgcl {

const char* GraphAugToString(GraphAug aug) {
  switch (aug) {
    case GraphAug::kIdentity:
      return "identity";
    case GraphAug::kNodeDrop:
      return "node_drop";
    case GraphAug::kEdgePerturb:
      return "edge_perturb";
    case GraphAug::kAttrMask:
      return "attr_mask";
    case GraphAug::kSubgraph:
      return "subgraph";
  }
  return "unknown";
}

namespace {

Graph NodeDrop(const Graph& g, float ratio, Rng* rng) {
  const int64_t n = g.num_nodes();
  if (n <= 2) return g;
  int64_t drop = static_cast<int64_t>(std::lround(ratio * n));
  drop = std::min(drop, n - 2);  // keep at least two nodes
  std::vector<uint8_t> keep(static_cast<size_t>(n), 1);
  for (int64_t v : rng->SampleWithoutReplacement(n, drop)) keep[v] = 0;
  return g.InducedSubgraph(keep);
}

Graph EdgePerturb(const Graph& g, float ratio, Rng* rng) {
  Graph out = g;
  const int64_t n = g.num_nodes();
  if (n < 2) return out;
  // Remove `k` random existing edges, then add `k` random new ones.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (size_t r = 0; r < g.edge_src().size(); ++r) {
    if (g.edge_src()[r] < g.edge_dst()[r]) {
      edges.emplace_back(g.edge_src()[r], g.edge_dst()[r]);
    }
  }
  const int64_t k = static_cast<int64_t>(
      std::lround(ratio * static_cast<double>(edges.size())));
  for (int64_t idx :
       rng->SampleWithoutReplacement(static_cast<int64_t>(edges.size()),
                                     std::min<int64_t>(k, edges.size()))) {
    out.RemoveUndirectedEdge(edges[idx].first, edges[idx].second);
  }
  for (int64_t t = 0; t < k; ++t) {
    const int64_t a = rng->UniformInt(n);
    const int64_t b = rng->UniformInt(n);
    if (a != b) out.AddUndirectedEdge(a, b);
  }
  return out;
}

Graph AttrMask(const Graph& g, float ratio, Rng* rng) {
  Graph out = g;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (rng->Bernoulli(ratio)) {
      for (int64_t j = 0; j < g.feat_dim(); ++j) out.set_feature(v, j, 0.0f);
    }
  }
  return out;
}

Graph Subgraph(const Graph& g, float ratio, Rng* rng) {
  const int64_t n = g.num_nodes();
  if (n <= 2) return g;
  const int64_t target = std::max<int64_t>(
      2, static_cast<int64_t>(std::lround((1.0f - ratio) * n)));
  // Random-walk subgraph sampling from a random start node.
  std::vector<uint8_t> keep(static_cast<size_t>(n), 0);
  int64_t current = rng->UniformInt(n);
  keep[current] = 1;
  int64_t kept = 1;
  int64_t steps = 0;
  while (kept < target && steps < 20 * n) {
    auto nbrs = g.Neighbors(current);
    if (nbrs.empty()) {
      current = rng->UniformInt(n);  // restart from a random node
    } else {
      current = nbrs[rng->UniformInt(static_cast<int64_t>(nbrs.size()))];
    }
    if (!keep[current]) {
      keep[current] = 1;
      ++kept;
    }
    ++steps;
  }
  return g.InducedSubgraph(keep);
}

}  // namespace

Graph ApplyRandomAugmentation(const Graph& graph, GraphAug aug, float ratio,
                              Rng* rng) {
  SGCL_CHECK(rng != nullptr);
  SGCL_CHECK(ratio >= 0.0f && ratio < 1.0f);
  switch (aug) {
    case GraphAug::kIdentity:
      return graph;
    case GraphAug::kNodeDrop:
      return NodeDrop(graph, ratio, rng);
    case GraphAug::kEdgePerturb:
      return EdgePerturb(graph, ratio, rng);
    case GraphAug::kAttrMask:
      return AttrMask(graph, ratio, rng);
    case GraphAug::kSubgraph:
      return Subgraph(graph, ratio, rng);
  }
  SGCL_CHECK(false);
  return graph;
}

GraphClBaseline::GraphClBaseline(const BaselineConfig& config, GraphAug aug1,
                                 GraphAug aug2)
    : GraphClBaseline(config, aug1, aug2, "GraphCL") {}

GraphClBaseline::GraphClBaseline(const BaselineConfig& config, GraphAug aug1,
                                 GraphAug aug2, std::string name)
    : GclPretrainerBase(config, std::move(name)), aug1_(aug1), aug2_(aug2) {
  projection_ = std::make_unique<Mlp>(
      std::vector<int64_t>{config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim},
      &rng_);
}

std::vector<Tensor> GraphClBaseline::TrainableParameters() const {
  return ConcatParameters({encoder_.get(), projection_.get()});
}

Tensor GraphClBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                  Rng* rng) {
  std::vector<Graph> view1, view2;
  view1.reserve(graphs.size());
  view2.reserve(graphs.size());
  for (const Graph* g : graphs) {
    view1.push_back(ApplyRandomAugmentation(*g, aug1_, config_.aug_ratio,
                                            rng));
    view2.push_back(ApplyRandomAugmentation(*g, aug2_, config_.aug_ratio,
                                            rng));
  }
  GraphBatch b1 = GraphBatch::FromGraphs(view1);
  GraphBatch b2 = GraphBatch::FromGraphs(view2);
  Tensor z1 = projection_->Forward(encoder_->EncodeGraphs(b1));
  Tensor z2 = projection_->Forward(encoder_->EncodeGraphs(b2));
  // Symmetric NT-Xent.
  return MulScalar(Add(SemanticInfoNceLoss(z1, z2, config_.tau),
                       SemanticInfoNceLoss(z2, z1, config_.tau)),
                   0.5f);
}

}  // namespace sgcl
