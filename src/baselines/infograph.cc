#include "baselines/infograph.h"

#include "nn/pooling.h"
#include "tensor/ops.h"

namespace sgcl {

InfoGraphBaseline::InfoGraphBaseline(const BaselineConfig& config,
                                     std::string name)
    : GclPretrainerBase(config, std::move(name)) {
  const int64_t h = config_.encoder.hidden_dim;
  node_proj_ = std::make_unique<Mlp>(std::vector<int64_t>{h, h, h}, &rng_);
  graph_proj_ = std::make_unique<Mlp>(std::vector<int64_t>{h, h, h}, &rng_);
}

std::vector<Tensor> InfoGraphBaseline::TrainableParameters() const {
  return ConcatParameters(
      {encoder_.get(), node_proj_.get(), graph_proj_.get()});
}

Tensor InfoGraphBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                    Rng* rng) {
  (void)rng;
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  Tensor nodes = encoder_->EncodeNodes(batch.features, batch);
  Tensor graphs_rep = Pool(nodes, batch, config_.encoder.pooling);
  Tensor phi = node_proj_->Forward(nodes);        // [N, h]
  Tensor psi = graph_proj_->Forward(graphs_rep);  // [B, h]
  // Score of (node i, graph g): phi_i . psi_g.
  Tensor scores = MatMulTransB(phi, psi);         // [N, B]
  // JSD MI estimator: -softplus(-s) on positive pairs, softplus(s) on
  // negative pairs, averaged.
  const int64_t n = batch.num_nodes;
  const int64_t b = batch.num_graphs;
  std::vector<float> pos(static_cast<size_t>(n * b), 0.0f);
  std::vector<float> neg(static_cast<size_t>(n * b), 0.0f);
  double num_pos = 0.0, num_neg = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < b; ++g) {
      if (batch.node_graph_ids[i] == g) {
        pos[i * b + g] = 1.0f;
        num_pos += 1.0;
      } else {
        neg[i * b + g] = 1.0f;
        num_neg += 1.0;
      }
    }
  }
  SGCL_CHECK_GT(num_pos, 0.0);
  SGCL_CHECK_GT(num_neg, 0.0);
  Tensor pos_mask = Tensor::FromVector({n, b}, std::move(pos));
  Tensor neg_mask = Tensor::FromVector({n, b}, std::move(neg));
  Tensor pos_loss = MulScalar(Sum(Mul(Softplus(Neg(scores)), pos_mask)),
                              1.0f / static_cast<float>(num_pos));
  Tensor neg_loss = MulScalar(Sum(Mul(Softplus(scores), neg_mask)),
                              1.0f / static_cast<float>(num_neg));
  return Add(pos_loss, neg_loss);
}

}  // namespace sgcl
