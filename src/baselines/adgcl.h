// AD-GCL baseline (Suresh et al., NeurIPS'21): adversarial graph
// augmentation via a learnable edge dropper. The augmenter predicts a
// keep weight per edge; the encoder minimizes the contrastive loss while
// the augmenter maximizes it (with a retention regularizer preventing the
// degenerate drop-everything solution). Edge weights multiply messages in
// the GIN view encoder, so the augmenter trains by gradient.
#ifndef SGCL_BASELINES_ADGCL_H_
#define SGCL_BASELINES_ADGCL_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace sgcl {

class AdGclBaseline : public GclPretrainerBase {
 public:
  // `retention_weight` scales the regularizer rewarding kept edges.
  AdGclBaseline(const BaselineConfig& config, float retention_weight = 0.5f);

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  // Per-edge keep weights in (0,1) from the augmenter tower (on tape).
  Tensor EdgeKeepWeights(const GraphBatch& batch) const;

  float retention_weight_;
  std::unique_ptr<GnnEncoder> augmenter_gnn_;
  std::unique_ptr<Linear> edge_head_;  // [2*hidden] -> 1
  std::unique_ptr<Mlp> projection_;
  std::unique_ptr<Adam> augmenter_optimizer_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_ADGCL_H_
