// Graph autoencoder pretraining (Kipf & Welling'16 style): reconstruct
// edges from inner products of node embeddings, with negative sampling.
#ifndef SGCL_BASELINES_GAE_H_
#define SGCL_BASELINES_GAE_H_

#include "baselines/pretrainer.h"

namespace sgcl {

class GaeBaseline : public GclPretrainerBase {
 public:
  explicit GaeBaseline(const BaselineConfig& config);

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_GAE_H_
