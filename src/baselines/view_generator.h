// Learnable-view-generator baselines: AutoGCL (Yin et al., AAAI'22) and
// RGCL (Li et al., ICML'22).
//
// Both learn per-node keep probabilities from a generator GNN — the
// "node probability distribution" family that SGCL's Fig. 1 argues can
// misjudge semantics. AutoGCL contrasts two independently generated
// views; RGCL contrasts the anchor with a rationale view and uses the
// complement of the rationale as extra negatives. Neither sees Lipschitz
// constants, which is exactly the "SGCL w/o LGA" regime.
#ifndef SGCL_BASELINES_VIEW_GENERATOR_H_
#define SGCL_BASELINES_VIEW_GENERATOR_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace sgcl {

enum class ViewGenVariant { kAutoGcl, kRgcl };

class LearnableViewBaseline : public GclPretrainerBase {
 public:
  LearnableViewBaseline(const BaselineConfig& config, ViewGenVariant variant);

  std::vector<Tensor> TrainableParameters() const override;

  // Per-node keep probabilities of `graph` under the current generator —
  // the quantity visualized against Lipschitz constants in Fig. 7.
  std::vector<float> NodeKeepProbs(const Graph& graph) const;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  // Keep scores on tape for one generator head. [N, 1].
  Tensor KeepScores(const GraphBatch& batch, const Linear& head) const;

  // Samples a hard keep mask from scores (drop `ratio` of nodes weighted
  // by 1 - score) and returns the soft-masked projected embedding.
  Tensor EncodeView(const GraphBatch& batch, const Tensor& scores, float ratio,
                    Rng* rng) const;

  ViewGenVariant variant_;
  std::unique_ptr<GnnEncoder> generator_gnn_;
  std::unique_ptr<Linear> head1_;
  std::unique_ptr<Linear> head2_;  // AutoGCL's second view generator
  std::unique_ptr<Mlp> projection_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_VIEW_GENERATOR_H_
