// AttrMasking pretraining (Hu et al., ICLR'20): mask a fraction of node
// attributes and reconstruct the original one-hot type from the masked
// encoding with a per-node linear decoder.
#ifndef SGCL_BASELINES_ATTR_MASKING_H_
#define SGCL_BASELINES_ATTR_MASKING_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/linear.h"

namespace sgcl {

class AttrMaskingBaseline : public GclPretrainerBase {
 public:
  explicit AttrMaskingBaseline(const BaselineConfig& config);

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  std::unique_ptr<Linear> decoder_;  // hidden -> feat_dim logits
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_ATTR_MASKING_H_
