#include "baselines/view_generator.h"

#include <cmath>

#include "core/augmentation.h"
#include "core/contrastive_loss.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace sgcl {

LearnableViewBaseline::LearnableViewBaseline(const BaselineConfig& config,
                                             ViewGenVariant variant)
    : GclPretrainerBase(config,
                        variant == ViewGenVariant::kAutoGcl ? "AutoGCL"
                                                            : "RGCL"),
      variant_(variant) {
  EncoderConfig gen_cfg = config_.encoder;
  gen_cfg.num_layers = 2;
  generator_gnn_ = std::make_unique<GnnEncoder>(gen_cfg, &rng_);
  head1_ = std::make_unique<Linear>(config_.encoder.hidden_dim, 1, &rng_);
  head2_ = std::make_unique<Linear>(config_.encoder.hidden_dim, 1, &rng_);
  projection_ = std::make_unique<Mlp>(
      std::vector<int64_t>{config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim},
      &rng_);
}

std::vector<Tensor> LearnableViewBaseline::TrainableParameters() const {
  return ConcatParameters({encoder_.get(), generator_gnn_.get(), head1_.get(),
                           head2_.get(), projection_.get()});
}

Tensor LearnableViewBaseline::KeepScores(const GraphBatch& batch,
                                         const Linear& head) const {
  Tensor h = generator_gnn_->EncodeNodes(batch.features, batch);
  return Sigmoid(head.Forward(h));
}

Tensor LearnableViewBaseline::EncodeView(const GraphBatch& batch,
                                         const Tensor& scores, float ratio,
                                         Rng* rng) const {
  const int64_t n = batch.num_nodes;
  // Hard drop: `ratio` of each graph's nodes, weighted by 1 - score.
  std::vector<uint8_t> keep(static_cast<size_t>(n), 1);
  for (int64_t g = 0; g < batch.num_graphs; ++g) {
    const int64_t lo = batch.node_offsets[g], hi = batch.node_offsets[g + 1];
    const int64_t size = hi - lo;
    if (size <= 2) continue;
    int64_t drop = static_cast<int64_t>(std::lround(ratio * size));
    drop = std::min(drop, size - 2);
    std::vector<double> w(static_cast<size_t>(size));
    for (int64_t v = lo; v < hi; ++v) {
      w[v - lo] = 1.0 - static_cast<double>(scores.At(v, 0)) + 1e-3;
    }
    for (int64_t p : rng->WeightedSampleWithoutReplacement(w, drop)) {
      keep[lo + p] = 0;
    }
  }
  GraphBatch view = MaskBatch(batch, keep);
  Tensor nodes = encoder_->EncodeNodes(view.features, view);
  std::vector<float> mask_vals(keep.begin(), keep.end());
  Tensor soft = Mul(Tensor::FromVector({n, 1}, std::move(mask_vals)), scores);
  return projection_->Forward(
      Pool(MulBroadcastCol(nodes, soft), batch, config_.encoder.pooling));
}

Tensor LearnableViewBaseline::BatchLoss(
    const std::vector<const Graph*>& graphs, Rng* rng) {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  if (variant_ == ViewGenVariant::kAutoGcl) {
    // Two generated views contrast against each other.
    Tensor s1 = KeepScores(batch, *head1_);
    Tensor s2 = KeepScores(batch, *head2_);
    Tensor z1 = EncodeView(batch, s1, config_.aug_ratio, rng);
    Tensor z2 = EncodeView(batch, s2, config_.aug_ratio, rng);
    return MulScalar(Add(SemanticInfoNceLoss(z1, z2, config_.tau),
                         SemanticInfoNceLoss(z2, z1, config_.tau)),
                     0.5f);
  }
  // RGCL: anchor vs rationale view, complement of rationale as extra
  // negatives.
  Tensor s = KeepScores(batch, *head1_);
  Tensor z_anchor = projection_->Forward(encoder_->EncodeGraphs(batch));
  Tensor z_rationale = EncodeView(batch, s, config_.aug_ratio, rng);
  Tensor z_complement =
      EncodeView(batch, AddScalar(Neg(s), 1.0f), 1.0f - config_.aug_ratio,
                 rng);
  Tensor loss = SemanticInfoNceLoss(z_anchor, z_rationale, config_.tau);
  return Add(loss, MulScalar(ComplementLoss(z_anchor, z_rationale,
                                            z_complement, config_.tau),
                             0.1f));
}

std::vector<float> LearnableViewBaseline::NodeKeepProbs(
    const Graph& graph) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs({&graph});
  Tensor s = KeepScores(batch, *head1_).Detach();
  std::vector<float> out(static_cast<size_t>(graph.num_nodes()));
  for (int64_t v = 0; v < graph.num_nodes(); ++v) out[v] = s.At(v, 0);
  return out;
}

}  // namespace sgcl
