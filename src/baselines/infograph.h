// InfoGraph baseline (Sun et al., ICLR'20): maximize mutual information
// between node-level and graph-level representations with a JSD
// discriminator. Also serves as the "Infomax" (DGI-style) row in the
// semi-supervised table.
#ifndef SGCL_BASELINES_INFOGRAPH_H_
#define SGCL_BASELINES_INFOGRAPH_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/mlp.h"

namespace sgcl {

class InfoGraphBaseline : public GclPretrainerBase {
 public:
  explicit InfoGraphBaseline(const BaselineConfig& config,
                             std::string name = "InfoGraph");

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  std::unique_ptr<Mlp> node_proj_;
  std::unique_ptr<Mlp> graph_proj_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_INFOGRAPH_H_
