// JOAOv2-style baseline (You et al., ICML'21): GraphCL with a learned
// sampling distribution over augmentation pairs, updated between epochs
// toward the pairs that currently yield the largest contrastive loss
// (the min-max objective's outer step). This is a faithful-in-spirit,
// simplified re-implementation; see DESIGN.md.
#ifndef SGCL_BASELINES_JOAO_H_
#define SGCL_BASELINES_JOAO_H_

#include <vector>

#include "baselines/graphcl.h"

namespace sgcl {

class JoaoBaseline : public GraphClBaseline {
 public:
  explicit JoaoBaseline(const BaselineConfig& config);

  const std::vector<double>& aug_weights() const { return weights_; }

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;
  void OnEpochEnd(int epoch) override;

 private:
  std::vector<GraphAug> pool_;
  std::vector<double> weights_;       // sampling distribution over pool_
  std::vector<double> epoch_loss_;    // accumulated loss per augmentation
  std::vector<int64_t> epoch_count_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_JOAO_H_
