#include "baselines/pretrainer.h"

#include <span>

#include "common/logging.h"

namespace sgcl {

PretrainStats Pretrainer::Pretrain(const GraphDataset& dataset,
                                   const std::vector<int64_t>& indices) {
  const InMemorySource source(&dataset);
  return Pretrain(source, indices);
}

GclPretrainerBase::GclPretrainerBase(const BaselineConfig& config,
                                     std::string name)
    : config_(config), rng_(config.seed), name_(std::move(name)) {
  encoder_ = std::make_unique<GnnEncoder>(config_.encoder, &rng_);
}

std::vector<Tensor> GclPretrainerBase::TrainableParameters() const {
  return encoder_->Parameters();
}

PretrainStats GclPretrainerBase::Pretrain(
    const GraphSource& source, const std::vector<int64_t>& indices) {
  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(source.size());
    for (int64_t i = 0; i < source.size(); ++i) order[i] = i;
  }
  SGCL_CHECK_GE(order.size(), 2u);
  Adam optimizer(TrainableParameters(), config_.learning_rate);
  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (size_t start = 0; start + 1 < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      if (end - start < 2) break;
      FetchedGraphs fetched;
      // Bench/protocol code treats fetch failures as programming errors
      // (the interface predates the Result-returning trainer).
      const Status fetch_status = source.Fetch(
          std::span<const int64_t>(order.data() + start, end - start),
          &fetched);
      SGCL_CHECK(fetch_status.ok());
      optimizer.ZeroGrad();
      Tensor loss = BatchLoss(fetched.graphs(), &rng_);
      loss.Backward();
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    SGCL_LOG(DEBUG) << name() << " epoch " << epoch << " loss " << mean_loss;
    OnEpochEnd(epoch);
  }
  return stats;
}

Tensor GclPretrainerBase::EmbedGraphs(
    const std::vector<const Graph*>& graphs) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  return encoder_->EncodeGraphs(batch).Detach();
}

NoPretrain::NoPretrain(const BaselineConfig& config, uint64_t seed) {
  Rng rng(seed);
  encoder_ = std::make_unique<GnnEncoder>(config.encoder, &rng);
}

PretrainStats NoPretrain::Pretrain(const GraphSource& source,
                                   const std::vector<int64_t>& indices) {
  (void)source;
  (void)indices;
  return PretrainStats{};
}

Tensor NoPretrain::EmbedGraphs(const std::vector<const Graph*>& graphs) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  return encoder_->EncodeGraphs(batch).Detach();
}

}  // namespace sgcl
