#include "baselines/svm.h"

#include <algorithm>
#include <cmath>

namespace sgcl {

void BinarySvm::TrainOnKernel(const std::vector<double>& kernel, int64_t n,
                              const std::vector<int>& labels) {
  SGCL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  SGCL_CHECK_EQ(static_cast<int64_t>(kernel.size()), n * n);
  labels_ = labels;
  alpha_.assign(static_cast<size_t>(n), 0.0);
  bias_ = 0.0;
  Rng rng(config_.seed + 0x5f3759dfULL);

  auto decide = [&](int64_t i) {
    double f = bias_;
    for (int64_t j = 0; j < n; ++j) {
      if (alpha_[j] != 0.0) f += alpha_[j] * labels_[j] * kernel[i * n + j];
    }
    return f;
  };

  const double c = config_.c;
  const double tol = config_.tolerance;
  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    int changed = 0;
    for (int64_t i = 0; i < n; ++i) {
      const double ei = decide(i) - labels_[i];
      const bool violates = (labels_[i] * ei < -tol && alpha_[i] < c) ||
                            (labels_[i] * ei > tol && alpha_[i] > 0.0);
      if (!violates) continue;
      int64_t j = rng.UniformInt(n - 1);
      if (j >= i) ++j;
      const double ej = decide(j) - labels_[j];
      const double ai_old = alpha_[i], aj_old = alpha_[j];
      double lo, hi;
      if (labels_[i] != labels_[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta =
          2.0 * kernel[i * n + j] - kernel[i * n + i] - kernel[j * n + j];
      if (eta >= 0.0) continue;
      double aj = aj_old - labels_[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-5) continue;
      const double ai =
          ai_old + labels_[i] * labels_[j] * (aj_old - aj);
      alpha_[i] = ai;
      alpha_[j] = aj;
      const double b1 = bias_ - ei -
                        labels_[i] * (ai - ai_old) * kernel[i * n + i] -
                        labels_[j] * (aj - aj_old) * kernel[i * n + j];
      const double b2 = bias_ - ej -
                        labels_[i] * (ai - ai_old) * kernel[i * n + j] -
                        labels_[j] * (aj - aj_old) * kernel[j * n + j];
      if (ai > 0.0 && ai < c) {
        bias_ = b1;
      } else if (aj > 0.0 && aj < c) {
        bias_ = b2;
      } else {
        bias_ = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
    ++iterations;
  }
}

double BinarySvm::Decide(const std::vector<double>& kernel_row) const {
  SGCL_CHECK_EQ(kernel_row.size(), alpha_.size());
  double f = bias_;
  for (size_t j = 0; j < alpha_.size(); ++j) {
    if (alpha_[j] != 0.0) f += alpha_[j] * labels_[j] * kernel_row[j];
  }
  return f;
}

SvmClassifier::SvmClassifier(const SvmConfig& config) : config_(config) {}

double SvmClassifier::KernelValue(const float* a, const float* b,
                                  int64_t dim) const {
  if (config_.kernel == SvmKernel::kLinear) {
    double dot = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      dot += static_cast<double>(a[j]) * b[j];
    }
    return dot;
  }
  double sq = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    const double d = static_cast<double>(a[j]) - b[j];
    sq += d * d;
  }
  return std::exp(-gamma_ * sq);
}

void SvmClassifier::Train(const std::vector<float>& features, int64_t n,
                          int64_t dim, const std::vector<int>& labels,
                          int num_classes) {
  SGCL_CHECK_GT(n, 0);
  SGCL_CHECK_GT(dim, 0);
  SGCL_CHECK_GE(num_classes, 2);
  SGCL_CHECK_EQ(static_cast<int64_t>(features.size()), n * dim);
  SGCL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  num_classes_ = num_classes;
  train_n_ = n;
  dim_ = dim;
  train_features_ = features;
  // Default gamma: 1 / (dim * var(features)) — the scikit-learn 'scale'
  // heuristic.
  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    double mean = 0.0, sq = 0.0;
    for (float v : features) {
      mean += v;
      sq += static_cast<double>(v) * v;
    }
    mean /= static_cast<double>(features.size());
    const double var =
        std::max(sq / static_cast<double>(features.size()) - mean * mean,
                 1e-8);
    gamma_ = 1.0 / (static_cast<double>(dim) * var);
  }
  std::vector<double> kernel(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double k = KernelValue(features.data() + i * dim,
                                   features.data() + j * dim, dim);
      kernel[i * n + j] = k;
      kernel[j * n + i] = k;
    }
  }
  TrainOnKernel(kernel, n, labels, num_classes);
}

void SvmClassifier::TrainOnKernel(const std::vector<double>& train_kernel,
                                  int64_t n, const std::vector<int>& labels,
                                  int num_classes) {
  num_classes_ = num_classes;
  train_n_ = n;
  per_class_.clear();
  per_class_.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    std::vector<int> binary(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) binary[i] = labels[i] == c ? 1 : -1;
    SvmConfig cfg = config_;
    cfg.seed = config_.seed + static_cast<uint64_t>(c) * 101;
    per_class_.emplace_back(cfg);
    per_class_.back().TrainOnKernel(train_kernel, n, binary);
  }
}

int SvmClassifier::Predict(const float* x) const {
  SGCL_CHECK(!per_class_.empty());
  SGCL_CHECK(!train_features_.empty());
  std::vector<double> row(static_cast<size_t>(train_n_));
  for (int64_t i = 0; i < train_n_; ++i) {
    row[i] = KernelValue(x, train_features_.data() + i * dim_, dim_);
  }
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const double score = per_class_[c].Decide(row);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

double SvmClassifier::Evaluate(const std::vector<float>& features, int64_t n,
                               const std::vector<int>& labels) const {
  SGCL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    correct += (Predict(features.data() + i * dim_) == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::vector<int> SvmClassifier::PredictFromKernelRows(
    const std::vector<double>& test_rows, int64_t m) const {
  SGCL_CHECK_EQ(static_cast<int64_t>(test_rows.size()), m * train_n_);
  std::vector<int> out(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    std::vector<double> row(test_rows.begin() + i * train_n_,
                            test_rows.begin() + (i + 1) * train_n_);
    int best = 0;
    double best_score = -1e300;
    for (int c = 0; c < num_classes_; ++c) {
      const double score = per_class_[c].Decide(row);
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    out[i] = best;
  }
  return out;
}

}  // namespace sgcl
