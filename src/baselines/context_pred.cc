#include "baselines/context_pred.h"

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

ContextPredBaseline::ContextPredBaseline(const BaselineConfig& config)
    : GclPretrainerBase(config, "ContextPred") {
  bilinear_ = std::make_unique<Linear>(config_.encoder.hidden_dim,
                                       config_.encoder.hidden_dim, &rng_,
                                       /*use_bias=*/false);
}

std::vector<Tensor> ContextPredBaseline::TrainableParameters() const {
  return ConcatParameters({encoder_.get(), bilinear_.get()});
}

Tensor ContextPredBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                      Rng* rng) {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  const int64_t n = batch.num_nodes;
  Tensor h = encoder_->EncodeNodes(batch.features, batch);
  // Context: mean of neighbor embeddings.
  Tensor ctx;
  if (batch.edge_src.empty()) {
    ctx = Tensor::Zeros({n, h.cols()});
  } else {
    Tensor sums = ScatterAddRows(GatherRows(h, batch.edge_src),
                                 batch.edge_dst, n);
    std::vector<int64_t> deg = batch.Degrees();
    std::vector<float> inv(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
      inv[v] = deg[v] > 0 ? 1.0f / static_cast<float>(deg[v]) : 0.0f;
    }
    ctx = MulBroadcastCol(sums, Tensor::FromVector({n, 1}, std::move(inv)));
  }
  // Scores: h_i W . ctx_j — positives on the diagonal, one negative per
  // node from a random permutation.
  Tensor hw = bilinear_->Forward(h);
  Tensor pos_scores = RowSum(Mul(hw, ctx));  // [n,1]
  std::vector<int32_t> perm(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) perm[v] = static_cast<int32_t>(v);
  rng->Shuffle(&perm);
  Tensor neg_scores = RowSum(Mul(hw, GatherRows(ctx, perm)));
  // BCE with logits: positives -> 1, negatives -> 0.
  Tensor logits = ConcatCols(pos_scores, neg_scores);  // [n,2]
  std::vector<float> targets(static_cast<size_t>(2 * n), 0.0f);
  for (int64_t v = 0; v < n; ++v) targets[v * 2] = 1.0f;
  return BceWithLogits(logits, Tensor::FromVector({n, 2}, std::move(targets)),
                       Tensor::Ones({n, 2}));
}

}  // namespace sgcl
