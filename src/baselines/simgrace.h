// SimGRACE baseline (Xia et al., WWW'22): no data augmentation — the
// second view comes from a weight-perturbed copy of the encoder
// (theta' = theta + eta * N(0, sigma_layer)), NT-Xent between the two
// encoders' projected graph embeddings.
#ifndef SGCL_BASELINES_SIMGRACE_H_
#define SGCL_BASELINES_SIMGRACE_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/mlp.h"

namespace sgcl {

class SimGraceBaseline : public GclPretrainerBase {
 public:
  // `eta` scales the perturbation relative to each tensor's own std.
  SimGraceBaseline(const BaselineConfig& config, float eta = 0.1f);

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  // Copies encoder_ weights into perturbed_ and adds scaled noise.
  void RefreshPerturbedEncoder(Rng* rng);

  float eta_;
  std::unique_ptr<GnnEncoder> perturbed_;
  std::unique_ptr<Mlp> projection_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_SIMGRACE_H_
