// GraphCL baseline (You et al., NeurIPS'20) and its random graph
// augmentation operators, shared by JOAO.
#ifndef SGCL_BASELINES_GRAPHCL_H_
#define SGCL_BASELINES_GRAPHCL_H_

#include <memory>
#include <vector>

#include "baselines/pretrainer.h"
#include "nn/mlp.h"

namespace sgcl {

// GraphCL's four augmentation families plus identity.
enum class GraphAug {
  kIdentity,
  kNodeDrop,
  kEdgePerturb,
  kAttrMask,
  kSubgraph,
};

const char* GraphAugToString(GraphAug aug);

// Applies `aug` with strength `ratio` (fraction of nodes/edges/features
// touched). Always returns a structurally valid graph.
Graph ApplyRandomAugmentation(const Graph& graph, GraphAug aug, float ratio,
                              Rng* rng);

// GraphCL: two independently augmented views per graph, NT-Xent between
// their projected embeddings.
class GraphClBaseline : public GclPretrainerBase {
 public:
  GraphClBaseline(const BaselineConfig& config,
                  GraphAug aug1 = GraphAug::kNodeDrop,
                  GraphAug aug2 = GraphAug::kNodeDrop);

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  GraphClBaseline(const BaselineConfig& config, GraphAug aug1, GraphAug aug2,
                  std::string name);
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

  // Current augmentation pair (JOAO mutates these between epochs).
  GraphAug aug1_;
  GraphAug aug2_;
  std::unique_ptr<Mlp> projection_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_GRAPHCL_H_
