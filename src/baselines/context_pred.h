// ContextPred pretraining (Hu et al., ICLR'20), simplified: discriminate
// true (node, neighborhood-context) pairs from corrupted ones. The
// context of a node is the mean of its neighbors' embeddings; negatives
// pair each node with a random other node's context.
#ifndef SGCL_BASELINES_CONTEXT_PRED_H_
#define SGCL_BASELINES_CONTEXT_PRED_H_

#include <memory>

#include "baselines/pretrainer.h"
#include "nn/linear.h"

namespace sgcl {

class ContextPredBaseline : public GclPretrainerBase {
 public:
  explicit ContextPredBaseline(const BaselineConfig& config);

  std::vector<Tensor> TrainableParameters() const override;

 protected:
  Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                   Rng* rng) override;

 private:
  std::unique_ptr<Linear> bilinear_;  // hidden -> hidden (no bias)
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_CONTEXT_PRED_H_
