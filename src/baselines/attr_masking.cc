#include "baselines/attr_masking.h"

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

AttrMaskingBaseline::AttrMaskingBaseline(const BaselineConfig& config)
    : GclPretrainerBase(config, "AttrMasking") {
  decoder_ = std::make_unique<Linear>(config_.encoder.hidden_dim,
                                      config_.encoder.in_dim, &rng_);
}

std::vector<Tensor> AttrMaskingBaseline::TrainableParameters() const {
  return ConcatParameters({encoder_.get(), decoder_.get()});
}

Tensor AttrMaskingBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                      Rng* rng) {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  const int64_t n = batch.num_nodes;
  const int64_t d = batch.feat_dim;
  // Choose masked nodes and their ground-truth types (argmax of the
  // one-hot features).
  std::vector<int64_t> masked_nodes;
  std::vector<int> targets;
  std::vector<float> feats(batch.features.values());
  for (int64_t v = 0; v < n; ++v) {
    if (!rng->Bernoulli(config_.aug_ratio)) continue;
    int type = 0;
    float best = feats[v * d];
    for (int64_t j = 1; j < d; ++j) {
      if (feats[v * d + j] > best) {
        best = feats[v * d + j];
        type = static_cast<int>(j);
      }
    }
    masked_nodes.push_back(v);
    targets.push_back(type);
    for (int64_t j = 0; j < d; ++j) feats[v * d + j] = 0.0f;
  }
  if (masked_nodes.size() < 2) {
    // Tiny batch / unlucky draw: deterministically mask the first nodes
    // instead of resampling.
    masked_nodes.clear();
    targets.clear();
    feats = batch.features.values();
    for (int64_t v = 0; v < std::min<int64_t>(2, n); ++v) {
      int type = 0;
      float best = feats[v * d];
      for (int64_t j = 1; j < d; ++j) {
        if (feats[v * d + j] > best) {
          best = feats[v * d + j];
          type = static_cast<int>(j);
        }
      }
      masked_nodes.push_back(v);
      targets.push_back(type);
      for (int64_t j = 0; j < d; ++j) feats[v * d + j] = 0.0f;
    }
  }
  GraphBatch masked = batch;
  masked.features = Tensor::FromVector({n, d}, std::move(feats));
  Tensor h = encoder_->EncodeNodes(masked.features, masked);
  std::vector<int32_t> idx(masked_nodes.begin(), masked_nodes.end());
  Tensor logits = decoder_->Forward(GatherRows(h, idx));
  return CrossEntropyWithLogits(logits, targets);
}

}  // namespace sgcl
