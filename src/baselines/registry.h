// Name-based factory over every pretraining method in the library, so
// experiment drivers (and downstream users) can construct methods from
// configuration strings.
#ifndef SGCL_BASELINES_REGISTRY_H_
#define SGCL_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/pretrainer.h"
#include "core/sgcl_config.h"

namespace sgcl {

// Every method name MakePretrainer accepts.
std::vector<std::string> RegisteredPretrainerNames();

// Builds a pretrainer by name. Baseline methods use `baseline_config`;
// "SGCL" uses `sgcl_config` (pass MakeUnsupervisedConfig(...) or a
// customized config). Returns NotFound for unknown names.
Result<std::unique_ptr<Pretrainer>> MakePretrainer(
    const std::string& name, const BaselineConfig& baseline_config,
    const SgclConfig& sgcl_config, uint64_t seed);

}  // namespace sgcl

#endif  // SGCL_BASELINES_REGISTRY_H_
