#include "baselines/graph_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sgcl {
namespace {

// FNV-1a over a sequence of int64 values.
int64_t HashSequence(const std::vector<int64_t>& values) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int64_t v : values) {
    uint64_t x = static_cast<uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<int64_t>(h & 0x7fffffffffffffffULL);
}

// Initial WL label: argmax of one-hot features, or degree when the
// feature row is all zero.
int64_t InitialLabel(const Graph& g, int64_t v,
                     const std::vector<int64_t>& degrees) {
  int64_t best_j = -1;
  float best = 0.0f;
  for (int64_t j = 0; j < g.feat_dim(); ++j) {
    if (g.feature(v, j) > best) {
      best = g.feature(v, j);
      best_j = j;
    }
  }
  if (best_j >= 0) return best_j;
  return 1000 + degrees[v];
}

double SparseDot(const std::unordered_map<int64_t, double>& a,
                 const std::unordered_map<int64_t, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [key, value] : small) {
    auto it = large.find(key);
    if (it != large.end()) dot += value * it->second;
  }
  return dot;
}

void CosineNormalize(std::vector<double>* gram, int64_t n) {
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    diag[i] = std::sqrt(std::max((*gram)[i * n + i], 1e-12));
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      (*gram)[i * n + j] /= diag[i] * diag[j];
    }
  }
}

}  // namespace

GraphKernel::GraphKernel(KernelKind kind, int wl_iterations,
                         int graphlet_samples, uint64_t seed)
    : kind_(kind),
      wl_iterations_(wl_iterations),
      graphlet_samples_(graphlet_samples),
      seed_(seed) {
  SGCL_CHECK_GE(wl_iterations, 1);
  SGCL_CHECK_GE(graphlet_samples, 10);
}

std::string GraphKernel::name() const {
  switch (kind_) {
    case KernelKind::kGraphlet:
      return "GL";
    case KernelKind::kWlSubtree:
      return "WL";
    case KernelKind::kDeepWl:
      return "DGK";
  }
  return "unknown";
}

std::unordered_map<int64_t, double> GraphKernel::WlFeatureMap(
    const Graph& graph) const {
  std::unordered_map<int64_t, double> histogram;
  const int64_t n = graph.num_nodes();
  if (n == 0) return histogram;
  const std::vector<int64_t> degrees = graph.Degrees();
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    labels[v] = InitialLabel(graph, v, degrees);
    histogram[labels[v]] += 1.0;
  }
  // Precompute neighbor lists once.
  std::vector<std::vector<int32_t>> nbrs(static_cast<size_t>(n));
  for (size_t r = 0; r < graph.edge_src().size(); ++r) {
    nbrs[graph.edge_src()[r]].push_back(graph.edge_dst()[r]);
  }
  for (int it = 0; it < wl_iterations_; ++it) {
    std::vector<int64_t> next(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
      std::vector<int64_t> signature;
      signature.reserve(nbrs[v].size() + 2);
      signature.push_back(it + 1);
      signature.push_back(labels[v]);
      std::vector<int64_t> neigh;
      neigh.reserve(nbrs[v].size());
      for (int32_t u : nbrs[v]) neigh.push_back(labels[u]);
      std::sort(neigh.begin(), neigh.end());
      signature.insert(signature.end(), neigh.begin(), neigh.end());
      next[v] = HashSequence(signature);
      histogram[next[v]] += 1.0;
    }
    labels.swap(next);
  }
  return histogram;
}

std::vector<double> GraphKernel::GraphletHistogram(const Graph& graph,
                                                   uint64_t seed) const {
  std::vector<double> hist(4, 0.0);
  const int64_t n = graph.num_nodes();
  if (n < 3) {
    hist[0] = 1.0;
    return hist;
  }
  Rng rng(seed);
  for (int s = 0; s < graphlet_samples_; ++s) {
    std::vector<int64_t> trio = rng.SampleWithoutReplacement(n, 3);
    int edges = graph.HasEdge(trio[0], trio[1]) +
                graph.HasEdge(trio[0], trio[2]) +
                graph.HasEdge(trio[1], trio[2]);
    hist[edges] += 1.0;
  }
  for (double& h : hist) h /= static_cast<double>(graphlet_samples_);
  return hist;
}

std::vector<double> GraphKernel::GramMatrix(
    const std::vector<const Graph*>& graphs) const {
  const int64_t n = static_cast<int64_t>(graphs.size());
  std::vector<double> gram(static_cast<size_t>(n * n), 0.0);

  if (kind_ == KernelKind::kGraphlet) {
    std::vector<std::vector<double>> hists(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      hists[i] = GraphletHistogram(*graphs[i],
                                   seed_ + static_cast<uint64_t>(i) * 7919);
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i; j < n; ++j) {
        double dot = 0.0;
        for (int b = 0; b < 4; ++b) dot += hists[i][b] * hists[j][b];
        gram[i * n + j] = gram[j * n + i] = dot;
      }
    }
    CosineNormalize(&gram, n);
    return gram;
  }

  std::vector<std::unordered_map<int64_t, double>> features(
      static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) features[i] = WlFeatureMap(*graphs[i]);

  if (kind_ == KernelKind::kWlSubtree) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i; j < n; ++j) {
        gram[i * n + j] = gram[j * n + i] =
            SparseDot(features[i], features[j]);
      }
    }
    CosineNormalize(&gram, n);
    return gram;
  }

  // DGK: embed each WL label into R^k via a random base vector smoothed
  // by within-graph label co-occurrence, then kernel = dot of embedded
  // graph vectors. This reproduces DGK's idea — similarity between
  // *different but related* substructure labels — without the full
  // skip-gram training (documented in DESIGN.md).
  constexpr int kDim = 16;
  std::unordered_map<int64_t, std::vector<double>> base;
  auto base_vec = [&](int64_t label) -> const std::vector<double>& {
    auto it = base.find(label);
    if (it != base.end()) return it->second;
    Rng lrng(seed_ ^ static_cast<uint64_t>(label));
    std::vector<double> v(kDim);
    for (double& x : v) x = lrng.Normal();
    return base.emplace(label, std::move(v)).first->second;
  };
  // Co-occurrence smoothing: each label's embedding is pulled toward the
  // centroid of labels it co-occurs with (in the same graph).
  std::unordered_map<int64_t, std::vector<double>> smoothed;
  std::unordered_map<int64_t, double> cooc_mass;
  for (int64_t i = 0; i < n; ++i) {
    // Graph centroid of base vectors, weighted by counts.
    std::vector<double> centroid(kDim, 0.0);
    double total = 0.0;
    for (const auto& [label, count] : features[i]) {
      const auto& bv = base_vec(label);
      for (int d = 0; d < kDim; ++d) centroid[d] += count * bv[d];
      total += count;
    }
    if (total <= 0.0) continue;
    for (double& x : centroid) x /= total;
    for (const auto& [label, count] : features[i]) {
      auto& sv = smoothed[label];
      if (sv.empty()) sv.assign(kDim, 0.0);
      for (int d = 0; d < kDim; ++d) sv[d] += count * centroid[d];
      cooc_mass[label] += count;
    }
  }
  auto embed = [&](int64_t label) {
    std::vector<double> v = base_vec(label);
    auto it = smoothed.find(label);
    if (it != smoothed.end()) {
      const double mass = cooc_mass[label];
      for (int d = 0; d < kDim; ++d) v[d] += 0.5 * it->second[d] / mass;
    }
    return v;
  };
  std::vector<std::vector<double>> graph_vecs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> gv(kDim, 0.0);
    for (const auto& [label, count] : features[i]) {
      std::vector<double> e = embed(label);
      for (int d = 0; d < kDim; ++d) gv[d] += count * e[d];
    }
    graph_vecs[i] = std::move(gv);
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double dot = 0.0;
      for (int d = 0; d < kDim; ++d) dot += graph_vecs[i][d] * graph_vecs[j][d];
      gram[i * n + j] = gram[j * n + i] = dot;
    }
  }
  // Dot products of smoothed embeddings can be negative; shift the Gram
  // to be PSD-ish by cosine normalization over absolute diagonal.
  for (int64_t i = 0; i < n; ++i) {
    gram[i * n + i] = std::max(gram[i * n + i], 1e-9);
  }
  CosineNormalize(&gram, n);
  return gram;
}

}  // namespace sgcl
