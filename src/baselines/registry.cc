#include "baselines/registry.h"

#include "baselines/adgcl.h"
#include "baselines/attr_masking.h"
#include "baselines/context_pred.h"
#include "baselines/gae.h"
#include "baselines/graphcl.h"
#include "baselines/infograph.h"
#include "baselines/joao.h"
#include "baselines/simgrace.h"
#include "baselines/view_generator.h"

namespace sgcl {

std::vector<std::string> RegisteredPretrainerNames() {
  return {"SGCL",        "InfoGraph", "Infomax",     "GraphCL",
          "JOAOv2",      "AD-GCL",    "SimGRACE",    "RGCL",
          "AutoGCL",     "AttrMasking", "ContextPred", "GAE",
          "No Pre-Train"};
}

Result<std::unique_ptr<Pretrainer>> MakePretrainer(
    const std::string& name, const BaselineConfig& baseline_config,
    const SgclConfig& sgcl_config, uint64_t seed) {
  BaselineConfig cfg = baseline_config;
  cfg.seed = seed;
  std::unique_ptr<Pretrainer> method;
  if (name == "SGCL") {
    method = std::make_unique<SgclPretrainer>(sgcl_config, seed);
  } else if (name == "InfoGraph") {
    method = std::make_unique<InfoGraphBaseline>(cfg);
  } else if (name == "Infomax") {
    method = std::make_unique<InfoGraphBaseline>(cfg, "Infomax");
  } else if (name == "GraphCL") {
    method = std::make_unique<GraphClBaseline>(cfg);
  } else if (name == "JOAOv2") {
    method = std::make_unique<JoaoBaseline>(cfg);
  } else if (name == "AD-GCL") {
    method = std::make_unique<AdGclBaseline>(cfg);
  } else if (name == "SimGRACE") {
    method = std::make_unique<SimGraceBaseline>(cfg);
  } else if (name == "RGCL") {
    method =
        std::make_unique<LearnableViewBaseline>(cfg, ViewGenVariant::kRgcl);
  } else if (name == "AutoGCL") {
    method = std::make_unique<LearnableViewBaseline>(
        cfg, ViewGenVariant::kAutoGcl);
  } else if (name == "AttrMasking") {
    method = std::make_unique<AttrMaskingBaseline>(cfg);
  } else if (name == "ContextPred") {
    method = std::make_unique<ContextPredBaseline>(cfg);
  } else if (name == "GAE") {
    method = std::make_unique<GaeBaseline>(cfg);
  } else if (name == "No Pre-Train") {
    method = std::make_unique<NoPretrain>(cfg, seed);
  } else {
    return Status::NotFound("unknown pretrainer \"" + name + "\"");
  }
  return method;
}

}  // namespace sgcl
