// Traditional graph-kernel baselines: GL (graphlet sampling kernel,
// Shervashidze et al., AISTATS'09), WL (Weisfeiler-Lehman subtree kernel,
// JMLR'11), and DGK (deep graph kernel, KDD'15 — WL features with label
// embeddings learned from co-occurrence; see DESIGN.md for the
// simplification).
#ifndef SGCL_BASELINES_GRAPH_KERNELS_H_
#define SGCL_BASELINES_GRAPH_KERNELS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace sgcl {

enum class KernelKind { kGraphlet, kWlSubtree, kDeepWl };

class GraphKernel {
 public:
  explicit GraphKernel(KernelKind kind, int wl_iterations = 3,
                       int graphlet_samples = 300, uint64_t seed = 0);

  // Cosine-normalized Gram matrix over `graphs` (row-major n x n).
  std::vector<double> GramMatrix(
      const std::vector<const Graph*>& graphs) const;

  std::string name() const;
  KernelKind kind() const { return kind_; }

  // Sparse WL subtree feature histogram of one graph (all iterations
  // pooled). Exposed for tests.
  std::unordered_map<int64_t, double> WlFeatureMap(const Graph& graph) const;

  // 4-bin histogram over sampled 3-node graphlets (0..3 internal edges),
  // normalized to sum 1. Exposed for tests.
  std::vector<double> GraphletHistogram(const Graph& graph,
                                        uint64_t seed) const;

 private:
  KernelKind kind_;
  int wl_iterations_;
  int graphlet_samples_;
  uint64_t seed_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_GRAPH_KERNELS_H_
