#include "baselines/joao.h"

#include <cmath>

namespace sgcl {

JoaoBaseline::JoaoBaseline(const BaselineConfig& config)
    : GraphClBaseline(config, GraphAug::kNodeDrop, GraphAug::kNodeDrop,
                      "JOAOv2"),
      pool_({GraphAug::kNodeDrop, GraphAug::kEdgePerturb, GraphAug::kAttrMask,
             GraphAug::kSubgraph}),
      weights_(pool_.size(), 1.0),
      epoch_loss_(pool_.size(), 0.0),
      epoch_count_(pool_.size(), 0) {}

Tensor JoaoBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                               Rng* rng) {
  // Sample the pair for this batch from the current distribution.
  const int64_t a1 = rng->Categorical(weights_);
  const int64_t a2 = rng->Categorical(weights_);
  aug1_ = pool_[a1];
  aug2_ = pool_[a2];
  Tensor loss = GraphClBaseline::BatchLoss(graphs, rng);
  epoch_loss_[a1] += loss.item();
  epoch_loss_[a2] += loss.item();
  epoch_count_[a1] += 1;
  epoch_count_[a2] += 1;
  return loss;
}

void JoaoBaseline::OnEpochEnd(int epoch) {
  (void)epoch;
  // Outer (max) step: softmax over mean losses — harder augmentations get
  // sampled more, regularized toward uniform.
  double max_mean = 0.0;
  std::vector<double> means(pool_.size(), 0.0);
  for (size_t i = 0; i < pool_.size(); ++i) {
    if (epoch_count_[i] > 0) {
      means[i] = epoch_loss_[i] / static_cast<double>(epoch_count_[i]);
    }
    max_mean = std::max(max_mean, means[i]);
    epoch_loss_[i] = 0.0;
    epoch_count_[i] = 0;
  }
  for (size_t i = 0; i < pool_.size(); ++i) {
    weights_[i] = 0.25 + std::exp(means[i] - max_mean);
  }
}

}  // namespace sgcl
