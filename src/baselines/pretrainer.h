// Common interface for self-supervised graph pretrainers (SGCL and every
// baseline), plus a shared minibatch training loop.
#ifndef SGCL_BASELINES_PRETRAINER_H_
#define SGCL_BASELINES_PRETRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sgcl_trainer.h"
#include "graph/dataset.h"
#include "graph/graph_source.h"
#include "nn/encoder.h"
#include "tensor/optimizer.h"

namespace sgcl {

struct BaselineConfig {
  EncoderConfig encoder;
  float tau = 0.2f;
  float learning_rate = 1e-3f;
  int epochs = 40;
  int batch_size = 128;
  float grad_clip = 5.0f;
  // Generic augmentation strength (node-drop / edge-perturb / mask ratio).
  float aug_ratio = 0.2f;
  uint64_t seed = 0;
};

// Uniform handle over pretraining methods so evaluation harnesses and
// benches can iterate "methods" generically.
class Pretrainer {
 public:
  virtual ~Pretrainer() = default;

  // Self-supervised pretraining over source[indices] (all when empty).
  // The source may be in-memory or a sharded on-disk store; methods
  // fetch batches through GraphSource::Fetch and never assume resident
  // graphs.
  virtual PretrainStats Pretrain(const GraphSource& source,
                                 const std::vector<int64_t>& indices) = 0;

  // Convenience adapter: pretrains from an in-memory dataset by wrapping
  // it in a borrowing InMemorySource for the call. Non-virtual; derived
  // classes re-expose it with `using Pretrainer::Pretrain;`.
  PretrainStats Pretrain(const GraphDataset& dataset,
                         const std::vector<int64_t>& indices);

  // Frozen graph embeddings for downstream evaluation.
  virtual Tensor EmbedGraphs(
      const std::vector<const Graph*>& graphs) const = 0;

  // The representation encoder, exposed for fine-tuning protocols.
  virtual GnnEncoder* mutable_encoder() = 0;

  virtual std::string name() const = 0;
};

// Shared epoch/minibatch loop: subclasses provide the per-batch loss.
// Parameters returned by TrainableParameters() are optimized with Adam.
class GclPretrainerBase : public Pretrainer {
 public:
  GclPretrainerBase(const BaselineConfig& config, std::string name);

  using Pretrainer::Pretrain;
  PretrainStats Pretrain(const GraphSource& source,
                         const std::vector<int64_t>& indices) override;
  Tensor EmbedGraphs(const std::vector<const Graph*>& graphs) const override;
  GnnEncoder* mutable_encoder() override { return encoder_.get(); }
  std::string name() const override { return name_; }

 protected:
  // The minibatch objective; must be differentiable w.r.t. the tensors
  // returned by TrainableParameters().
  virtual Tensor BatchLoss(const std::vector<const Graph*>& graphs,
                           Rng* rng) = 0;
  virtual std::vector<Tensor> TrainableParameters() const;
  // Hook called once per epoch (e.g., JOAO's augmentation re-weighting).
  virtual void OnEpochEnd(int epoch) { (void)epoch; }

  BaselineConfig config_;
  Rng rng_;
  std::unique_ptr<GnnEncoder> encoder_;

 private:
  std::string name_;
};

// SGCL exposed through the same interface for side-by-side benches.
class SgclPretrainer : public Pretrainer {
 public:
  SgclPretrainer(const SgclConfig& config, uint64_t seed)
      : trainer_(config, seed) {}

  using Pretrainer::Pretrain;
  PretrainStats Pretrain(const GraphSource& source,
                         const std::vector<int64_t>& indices) override {
    // The baseline interface predates the Result-returning trainer API;
    // invalid inputs are programming errors in bench code, so crash loudly.
    return trainer_.Pretrain(source, indices).value();
  }
  Tensor EmbedGraphs(const std::vector<const Graph*>& graphs) const override {
    return trainer_.model().EmbedGraphs(graphs);
  }
  GnnEncoder* mutable_encoder() override {
    return trainer_.model().mutable_encoder_k();
  }
  std::string name() const override { return "SGCL"; }

  SgclTrainer& trainer() { return trainer_; }

 private:
  SgclTrainer trainer_;
};

// Control that performs no pretraining ("No Pre-Train" rows).
class NoPretrain : public Pretrainer {
 public:
  NoPretrain(const BaselineConfig& config, uint64_t seed);

  using Pretrainer::Pretrain;
  PretrainStats Pretrain(const GraphSource& source,
                         const std::vector<int64_t>& indices) override;
  Tensor EmbedGraphs(const std::vector<const Graph*>& graphs) const override;
  GnnEncoder* mutable_encoder() override { return encoder_.get(); }
  std::string name() const override { return "No Pre-Train"; }

 private:
  std::unique_ptr<GnnEncoder> encoder_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_PRETRAINER_H_
