#include "baselines/simgrace.h"

#include <cmath>

#include "core/contrastive_loss.h"
#include "tensor/ops.h"

namespace sgcl {

SimGraceBaseline::SimGraceBaseline(const BaselineConfig& config, float eta)
    : GclPretrainerBase(config, "SimGRACE"), eta_(eta) {
  perturbed_ = std::make_unique<GnnEncoder>(config_.encoder, &rng_);
  projection_ = std::make_unique<Mlp>(
      std::vector<int64_t>{config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim,
                           config_.encoder.hidden_dim},
      &rng_);
}

std::vector<Tensor> SimGraceBaseline::TrainableParameters() const {
  // The perturbed tower is derived, not trained.
  return ConcatParameters({encoder_.get(), projection_.get()});
}

void SimGraceBaseline::RefreshPerturbedEncoder(Rng* rng) {
  perturbed_->CopyParametersFrom(*encoder_);
  std::vector<Tensor> params = perturbed_->Parameters();
  for (Tensor& p : params) {
    // Per-tensor std as the perturbation scale (SimGRACE's sigma_l).
    double mean = 0.0, sq = 0.0;
    const auto& data = p.impl()->data;
    if (data.empty()) continue;
    for (float v : data) {
      mean += v;
      sq += static_cast<double>(v) * v;
    }
    mean /= static_cast<double>(data.size());
    const double var =
        std::max(sq / static_cast<double>(data.size()) - mean * mean, 1e-12);
    const double sigma = eta_ * std::sqrt(var);
    for (float& v : p.impl()->data) {
      v += static_cast<float>(rng->Normal(0.0, sigma));
    }
  }
}

Tensor SimGraceBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                                   Rng* rng) {
  RefreshPerturbedEncoder(rng);
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  Tensor z1 = projection_->Forward(encoder_->EncodeGraphs(batch));
  // The perturbed tower is a constant view (no grad into it).
  Tensor z2 = projection_->Forward(
      perturbed_->EncodeGraphs(batch).Detach());
  return MulScalar(Add(SemanticInfoNceLoss(z1, z2, config_.tau),
                       SemanticInfoNceLoss(z2, z1, config_.tau)),
                   0.5f);
}

}  // namespace sgcl
