#include "baselines/gae.h"

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

GaeBaseline::GaeBaseline(const BaselineConfig& config)
    : GclPretrainerBase(config, "GAE") {}

Tensor GaeBaseline::BatchLoss(const std::vector<const Graph*>& graphs,
                              Rng* rng) {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  Tensor h = encoder_->EncodeNodes(batch.features, batch);
  const int64_t e = static_cast<int64_t>(batch.edge_src.size());
  if (e == 0) return SumSquares(Mean(h));  // nothing to reconstruct
  // Positive pairs: existing edges. Negative pairs: uniformly sampled
  // node pairs within the batch (an equal number).
  std::vector<int32_t> src = batch.edge_src;
  std::vector<int32_t> dst = batch.edge_dst;
  const int64_t n = batch.num_nodes;
  std::vector<float> targets(static_cast<size_t>(2 * e), 0.0f);
  for (int64_t r = 0; r < e; ++r) targets[r] = 1.0f;
  for (int64_t r = 0; r < e; ++r) {
    src.push_back(static_cast<int32_t>(rng->UniformInt(n)));
    dst.push_back(static_cast<int32_t>(rng->UniformInt(n)));
  }
  Tensor logits = RowSum(Mul(GatherRows(h, src), GatherRows(h, dst)));
  return BceWithLogits(logits,
                       Tensor::FromVector({2 * e, 1}, std::move(targets)),
                       Tensor::Ones({2 * e, 1}));
}

}  // namespace sgcl
