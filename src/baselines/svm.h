// C-SVM trained with SMO (Platt's simplified variant), supporting RBF,
// linear, and user-precomputed kernels, with one-vs-rest multiclass.
//
// This is the "non-linear SVM classifier" of the paper's unsupervised
// evaluation protocol (embeddings -> SVM -> 10-fold CV accuracy) and the
// kernel classifier for the GL/WL/DGK graph-kernel baselines.
#ifndef SGCL_BASELINES_SVM_H_
#define SGCL_BASELINES_SVM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace sgcl {

enum class SvmKernel { kLinear, kRbf };

struct SvmConfig {
  SvmKernel kernel = SvmKernel::kRbf;
  double c = 1.0;        // box constraint
  double gamma = 0.0;    // RBF width; 0 => 1 / (dim * feature variance)
  double tolerance = 1e-3;
  int max_passes = 5;    // SMO passes without alpha changes before stop
  int max_iterations = 2000;
  uint64_t seed = 0;
};

// Binary soft-margin SVM over a precomputed kernel matrix.
class BinarySvm {
 public:
  explicit BinarySvm(const SvmConfig& config) : config_(config) {}

  // kernel: n x n Gram matrix (row-major); labels: +1 / -1.
  void TrainOnKernel(const std::vector<double>& kernel, int64_t n,
                     const std::vector<int>& labels);

  // Decision value for a test point given its kernel row against the
  // training points, k(x, x_i) for i in [0, n).
  double Decide(const std::vector<double>& kernel_row) const;

 private:
  SvmConfig config_;
  std::vector<double> alpha_;
  std::vector<int> labels_;
  double bias_ = 0.0;
};

// Multiclass (one-vs-rest) SVM over dense feature vectors or a
// precomputed kernel.
class SvmClassifier {
 public:
  explicit SvmClassifier(const SvmConfig& config = SvmConfig());

  // features: n x dim row-major; labels in [0, num_classes).
  void Train(const std::vector<float>& features, int64_t n, int64_t dim,
             const std::vector<int>& labels, int num_classes);

  // Predicts the class of one dense feature vector (size dim).
  int Predict(const float* x) const;

  // Accuracy over a test set.
  double Evaluate(const std::vector<float>& features, int64_t n,
                  const std::vector<int>& labels) const;

  // --- Precomputed-kernel variant (graph kernels). ---
  // train_kernel: n x n Gram over training graphs.
  void TrainOnKernel(const std::vector<double>& train_kernel, int64_t n,
                     const std::vector<int>& labels, int num_classes);
  // test_rows: m x n kernel values k(test_j, train_i).
  std::vector<int> PredictFromKernelRows(const std::vector<double>& test_rows,
                                         int64_t m) const;

 private:
  double KernelValue(const float* a, const float* b, int64_t dim) const;

  SvmConfig config_;
  int num_classes_ = 0;
  int64_t train_n_ = 0;
  int64_t dim_ = 0;
  double gamma_ = 1.0;
  std::vector<float> train_features_;     // kept for kernel evaluation
  std::vector<BinarySvm> per_class_;
};

}  // namespace sgcl

#endif  // SGCL_BASELINES_SVM_H_
