// The SGCL model (paper Fig. 2): generator tower f_q with the
// augmentation-probability head, representation tower f_k with the
// projection head, the Lipschitz constant generator, and the Eq. 27
// objective.
#ifndef SGCL_CORE_SGCL_MODEL_H_
#define SGCL_CORE_SGCL_MODEL_H_

#include <memory>
#include <vector>

#include "core/contrastive_loss.h"
#include "core/lipschitz_generator.h"
#include "core/sgcl_config.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace sgcl {

struct SgclLossStats {
  float total = 0.0f;
  float semantic = 0.0f;    // L_s (Eq. 24)
  float complement = 0.0f;  // L_c (Eq. 25)
  float weight_norm = 0.0f; // Θ_W (Eq. 26)
};

class SgclModel : public Module {
 public:
  SgclModel(const SgclConfig& config, Rng* rng);

  // The full objective L = E[L_s + λ_c L_c] + λ_W Θ_W over a minibatch.
  // Needs at least 2 graphs (InfoNCE negatives). `rng` drives the
  // stochastic node dropping. Gradients flow into f_k, the projection
  // head, and — through the soft preservation probabilities multiplied
  // into view pooling (a concrete relaxation, as in learnable-view-
  // generator GCL) — into f_q and the probability head.
  Tensor ComputeLoss(const std::vector<const Graph*>& graphs, Rng* rng,
                     SgclLossStats* stats = nullptr);

  // Frozen graph embeddings for downstream evaluation: f_k node encodings
  // pooled, with the projection head thrown away (paper §VI-A).
  Tensor EmbedGraphs(const std::vector<const Graph*>& graphs) const;

  // Per-node Lipschitz constants of `graph` under the current f_q.
  std::vector<float> NodeLipschitzConstants(const Graph& graph) const;

  // Per-node preservation probabilities P(v_i) (Eq. 18) — the quantity
  // visualized in Fig. 7.
  std::vector<float> NodePreservationProbs(const Graph& graph) const;

  std::vector<Tensor> Parameters() const override;

  const SgclConfig& config() const { return config_; }
  const GnnEncoder& encoder_k() const { return *f_k_; }
  const GnnEncoder& encoder_q() const { return *f_q_; }
  // w in Eq. 18 (hidden -> 1, no bias); read by the serving layer's
  // fused keep-probability path (serve/inference_session.*).
  const Linear& prob_head() const { return *prob_head_; }
  GnnEncoder* mutable_encoder_k() { return f_k_.get(); }

 private:
  // Learned per-node keep scores sigma(h_i w^T) on the autograd tape.
  Tensor LearnedKeepScores(const GraphBatch& batch) const;

  SgclConfig config_;
  std::unique_ptr<GnnEncoder> f_q_;
  std::unique_ptr<GnnEncoder> f_k_;
  std::unique_ptr<Mlp> projection_;   // 2-layer head on pooled f_k output
  std::unique_ptr<Linear> prob_head_; // w in Eq. 18 (hidden -> 1, no bias)
  std::unique_ptr<LipschitzGenerator> generator_;
};

}  // namespace sgcl

#endif  // SGCL_CORE_SGCL_MODEL_H_
