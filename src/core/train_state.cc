#include "core/train_state.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/fault.h"
#include "common/io.h"
#include "common/string_util.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".sgcl";

// FNV-1a 64-bit.
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string SerializeOptimizerSection(const AdamState& state) {
  BufferWriter writer;
  writer.WriteI64(state.t);
  writer.WriteI64(static_cast<int64_t>(state.m.size()));
  for (size_t k = 0; k < state.m.size(); ++k) {
    writer.WriteFloatVector(state.m[k]);
    writer.WriteFloatVector(state.v[k]);
  }
  return writer.TakeBytes();
}

Status ParseOptimizerSection(const std::string& bytes,
                             const std::string& what, AdamState* out) {
  BufferReader reader(bytes);
  out->t = reader.ReadI64();
  const int64_t count = reader.ReadI64();
  if (!reader.ok() || count < 0) {
    return Status::InvalidArgument(
        StrFormat("%s optimizer section has a corrupt header", what.c_str()));
  }
  out->m.clear();
  out->v.clear();
  out->m.reserve(static_cast<size_t>(count));
  out->v.reserve(static_cast<size_t>(count));
  for (int64_t k = 0; k < count; ++k) {
    out->m.push_back(reader.ReadFloatVector());
    out->v.push_back(reader.ReadFloatVector());
    if (!reader.ok()) {
      return Status::InvalidArgument(StrFormat(
          "%s optimizer section moment %lld is corrupt", what.c_str(),
          static_cast<long long>(k)));
    }
  }
  return reader.Finish(what + " optimizer section");
}

std::string SerializeRngSection(const RngState& state) {
  BufferWriter writer;
  writer.WriteI64(1);  // stream count (forward compat with forked streams)
  for (uint64_t word : state.s) writer.WriteU64(word);
  writer.WriteU32(state.has_cached_normal ? 1u : 0u);
  writer.WriteF64(state.cached_normal);
  return writer.TakeBytes();
}

Status ParseRngSection(const std::string& bytes, const std::string& what,
                       RngState* out) {
  BufferReader reader(bytes);
  const int64_t streams = reader.ReadI64();
  if (!reader.ok() || streams != 1) {
    return Status::InvalidArgument(StrFormat(
        "%s rng section declares %lld streams, expected 1", what.c_str(),
        static_cast<long long>(streams)));
  }
  for (uint64_t& word : out->s) word = reader.ReadU64();
  const uint32_t has_cached = reader.ReadU32();
  out->cached_normal = reader.ReadF64();
  if (!reader.ok() || has_cached > 1) {
    return Status::InvalidArgument(
        StrFormat("%s rng section is corrupt", what.c_str()));
  }
  out->has_cached_normal = has_cached == 1;
  return reader.Finish(what + " rng section");
}

std::string SerializeCursorSection(const TrainState& state) {
  BufferWriter writer;
  writer.WriteI64(state.next_epoch);
  writer.WriteI64(state.total_epochs);
  writer.WriteI64(state.total_batches);
  writer.WriteI64Vector(state.order);
  writer.WriteFloatVector(state.epoch_losses);
  writer.WriteI64(static_cast<int64_t>(state.epoch_seconds.size()));
  for (double s : state.epoch_seconds) writer.WriteF64(s);
  // Streaming cursor extension — appended so pre-extension parsers were
  // never promised these bytes and post-extension parsers accept their
  // absence (legacy checkpoints resume with a zero cursor).
  writer.WriteI64(state.batch_cursor);
  writer.WriteF64(state.partial_loss_sum);
  writer.WriteU64(state.source_fingerprint);
  writer.WriteU64(state.train_seed);
  return writer.TakeBytes();
}

Status ParseCursorSection(const std::string& bytes, const std::string& what,
                          TrainState* out) {
  BufferReader reader(bytes);
  const int64_t next_epoch = reader.ReadI64();
  const int64_t total_epochs = reader.ReadI64();
  out->total_batches = reader.ReadI64();
  out->order = reader.ReadI64Vector();
  out->epoch_losses = reader.ReadFloatVector();
  const int64_t seconds_count = reader.ReadI64();
  if (!reader.ok() || next_epoch < 0 || total_epochs < 0 ||
      next_epoch > total_epochs || seconds_count < 0) {
    return Status::InvalidArgument(
        StrFormat("%s cursor section is corrupt", what.c_str()));
  }
  out->next_epoch = static_cast<int>(next_epoch);
  out->total_epochs = static_cast<int>(total_epochs);
  out->epoch_seconds.resize(static_cast<size_t>(seconds_count));
  for (double& s : out->epoch_seconds) s = reader.ReadF64();
  if (reader.remaining() > 0) {
    out->batch_cursor = reader.ReadI64();
    out->partial_loss_sum = reader.ReadF64();
    out->source_fingerprint = reader.ReadU64();
    if (!reader.ok() || out->batch_cursor < 0 ||
        (out->batch_cursor > 0 && next_epoch >= total_epochs)) {
      return Status::InvalidArgument(
          StrFormat("%s cursor section has a corrupt batch cursor",
                    what.c_str()));
    }
    // Second cursor extension (same appended-field discipline): the
    // run's original trainer seed, for distributed batch-seed replay.
    if (reader.remaining() > 0) out->train_seed = reader.ReadU64();
  }
  if (static_cast<int64_t>(out->epoch_losses.size()) != next_epoch ||
      seconds_count != next_epoch) {
    return Status::InvalidArgument(StrFormat(
        "%s cursor section: %zu losses / %lld timings for %lld completed "
        "epochs",
        what.c_str(), out->epoch_losses.size(),
        static_cast<long long>(seconds_count),
        static_cast<long long>(next_epoch)));
  }
  return reader.Finish(what + " cursor section");
}

// Resume-order key of a checkpoint file: an end-of-epoch file
// "ckpt-<e>.sgcl" maps to (e, 0) and a mid-epoch file "ckpt-<e>-b<n>.sgcl"
// to (e, n). Epoch e's mid-epoch checkpoints carry next_epoch == e, so
// (epoch, batch) lexicographic order is exactly training progress order.
struct CheckpointKey {
  int64_t epoch = 0;
  int64_t batch = 0;
  bool operator<(const CheckpointKey& o) const {
    return epoch != o.epoch ? epoch < o.epoch : batch < o.batch;
  }
};

bool ParseDigits(const std::string& digits, int64_t* out) {
  if (digits.empty()) return false;
  int64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > (int64_t{1} << 40)) return false;
  }
  *out = v;
  return true;
}

// The key encoded in a checkpoint file name, or nothing for foreign
// names (including the ".tmp" files a crashed atomic write leaves
// behind).
std::optional<CheckpointKey> KeyFromFileName(const std::string& name) {
  const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) {
    return std::nullopt;
  }
  if (name.compare(name.size() - suffix_len, suffix_len,
                   kCheckpointSuffix) != 0) {
    return std::nullopt;
  }
  const std::string body =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  CheckpointKey key;
  const size_t sep = body.find("-b");
  if (sep == std::string::npos) {
    if (!ParseDigits(body, &key.epoch)) return std::nullopt;
    return key;
  }
  if (!ParseDigits(body.substr(0, sep), &key.epoch)) return std::nullopt;
  if (!ParseDigits(body.substr(sep + 2), &key.batch)) return std::nullopt;
  if (key.batch <= 0) return std::nullopt;
  return key;
}

// All complete checkpoints in `dir` as (key, path), sorted by key.
std::vector<std::pair<CheckpointKey, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<CheckpointKey, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (const auto key = KeyFromFileName(name); key.has_value()) {
      found.emplace_back(*key, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) {
              return a.first < b.first ||
                     (!(b.first < a.first) && a.second < b.second);
            });
  return found;
}

}  // namespace

uint64_t ConfigFingerprint(const SgclConfig& config) {
  // Canonical little-endian field dump. Append-only: new fields go at
  // the end so old fingerprints stay stable under code that never reads
  // the new field.
  BufferWriter writer;
  writer.WriteU32(static_cast<uint32_t>(config.encoder.arch));
  writer.WriteI64(config.encoder.in_dim);
  writer.WriteI64(config.encoder.hidden_dim);
  writer.WriteI64(config.encoder.num_layers);
  writer.WriteU32(static_cast<uint32_t>(config.encoder.pooling));
  writer.WriteI64(config.encoder.gat_heads);
  writer.WriteU32(config.encoder.use_layer_norm ? 1u : 0u);
  writer.WriteI64(config.proj_dim);
  writer.WriteF32(config.tau);
  writer.WriteF32(config.lambda_c);
  writer.WriteF32(config.lambda_w);
  writer.WriteF64(config.rho);
  writer.WriteU32(static_cast<uint32_t>(config.augmentation));
  writer.WriteU32(static_cast<uint32_t>(config.lipschitz_mode));
  writer.WriteI64(config.max_view_nodes);
  writer.WriteU32(config.semantic_pooling ? 1u : 0u);
  writer.WriteF32(config.generator_loss_weight);
  writer.WriteF32(config.learning_rate);
  writer.WriteI64(config.epochs);
  writer.WriteI64(config.batch_size);
  writer.WriteF32(config.grad_clip);
  return Fnv1a(writer.bytes());
}

std::string SerializeTrainState(const TrainState& state) {
  BufferWriter config_writer;
  config_writer.WriteU64(state.config_fingerprint);

  std::vector<CheckpointSection> sections;
  sections.push_back({static_cast<uint32_t>(CheckpointSectionId::kConfig),
                      config_writer.TakeBytes()});
  sections.push_back({static_cast<uint32_t>(CheckpointSectionId::kModel),
                      state.model_params});
  sections.push_back({static_cast<uint32_t>(CheckpointSectionId::kOptimizer),
                      SerializeOptimizerSection(state.optimizer)});
  sections.push_back({static_cast<uint32_t>(CheckpointSectionId::kRng),
                      SerializeRngSection(state.rng)});
  sections.push_back({static_cast<uint32_t>(CheckpointSectionId::kCursor),
                      SerializeCursorSection(state)});
  return SerializeCheckpointV2(sections);
}

Result<TrainState> ParseTrainState(const std::string& bytes,
                                   const std::string& what) {
  SGCL_ASSIGN_OR_RETURN(const std::vector<CheckpointSection> sections,
                        ParseCheckpointV2(bytes, what));
  TrainState state;

  SGCL_ASSIGN_OR_RETURN(
      const std::string config_bytes,
      FindCheckpointSection(sections, CheckpointSectionId::kConfig, what));
  BufferReader config_reader(config_bytes);
  state.config_fingerprint = config_reader.ReadU64();
  SGCL_RETURN_NOT_OK(config_reader.Finish(what + " config section"));

  SGCL_ASSIGN_OR_RETURN(
      state.model_params,
      FindCheckpointSection(sections, CheckpointSectionId::kModel, what));

  SGCL_ASSIGN_OR_RETURN(
      const std::string optimizer_bytes,
      FindCheckpointSection(sections, CheckpointSectionId::kOptimizer, what));
  SGCL_RETURN_NOT_OK(
      ParseOptimizerSection(optimizer_bytes, what, &state.optimizer));

  SGCL_ASSIGN_OR_RETURN(
      const std::string rng_bytes,
      FindCheckpointSection(sections, CheckpointSectionId::kRng, what));
  SGCL_RETURN_NOT_OK(ParseRngSection(rng_bytes, what, &state.rng));

  SGCL_ASSIGN_OR_RETURN(
      const std::string cursor_bytes,
      FindCheckpointSection(sections, CheckpointSectionId::kCursor, what));
  SGCL_RETURN_NOT_OK(ParseCursorSection(cursor_bytes, what, &state));

  return state;
}

Status SaveTrainCheckpoint(const TrainState& state, const std::string& path) {
  if (auto fault = FaultInjector::Global().Check("checkpoint/serialize");
      fault.has_value()) {
    // Phase boundary: dies before any byte reaches disk.
    if (*fault == FaultKind::kCrash) {
      return SimulatedCrash("checkpoint/serialize");
    }
    return Status::Internal(StrFormat(
        "injected failure serializing checkpoint %s", path.c_str()));
  }
  return AtomicWriteFile(path, SerializeTrainState(state));
}

Result<TrainState> LoadTrainCheckpoint(const std::string& path) {
  SGCL_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return ParseTrainState(bytes, path);
}

std::string CheckpointFileName(const std::string& dir, int next_epoch) {
  return StrFormat("%s/%s%06d%s", dir.c_str(), kCheckpointPrefix, next_epoch,
                   kCheckpointSuffix);
}

std::string MidEpochCheckpointFileName(const std::string& dir, int epoch,
                                       int64_t batch_cursor) {
  return StrFormat("%s/%s%06d-b%08lld%s", dir.c_str(), kCheckpointPrefix,
                   epoch, static_cast<long long>(batch_cursor),
                   kCheckpointSuffix);
}

Result<std::string> FindLatestCheckpoint(const std::string& dir) {
  const auto found = ListCheckpoints(dir);
  if (found.empty()) {
    return Status::NotFound(
        StrFormat("no checkpoints under %s", dir.c_str()));
  }
  return found.back().second;
}

Status PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last <= 0) return Status::OK();
  auto found = ListCheckpoints(dir);
  if (static_cast<int64_t>(found.size()) <= keep_last) return Status::OK();
  if (auto fault = FaultInjector::Global().Check("checkpoint/prune");
      fault.has_value()) {
    // Pruning is after the new checkpoint is durable; dying here only
    // leaves extra old checkpoints behind.
    if (*fault == FaultKind::kCrash) return SimulatedCrash("checkpoint/prune");
    return Status::Internal(
        StrFormat("injected failure pruning checkpoints in %s", dir.c_str()));
  }
  const size_t delete_count = found.size() - static_cast<size_t>(keep_last);
  for (size_t i = 0; i < delete_count; ++i) {
    std::error_code ec;
    std::filesystem::remove(found[i].second, ec);
    if (ec) {
      return Status::Internal(StrFormat("cannot delete %s: %s",
                                        found[i].second.c_str(),
                                        ec.message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace sgcl
