#include "core/contrastive_loss.h"

#include "tensor/ops.h"

namespace sgcl {
namespace {

// Row-wise similarity matrix of L2-normalized embeddings, scaled by 1/tau.
Tensor ScaledCosineSim(const Tensor& a, const Tensor& b, float tau) {
  SGCL_CHECK_GT(tau, 0.0f);
  return MulScalar(MatMulTransB(RowL2Normalize(a), RowL2Normalize(b)),
                   1.0f / tau);
}

// Diagonal of a square matrix as a [B,1] column.
Tensor DiagColumn(const Tensor& m) {
  const int64_t b = m.rows();
  SGCL_CHECK_EQ(b, m.cols());
  std::vector<float> eye(static_cast<size_t>(b * b), 0.0f);
  for (int64_t i = 0; i < b; ++i) eye[i * b + i] = 1.0f;
  Tensor identity = Tensor::FromVector({b, b}, std::move(eye));
  return RowSum(Mul(m, identity));
}

}  // namespace

Tensor SemanticInfoNceLoss(const Tensor& z_anchor, const Tensor& z_sample,
                           float tau) {
  SGCL_CHECK(z_anchor.shape() == z_sample.shape());
  const int64_t b = z_anchor.rows();
  SGCL_CHECK_GE(b, 2);
  Tensor sim = ScaledCosineSim(z_anchor, z_sample, tau);  // [B,B]
  Tensor pos = DiagColumn(sim);                            // [B,1]
  // Off-diagonal mask for the Eq. 24 denominator (j != i).
  std::vector<float> off(static_cast<size_t>(b * b), 1.0f);
  for (int64_t i = 0; i < b; ++i) off[i * b + i] = 0.0f;
  Tensor off_mask = Tensor::FromVector({b, b}, std::move(off));
  // Cosine/tau scores are bounded (|s| <= 1/tau), so a plain exp-sum is
  // numerically safe without a max-shift.
  Tensor denom = RowSum(Mul(Exp(sim), off_mask));          // [B,1]
  return Mean(Sub(Log(denom), pos));
}

Tensor ComplementLoss(const Tensor& z_anchor, const Tensor& z_sample,
                      const Tensor& z_complement, float tau) {
  SGCL_CHECK(z_anchor.shape() == z_sample.shape());
  SGCL_CHECK_EQ(z_anchor.cols(), z_complement.cols());
  Tensor pos = DiagColumn(ScaledCosineSim(z_anchor, z_sample, tau));  // [B,1]
  Tensor sim_c = ScaledCosineSim(z_anchor, z_complement, tau);  // [B,Bc]
  Tensor denom = Add(Exp(pos), RowSum(Exp(sim_c)));             // [B,1]
  return Mean(Sub(Log(denom), pos));
}

Tensor WeightNormRegularizer(const std::vector<Tensor>& weights) {
  SGCL_CHECK(!weights.empty());
  Tensor total = FrobeniusNorm(weights[0]);
  for (size_t i = 1; i < weights.size(); ++i) {
    total = Add(total, FrobeniusNorm(weights[i]));
  }
  return total;
}

}  // namespace sgcl
