// Self-supervised pretraining loop for SGCL.
#ifndef SGCL_CORE_SGCL_TRAINER_H_
#define SGCL_CORE_SGCL_TRAINER_H_

#include <memory>
#include <vector>

#include "core/sgcl_model.h"
#include "graph/dataset.h"
#include "tensor/optimizer.h"

namespace sgcl {

struct PretrainStats {
  std::vector<float> epoch_losses;  // mean minibatch loss per epoch
};

class SgclTrainer {
 public:
  SgclTrainer(const SgclConfig& config, uint64_t seed);

  // Runs config.epochs of Adam over shuffled minibatches of `graphs`
  // (indices into `dataset`; empty = all graphs). Minibatches with fewer
  // than 2 graphs are skipped (InfoNCE needs a negative).
  PretrainStats Pretrain(const GraphDataset& dataset,
                         const std::vector<int64_t>& indices = {});

  SgclModel& model() { return *model_; }
  const SgclModel& model() const { return *model_; }

 private:
  SgclConfig config_;
  Rng rng_;
  std::unique_ptr<SgclModel> model_;
  std::unique_ptr<Adam> optimizer_;
  bool logged_dropped_tail_ = false;  // log the skipped size-1 tail once
};

}  // namespace sgcl

#endif  // SGCL_CORE_SGCL_TRAINER_H_
