// Self-supervised pretraining loop for SGCL, with an observer-based
// progress/observability API.
#ifndef SGCL_CORE_SGCL_TRAINER_H_
#define SGCL_CORE_SGCL_TRAINER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sgcl_model.h"
#include "graph/dataset.h"
#include "graph/graph_source.h"
#include "tensor/optimizer.h"

namespace sgcl {

// Per-epoch progress record handed to PretrainOptions::on_epoch_end.
struct EpochReport {
  int epoch = 0;        // 0-based
  int total_epochs = 0;
  float mean_loss = 0.0f;  // mean minibatch loss of this epoch
  int64_t batches = 0;
  double seconds = 0.0;  // wall time of this epoch
  // Wall seconds spent per instrumented stage during this epoch, keyed by
  // stage name ("generator", "augmentation", "encode", "loss",
  // "backward", "optimizer", ...). Derived from the global metrics
  // registry's "time/<stage>_us" counters, so stages nested in parallel
  // workers aggregate across threads and a stage's total can exceed the
  // epoch's wall time.
  std::map<std::string, double> stage_seconds;
};

struct PretrainStats {
  std::vector<float> epoch_losses;   // mean minibatch loss per epoch
  std::vector<double> epoch_seconds; // wall time per epoch
  double total_seconds = 0.0;
  int64_t total_batches = 0;
  // Sum of per-epoch stage_seconds over the whole run.
  std::map<std::string, double> stage_seconds;
  // True when PretrainOptions::should_cancel stopped the run early;
  // epoch_losses then holds only the completed epochs.
  bool cancelled = false;
};

// Record of one checkpoint save handed to PretrainOptions::on_checkpoint.
struct CheckpointReport {
  std::string path;
  int epoch = 0;         // 0-based epoch the checkpoint was taken after
  double seconds = 0.0;  // serialize + atomic-publish wall time
};

// Observability and control hooks for Pretrain. Default-constructed
// options reproduce the plain training loop exactly: the observer only
// reads timings, so attaching one never changes epoch_losses (the loop's
// RNG stream and arithmetic are untouched). Checkpointing is likewise
// off the training tape — it snapshots state between epochs, so enabling
// it never perturbs losses either.
struct PretrainOptions {
  // Called after each completed epoch.
  std::function<void(const EpochReport&)> on_epoch_end;
  // Polled between batches; returning true stops training after the
  // current batch (the partial epoch is discarded from epoch_losses and
  // stats.cancelled is set).
  std::function<bool()> should_cancel;

  // Crash-safe checkpointing (core/train_state.h). When checkpoint_dir
  // is non-empty, a checkpoint is written atomically after every
  // checkpoint_every-th completed epoch and after the final epoch,
  // retaining the checkpoint_keep_last newest files.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep_last = 3;
  // Path of a checkpoint to resume from (typically
  // FindLatestCheckpoint(checkpoint_dir)). The trainer must have been
  // constructed with a config whose ConfigFingerprint matches the
  // checkpoint's, and the call's `indices` must select the same graph
  // set the checkpointed run used. The resumed run replays the exact
  // remaining epochs: its PretrainStats (including the restored-epoch
  // prefix) is bitwise identical to an uninterrupted run's.
  std::string resume_from;
  // Called after each successful checkpoint save.
  std::function<void(const CheckpointReport&)> on_checkpoint;

  // Streaming pipeline (data/prefetcher.h): batches kept in flight ahead
  // of the training step. <= 0 fetches synchronously. Prefetching only
  // moves *when* decode happens, never what is computed, so changing the
  // depth cannot change losses.
  int prefetch_depth = 2;
  // When > 0 (and checkpoint_dir is set), additionally checkpoint inside
  // each epoch after every N completed batches. These mid-epoch
  // checkpoints carry a batch-level cursor, so a kill at any shard
  // boundary resumes bitwise-exactly (see core/train_state.h).
  int64_t checkpoint_every_batches = 0;
};

// The seed of the derived RNG stream that batch `global_batch` of epoch
// `epoch` consumes in distributed pretraining (splitmix64-style
// finalizer chain). Keyed on the run's ORIGINAL trainer seed
// (TrainState::train_seed), not the current process's, so an elastically
// restarted worker — even one handed a fresh ctor seed — replays
// bit-identical stochastic draws for every batch it recomputes.
uint64_t DeriveBatchSeed(uint64_t run_seed, int epoch, int64_t global_batch);

// Batches one Pretrain epoch runs over `selected` graphs at
// `batch_size` (trailing batches with fewer than 2 graphs are dropped —
// InfoNCE needs a negative). The distributed schedule quantity K: every
// worker and the coordinator must compute the same value.
int64_t PretrainBatchesPerEpoch(int64_t selected, int batch_size);

// Data-parallel settings for PretrainDistributed. The schedule is
// defined by (grad_accum, the global batch schedule); world_size only
// says how many processes execute it, which is why losses are bitwise
// worker-count-independent.
struct DistributedPretrainOptions {
  int rank = 0;
  int world_size = 1;
  // W: global batches reduced into one optimizer step (a "round").
  // Must be >= world_size so every worker owns work in full rounds.
  int grad_accum = 8;
  // The all-reduce coordinator's port (comms/allreduce.h), already
  // started by rank 0's process.
  int coordinator_port = 0;
  // Per-operation comms deadline. GetRound blocks this long for
  // stragglers, so it must cover a killed worker's restart-and-rejoin
  // time, not just network latency.
  int allreduce_timeout_ms = 60000;
  // How long Join retries connecting before giving up (the coordinator
  // may still be binding when workers launch).
  int connect_deadline_ms = 15000;
};

// Publishes one epoch's loss to the global metrics registry: sets gauge
// "train/last_epoch_loss" and increments counter "train/nonfinite_loss"
// when the loss is NaN/Inf — divergence must show up in exports (where
// JSON serializes the loss itself as null), not be masked. Called by
// Pretrain after every epoch; exposed for direct unit testing.
void RecordEpochLossMetrics(float mean_loss);

class SgclTrainer {
 public:
  // `config` must pass SgclConfig::Validate(); a failed validation is a
  // programming error here (fatal). Callers holding untrusted configs
  // (e.g. the CLI) validate first and surface the Status themselves.
  SgclTrainer(const SgclConfig& config, uint64_t seed);

  // Runs config.epochs of Adam over shuffled minibatches of `source`
  // (indices into it; empty = all graphs). Minibatches with fewer than 2
  // graphs are skipped (InfoNCE needs a negative). Returns
  // InvalidArgument when fewer than 2 graphs are selected or an index is
  // out of range. Batches stream through the prefetch pipeline; for
  // multi-block sources (sharded stores) the per-epoch shuffle is
  // block-aware — shard order and within-shard order are both shuffled,
  // but a batch never straddles more shards than it must — bounding the
  // decoded-shard working set. Single-block sources (in-memory) shuffle
  // globally, bit-identical to the historical loop.
  Result<PretrainStats> Pretrain(const GraphSource& source,
                                 const std::vector<int64_t>& indices = {},
                                 const PretrainOptions& options = {});

  // Convenience adapter: trains from an in-memory dataset through the
  // same streaming path (InMemorySource borrows `dataset` for the call).
  Result<PretrainStats> Pretrain(const GraphDataset& dataset,
                                 const std::vector<int64_t>& indices = {},
                                 const PretrainOptions& options = {});

  // Data-parallel pretraining: this trainer acts as worker `dist.rank`
  // of `dist.world_size`, computing the micro-batches it owns
  // (data/rank_assign.h) and exchanging gradients with the coordinator
  // at `dist.coordinator_port` each round. Per-epoch losses are
  // bitwise-identical for every world_size (including 1) given the same
  // config, seed, data, and grad_accum — see comms/allreduce.h for the
  // argument. Checkpoints (same PretrainOptions knobs) are written at
  // round boundaries; resume_from rejoins a live cluster elastically,
  // replaying missed rounds from the coordinator's cache. The epoch
  // shuffle consumes this trainer's own RNG (identically on every
  // rank); per-batch stochastic draws come from DeriveBatchSeed streams
  // instead, so they are position- not history-dependent.
  // PretrainOptions::should_cancel is ignored — one worker cancelling
  // unilaterally would stall the cluster; stop distributed runs by
  // stopping the job.
  Result<PretrainStats> PretrainDistributed(
      const GraphSource& source, const std::vector<int64_t>& indices,
      const PretrainOptions& options,
      const DistributedPretrainOptions& dist);

  SgclModel& model() { return *model_; }
  const SgclModel& model() const { return *model_; }
  // The ctor seed (the distributed handshake's run_seed for fresh runs).
  uint64_t seed() const { return seed_; }

 private:
  // Per-epoch permutation update; block-aware for multi-block sources.
  void ShuffleOrder(std::vector<int64_t>* order,
                    const std::vector<IndexRange>& blocks);

  // Serializes the complete resumable run state and publishes it
  // atomically to `path` (shared by Pretrain and PretrainDistributed;
  // both checkpoint formats are the same format).
  Status SaveTrainingCheckpoint(const PretrainOptions& options,
                                const PretrainStats& stats,
                                const std::vector<int64_t>& order,
                                uint64_t config_fingerprint,
                                uint64_t source_fingerprint,
                                uint64_t train_seed, int next_epoch,
                                int64_t batch_cursor,
                                double partial_loss_sum,
                                const std::string& path);

  SgclConfig config_;
  uint64_t seed_;
  Rng rng_;
  std::unique_ptr<SgclModel> model_;
  std::unique_ptr<Adam> optimizer_;
  bool logged_dropped_tail_ = false;  // log the skipped size-1 tail once
};

}  // namespace sgcl

#endif  // SGCL_CORE_SGCL_TRAINER_H_
