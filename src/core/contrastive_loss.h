// Semantic-aware contrastive objectives (paper §IV-D, Eq. 24-27).
#ifndef SGCL_CORE_CONTRASTIVE_LOSS_H_
#define SGCL_CORE_CONTRASTIVE_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace sgcl {

// InfoNCE over a batch (Eq. 24): for each anchor z_G[i], the positive is
// z_hat[i] and the negatives are z_hat[j], j != i. Embeddings are
// L2-normalized inside (cosine similarities) for numerical stability of
// exp(z^T z / tau). Requires batch size >= 2 and tau > 0.
Tensor SemanticInfoNceLoss(const Tensor& z_anchor, const Tensor& z_sample,
                           float tau);

// Complement loss (Eq. 25): the positive is z_hat[i]; negatives are all
// complement-view embeddings z_c[j] (every row of z_complement).
Tensor ComplementLoss(const Tensor& z_anchor, const Tensor& z_sample,
                      const Tensor& z_complement, float tau);

// Weight regularizer Θ_W = ||W|| (Eq. 26): the Frobenius norm of each
// parameter matrix, summed.
Tensor WeightNormRegularizer(const std::vector<Tensor>& weights);

}  // namespace sgcl

#endif  // SGCL_CORE_CONTRASTIVE_LOSS_H_
