// Configuration for the SGCL model and pretraining loop.
//
// Defaults follow the paper's §VI-A parameter settings: GIN 3x32, sum
// pooling, 2-layer projection head, tau = 0.2, lambda_c = lambda_W = 0.01,
// rho = 0.9, Adam lr = 1e-3, batch 128, 40 epochs. Flags cover every
// Table V ablation.
#ifndef SGCL_CORE_SGCL_CONFIG_H_
#define SGCL_CORE_SGCL_CONFIG_H_

#include "common/status.h"
#include "core/augmentation.h"
#include "core/lipschitz_generator.h"
#include "nn/encoder.h"

namespace sgcl {

struct SgclConfig {
  EncoderConfig encoder;  // shared architecture of f_q and f_k (Eq. 1);
                          // the two towers never share parameters.
  int64_t proj_dim = 32;  // projection head output width

  // Objective (Eq. 27).
  float tau = 0.2f;
  float lambda_c = 0.01f;   // complement loss weight; 0 = "w/o Lc"
  float lambda_w = 0.01f;   // weight-norm regularizer; 0 = "w/o LW"

  // Augmentation (Eq. 16-20).
  double rho = 0.9;  // fraction of eligible nodes dropped per view
  AugmentationMode augmentation = AugmentationMode::kLipschitz;
  LipschitzMode lipschitz_mode = LipschitzMode::kAttentionApprox;
  // Cap on total nodes per block-diagonal masked-view chunk in the exact
  // Lipschitz generator (§V batching). Smaller = lower peak memory;
  // larger = fewer encoder calls per graph.
  int64_t max_view_nodes = LipschitzGenerator::kDefaultMaxViewNodes;

  // Eq. 21 semantic-score-weighted anchor pooling; false = "w/o SRL".
  bool semantic_pooling = true;

  // Weight of the generator tower's own InfoNCE term. The paper trains
  // f_q jointly but leaves its gradient path implicit; the Lipschitz
  // constants are only informative under a discriminative f_q, so we add
  // the same contrastive objective on f_q's pooled representations
  // (0 disables it, leaving only the soft-mask gradient path).
  float generator_loss_weight = 0.5f;

  // Pretraining.
  float learning_rate = 1e-3f;
  int epochs = 40;
  int batch_size = 128;
  float grad_clip = 5.0f;

  // The single entry point for config sanity: every consumer of an
  // SgclConfig (SgclTrainer's constructor, the CLI, harnesses) funnels
  // through this instead of scattering implicit assumptions. Checks:
  // tau > 0, 0 <= rho <= 1, batch_size >= 2 (InfoNCE needs a negative),
  // positive dims / layers / epochs / learning rate / max_view_nodes,
  // non-negative loss weights. Returns InvalidArgument naming the first
  // offending field.
  Status Validate() const;
};

// The paper's unsupervised-learning configuration for a dataset with
// `feat_dim` input features (GIN 3x32).
SgclConfig MakeUnsupervisedConfig(int64_t feat_dim);

// The paper's transfer-learning configuration (GIN 5 layers; the paper
// uses width 300 — `hidden_dim` allows scaling that down for CPU runs).
SgclConfig MakeTransferConfig(int64_t feat_dim, int64_t hidden_dim = 64);

}  // namespace sgcl

#endif  // SGCL_CORE_SGCL_CONFIG_H_
