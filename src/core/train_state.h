// Crash-safe training checkpoints: the complete resumable state of an
// SGCL pretraining run, serialized into the v2 section container
// (nn/checkpoint.h) and published atomically (common/io.h).
//
// The resume contract is *bitwise determinism*: a run checkpointed at
// epoch k and resumed in a fresh process produces exactly the per-epoch
// losses the uninterrupted run would have. That requires capturing every
// input to the remaining epochs:
//   - both towers' parameters and heads (kModel section),
//   - Adam's step counter and first/second moments (kOptimizer),
//   - the trainer RNG stream, including the Box-Muller spare (kRng),
//   - the epoch cursor plus the *current* order permutation — Pretrain
//     shuffles `order` in place, so epoch k+1's shuffle depends on the
//     post-epoch-k vector, not on the original indices (kCursor),
//   - a fingerprint of the SgclConfig, checked on resume so state is
//     never applied to a differently-configured trainer (kConfig).
// Completed-epoch losses/timings ride along in the cursor section so a
// resumed PretrainStats reports the whole run, not just its tail.
#ifndef SGCL_CORE_TRAIN_STATE_H_
#define SGCL_CORE_TRAIN_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/sgcl_config.h"
#include "tensor/optimizer.h"

namespace sgcl {

// In-memory image of one training checkpoint.
struct TrainState {
  uint64_t config_fingerprint = 0;
  std::string model_params;  // SerializeModuleParams blob (both towers
                             // plus projection and probability heads, in
                             // SgclModel::Parameters() order)
  AdamState optimizer;
  RngState rng;              // the trainer's single RNG stream
  int next_epoch = 0;        // first epoch the resumed run executes
  int total_epochs = 0;      // config.epochs at save time
  int64_t total_batches = 0;
  std::vector<int64_t> order;  // epoch order permutation, post-shuffle
  std::vector<float> epoch_losses;    // completed epochs so far
  std::vector<double> epoch_seconds;  // wall time of those epochs

  // Mid-epoch (shard-level) cursor for streaming pretraining. When
  // batch_cursor > 0 the checkpoint was taken inside epoch `next_epoch`
  // after that many completed batches: resume skips the epoch shuffle
  // (the stored `order` is already post-shuffle), fast-forwards to the
  // batch at batch_cursor, and seeds the epoch's running loss from
  // partial_loss_sum, so losses stay bitwise-identical across a kill at
  // any shard/batch boundary. Absent in old checkpoints (defaults 0).
  int64_t batch_cursor = 0;
  double partial_loss_sum = 0.0;
  // GraphSource::ContentFingerprint of the training data; checked on
  // resume when nonzero so a checkpoint never silently resumes against
  // different data (0 = unknown/legacy).
  uint64_t source_fingerprint = 0;
  // The seed the run's trainer was originally constructed with. The
  // distributed path derives every batch's RNG from this (core
  // DeriveBatchSeed), so a worker restarted with a *different* ctor
  // seed still replays bit-identical batches; the handshake requires
  // all workers to agree on it (0 = pre-extension checkpoint).
  uint64_t train_seed = 0;
};

// FNV-1a over a canonical serialization of every SgclConfig field that
// influences training dynamics (architecture, objective weights,
// augmentation, optimizer hyperparameters, epoch/batch schedule). Two
// configs with equal fingerprints drive bit-identical training given
// equal state; resume refuses mismatched fingerprints.
uint64_t ConfigFingerprint(const SgclConfig& config);

// TrainState <-> v2 container bytes. Parsing validates per-section CRCs,
// requires all five sections, and never partially succeeds.
std::string SerializeTrainState(const TrainState& state);
Result<TrainState> ParseTrainState(const std::string& bytes,
                                   const std::string& what);

// Atomic save (temp file + fsync + rename) / load of one checkpoint.
Status SaveTrainCheckpoint(const TrainState& state, const std::string& path);
Result<TrainState> LoadTrainCheckpoint(const std::string& path);

// "<dir>/ckpt-000007.sgcl" for the checkpoint taken after epoch 7 (i.e.
// next_epoch == 7). Zero-padded so lexicographic order is epoch order.
std::string CheckpointFileName(const std::string& dir, int next_epoch);

// "<dir>/ckpt-000007-b00000042.sgcl" for a mid-epoch checkpoint taken
// inside epoch 7 after 42 batches. Orders after ckpt-000007.sgcl's
// predecessor (next_epoch 7 = epoch 6 complete) and before
// ckpt-000008.sgcl, matching resume order (epoch, then batch cursor).
std::string MidEpochCheckpointFileName(const std::string& dir, int epoch,
                                       int64_t batch_cursor);

// The highest-epoch "ckpt-*.sgcl" file in `dir`, or NotFound when the
// directory is missing or holds none. Ignores temp files and foreign
// names, so a crash-orphaned ".tmp" never shadows a complete checkpoint.
Result<std::string> FindLatestCheckpoint(const std::string& dir);

// Deletes all but the `keep_last` highest-epoch checkpoints in `dir`.
// keep_last <= 0 keeps everything.
Status PruneCheckpoints(const std::string& dir, int keep_last);

}  // namespace sgcl

#endif  // SGCL_CORE_TRAIN_STATE_H_
