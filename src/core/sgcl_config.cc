#include "core/sgcl_config.h"

#include "common/string_util.h"

namespace sgcl {

SgclConfig MakeUnsupervisedConfig(int64_t feat_dim) {
  SgclConfig cfg;
  cfg.encoder.arch = GnnArch::kGin;
  cfg.encoder.in_dim = feat_dim;
  cfg.encoder.hidden_dim = 32;
  cfg.encoder.num_layers = 3;
  cfg.encoder.pooling = PoolingKind::kSum;
  cfg.proj_dim = 32;
  return cfg;
}

SgclConfig MakeTransferConfig(int64_t feat_dim, int64_t hidden_dim) {
  SgclConfig cfg;
  cfg.encoder.arch = GnnArch::kGin;
  cfg.encoder.in_dim = feat_dim;
  cfg.encoder.hidden_dim = hidden_dim;
  cfg.encoder.num_layers = 5;
  cfg.encoder.pooling = PoolingKind::kSum;
  cfg.proj_dim = hidden_dim;
  cfg.epochs = 80;
  return cfg;
}

Status SgclConfig::Validate() const {
  const auto invalid = [](const char* field, const std::string& detail) {
    return Status::InvalidArgument(
        StrFormat("SgclConfig.%s %s", field, detail.c_str()));
  };
  if (encoder.in_dim <= 0) {
    return invalid("encoder.in_dim",
                   StrFormat("must be positive, got %lld",
                             static_cast<long long>(encoder.in_dim)));
  }
  if (encoder.hidden_dim <= 0) {
    return invalid("encoder.hidden_dim",
                   StrFormat("must be positive, got %lld",
                             static_cast<long long>(encoder.hidden_dim)));
  }
  if (encoder.num_layers <= 0) {
    return invalid("encoder.num_layers",
                   StrFormat("must be positive, got %d", encoder.num_layers));
  }
  if (proj_dim <= 0) {
    return invalid("proj_dim",
                   StrFormat("must be positive, got %lld",
                             static_cast<long long>(proj_dim)));
  }
  if (!(tau > 0.0f)) {
    return invalid("tau", StrFormat("must be > 0, got %g",
                                    static_cast<double>(tau)));
  }
  if (lambda_c < 0.0f) {
    return invalid("lambda_c", StrFormat("must be >= 0, got %g",
                                         static_cast<double>(lambda_c)));
  }
  if (lambda_w < 0.0f) {
    return invalid("lambda_w", StrFormat("must be >= 0, got %g",
                                         static_cast<double>(lambda_w)));
  }
  if (!(rho >= 0.0 && rho <= 1.0)) {
    return invalid("rho", StrFormat("must be in [0, 1], got %g", rho));
  }
  if (max_view_nodes <= 0) {
    return invalid("max_view_nodes",
                   StrFormat("must be positive, got %lld",
                             static_cast<long long>(max_view_nodes)));
  }
  if (!(learning_rate > 0.0f)) {
    return invalid("learning_rate",
                   StrFormat("must be > 0, got %g",
                             static_cast<double>(learning_rate)));
  }
  if (epochs <= 0) {
    return invalid("epochs", StrFormat("must be positive, got %d", epochs));
  }
  if (batch_size < 2) {
    return invalid("batch_size",
                   StrFormat("must be >= 2 (InfoNCE needs a negative), "
                             "got %d",
                             batch_size));
  }
  if (!(grad_clip > 0.0f)) {
    return invalid("grad_clip", StrFormat("must be > 0, got %g",
                                          static_cast<double>(grad_clip)));
  }
  return Status::OK();
}

}  // namespace sgcl
