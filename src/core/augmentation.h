// Lipschitz graph augmentation (paper §IV-C, Eq. 16-20).
//
// Given per-node Lipschitz constants K_V, each graph's mean K̄ binarizes
// nodes into semantic-related (C_i = 1) and semantic-unrelated (C_i = 0)
// (Eq. 16-17). The preservation probability of node i is
//   P(v_i) = C_i + (1 - C_i) * sigmoid(h_i w^T)           (Eq. 18)
// so semantic-related nodes are always kept and unrelated ones are kept
// with a learned probability. The sample view Ĝ (Eq. 19) drops
// rho * |{C_i = 0}| unrelated nodes weighted by 1 - P; the complement
// view Ĝ^c (Eq. 20) inverts the probabilities, keeping unrelated nodes
// and dropping related ones.
//
// Note on rho: the paper defines Φ(G, rho|V|, P(V)) with rho = 0.9 best,
// and §VI-D explains that a *large* rho is preferred "because the
// semantic-unrelated nodes also contribute to the model pre-training" —
// i.e. rho is a preservation ratio. The sample view therefore drops
// (1 - rho)|V| nodes, all drawn from the semantic-unrelated set, which
// reproduces both the flat sensitivity curve and the "only unrelated
// nodes are dropped" invariant. The complement view's purpose is the
// opposite — destroy the semantics to build a negative — so it drops
// rho of the semantic-related nodes. See DESIGN.md.
#ifndef SGCL_CORE_AUGMENTATION_H_
#define SGCL_CORE_AUGMENTATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/graph_batch.h"

namespace sgcl {

// How contrastive views are built (the Table V ablation axis).
enum class AugmentationMode {
  kLipschitz,      // full SGCL: Lipschitz binarization + learned probs
  kLearnableOnly,  // "w/o LGA": learned keep probabilities, no binarization
  kRandom,         // "w/o VG": uniform random node dropping
};

struct AugmentationPlan {
  // 1 = node is kept in the sample view Ĝ.
  std::vector<uint8_t> keep_sample;
  // 1 = node is kept in the complement view Ĝ^c.
  std::vector<uint8_t> keep_complement;
  // Binary Lipschitz constants C_i (Eq. 17); all 1 when binarization is
  // disabled.
  std::vector<uint8_t> binary_semantic;
  // Preservation probabilities P(v_i) (Eq. 18), detached values.
  std::vector<float> preserve_prob;
};

// Builds the per-node keep decisions for one graph.
//   lipschitz:   K_V for the graph's nodes (ignored for kRandom).
//   learned_keep: sigmoid(h_i w^T) values in [0,1] (ignored for kRandom).
//   rho:         fraction of eligible nodes to drop.
// For kRandom, rho of all nodes are dropped uniformly and the complement
// view is an independent random drop.
AugmentationPlan BuildAugmentationPlan(const std::vector<float>& lipschitz,
                                       const std::vector<float>& learned_keep,
                                       AugmentationMode mode, double rho,
                                       Rng* rng);

// Materializes a hard node-dropped view of `graph` from a keep mask
// (used for data-level augmentation, visualization, and baselines).
Graph ApplyNodeDrop(const Graph& graph, const std::vector<uint8_t>& keep);

// Mean-threshold binarization (Eq. 16-17) as a standalone helper.
std::vector<uint8_t> BinarizeLipschitz(const std::vector<float>& lipschitz);

// A masked copy of `batch`: features of dropped nodes are zeroed and all
// their incident edges removed. Node count and graph segmentation are
// unchanged so views stay aligned with the anchor batch; combined with
// mask-weighted pooling this encodes exactly the induced subgraph.
GraphBatch MaskBatch(const GraphBatch& batch,
                     const std::vector<uint8_t>& keep);

}  // namespace sgcl

#endif  // SGCL_CORE_AUGMENTATION_H_
