#include "core/sgcl_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/train_state.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

// Stage-duration counters follow the "time/<stage>_us" convention
// (see metrics.h); this extracts them as {stage: seconds}.
std::map<std::string, double> StageSeconds(const MetricsSnapshot& snap) {
  std::map<std::string, double> stages;
  const std::string prefix = "time/";
  const std::string suffix = "_us";
  for (const auto& [name, us] : snap.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string stage = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    stages[stage] = static_cast<double>(us) * 1e-6;
  }
  return stages;
}

std::map<std::string, double> StageDelta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after) {
  std::map<std::string, double> delta;
  for (const auto& [stage, seconds] : after) {
    const auto it = before.find(stage);
    const double prev = it == before.end() ? 0.0 : it->second;
    if (seconds > prev) delta[stage] = seconds - prev;
  }
  return delta;
}

}  // namespace

void RecordEpochLossMetrics(float mean_loss) {
  static Gauge* const loss_gauge =
      MetricsRegistry::Global().GetGauge("train/last_epoch_loss");
  static Counter* const nonfinite_counter =
      MetricsRegistry::Global().GetCounter("train/nonfinite_loss");
  loss_gauge->Set(mean_loss);
  if (!std::isfinite(mean_loss)) nonfinite_counter->Increment();
}

SgclTrainer::SgclTrainer(const SgclConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  const Status valid = config.Validate();
  if (!valid.ok()) {
    SGCL_LOG(ERROR) << "invalid SgclConfig: " << valid.ToString();
  }
  SGCL_CHECK(valid.ok());
  model_ = std::make_unique<SgclModel>(config_, &rng_);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config_.learning_rate);
}

Result<PretrainStats> SgclTrainer::Pretrain(const GraphDataset& dataset,
                                            const std::vector<int64_t>& indices,
                                            const PretrainOptions& options) {
  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(dataset.size());
    for (int64_t i = 0; i < dataset.size(); ++i) order[i] = i;
  }
  if (order.size() < 2) {
    return Status::InvalidArgument(
        "Pretrain needs at least 2 graphs (InfoNCE requires a negative)");
  }
  for (int64_t index : order) {
    if (index < 0 || index >= dataset.size()) {
      return Status::OutOfRange("Pretrain index outside dataset");
    }
  }
  if (!options.checkpoint_dir.empty()) {
    if (options.checkpoint_every <= 0) {
      return Status::InvalidArgument(
          "PretrainOptions::checkpoint_every must be >= 1");
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("cannot create checkpoint directory %s: %s",
                    options.checkpoint_dir.c_str(), ec.message().c_str()));
    }
  }

  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  stats.epoch_seconds.reserve(config_.epochs);
  const uint64_t fingerprint = ConfigFingerprint(config_);
  int start_epoch = 0;
  double restored_seconds = 0.0;
  if (!options.resume_from.empty()) {
    Stopwatch load_watch;
    SGCL_ASSIGN_OR_RETURN(const TrainState state,
                          LoadTrainCheckpoint(options.resume_from));
    if (state.config_fingerprint != fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written by a run with config fingerprint %016llx, this "
          "trainer has %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.config_fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    // The checkpointed permutation must cover exactly the graphs this
    // call selected; a different index set is a different run.
    std::vector<int64_t> want = order;
    std::vector<int64_t> got = state.order;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (want != got) {
      return Status::InvalidArgument(StrFormat(
          "%s covers a different graph index set than this Pretrain call",
          options.resume_from.c_str()));
    }
    SGCL_RETURN_NOT_OK(ApplyModuleParams(state.model_params, model_.get(),
                                         options.resume_from));
    SGCL_RETURN_NOT_OK(optimizer_->ImportState(state.optimizer));
    rng_.SetState(state.rng);
    order = state.order;
    start_epoch = state.next_epoch;
    stats.epoch_losses = state.epoch_losses;
    stats.epoch_seconds = state.epoch_seconds;
    stats.total_batches = state.total_batches;
    for (double s : state.epoch_seconds) restored_seconds += s;
    const double load_seconds = load_watch.ElapsedSeconds();
    MetricsRegistry::Global().GetCounter("checkpoint/loads")->Increment();
    MetricsRegistry::Global()
        .GetCounter("time/checkpoint_us")
        ->Increment(static_cast<int64_t>(load_seconds * 1e6));
    SGCL_LOG(INFO) << "resumed from " << options.resume_from << " at epoch "
                   << start_epoch << " (" << load_seconds << "s load)";
  }
  Stopwatch run_watch;
  const std::map<std::string, double> run_stage_before =
      StageSeconds(MetricsRegistry::Global().Snapshot());
  std::map<std::string, double> stage_before = run_stage_before;
  static Counter* const epochs_counter =
      MetricsRegistry::Global().GetCounter("train/epochs");
  static Counter* const batches_counter =
      MetricsRegistry::Global().GetCounter("train/batches");
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    SGCL_TRACE_SPAN("train/epoch");
    Stopwatch epoch_watch;
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (size_t start = 0; start + 1 < order.size();
         start += config_.batch_size) {
      if (options.should_cancel && options.should_cancel()) {
        stats.cancelled = true;
        stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
        stats.stage_seconds =
            StageDelta(run_stage_before,
                       StageSeconds(MetricsRegistry::Global().Snapshot()));
        return stats;
      }
      const size_t end =
          std::min(order.size(), start + config_.batch_size);
      if (end - start < 2) {
        // InfoNCE needs at least one negative, so a trailing batch of one
        // graph is skipped — every epoch, since the shuffle only reorders.
        if (!logged_dropped_tail_) {
          SGCL_LOG(DEBUG) << "Pretrain: dropping trailing batch of size "
                          << (end - start) << " (dataset size "
                          << order.size() << ", batch_size "
                          << config_.batch_size
                          << "); these graphs are skipped each epoch";
          logged_dropped_tail_ = true;
        }
        break;
      }
      SGCL_TRACE_SPAN("train/batch");
      std::vector<const Graph*> batch;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.push_back(&dataset.graph(order[i]));
      }
      optimizer_->ZeroGrad();
      Tensor loss = model_->ComputeLoss(batch, &rng_);
      {
        SGCL_TRACE_SPAN_TIMED("backward");
        loss.Backward();
      }
      {
        SGCL_TRACE_SPAN_TIMED("optimizer");
        optimizer_->ClipGradNorm(config_.grad_clip);
        optimizer_->Step();
      }
      epoch_loss += loss.item();
      ++batches;
      batches_counter->Increment();
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    stats.epoch_seconds.push_back(epoch_seconds);
    stats.total_batches += batches;
    epochs_counter->Increment();
    RecordEpochLossMetrics(mean_loss);
    SGCL_LOG(DEBUG) << "pretrain epoch " << epoch << " loss " << mean_loss;
    if (!options.checkpoint_dir.empty() &&
        ((epoch + 1) % options.checkpoint_every == 0 ||
         epoch + 1 == config_.epochs)) {
      Stopwatch save_watch;
      TrainState state;
      state.config_fingerprint = fingerprint;
      state.model_params = SerializeModuleParams(*model_);
      state.optimizer = optimizer_->ExportState();
      state.rng = rng_.GetState();
      state.next_epoch = epoch + 1;
      state.total_epochs = config_.epochs;
      state.total_batches = stats.total_batches;
      state.order = order;
      state.epoch_losses = stats.epoch_losses;
      state.epoch_seconds = stats.epoch_seconds;
      const std::string path =
          CheckpointFileName(options.checkpoint_dir, epoch + 1);
      SGCL_RETURN_NOT_OK(SaveTrainCheckpoint(state, path));
      SGCL_RETURN_NOT_OK(PruneCheckpoints(options.checkpoint_dir,
                                          options.checkpoint_keep_last));
      const double save_seconds = save_watch.ElapsedSeconds();
      MetricsRegistry::Global().GetCounter("checkpoint/saves")->Increment();
      MetricsRegistry::Global()
          .GetCounter("time/checkpoint_us")
          ->Increment(static_cast<int64_t>(save_seconds * 1e6));
      SGCL_LOG(DEBUG) << "checkpoint " << path << " saved in "
                      << save_seconds << "s";
      if (options.on_checkpoint) {
        CheckpointReport report;
        report.path = path;
        report.epoch = epoch;
        report.seconds = save_seconds;
        options.on_checkpoint(report);
      }
    }
    if (options.on_epoch_end) {
      const std::map<std::string, double> stage_after =
          StageSeconds(MetricsRegistry::Global().Snapshot());
      EpochReport report;
      report.epoch = epoch;
      report.total_epochs = config_.epochs;
      report.mean_loss = mean_loss;
      report.batches = batches;
      report.seconds = epoch_seconds;
      report.stage_seconds = StageDelta(stage_before, stage_after);
      stage_before = std::move(stage_after);
      options.on_epoch_end(report);
    }
  }
  stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
  stats.stage_seconds = StageDelta(
      run_stage_before, StageSeconds(MetricsRegistry::Global().Snapshot()));
  return stats;
}

}  // namespace sgcl
