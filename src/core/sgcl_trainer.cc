#include "core/sgcl_trainer.h"

#include "common/logging.h"

namespace sgcl {

SgclTrainer::SgclTrainer(const SgclConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  model_ = std::make_unique<SgclModel>(config_, &rng_);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config_.learning_rate);
}

PretrainStats SgclTrainer::Pretrain(const GraphDataset& dataset,
                                    const std::vector<int64_t>& indices) {
  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(dataset.size());
    for (int64_t i = 0; i < dataset.size(); ++i) order[i] = i;
  }
  SGCL_CHECK_GE(order.size(), 2u);
  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (size_t start = 0; start + 1 < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + config_.batch_size);
      if (end - start < 2) {
        // InfoNCE needs at least one negative, so a trailing batch of one
        // graph is skipped — every epoch, since the shuffle only reorders.
        if (!logged_dropped_tail_) {
          SGCL_LOG(DEBUG) << "Pretrain: dropping trailing batch of size "
                          << (end - start) << " (dataset size "
                          << order.size() << ", batch_size "
                          << config_.batch_size
                          << "); these graphs are skipped each epoch";
          logged_dropped_tail_ = true;
        }
        break;
      }
      std::vector<const Graph*> batch;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.push_back(&dataset.graph(order[i]));
      }
      optimizer_->ZeroGrad();
      Tensor loss = model_->ComputeLoss(batch, &rng_);
      loss.Backward();
      optimizer_->ClipGradNorm(config_.grad_clip);
      optimizer_->Step();
      epoch_loss += loss.item();
      ++batches;
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    SGCL_LOG(DEBUG) << "pretrain epoch " << epoch << " loss " << mean_loss;
  }
  return stats;
}

}  // namespace sgcl
