#include "core/sgcl_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "comms/allreduce.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/train_state.h"
#include "data/prefetcher.h"
#include "data/rank_assign.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

// Stage-duration counters follow the "time/<stage>_us" convention
// (see metrics.h); this extracts them as {stage: seconds}.
std::map<std::string, double> StageSeconds(const MetricsSnapshot& snap) {
  std::map<std::string, double> stages;
  const std::string prefix = "time/";
  const std::string suffix = "_us";
  for (const auto& [name, us] : snap.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string stage = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    stages[stage] = static_cast<double>(us) * 1e-6;
  }
  return stages;
}

std::map<std::string, double> StageDelta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after) {
  std::map<std::string, double> delta;
  for (const auto& [stage, seconds] : after) {
    const auto it = before.find(stage);
    const double prev = it == before.end() ? 0.0 : it->second;
    if (seconds > prev) delta[stage] = seconds - prev;
  }
  return delta;
}

// The epoch's batch index lists under the loop's batching rules;
// shared verbatim by Pretrain and PretrainDistributed so the global
// schedule is one piece of code, not two that must agree.
std::vector<std::vector<int64_t>> BuildEpochBatches(
    const std::vector<int64_t>& order, int batch_size,
    bool* logged_dropped_tail) {
  std::vector<std::vector<int64_t>> batch_indices;
  batch_indices.reserve(order.size() / batch_size + 1);
  for (size_t start = 0; start + 1 < order.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), start + static_cast<size_t>(batch_size));
    if (end - start < 2) {
      // InfoNCE needs at least one negative, so a trailing batch of one
      // graph is skipped — every epoch, since the shuffle only reorders.
      if (!*logged_dropped_tail) {
        SGCL_LOG(DEBUG) << "Pretrain: dropping trailing batch of size "
                        << (end - start) << " (dataset size " << order.size()
                        << ", batch_size " << batch_size
                        << "); these graphs are skipped each epoch";
        *logged_dropped_tail = true;
      }
      break;
    }
    batch_indices.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batch_indices;
}

// splitmix64 finalizer (same constants as common/rng's seeding).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Concatenates every parameter's gradient in Parameters() order — the
// leaf layout the all-reduce sums and ApplyMeanGradients unpacks.
void FlattenGradients(const std::vector<Tensor>& params,
                      std::vector<float>* out) {
  out->clear();
  for (const Tensor& param : params) {
    const std::vector<float>& grad = param.grad_values();
    out->insert(out->end(), grad.begin(), grad.end());
  }
}

// Writes grad_sum / leaf_count into every parameter's gradient buffer.
// Every rank divides the same sums by the same count, so the update
// tape stays bitwise-identical across the cluster.
void ApplyMeanGradients(std::vector<Tensor>* params,
                        const std::vector<float>& grad_sum,
                        uint32_t leaf_count) {
  const float count = static_cast<float>(leaf_count);
  size_t offset = 0;
  for (Tensor& param : *params) {
    float* grad = param.grad();
    const size_t n = static_cast<size_t>(param.numel());
    for (size_t i = 0; i < n; ++i) grad[i] = grad_sum[offset + i] / count;
    offset += n;
  }
}

}  // namespace

uint64_t DeriveBatchSeed(uint64_t run_seed, int epoch, int64_t global_batch) {
  uint64_t x = Mix64(run_seed);
  x = Mix64(x ^ static_cast<uint64_t>(epoch));
  x = Mix64(x ^ static_cast<uint64_t>(global_batch));
  return x;
}

int64_t PretrainBatchesPerEpoch(int64_t selected, int batch_size) {
  int64_t count = 0;
  for (int64_t start = 0; start + 1 < selected; start += batch_size) {
    if (std::min(selected, start + batch_size) - start < 2) break;
    ++count;
  }
  return count;
}

void RecordEpochLossMetrics(float mean_loss) {
  static Gauge* const loss_gauge =
      MetricsRegistry::Global().GetGauge("train/last_epoch_loss");
  static Counter* const nonfinite_counter =
      MetricsRegistry::Global().GetCounter("train/nonfinite_loss");
  loss_gauge->Set(mean_loss);
  if (!std::isfinite(mean_loss)) nonfinite_counter->Increment();
}

SgclTrainer::SgclTrainer(const SgclConfig& config, uint64_t seed)
    : config_(config), seed_(seed), rng_(seed) {
  const Status valid = config.Validate();
  if (!valid.ok()) {
    SGCL_LOG(ERROR) << "invalid SgclConfig: " << valid.ToString();
  }
  SGCL_CHECK(valid.ok());
  model_ = std::make_unique<SgclModel>(config_, &rng_);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config_.learning_rate);
}

Result<PretrainStats> SgclTrainer::Pretrain(const GraphDataset& dataset,
                                            const std::vector<int64_t>& indices,
                                            const PretrainOptions& options) {
  const InMemorySource source(&dataset);
  return Pretrain(source, indices, options);
}

void SgclTrainer::ShuffleOrder(std::vector<int64_t>* order,
                               const std::vector<IndexRange>& blocks) {
  if (blocks.size() <= 1) {
    // Single-block source: the historical global shuffle, bit-identical
    // to the pre-GraphSource loop.
    rng_.Shuffle(order);
    return;
  }
  // Block-aware shuffle: shuffle which blocks (shards) come in what
  // order, and independently shuffle indices inside each block. Batches
  // then touch shards in runs instead of uniformly at random, so the
  // reader's decoded-shard cache keeps its bounded size effective. The
  // trade (standard for out-of-core loaders) is that two graphs from
  // different shards can never share a batch unless adjacent in the
  // shard sequence.
  std::vector<std::vector<int64_t>> groups(blocks.size());
  for (int64_t idx : *order) {
    // Blocks are sorted, disjoint, and cover the source: find the one
    // holding idx.
    size_t lo = 0, hi = blocks.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (blocks[mid].begin <= idx) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    groups[lo].push_back(idx);
  }
  std::vector<size_t> sequence;
  sequence.reserve(groups.size());
  for (size_t b = 0; b < groups.size(); ++b) {
    if (!groups[b].empty()) sequence.push_back(b);
  }
  rng_.Shuffle(&sequence);
  order->clear();
  for (size_t b : sequence) {
    rng_.Shuffle(&groups[b]);
    order->insert(order->end(), groups[b].begin(), groups[b].end());
  }
}

Result<PretrainStats> SgclTrainer::Pretrain(const GraphSource& source,
                                            const std::vector<int64_t>& indices,
                                            const PretrainOptions& options) {
  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(source.size());
    for (int64_t i = 0; i < source.size(); ++i) order[i] = i;
  }
  if (order.size() < 2) {
    return Status::InvalidArgument(
        "Pretrain needs at least 2 graphs (InfoNCE requires a negative)");
  }
  for (int64_t index : order) {
    if (index < 0 || index >= source.size()) {
      return Status::OutOfRange("Pretrain index outside source");
    }
  }
  if (options.checkpoint_every_batches < 0) {
    return Status::InvalidArgument(
        "PretrainOptions::checkpoint_every_batches must be >= 0");
  }
  if (options.checkpoint_every_batches > 0 &&
      options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every_batches requires checkpoint_dir");
  }
  if (!options.checkpoint_dir.empty()) {
    if (options.checkpoint_every <= 0) {
      return Status::InvalidArgument(
          "PretrainOptions::checkpoint_every must be >= 1");
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("cannot create checkpoint directory %s: %s",
                    options.checkpoint_dir.c_str(), ec.message().c_str()));
    }
  }

  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  stats.epoch_seconds.reserve(config_.epochs);
  const uint64_t fingerprint = ConfigFingerprint(config_);
  const uint64_t source_fingerprint = source.ContentFingerprint();
  // Recorded in checkpoints for distributed batch-seed replay; a
  // resumed run carries the original forward even when this process was
  // constructed with a different seed.
  uint64_t train_seed = seed_;
  int start_epoch = 0;
  int64_t resume_batch_cursor = 0;
  double resume_partial_loss = 0.0;
  double restored_seconds = 0.0;
  if (!options.resume_from.empty()) {
    Stopwatch load_watch;
    SGCL_ASSIGN_OR_RETURN(const TrainState state,
                          LoadTrainCheckpoint(options.resume_from));
    if (state.config_fingerprint != fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written by a run with config fingerprint %016llx, this "
          "trainer has %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.config_fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    // A checkpoint is bound to its training data: refuse resume against
    // a source with different content (legacy checkpoints carry 0 and
    // skip the check).
    if (state.source_fingerprint != 0 &&
        state.source_fingerprint != source_fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written against a source with fingerprint %016llx, this "
          "call trains on %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.source_fingerprint),
          static_cast<unsigned long long>(source_fingerprint)));
    }
    // The checkpointed permutation must cover exactly the graphs this
    // call selected; a different index set is a different run.
    std::vector<int64_t> want = order;
    std::vector<int64_t> got = state.order;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (want != got) {
      return Status::InvalidArgument(StrFormat(
          "%s covers a different graph index set than this Pretrain call",
          options.resume_from.c_str()));
    }
    SGCL_RETURN_NOT_OK(ApplyModuleParams(state.model_params, model_.get(),
                                         options.resume_from));
    SGCL_RETURN_NOT_OK(optimizer_->ImportState(state.optimizer));
    rng_.SetState(state.rng);
    if (state.train_seed != 0) train_seed = state.train_seed;
    order = state.order;
    start_epoch = state.next_epoch;
    resume_batch_cursor = state.batch_cursor;
    resume_partial_loss = state.partial_loss_sum;
    stats.epoch_losses = state.epoch_losses;
    stats.epoch_seconds = state.epoch_seconds;
    stats.total_batches = state.total_batches;
    for (double s : state.epoch_seconds) restored_seconds += s;
    const double load_seconds = load_watch.ElapsedSeconds();
    MetricsRegistry::Global().GetCounter("checkpoint/loads")->Increment();
    MetricsRegistry::Global()
        .GetCounter("time/checkpoint_us")
        ->Increment(static_cast<int64_t>(load_seconds * 1e6));
    SGCL_LOG(INFO) << "resumed from " << options.resume_from << " at epoch "
                   << start_epoch << " batch " << resume_batch_cursor << " ("
                   << load_seconds << "s load)";
  }
  Stopwatch run_watch;
  const std::map<std::string, double> run_stage_before =
      StageSeconds(MetricsRegistry::Global().Snapshot());
  std::map<std::string, double> stage_before = run_stage_before;
  static Counter* const epochs_counter =
      MetricsRegistry::Global().GetCounter("train/epochs");
  static Counter* const batches_counter =
      MetricsRegistry::Global().GetCounter("train/batches");

  const std::vector<IndexRange> blocks = source.FetchBlocks();
  PrefetcherOptions prefetch_options;
  prefetch_options.depth = options.prefetch_depth;
  BatchPrefetcher prefetcher(&source, prefetch_options);

  // Saves `state`-independent checkpoint fields and publishes to `path`.
  const auto save_checkpoint =
      [&](int next_epoch, int64_t batch_cursor, double partial_loss_sum,
          const std::string& path) -> Status {
    return SaveTrainingCheckpoint(options, stats, order, fingerprint,
                                  source_fingerprint, train_seed, next_epoch,
                                  batch_cursor, partial_loss_sum, path);
  };

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    SGCL_TRACE_SPAN("train/epoch");
    Stopwatch epoch_watch;
    // A mid-epoch resume re-enters an epoch whose shuffle already
    // happened (the restored `order` is post-shuffle and the restored
    // RNG already consumed it), so only fresh epochs reshuffle.
    const bool mid_epoch_resume =
        epoch == start_epoch && resume_batch_cursor > 0;
    if (!mid_epoch_resume) ShuffleOrder(&order, blocks);
    // Materialize the epoch's batch index lists up front so the prefetch
    // pipeline can run ahead of compute.
    std::vector<std::vector<int64_t>> batch_indices =
        BuildEpochBatches(order, config_.batch_size, &logged_dropped_tail_);
    const int64_t epoch_batch_total =
        static_cast<int64_t>(batch_indices.size());
    double epoch_loss = 0.0;
    int64_t batches = 0;
    if (mid_epoch_resume) {
      // Fast-forward: the first batch_cursor batches already ran before
      // the checkpoint; drop them and seed the running loss sum.
      batches = std::min(resume_batch_cursor, epoch_batch_total);
      epoch_loss = resume_partial_loss;
      batch_indices.erase(batch_indices.begin(),
                          batch_indices.begin() + batches);
    }
    prefetcher.BeginEpoch(std::move(batch_indices));
    while (prefetcher.remaining() > 0) {
      if (options.should_cancel && options.should_cancel()) {
        stats.cancelled = true;
        stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
        stats.stage_seconds =
            StageDelta(run_stage_before,
                       StageSeconds(MetricsRegistry::Global().Snapshot()));
        return stats;
      }
      // Maybe open a sampled trace rooted at this batch: train/batch
      // becomes the root span and the stage spans below (plus any
      // prefetch/decode work this batch schedules) nest under it.
      // Sampling never touches rng_ (deterministic atomic counter), so
      // losses are bitwise-independent of the rate.
      const TraceContext batch_trace = TraceRing::Global().MaybeStartTrace();
      ScopedTraceContext batch_trace_install(batch_trace);
      SGCL_TRACE_SPAN("train/batch");
      SGCL_ASSIGN_OR_RETURN(const FetchedGraphs fetched, prefetcher.Next());
      optimizer_->ZeroGrad();
      Tensor loss = model_->ComputeLoss(fetched.graphs(), &rng_);
      {
        SGCL_TRACE_SPAN_TIMED("backward");
        loss.Backward();
      }
      {
        SGCL_TRACE_SPAN_TIMED("optimizer");
        optimizer_->ClipGradNorm(config_.grad_clip);
        optimizer_->Step();
      }
      epoch_loss += loss.item();
      ++batches;
      batches_counter->Increment();
      if (options.checkpoint_every_batches > 0 &&
          batches % options.checkpoint_every_batches == 0 &&
          batches < epoch_batch_total) {
        SGCL_RETURN_NOT_OK(save_checkpoint(
            epoch, batches, epoch_loss,
            MidEpochCheckpointFileName(options.checkpoint_dir, epoch,
                                       batches)));
      }
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    stats.epoch_seconds.push_back(epoch_seconds);
    stats.total_batches += batches;
    epochs_counter->Increment();
    RecordEpochLossMetrics(mean_loss);
    SGCL_LOG(DEBUG) << "pretrain epoch " << epoch << " loss " << mean_loss;
    if (!options.checkpoint_dir.empty() &&
        ((epoch + 1) % options.checkpoint_every == 0 ||
         epoch + 1 == config_.epochs)) {
      SGCL_RETURN_NOT_OK(save_checkpoint(
          epoch + 1, 0, 0.0,
          CheckpointFileName(options.checkpoint_dir, epoch + 1)));
    }
    if (options.on_epoch_end) {
      const std::map<std::string, double> stage_after =
          StageSeconds(MetricsRegistry::Global().Snapshot());
      EpochReport report;
      report.epoch = epoch;
      report.total_epochs = config_.epochs;
      report.mean_loss = mean_loss;
      report.batches = batches;
      report.seconds = epoch_seconds;
      report.stage_seconds = StageDelta(stage_before, stage_after);
      stage_before = std::move(stage_after);
      options.on_epoch_end(report);
    }
  }
  stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
  stats.stage_seconds = StageDelta(
      run_stage_before, StageSeconds(MetricsRegistry::Global().Snapshot()));
  return stats;
}

Status SgclTrainer::SaveTrainingCheckpoint(
    const PretrainOptions& options, const PretrainStats& stats,
    const std::vector<int64_t>& order, uint64_t config_fingerprint,
    uint64_t source_fingerprint, uint64_t train_seed, int next_epoch,
    int64_t batch_cursor, double partial_loss_sum, const std::string& path) {
  Stopwatch save_watch;
  TrainState state;
  state.config_fingerprint = config_fingerprint;
  state.model_params = SerializeModuleParams(*model_);
  state.optimizer = optimizer_->ExportState();
  state.rng = rng_.GetState();
  state.next_epoch = next_epoch;
  state.total_epochs = config_.epochs;
  state.total_batches = stats.total_batches;
  state.order = order;
  state.epoch_losses = stats.epoch_losses;
  state.epoch_seconds = stats.epoch_seconds;
  state.batch_cursor = batch_cursor;
  state.partial_loss_sum = partial_loss_sum;
  state.source_fingerprint = source_fingerprint;
  state.train_seed = train_seed;
  SGCL_RETURN_NOT_OK(SaveTrainCheckpoint(state, path));
  SGCL_RETURN_NOT_OK(PruneCheckpoints(options.checkpoint_dir,
                                      options.checkpoint_keep_last));
  const double save_seconds = save_watch.ElapsedSeconds();
  MetricsRegistry::Global().GetCounter("checkpoint/saves")->Increment();
  MetricsRegistry::Global()
      .GetCounter("time/checkpoint_us")
      ->Increment(static_cast<int64_t>(save_seconds * 1e6));
  SGCL_LOG(DEBUG) << "checkpoint " << path << " saved in " << save_seconds
                  << "s";
  if (options.on_checkpoint) {
    CheckpointReport report;
    report.path = path;
    report.epoch = next_epoch - (batch_cursor > 0 ? 0 : 1);
    report.seconds = save_seconds;
    options.on_checkpoint(report);
  }
  return Status::OK();
}

Result<PretrainStats> SgclTrainer::PretrainDistributed(
    const GraphSource& source, const std::vector<int64_t>& indices,
    const PretrainOptions& options, const DistributedPretrainOptions& dist) {
  if (dist.world_size < 1) {
    return Status::InvalidArgument(
        "DistributedPretrainOptions::world_size must be >= 1");
  }
  if (dist.rank < 0 || dist.rank >= dist.world_size) {
    return Status::InvalidArgument(StrFormat(
        "DistributedPretrainOptions::rank %d outside [0, %d)", dist.rank,
        dist.world_size));
  }
  if (dist.grad_accum < 1) {
    return Status::InvalidArgument(
        "DistributedPretrainOptions::grad_accum must be >= 1");
  }
  if (dist.world_size > dist.grad_accum) {
    // A full round has grad_accum leaf slots; more workers than slots
    // would leave some ranks with no work and an undefined schedule.
    return Status::InvalidArgument(StrFormat(
        "world_size %d exceeds grad_accum %d: every worker must own at "
        "least one leaf slot per full round",
        dist.world_size, dist.grad_accum));
  }
  if (dist.coordinator_port <= 0) {
    return Status::InvalidArgument(
        "DistributedPretrainOptions::coordinator_port must be set");
  }

  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(source.size());
    for (int64_t i = 0; i < source.size(); ++i) order[i] = i;
  }
  if (order.size() < 2) {
    return Status::InvalidArgument(
        "Pretrain needs at least 2 graphs (InfoNCE requires a negative)");
  }
  for (int64_t index : order) {
    if (index < 0 || index >= source.size()) {
      return Status::OutOfRange("Pretrain index outside source");
    }
  }
  if (options.checkpoint_every_batches < 0) {
    return Status::InvalidArgument(
        "PretrainOptions::checkpoint_every_batches must be >= 0");
  }
  if (options.checkpoint_every_batches > 0 &&
      options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every_batches requires checkpoint_dir");
  }
  if (!options.checkpoint_dir.empty()) {
    if (options.checkpoint_every <= 0) {
      return Status::InvalidArgument(
          "PretrainOptions::checkpoint_every must be >= 1");
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("cannot create checkpoint directory %s: %s",
                    options.checkpoint_dir.c_str(), ec.message().c_str()));
    }
  }

  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  stats.epoch_seconds.reserve(config_.epochs);
  const uint64_t fingerprint = ConfigFingerprint(config_);
  const uint64_t source_fingerprint = source.ContentFingerprint();
  uint64_t train_seed = seed_;
  int start_epoch = 0;
  int64_t resume_batch_cursor = 0;
  double resume_partial_loss = 0.0;
  double restored_seconds = 0.0;
  if (!options.resume_from.empty()) {
    Stopwatch load_watch;
    SGCL_ASSIGN_OR_RETURN(const TrainState state,
                          LoadTrainCheckpoint(options.resume_from));
    if (state.config_fingerprint != fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written by a run with config fingerprint %016llx, this "
          "trainer has %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.config_fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    if (state.source_fingerprint != 0 &&
        state.source_fingerprint != source_fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written against a source with fingerprint %016llx, this "
          "call trains on %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.source_fingerprint),
          static_cast<unsigned long long>(source_fingerprint)));
    }
    std::vector<int64_t> want = order;
    std::vector<int64_t> got = state.order;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (want != got) {
      return Status::InvalidArgument(StrFormat(
          "%s covers a different graph index set than this Pretrain call",
          options.resume_from.c_str()));
    }
    if (state.batch_cursor % dist.grad_accum != 0) {
      // Distributed checkpoints are only ever written at round
      // boundaries; a mid-round cursor means this checkpoint came from a
      // run with a different grad_accum (or the plain loop).
      return Status::InvalidArgument(StrFormat(
          "%s has batch cursor %lld, not a multiple of grad_accum %d — it "
          "was not written by a distributed run with this round size",
          options.resume_from.c_str(),
          static_cast<long long>(state.batch_cursor), dist.grad_accum));
    }
    SGCL_RETURN_NOT_OK(ApplyModuleParams(state.model_params, model_.get(),
                                         options.resume_from));
    SGCL_RETURN_NOT_OK(optimizer_->ImportState(state.optimizer));
    rng_.SetState(state.rng);
    if (state.train_seed != 0) train_seed = state.train_seed;
    order = state.order;
    start_epoch = state.next_epoch;
    resume_batch_cursor = state.batch_cursor;
    resume_partial_loss = state.partial_loss_sum;
    stats.epoch_losses = state.epoch_losses;
    stats.epoch_seconds = state.epoch_seconds;
    stats.total_batches = state.total_batches;
    for (double s : state.epoch_seconds) restored_seconds += s;
    const double load_seconds = load_watch.ElapsedSeconds();
    MetricsRegistry::Global().GetCounter("checkpoint/loads")->Increment();
    MetricsRegistry::Global()
        .GetCounter("time/checkpoint_us")
        ->Increment(static_cast<int64_t>(load_seconds * 1e6));
    SGCL_LOG(INFO) << "rank " << dist.rank << " resumed from "
                   << options.resume_from << " at epoch " << start_epoch
                   << " batch " << resume_batch_cursor << " ("
                   << load_seconds << "s load)";
  }

  std::vector<Tensor> params = model_->Parameters();
  uint64_t grad_dim = 0;
  for (const Tensor& param : params) {
    grad_dim += static_cast<uint64_t>(param.numel());
  }
  AllReduceSchedule schedule;
  schedule.world_size = static_cast<uint32_t>(dist.world_size);
  schedule.accum = static_cast<uint32_t>(dist.grad_accum);
  schedule.epochs = static_cast<uint32_t>(config_.epochs);
  schedule.grad_dim = grad_dim;
  schedule.batches_per_epoch = static_cast<uint64_t>(PretrainBatchesPerEpoch(
      static_cast<int64_t>(order.size()), config_.batch_size));
  schedule.config_fingerprint = fingerprint;
  schedule.source_fingerprint = source_fingerprint;
  schedule.run_seed = train_seed;
  const uint64_t rounds_per_epoch = schedule.rounds_per_epoch();
  const uint64_t accum = schedule.accum;

  WorkerHello hello;
  hello.rank = static_cast<uint32_t>(dist.rank);
  hello.schedule = schedule;
  hello.next_round = static_cast<uint64_t>(start_epoch) * rounds_per_epoch +
                     static_cast<uint64_t>(resume_batch_cursor) / accum;
  AllReduceClient client;
  SGCL_ASSIGN_OR_RETURN(
      const JoinReply reply,
      client.Join(dist.coordinator_port, hello, dist.connect_deadline_ms,
                  dist.allreduce_timeout_ms));
  // Rounds below this are already reduced cluster-wide: replay them from
  // the coordinator's cache (no compute) to catch back up to lockstep.
  const uint64_t cached_through = reply.completed_rounds;
  if (cached_through > hello.next_round) {
    SGCL_LOG(INFO) << "rank " << dist.rank << " catching up: rounds ["
                   << hello.next_round << ", " << cached_through
                   << ") replay from the coordinator cache";
  }

  Stopwatch run_watch;
  const std::map<std::string, double> run_stage_before =
      StageSeconds(MetricsRegistry::Global().Snapshot());
  std::map<std::string, double> stage_before = run_stage_before;
  static Counter* const epochs_counter =
      MetricsRegistry::Global().GetCounter("train/epochs");
  static Counter* const batches_counter =
      MetricsRegistry::Global().GetCounter("train/batches");
  static Counter* const allreduce_us_counter =
      MetricsRegistry::Global().GetCounter("comms/allreduce_us");

  const std::vector<IndexRange> blocks = source.FetchBlocks();
  PrefetcherOptions prefetch_options;
  prefetch_options.depth = options.prefetch_depth;
  BatchPrefetcher prefetcher(&source, prefetch_options);

  const auto save_checkpoint =
      [&](int next_epoch, int64_t batch_cursor, double partial_loss_sum,
          const std::string& path) -> Status {
    return SaveTrainingCheckpoint(options, stats, order, fingerprint,
                                  source_fingerprint, train_seed, next_epoch,
                                  batch_cursor, partial_loss_sum, path);
  };

  std::vector<float> leaf_grad;
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    SGCL_TRACE_SPAN("train/epoch");
    Stopwatch epoch_watch;
    const bool mid_epoch_resume =
        epoch == start_epoch && resume_batch_cursor > 0;
    // The shuffle consumes this rank's own rng_ — identically on every
    // rank, since all start from the same seed (or the same restored RNG
    // state) and the stream is touched by nothing else. Catch-up epochs
    // replayed from cache still shuffle, keeping the stream in sync.
    if (!mid_epoch_resume) ShuffleOrder(&order, blocks);
    const std::vector<std::vector<int64_t>> all_batches =
        BuildEpochBatches(order, config_.batch_size, &logged_dropped_tail_);
    const int64_t epoch_batch_total =
        static_cast<int64_t>(all_batches.size());
    SGCL_CHECK(epoch_batch_total ==
               static_cast<int64_t>(schedule.batches_per_epoch));
    double epoch_loss = 0.0;
    int64_t batches = 0;
    if (mid_epoch_resume) {
      batches = std::min(resume_batch_cursor, epoch_batch_total);
      epoch_loss = resume_partial_loss;
    }
    const uint64_t first_round = static_cast<uint64_t>(batches) / accum;
    // Feed the prefetcher exactly the leaves this rank will compute this
    // epoch, in (round, slot) order — cached rounds are replayed, not
    // recomputed, so their batches never decode.
    std::vector<std::vector<int64_t>> my_batches;
    for (uint64_t r = first_round; r < rounds_per_epoch; ++r) {
      const uint64_t global_round =
          static_cast<uint64_t>(epoch) * rounds_per_epoch + r;
      if (global_round < cached_through) continue;
      const uint32_t leaves = schedule.leaves_in_round(global_round);
      for (uint32_t slot = 0; slot < leaves; ++slot) {
        if (RankOwningSlot(slot, dist.world_size) != dist.rank) continue;
        my_batches.push_back(
            all_batches[static_cast<int64_t>(r * accum + slot)]);
      }
    }
    prefetcher.BeginEpoch(std::move(my_batches));
    int64_t last_ckpt_marker =
        options.checkpoint_every_batches > 0
            ? batches / options.checkpoint_every_batches
            : 0;
    for (uint64_t r = first_round; r < rounds_per_epoch; ++r) {
      const uint64_t global_round =
          static_cast<uint64_t>(epoch) * rounds_per_epoch + r;
      const uint32_t leaves = schedule.leaves_in_round(global_round);
      if (global_round >= cached_through) {
        for (uint32_t slot = 0; slot < leaves; ++slot) {
          if (RankOwningSlot(slot, dist.world_size) != dist.rank) continue;
          const TraceContext batch_trace =
              TraceRing::Global().MaybeStartTrace();
          ScopedTraceContext batch_trace_install(batch_trace);
          SGCL_TRACE_SPAN("train/batch");
          SGCL_ASSIGN_OR_RETURN(const FetchedGraphs fetched,
                                prefetcher.Next());
          optimizer_->ZeroGrad();
          // Position-keyed stochastic draws: any worker recomputing this
          // (epoch, batch) cell — original owner or elastic rejoiner —
          // draws the identical stream.
          const int64_t global_batch = static_cast<int64_t>(r * accum + slot);
          Rng batch_rng(DeriveBatchSeed(train_seed, epoch, global_batch));
          Tensor loss = model_->ComputeLoss(fetched.graphs(), &batch_rng);
          {
            SGCL_TRACE_SPAN_TIMED("backward");
            loss.Backward();
          }
          FlattenGradients(params, &leaf_grad);
          SGCL_RETURN_NOT_OK(client.SubmitLeaf(
              global_round, slot, static_cast<double>(loss.item()),
              leaf_grad));
        }
      }
      Stopwatch allreduce_watch;
      SGCL_ASSIGN_OR_RETURN(const ReducedRound round,
                            client.GetRound(global_round));
      allreduce_us_counter->Increment(
          static_cast<int64_t>(allreduce_watch.ElapsedSeconds() * 1e6));
      {
        SGCL_TRACE_SPAN_TIMED("optimizer");
        ApplyMeanGradients(&params, round.grad_sum, round.leaf_count);
        optimizer_->ClipGradNorm(config_.grad_clip);
        optimizer_->Step();
      }
      epoch_loss += round.loss_sum;
      batches += round.leaf_count;
      batches_counter->Increment(round.leaf_count);
      if (options.checkpoint_every_batches > 0 &&
          batches < epoch_batch_total) {
        // Round granularity: fire when the completed-batch count crossed
        // a cadence multiple since the previous round.
        const int64_t marker = batches / options.checkpoint_every_batches;
        if (marker > last_ckpt_marker) {
          last_ckpt_marker = marker;
          SGCL_RETURN_NOT_OK(save_checkpoint(
              epoch, batches, epoch_loss,
              MidEpochCheckpointFileName(options.checkpoint_dir, epoch,
                                         batches)));
        }
      }
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    stats.epoch_seconds.push_back(epoch_seconds);
    stats.total_batches += batches;
    epochs_counter->Increment();
    RecordEpochLossMetrics(mean_loss);
    SGCL_LOG(DEBUG) << "pretrain epoch " << epoch << " loss " << mean_loss
                    << " (rank " << dist.rank << "/" << dist.world_size
                    << ")";
    if (!options.checkpoint_dir.empty() &&
        ((epoch + 1) % options.checkpoint_every == 0 ||
         epoch + 1 == config_.epochs)) {
      SGCL_RETURN_NOT_OK(save_checkpoint(
          epoch + 1, 0, 0.0,
          CheckpointFileName(options.checkpoint_dir, epoch + 1)));
    }
    if (options.on_epoch_end) {
      const std::map<std::string, double> stage_after =
          StageSeconds(MetricsRegistry::Global().Snapshot());
      EpochReport report;
      report.epoch = epoch;
      report.total_epochs = config_.epochs;
      report.mean_loss = mean_loss;
      report.batches = batches;
      report.seconds = epoch_seconds;
      report.stage_seconds = StageDelta(stage_before, stage_after);
      stage_before = std::move(stage_after);
      options.on_epoch_end(report);
    }
  }
  stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
  stats.stage_seconds = StageDelta(
      run_stage_before, StageSeconds(MetricsRegistry::Global().Snapshot()));
  SGCL_RETURN_NOT_OK(client.Goodbye(static_cast<uint32_t>(dist.rank)));
  client.Disconnect();
  return stats;
}

}  // namespace sgcl
