#include "core/sgcl_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/train_state.h"
#include "data/prefetcher.h"
#include "nn/checkpoint.h"

namespace sgcl {
namespace {

// Stage-duration counters follow the "time/<stage>_us" convention
// (see metrics.h); this extracts them as {stage: seconds}.
std::map<std::string, double> StageSeconds(const MetricsSnapshot& snap) {
  std::map<std::string, double> stages;
  const std::string prefix = "time/";
  const std::string suffix = "_us";
  for (const auto& [name, us] : snap.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string stage = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    stages[stage] = static_cast<double>(us) * 1e-6;
  }
  return stages;
}

std::map<std::string, double> StageDelta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after) {
  std::map<std::string, double> delta;
  for (const auto& [stage, seconds] : after) {
    const auto it = before.find(stage);
    const double prev = it == before.end() ? 0.0 : it->second;
    if (seconds > prev) delta[stage] = seconds - prev;
  }
  return delta;
}

}  // namespace

void RecordEpochLossMetrics(float mean_loss) {
  static Gauge* const loss_gauge =
      MetricsRegistry::Global().GetGauge("train/last_epoch_loss");
  static Counter* const nonfinite_counter =
      MetricsRegistry::Global().GetCounter("train/nonfinite_loss");
  loss_gauge->Set(mean_loss);
  if (!std::isfinite(mean_loss)) nonfinite_counter->Increment();
}

SgclTrainer::SgclTrainer(const SgclConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  const Status valid = config.Validate();
  if (!valid.ok()) {
    SGCL_LOG(ERROR) << "invalid SgclConfig: " << valid.ToString();
  }
  SGCL_CHECK(valid.ok());
  model_ = std::make_unique<SgclModel>(config_, &rng_);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config_.learning_rate);
}

Result<PretrainStats> SgclTrainer::Pretrain(const GraphDataset& dataset,
                                            const std::vector<int64_t>& indices,
                                            const PretrainOptions& options) {
  const InMemorySource source(&dataset);
  return Pretrain(source, indices, options);
}

void SgclTrainer::ShuffleOrder(std::vector<int64_t>* order,
                               const std::vector<IndexRange>& blocks) {
  if (blocks.size() <= 1) {
    // Single-block source: the historical global shuffle, bit-identical
    // to the pre-GraphSource loop.
    rng_.Shuffle(order);
    return;
  }
  // Block-aware shuffle: shuffle which blocks (shards) come in what
  // order, and independently shuffle indices inside each block. Batches
  // then touch shards in runs instead of uniformly at random, so the
  // reader's decoded-shard cache keeps its bounded size effective. The
  // trade (standard for out-of-core loaders) is that two graphs from
  // different shards can never share a batch unless adjacent in the
  // shard sequence.
  std::vector<std::vector<int64_t>> groups(blocks.size());
  for (int64_t idx : *order) {
    // Blocks are sorted, disjoint, and cover the source: find the one
    // holding idx.
    size_t lo = 0, hi = blocks.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (blocks[mid].begin <= idx) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    groups[lo].push_back(idx);
  }
  std::vector<size_t> sequence;
  sequence.reserve(groups.size());
  for (size_t b = 0; b < groups.size(); ++b) {
    if (!groups[b].empty()) sequence.push_back(b);
  }
  rng_.Shuffle(&sequence);
  order->clear();
  for (size_t b : sequence) {
    rng_.Shuffle(&groups[b]);
    order->insert(order->end(), groups[b].begin(), groups[b].end());
  }
}

Result<PretrainStats> SgclTrainer::Pretrain(const GraphSource& source,
                                            const std::vector<int64_t>& indices,
                                            const PretrainOptions& options) {
  std::vector<int64_t> order = indices;
  if (order.empty()) {
    order.resize(source.size());
    for (int64_t i = 0; i < source.size(); ++i) order[i] = i;
  }
  if (order.size() < 2) {
    return Status::InvalidArgument(
        "Pretrain needs at least 2 graphs (InfoNCE requires a negative)");
  }
  for (int64_t index : order) {
    if (index < 0 || index >= source.size()) {
      return Status::OutOfRange("Pretrain index outside source");
    }
  }
  if (options.checkpoint_every_batches < 0) {
    return Status::InvalidArgument(
        "PretrainOptions::checkpoint_every_batches must be >= 0");
  }
  if (options.checkpoint_every_batches > 0 &&
      options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every_batches requires checkpoint_dir");
  }
  if (!options.checkpoint_dir.empty()) {
    if (options.checkpoint_every <= 0) {
      return Status::InvalidArgument(
          "PretrainOptions::checkpoint_every must be >= 1");
    }
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("cannot create checkpoint directory %s: %s",
                    options.checkpoint_dir.c_str(), ec.message().c_str()));
    }
  }

  PretrainStats stats;
  stats.epoch_losses.reserve(config_.epochs);
  stats.epoch_seconds.reserve(config_.epochs);
  const uint64_t fingerprint = ConfigFingerprint(config_);
  const uint64_t source_fingerprint = source.ContentFingerprint();
  int start_epoch = 0;
  int64_t resume_batch_cursor = 0;
  double resume_partial_loss = 0.0;
  double restored_seconds = 0.0;
  if (!options.resume_from.empty()) {
    Stopwatch load_watch;
    SGCL_ASSIGN_OR_RETURN(const TrainState state,
                          LoadTrainCheckpoint(options.resume_from));
    if (state.config_fingerprint != fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written by a run with config fingerprint %016llx, this "
          "trainer has %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.config_fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    // A checkpoint is bound to its training data: refuse resume against
    // a source with different content (legacy checkpoints carry 0 and
    // skip the check).
    if (state.source_fingerprint != 0 &&
        state.source_fingerprint != source_fingerprint) {
      return Status::InvalidArgument(StrFormat(
          "%s was written against a source with fingerprint %016llx, this "
          "call trains on %016llx",
          options.resume_from.c_str(),
          static_cast<unsigned long long>(state.source_fingerprint),
          static_cast<unsigned long long>(source_fingerprint)));
    }
    // The checkpointed permutation must cover exactly the graphs this
    // call selected; a different index set is a different run.
    std::vector<int64_t> want = order;
    std::vector<int64_t> got = state.order;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (want != got) {
      return Status::InvalidArgument(StrFormat(
          "%s covers a different graph index set than this Pretrain call",
          options.resume_from.c_str()));
    }
    SGCL_RETURN_NOT_OK(ApplyModuleParams(state.model_params, model_.get(),
                                         options.resume_from));
    SGCL_RETURN_NOT_OK(optimizer_->ImportState(state.optimizer));
    rng_.SetState(state.rng);
    order = state.order;
    start_epoch = state.next_epoch;
    resume_batch_cursor = state.batch_cursor;
    resume_partial_loss = state.partial_loss_sum;
    stats.epoch_losses = state.epoch_losses;
    stats.epoch_seconds = state.epoch_seconds;
    stats.total_batches = state.total_batches;
    for (double s : state.epoch_seconds) restored_seconds += s;
    const double load_seconds = load_watch.ElapsedSeconds();
    MetricsRegistry::Global().GetCounter("checkpoint/loads")->Increment();
    MetricsRegistry::Global()
        .GetCounter("time/checkpoint_us")
        ->Increment(static_cast<int64_t>(load_seconds * 1e6));
    SGCL_LOG(INFO) << "resumed from " << options.resume_from << " at epoch "
                   << start_epoch << " batch " << resume_batch_cursor << " ("
                   << load_seconds << "s load)";
  }
  Stopwatch run_watch;
  const std::map<std::string, double> run_stage_before =
      StageSeconds(MetricsRegistry::Global().Snapshot());
  std::map<std::string, double> stage_before = run_stage_before;
  static Counter* const epochs_counter =
      MetricsRegistry::Global().GetCounter("train/epochs");
  static Counter* const batches_counter =
      MetricsRegistry::Global().GetCounter("train/batches");

  const std::vector<IndexRange> blocks = source.FetchBlocks();
  PrefetcherOptions prefetch_options;
  prefetch_options.depth = options.prefetch_depth;
  BatchPrefetcher prefetcher(&source, prefetch_options);

  // Saves `state`-independent checkpoint fields and publishes to `path`.
  const auto save_checkpoint =
      [&](int next_epoch, int64_t batch_cursor, double partial_loss_sum,
          const std::string& path) -> Status {
    Stopwatch save_watch;
    TrainState state;
    state.config_fingerprint = fingerprint;
    state.model_params = SerializeModuleParams(*model_);
    state.optimizer = optimizer_->ExportState();
    state.rng = rng_.GetState();
    state.next_epoch = next_epoch;
    state.total_epochs = config_.epochs;
    state.total_batches = stats.total_batches;
    state.order = order;
    state.epoch_losses = stats.epoch_losses;
    state.epoch_seconds = stats.epoch_seconds;
    state.batch_cursor = batch_cursor;
    state.partial_loss_sum = partial_loss_sum;
    state.source_fingerprint = source_fingerprint;
    SGCL_RETURN_NOT_OK(SaveTrainCheckpoint(state, path));
    SGCL_RETURN_NOT_OK(PruneCheckpoints(options.checkpoint_dir,
                                        options.checkpoint_keep_last));
    const double save_seconds = save_watch.ElapsedSeconds();
    MetricsRegistry::Global().GetCounter("checkpoint/saves")->Increment();
    MetricsRegistry::Global()
        .GetCounter("time/checkpoint_us")
        ->Increment(static_cast<int64_t>(save_seconds * 1e6));
    SGCL_LOG(DEBUG) << "checkpoint " << path << " saved in " << save_seconds
                    << "s";
    if (options.on_checkpoint) {
      CheckpointReport report;
      report.path = path;
      report.epoch = next_epoch - (batch_cursor > 0 ? 0 : 1);
      report.seconds = save_seconds;
      options.on_checkpoint(report);
    }
    return Status::OK();
  };

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    SGCL_TRACE_SPAN("train/epoch");
    Stopwatch epoch_watch;
    // A mid-epoch resume re-enters an epoch whose shuffle already
    // happened (the restored `order` is post-shuffle and the restored
    // RNG already consumed it), so only fresh epochs reshuffle.
    const bool mid_epoch_resume =
        epoch == start_epoch && resume_batch_cursor > 0;
    if (!mid_epoch_resume) ShuffleOrder(&order, blocks);
    // Materialize the epoch's batch index lists up front so the prefetch
    // pipeline can run ahead of compute.
    std::vector<std::vector<int64_t>> batch_indices;
    batch_indices.reserve(order.size() / config_.batch_size + 1);
    for (size_t start = 0; start + 1 < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      if (end - start < 2) {
        // InfoNCE needs at least one negative, so a trailing batch of one
        // graph is skipped — every epoch, since the shuffle only reorders.
        if (!logged_dropped_tail_) {
          SGCL_LOG(DEBUG) << "Pretrain: dropping trailing batch of size "
                          << (end - start) << " (dataset size "
                          << order.size() << ", batch_size "
                          << config_.batch_size
                          << "); these graphs are skipped each epoch";
          logged_dropped_tail_ = true;
        }
        break;
      }
      batch_indices.emplace_back(order.begin() + start, order.begin() + end);
    }
    const int64_t epoch_batch_total =
        static_cast<int64_t>(batch_indices.size());
    double epoch_loss = 0.0;
    int64_t batches = 0;
    if (mid_epoch_resume) {
      // Fast-forward: the first batch_cursor batches already ran before
      // the checkpoint; drop them and seed the running loss sum.
      batches = std::min(resume_batch_cursor, epoch_batch_total);
      epoch_loss = resume_partial_loss;
      batch_indices.erase(batch_indices.begin(),
                          batch_indices.begin() + batches);
    }
    prefetcher.BeginEpoch(std::move(batch_indices));
    while (prefetcher.remaining() > 0) {
      if (options.should_cancel && options.should_cancel()) {
        stats.cancelled = true;
        stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
        stats.stage_seconds =
            StageDelta(run_stage_before,
                       StageSeconds(MetricsRegistry::Global().Snapshot()));
        return stats;
      }
      // Maybe open a sampled trace rooted at this batch: train/batch
      // becomes the root span and the stage spans below (plus any
      // prefetch/decode work this batch schedules) nest under it.
      // Sampling never touches rng_ (deterministic atomic counter), so
      // losses are bitwise-independent of the rate.
      const TraceContext batch_trace = TraceRing::Global().MaybeStartTrace();
      ScopedTraceContext batch_trace_install(batch_trace);
      SGCL_TRACE_SPAN("train/batch");
      SGCL_ASSIGN_OR_RETURN(const FetchedGraphs fetched, prefetcher.Next());
      optimizer_->ZeroGrad();
      Tensor loss = model_->ComputeLoss(fetched.graphs(), &rng_);
      {
        SGCL_TRACE_SPAN_TIMED("backward");
        loss.Backward();
      }
      {
        SGCL_TRACE_SPAN_TIMED("optimizer");
        optimizer_->ClipGradNorm(config_.grad_clip);
        optimizer_->Step();
      }
      epoch_loss += loss.item();
      ++batches;
      batches_counter->Increment();
      if (options.checkpoint_every_batches > 0 &&
          batches % options.checkpoint_every_batches == 0 &&
          batches < epoch_batch_total) {
        SGCL_RETURN_NOT_OK(save_checkpoint(
            epoch, batches, epoch_loss,
            MidEpochCheckpointFileName(options.checkpoint_dir, epoch,
                                       batches)));
      }
    }
    const float mean_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    stats.epoch_losses.push_back(mean_loss);
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    stats.epoch_seconds.push_back(epoch_seconds);
    stats.total_batches += batches;
    epochs_counter->Increment();
    RecordEpochLossMetrics(mean_loss);
    SGCL_LOG(DEBUG) << "pretrain epoch " << epoch << " loss " << mean_loss;
    if (!options.checkpoint_dir.empty() &&
        ((epoch + 1) % options.checkpoint_every == 0 ||
         epoch + 1 == config_.epochs)) {
      SGCL_RETURN_NOT_OK(save_checkpoint(
          epoch + 1, 0, 0.0,
          CheckpointFileName(options.checkpoint_dir, epoch + 1)));
    }
    if (options.on_epoch_end) {
      const std::map<std::string, double> stage_after =
          StageSeconds(MetricsRegistry::Global().Snapshot());
      EpochReport report;
      report.epoch = epoch;
      report.total_epochs = config_.epochs;
      report.mean_loss = mean_loss;
      report.batches = batches;
      report.seconds = epoch_seconds;
      report.stage_seconds = StageDelta(stage_before, stage_after);
      stage_before = std::move(stage_after);
      options.on_epoch_end(report);
    }
  }
  stats.total_seconds = restored_seconds + run_watch.ElapsedSeconds();
  stats.stage_seconds = StageDelta(
      run_stage_before, StageSeconds(MetricsRegistry::Global().Snapshot()));
  return stats;
}

}  // namespace sgcl
