// Lipschitz constant generator (paper §IV-B, Eq. 11-15).
//
// For each node v_r of a graph G, the per-node Lipschitz constant is
//   K_r = D_R(G, Ĝ_r) / D_T(G, Ĝ_r),
// where Ĝ_r is G with v_r masked out, D_R = ||H - Ĥ_r||_F over the f_q
// node representations (Eq. 12), and D_T = ||A - Â_r||_F (Eq. 5). Large
// K_r marks a semantic-related node: dropping it moves the representation
// a lot relative to the topology change.
//
// Two computation modes are provided:
//  * kExact — re-encodes the graph once per masked node (the paper's
//    Eq. 13-14 mask mechanism). Implemented with the paper's §V batching:
//    all |V| masked views are assembled into block-diagonal GraphBatches
//    of at most `max_view_nodes` total nodes each, so a graph costs a few
//    wide encoder passes instead of |V| narrow ones.
//  * kAttentionApprox — the paper's other §V optimization: one encoder
//    pass, plus attention weights that estimate each node's contribution
//    to its neighbors' representations, removed in closed form.
//
// Constants are computed outside the autograd tape (they parameterize the
// augmentation, Eq. 18, and the anchor pooling, Eq. 21, as fixed scores).
#ifndef SGCL_CORE_LIPSCHITZ_GENERATOR_H_
#define SGCL_CORE_LIPSCHITZ_GENERATOR_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_batch.h"
#include "nn/encoder.h"

namespace sgcl {

enum class LipschitzMode { kExact, kAttentionApprox };

// Topology distance of dropping node r: ||A - Â_r||_F = sqrt(2 deg(r)
// - [self-loop]). Guarded below by 1 so isolated nodes (which the paper
// leaves undefined) get K_r = D_R.
float NodeDropTopologyDistance(int64_t degree, bool has_self_loop);

class LipschitzGenerator {
 public:
  // Default cap on total nodes per block-diagonal masked-view chunk.
  // ~1K nodes keeps a chunk's activations inside per-core cache; larger
  // chunks measurably raise per-node encode cost (see EXPERIMENTS.md).
  static constexpr int64_t kDefaultMaxViewNodes = 1024;

  // `encoder` is the generator GNN f_q; not owned, must outlive this.
  // `max_view_nodes` caps the size of each batched masked-view encode
  // (clamped below by one view per chunk).
  LipschitzGenerator(const GnnEncoder* encoder, LipschitzMode mode,
                     int64_t max_view_nodes = kDefaultMaxViewNodes);

  // Per-node Lipschitz constants for every node of every graph,
  // concatenated in batch order (same layout as GraphBatch node ids).
  // Exact mode parallelizes across graphs on the shared thread pool.
  std::vector<float> ComputeConstants(
      const std::vector<const Graph*>& graphs) const;

  // Single-graph convenience.
  std::vector<float> ComputeConstants(const Graph& graph) const;

  // The seed's naive exact path — one full encoder pass per node, no
  // batching, no threading. Kept as the golden oracle for tests and the
  // lipschitz_bench baseline.
  std::vector<float> ExactConstantsReference(const Graph& graph) const;

  LipschitzMode mode() const { return mode_; }
  int64_t max_view_nodes() const { return max_view_nodes_; }

 private:
  std::vector<float> ExactConstants(const Graph& graph) const;
  std::vector<float> ApproxConstants(
      const std::vector<const Graph*>& graphs) const;

  const GnnEncoder* encoder_;
  LipschitzMode mode_;
  int64_t max_view_nodes_;
};

}  // namespace sgcl

#endif  // SGCL_CORE_LIPSCHITZ_GENERATOR_H_
