#include "core/sgcl_model.h"

#include <cmath>

#include "common/trace.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace sgcl {

SgclModel::SgclModel(const SgclConfig& config, Rng* rng) : config_(config) {
  SGCL_CHECK(rng != nullptr);
  f_q_ = std::make_unique<GnnEncoder>(config.encoder, rng);
  f_k_ = std::make_unique<GnnEncoder>(config.encoder, rng);
  projection_ = std::make_unique<Mlp>(
      std::vector<int64_t>{config.encoder.hidden_dim,
                           config.encoder.hidden_dim, config.proj_dim},
      rng);
  prob_head_ = std::make_unique<Linear>(config.encoder.hidden_dim, 1, rng,
                                        /*use_bias=*/false);
  generator_ = std::make_unique<LipschitzGenerator>(
      f_q_.get(), config.lipschitz_mode, config.max_view_nodes);
}

Tensor SgclModel::LearnedKeepScores(const GraphBatch& batch) const {
  Tensor h_q = f_q_->EncodeNodes(batch.features, batch);
  return Sigmoid(prob_head_->Forward(h_q));  // [N, 1]
}

Tensor SgclModel::ComputeLoss(const std::vector<const Graph*>& graphs,
                              Rng* rng, SgclLossStats* stats) {
  SGCL_CHECK_GE(graphs.size(), 2u);
  SGCL_CHECK(rng != nullptr);
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  const int64_t n = batch.num_nodes;

  // --- Generator side: Lipschitz constants + learned keep scores. ---
  const bool needs_lipschitz =
      config_.augmentation == AugmentationMode::kLipschitz ||
      config_.semantic_pooling;
  std::vector<float> lipschitz(static_cast<size_t>(n), 1.0f);
  if (needs_lipschitz) {
    SGCL_TRACE_SPAN_TIMED("generator");
    lipschitz = generator_->ComputeConstants(graphs);
  }
  Tensor h_q_nodes = [&] {
    SGCL_TRACE_SPAN_TIMED("encode");
    return f_q_->EncodeNodes(batch.features, batch);  // on tape
  }();
  Tensor learned_keep = Sigmoid(prob_head_->Forward(h_q_nodes));  // [N,1]

  // --- Per-graph augmentation plans (detached sampling). ---
  std::vector<uint8_t> keep_sample(static_cast<size_t>(n));
  std::vector<uint8_t> keep_complement(static_cast<size_t>(n));
  std::vector<float> binary_c(static_cast<size_t>(n));
  {
    SGCL_TRACE_SPAN_TIMED("augmentation");
    for (int64_t g = 0; g < batch.num_graphs; ++g) {
      const int64_t lo = batch.node_offsets[g],
                    hi = batch.node_offsets[g + 1];
      std::vector<float> k_slice(lipschitz.begin() + lo,
                                 lipschitz.begin() + hi);
      std::vector<float> keep_slice(static_cast<size_t>(hi - lo));
      for (int64_t v = lo; v < hi; ++v) {
        keep_slice[v - lo] = learned_keep.At(v, 0);
      }
      AugmentationPlan plan = BuildAugmentationPlan(
          k_slice, keep_slice, config_.augmentation, config_.rho, rng);
      for (int64_t v = lo; v < hi; ++v) {
        keep_sample[v] = plan.keep_sample[v - lo];
        keep_complement[v] = plan.keep_complement[v - lo];
        binary_c[v] = static_cast<float>(plan.binary_semantic[v - lo]);
      }
    }
  }

  // Preservation probabilities on the tape (Eq. 18):
  //   p = C + (1 - C) * sigma(h w^T).
  Tensor c_col = Tensor::FromVector({n, 1}, binary_c);
  std::vector<float> one_minus_c(binary_c.size());
  for (size_t i = 0; i < binary_c.size(); ++i) {
    one_minus_c[i] = 1.0f - binary_c[i];
  }
  Tensor p = Add(c_col, Mul(Tensor::FromVector({n, 1}, std::move(one_minus_c)),
                            learned_keep));  // [N,1]

  auto mask_to_tensor = [n](const std::vector<uint8_t>& keep) {
    std::vector<float> vals(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      vals[i] = static_cast<float>(keep[i]);
    }
    return Tensor::FromVector({n, 1}, std::move(vals));
  };
  const bool learnable =
      config_.augmentation != AugmentationMode::kRandom;

  // --- Sample view Ĝ (Eq. 19 / 22): hard drop + soft keep weights. ---
  GraphBatch sample_batch = MaskBatch(batch, keep_sample);
  Tensor z_sample, z_anchor, w_sample;
  {
    SGCL_TRACE_SPAN_TIMED("encode");
    Tensor sample_nodes =
        f_k_->EncodeNodes(sample_batch.features, sample_batch);
    w_sample = mask_to_tensor(keep_sample);
    if (learnable) w_sample = Mul(w_sample, p);
    z_sample = projection_->Forward(
        Pool(MulBroadcastCol(sample_nodes, w_sample), batch,
             config_.encoder.pooling));

    // --- Anchor (Eq. 21): K_V-weighted pooling when semantic_pooling. ---
    Tensor anchor_nodes = f_k_->EncodeNodes(batch.features, batch);
    Tensor anchor_pooled;
    if (config_.semantic_pooling) {
      anchor_pooled =
          Pool(MulBroadcastCol(anchor_nodes,
                               Tensor::FromVector({n, 1}, lipschitz)),
               batch, config_.encoder.pooling);
    } else {
      anchor_pooled = Pool(anchor_nodes, batch, config_.encoder.pooling);
    }
    z_anchor = projection_->Forward(anchor_pooled);
  }

  // --- Losses (Eq. 24-27). ---
  SGCL_TRACE_SPAN_TIMED("loss");
  Tensor loss = SemanticInfoNceLoss(z_anchor, z_sample, config_.tau);
  // Generator-tower objective: the paper trains f_q jointly but leaves
  // its gradient path implicit; Lipschitz constants are only meaningful
  // under a *discriminative* f_q (Definition 5 presumes the encoder
  // separates graphs), so f_q receives the same InfoNCE applied to its
  // own pooled representations of anchor vs. sample view.
  if (config_.generator_loss_weight > 0.0f) {
    Tensor q_anchor = Pool(h_q_nodes, batch, config_.encoder.pooling);
    Tensor q_view_nodes = f_q_->EncodeNodes(sample_batch.features,
                                            sample_batch);
    Tensor q_view = Pool(MulBroadcastCol(q_view_nodes, w_sample), batch,
                         config_.encoder.pooling);
    loss = Add(loss,
               MulScalar(SemanticInfoNceLoss(q_anchor, q_view, config_.tau),
                         config_.generator_loss_weight));
  }
  SgclLossStats local;
  local.semantic = loss.item();
  if (config_.lambda_c > 0.0f) {
    // Complement view Ĝ^c (Eq. 20 / 23).
    GraphBatch comp_batch = MaskBatch(batch, keep_complement);
    Tensor comp_nodes = f_k_->EncodeNodes(comp_batch.features, comp_batch);
    Tensor w_comp = mask_to_tensor(keep_complement);
    if (learnable) w_comp = Mul(w_comp, AddScalar(Neg(p), 1.0f));
    Tensor z_comp = projection_->Forward(
        Pool(MulBroadcastCol(comp_nodes, w_comp), batch,
             config_.encoder.pooling));
    Tensor lc = ComplementLoss(z_anchor, z_sample, z_comp, config_.tau);
    local.complement = lc.item();
    loss = Add(loss, MulScalar(lc, config_.lambda_c));
  }
  if (config_.lambda_w > 0.0f) {
    // Θ_W over the generator tower (the W of Theorem 1): f_q weights and
    // the probability head.
    std::vector<Tensor> weights = f_q_->Parameters();
    weights.push_back(prob_head_->weight());
    Tensor reg = WeightNormRegularizer(weights);
    local.weight_norm = reg.item();
    loss = Add(loss, MulScalar(reg, config_.lambda_w));
  }
  local.total = loss.item();
  if (stats != nullptr) *stats = local;
  return loss;
}

Tensor SgclModel::EmbedGraphs(const std::vector<const Graph*>& graphs) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  return f_k_->EncodeGraphs(batch).Detach();
}

std::vector<float> SgclModel::NodeLipschitzConstants(
    const Graph& graph) const {
  return generator_->ComputeConstants(graph);
}

std::vector<float> SgclModel::NodePreservationProbs(
    const Graph& graph) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs({&graph});
  Tensor learned = LearnedKeepScores(batch).Detach();
  std::vector<uint8_t> binary =
      BinarizeLipschitz(generator_->ComputeConstants(graph));
  std::vector<float> probs(static_cast<size_t>(graph.num_nodes()));
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    probs[v] = binary[v] ? 1.0f : learned.At(v, 0);
  }
  return probs;
}

std::vector<Tensor> SgclModel::Parameters() const {
  return ConcatParameters(
      {f_q_.get(), f_k_.get(), projection_.get(), prob_head_.get()});
}

}  // namespace sgcl
