#include "core/augmentation.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace sgcl {
namespace {

// Augmentation telemetry (always-on; see metrics.h). Drop counts are the
// quantity the GCL empirical literature keys on, so they are first-class
// metrics rather than log lines.
void CountPlan(const AugmentationPlan& plan) {
  static Counter* const plans =
      MetricsRegistry::Global().GetCounter("augmentation/plans");
  static Counter* const nodes =
      MetricsRegistry::Global().GetCounter("augmentation/nodes");
  static Counter* const dropped_sample = MetricsRegistry::Global().GetCounter(
      "augmentation/nodes_dropped_sample");
  static Counter* const dropped_complement =
      MetricsRegistry::Global().GetCounter(
          "augmentation/nodes_dropped_complement");
  static Counter* const semantic = MetricsRegistry::Global().GetCounter(
      "augmentation/semantic_related_nodes");
  int64_t drop_s = 0, drop_c = 0, related = 0;
  for (uint8_t keep : plan.keep_sample) drop_s += keep ? 0 : 1;
  for (uint8_t keep : plan.keep_complement) drop_c += keep ? 0 : 1;
  for (uint8_t c : plan.binary_semantic) related += c ? 1 : 0;
  plans->Increment();
  nodes->Increment(static_cast<int64_t>(plan.keep_sample.size()));
  dropped_sample->Increment(drop_s);
  dropped_complement->Increment(drop_c);
  semantic->Increment(related);
}

// Drops `num_drop` of the nodes with eligible[i] != 0, sampled without
// replacement proportionally to drop_weight[i]; returns the keep mask.
std::vector<uint8_t> SampleDrops(const std::vector<uint8_t>& eligible,
                                 const std::vector<double>& drop_weight,
                                 int64_t num_drop, Rng* rng) {
  const int64_t n = static_cast<int64_t>(eligible.size());
  std::vector<uint8_t> keep(static_cast<size_t>(n), 1);
  if (num_drop <= 0) return keep;
  std::vector<int64_t> pool;
  std::vector<double> weights;
  for (int64_t v = 0; v < n; ++v) {
    if (eligible[v]) {
      pool.push_back(v);
      weights.push_back(drop_weight[v]);
    }
  }
  num_drop = std::min<int64_t>(num_drop, static_cast<int64_t>(pool.size()));
  std::vector<int64_t> picked =
      rng->WeightedSampleWithoutReplacement(weights, num_drop);
  for (int64_t p : picked) keep[pool[p]] = 0;
  return keep;
}

}  // namespace

std::vector<uint8_t> BinarizeLipschitz(const std::vector<float>& lipschitz) {
  const size_t n = lipschitz.size();
  std::vector<uint8_t> binary(n, 1);
  if (n == 0) return binary;
  double mean = 0.0;
  for (float k : lipschitz) mean += k;
  mean /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    binary[i] = lipschitz[i] >= mean ? 1 : 0;
  }
  return binary;
}

AugmentationPlan BuildAugmentationPlan(const std::vector<float>& lipschitz,
                                       const std::vector<float>& learned_keep,
                                       AugmentationMode mode, double rho,
                                       Rng* rng) {
  SGCL_CHECK(rng != nullptr);
  SGCL_CHECK(rho >= 0.0 && rho <= 1.0);
  const int64_t n = static_cast<int64_t>(
      mode == AugmentationMode::kRandom ? std::max(lipschitz.size(),
                                                   learned_keep.size())
                                        : learned_keep.size());
  AugmentationPlan plan;
  plan.binary_semantic.assign(static_cast<size_t>(n), 1);
  plan.preserve_prob.assign(static_cast<size_t>(n), 1.0f);

  if (mode == AugmentationMode::kRandom) {
    // "w/o VG": uniform random node dropping; both views are independent
    // random drops of rho-adjusted size (matching GraphCL's ~10-20% drop
    // when rho = 0.9 under the eligible-set convention would drop almost
    // everything, so random mode drops (1 - rho) of all nodes).
    const int64_t num_drop = static_cast<int64_t>(
        std::lround((1.0 - rho) * static_cast<double>(n)));
    std::vector<uint8_t> all(static_cast<size_t>(n), 1);
    std::vector<double> uniform(static_cast<size_t>(n), 1.0);
    plan.keep_sample = SampleDrops(all, uniform, num_drop, rng);
    plan.keep_complement = SampleDrops(all, uniform, num_drop, rng);
    for (int64_t v = 0; v < n; ++v) plan.preserve_prob[v] = 0.5f;
    CountPlan(plan);
    return plan;
  }

  SGCL_CHECK_EQ(lipschitz.size(), learned_keep.size());
  if (mode == AugmentationMode::kLipschitz) {
    plan.binary_semantic = BinarizeLipschitz(lipschitz);
  } else {
    // kLearnableOnly ("w/o LGA"): no binarization; every node is eligible
    // and its preservation probability is purely the learned score.
    std::fill(plan.binary_semantic.begin(), plan.binary_semantic.end(), 0);
  }
  // Eq. 18: P = C + (1 - C) * sigma(h w^T).
  for (int64_t v = 0; v < n; ++v) {
    plan.preserve_prob[v] = plan.binary_semantic[v]
                                ? 1.0f
                                : std::clamp(learned_keep[v], 0.0f, 1.0f);
  }

  // Sample view Ĝ: drop (1 - rho)|V| nodes, all drawn from the
  // semantic-unrelated set, weighted by 1 - P.
  std::vector<uint8_t> eligible_sample(static_cast<size_t>(n));
  std::vector<double> drop_w_sample(static_cast<size_t>(n), 0.0);
  int64_t num_unrelated = 0;
  for (int64_t v = 0; v < n; ++v) {
    eligible_sample[v] = plan.binary_semantic[v] ? 0 : 1;
    num_unrelated += eligible_sample[v];
    drop_w_sample[v] = 1.0 - static_cast<double>(plan.preserve_prob[v]) + 1e-3;
  }
  const int64_t drop_sample = std::min(
      num_unrelated,
      static_cast<int64_t>(std::lround(
          (1.0 - rho) * static_cast<double>(n))));
  plan.keep_sample = SampleDrops(eligible_sample, drop_w_sample, drop_sample,
                                 rng);

  // Complement view Ĝ^c (Eq. 20): invert probabilities — related nodes
  // become eligible and are dropped preferentially.
  std::vector<uint8_t> eligible_comp(static_cast<size_t>(n));
  std::vector<double> drop_w_comp(static_cast<size_t>(n), 0.0);
  int64_t num_related = 0;
  for (int64_t v = 0; v < n; ++v) {
    eligible_comp[v] = plan.binary_semantic[v] ? 1 : 0;
    num_related += eligible_comp[v];
    drop_w_comp[v] = static_cast<double>(plan.preserve_prob[v]) + 1e-3;
  }
  // In "w/o LGA" mode nothing is marked related; fall back to dropping
  // high-probability nodes so the complement remains a negative view.
  if (num_related == 0) {
    for (int64_t v = 0; v < n; ++v) eligible_comp[v] = 1;
    num_related = n;
  }
  const int64_t drop_comp = static_cast<int64_t>(
      std::lround(rho * static_cast<double>(num_related)));
  plan.keep_complement =
      SampleDrops(eligible_comp, drop_w_comp, drop_comp, rng);
  CountPlan(plan);
  return plan;
}

Graph ApplyNodeDrop(const Graph& graph, const std::vector<uint8_t>& keep) {
  SGCL_CHECK_EQ(static_cast<int64_t>(keep.size()), graph.num_nodes());
  return graph.InducedSubgraph(keep);
}

GraphBatch MaskBatch(const GraphBatch& batch,
                     const std::vector<uint8_t>& keep) {
  SGCL_CHECK_EQ(static_cast<int64_t>(keep.size()), batch.num_nodes);
  GraphBatch masked = batch;
  std::vector<float> feats(batch.features.values());
  for (int64_t v = 0; v < batch.num_nodes; ++v) {
    if (keep[v]) continue;
    for (int64_t j = 0; j < batch.feat_dim; ++j) {
      feats[v * batch.feat_dim + j] = 0.0f;
    }
  }
  masked.features = Tensor::FromVector({batch.num_nodes, batch.feat_dim},
                                       std::move(feats));
  masked.edge_src.clear();
  masked.edge_dst.clear();
  for (size_t e = 0; e < batch.edge_src.size(); ++e) {
    if (keep[batch.edge_src[e]] && keep[batch.edge_dst[e]]) {
      masked.edge_src.push_back(batch.edge_src[e]);
      masked.edge_dst.push_back(batch.edge_dst[e]);
    }
  }
  return masked;
}

}  // namespace sgcl
