#include "core/lipschitz_generator.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/trace.h"
#include "nn/gin_inference.h"

namespace sgcl {
namespace {

// Per-node incidence index over a directed edge list: edge ids touching
// node v (as source or destination) are edges[offsets[v] .. offsets[v+1]),
// ascending. A self-loop appears once.
struct IncidenceIndex {
  std::vector<int64_t> offsets;  // [num_nodes + 1]
  std::vector<int64_t> edges;
};

IncidenceIndex BuildIncidenceIndex(int64_t num_nodes,
                                   const std::vector<int32_t>& src,
                                   const std::vector<int32_t>& dst) {
  IncidenceIndex index;
  index.offsets.assign(static_cast<size_t>(num_nodes) + 1, 0);
  const int64_t num_edges = static_cast<int64_t>(src.size());
  for (int64_t e = 0; e < num_edges; ++e) {
    ++index.offsets[src[e] + 1];
    if (dst[e] != src[e]) ++index.offsets[dst[e] + 1];
  }
  for (int64_t v = 0; v < num_nodes; ++v) {
    index.offsets[v + 1] += index.offsets[v];
  }
  index.edges.resize(index.offsets[num_nodes]);
  std::vector<int64_t> cursor(index.offsets.begin(), index.offsets.end() - 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    index.edges[cursor[src[e]]++] = e;
    if (dst[e] != src[e]) index.edges[cursor[dst[e]]++] = e;
  }
  return index;
}

// Squared Frobenius displacement between the base representation `h` and
// the masked view's block `h_view`, with row r zeroed on the masked side
// (Eq. 15: the perturbation mask zeroes row r of Ĥ_r, so that row
// contributes ||h_r||^2). ISA-cloned: the float->double convert-and-
// accumulate loop vectorizes 8-wide on AVX-512 hosts.
SGCL_TARGET_CLONES
double ViewDisplacementSq(const float* h, const float* h_view, int64_t n,
                          int64_t d, int64_t r) {
  double sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float* hrow = h + i * d;
    const float* vrow = h_view + i * d;
    if (i == r) {
      for (int64_t j = 0; j < d; ++j) {
        sq += static_cast<double>(hrow[j]) * hrow[j];
      }
    } else {
      for (int64_t j = 0; j < d; ++j) {
        const float delta = hrow[j] - vrow[j];
        sq += static_cast<double>(delta) * delta;
      }
    }
  }
  return sq;
}

}  // namespace

float NodeDropTopologyDistance(int64_t degree, bool has_self_loop) {
  // Dropping node r zeroes row r and column r of A. Each incident edge
  // {r, j}, j != r contributes two unit entries; a self-loop contributes
  // one diagonal entry.
  const int64_t off_diag = degree - (has_self_loop ? 1 : 0);
  const float sq = 2.0f * static_cast<float>(off_diag) +
                   (has_self_loop ? 1.0f : 0.0f);
  return std::max(1.0f, std::sqrt(sq));
}

LipschitzGenerator::LipschitzGenerator(const GnnEncoder* encoder,
                                       LipschitzMode mode,
                                       int64_t max_view_nodes)
    : encoder_(encoder), mode_(mode), max_view_nodes_(max_view_nodes) {
  SGCL_CHECK(encoder != nullptr);
  SGCL_CHECK_GT(max_view_nodes, 0);
}

std::vector<float> LipschitzGenerator::ComputeConstants(
    const std::vector<const Graph*>& graphs) const {
  if (mode_ == LipschitzMode::kAttentionApprox) {
    return ApproxConstants(graphs);
  }
  const int64_t num_graphs = static_cast<int64_t>(graphs.size());
  std::vector<int64_t> offsets(static_cast<size_t>(num_graphs) + 1, 0);
  for (int64_t g = 0; g < num_graphs; ++g) {
    offsets[g + 1] = offsets[g] + graphs[g]->num_nodes();
  }
  std::vector<float> all(static_cast<size_t>(offsets[num_graphs]), 0.0f);
  static Counter* const graphs_counter =
      MetricsRegistry::Global().GetCounter("generator/graphs");
  graphs_counter->Increment(num_graphs);
  // Each graph writes its own disjoint slice, so the result is identical
  // for every thread count.
  ParallelFor(0, num_graphs, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t g = lo; g < hi; ++g) {
      std::vector<float> k = ExactConstants(*graphs[g]);
      std::copy(k.begin(), k.end(), all.begin() + offsets[g]);
    }
  });
  return all;
}

std::vector<float> LipschitzGenerator::ComputeConstants(
    const Graph& graph) const {
  return ComputeConstants(std::vector<const Graph*>{&graph});
}

std::vector<float> LipschitzGenerator::ExactConstants(
    const Graph& graph) const {
  const int64_t n = graph.num_nodes();
  std::vector<float> constants(static_cast<size_t>(n), 0.0f);
  if (n == 0) return constants;
  const int64_t f = graph.feat_dim();
  GraphBatch base = GraphBatch::FromGraphPtrs({&graph});
  const std::vector<int64_t> deg = graph.Degrees();
  const int64_t num_edges = static_cast<int64_t>(base.edge_src.size());
  // GIN stacks (the paper's default encoder) take the fused tape-free
  // masked-view kernel: one base encode keeping all layer activations,
  // then per view only the L-hop ball around the masked node is
  // recomputed (rows further away are bit-identical to the base encode).
  // Other architectures fall back to batched tape encodes below.
  const GinInferencePlan plan = GinInferencePlan::Build(*encoder_);
  if (plan.valid()) {
    SGCL_TRACE_SPAN("generator/fused_views");
    GinMaskedViewKernel kernel(plan, base.features.data(), n,
                               base.edge_src.data(), base.edge_dst.data(),
                               num_edges);
    // Same knob as the batched fallback: each parallel work item owns at
    // most max_view_nodes total view nodes.
    const int64_t grain = std::max<int64_t>(1, max_view_nodes_ / n);
    ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
      // Chunk-granularity span: one per work item, recorded on the worker
      // thread that ran it, so traces show the fan-out without per-node
      // overhead.
      SGCL_TRACE_SPAN("generator/view_chunk");
      std::vector<double> disp(static_cast<size_t>(hi - lo));
      kernel.ViewDisplacementsSq(lo, hi, disp.data());
      for (int64_t r = lo; r < hi; ++r) {
        const float dr = static_cast<float>(std::sqrt(disp[r - lo]));
        const float dt = NodeDropTopologyDistance(deg[r], graph.HasEdge(r, r));
        constants[r] = dr / dt;
      }
    });
    return constants;
  }
  const Tensor h = encoder_->EncodeNodes(base.features, base).Detach();
  const int64_t d = h.cols();
  const float* hb = h.data();
  const IncidenceIndex incidence =
      BuildIncidenceIndex(n, base.edge_src, base.edge_dst);

  // §V batching: masked views (node r's features zeroed, node r's edges
  // dropped) are packed into block-diagonal batches of at most
  // max_view_nodes total nodes and encoded in one pass per chunk. The
  // encoder treats disjoint blocks independently, so each block's rows
  // equal the single-view encode exactly.
  const int64_t views_per_chunk = std::max<int64_t>(1, max_view_nodes_ / n);
  // Chunk buffers hoisted out of the loop so their capacity is reused.
  std::vector<float> feats;
  feats.reserve(static_cast<size_t>(views_per_chunk * n * f));
  std::vector<int32_t> edge_src, edge_dst;
  edge_src.reserve(static_cast<size_t>(views_per_chunk * num_edges));
  edge_dst.reserve(static_cast<size_t>(views_per_chunk * num_edges));
  static Counter* const view_chunks_counter =
      MetricsRegistry::Global().GetCounter("generator/view_chunks");
  for (int64_t chunk_begin = 0; chunk_begin < n;
       chunk_begin += views_per_chunk) {
    view_chunks_counter->Increment();
    const int64_t num_views = std::min(views_per_chunk, n - chunk_begin);
    const int64_t chunk_nodes = num_views * n;
    SGCL_TRACE_SPAN("generator/masked_view_chunk");
    feats.clear();
    edge_src.clear();
    edge_dst.clear();
    for (int64_t v = 0; v < num_views; ++v) {
      const int64_t r = chunk_begin + v;
      // One shared features buffer per chunk: append the base matrix and
      // zero only row r of this view's block.
      feats.insert(feats.end(), graph.features().begin(),
                   graph.features().end());
      std::fill_n(feats.begin() + (v * n + r) * f, f, 0.0f);
      // Edge list minus edges incident to r, built by copying the runs
      // between r's (ascending) incident edge ids — no full-E rescan with
      // per-edge predicates.
      const int32_t shift = static_cast<int32_t>(v * n);
      int64_t next = 0;
      auto append_run = [&](int64_t lo, int64_t hi) {
        for (int64_t e = lo; e < hi; ++e) {
          edge_src.push_back(base.edge_src[e] + shift);
          edge_dst.push_back(base.edge_dst[e] + shift);
        }
      };
      for (int64_t t = incidence.offsets[r]; t < incidence.offsets[r + 1];
           ++t) {
        append_run(next, incidence.edges[t]);
        next = incidence.edges[t] + 1;
      }
      append_run(next, num_edges);
    }
    GraphBatch views;
    views.num_graphs = num_views;
    views.num_nodes = chunk_nodes;
    views.feat_dim = f;
    views.node_graph_ids.reserve(static_cast<size_t>(chunk_nodes));
    views.node_offsets.reserve(static_cast<size_t>(num_views) + 1);
    views.node_offsets.push_back(0);
    for (int64_t v = 0; v < num_views; ++v) {
      for (int64_t node = 0; node < n; ++node) {
        views.node_graph_ids.push_back(static_cast<int32_t>(v));
      }
      views.node_offsets.push_back((v + 1) * n);
    }
    views.edge_src = edge_src;
    views.edge_dst = edge_dst;
    views.features = Tensor::FromVector({chunk_nodes, f}, feats);
    const Tensor h_views = [&] {
      SGCL_TRACE_SPAN("generator/encode_views");
      return encoder_->EncodeNodes(views.features, views).Detach();
    }();
    const float* hv = h_views.data();
    // Per-view displacement reduction (Eq. 15); each view owns its own
    // output entry.
    SGCL_TRACE_SPAN("generator/displacement");
    ParallelFor(0, num_views, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t v = lo; v < hi; ++v) {
        const int64_t r = chunk_begin + v;
        const double sq = ViewDisplacementSq(hb, hv + v * n * d, n, d, r);
        const float dr = static_cast<float>(std::sqrt(sq));
        const float dt =
            NodeDropTopologyDistance(deg[r], graph.HasEdge(r, r));
        constants[r] = dr / dt;
      }
    });
  }
  return constants;
}

std::vector<float> LipschitzGenerator::ExactConstantsReference(
    const Graph& graph) const {
  const int64_t n = graph.num_nodes();
  std::vector<float> constants(static_cast<size_t>(n), 0.0f);
  if (n == 0) return constants;
  GraphBatch base = GraphBatch::FromGraphPtrs({&graph});
  const Tensor h = encoder_->EncodeNodes(base.features, base).Detach();
  const int64_t d = h.cols();
  const std::vector<int64_t> deg = graph.Degrees();
  for (int64_t r = 0; r < n; ++r) {
    // Masked view: node r's features zeroed and its edges removed
    // (Eq. 13-14 realized structurally, which for sum aggregators is the
    // same as multiplying messages by the mask).
    GraphBatch masked = base;
    std::vector<float> feats(base.features.values());
    for (int64_t j = 0; j < graph.feat_dim(); ++j) {
      feats[r * graph.feat_dim() + j] = 0.0f;
    }
    masked.features =
        Tensor::FromVector({n, graph.feat_dim()}, std::move(feats));
    masked.edge_src.clear();
    masked.edge_dst.clear();
    for (size_t e = 0; e < base.edge_src.size(); ++e) {
      if (base.edge_src[e] == r || base.edge_dst[e] == r) continue;
      masked.edge_src.push_back(base.edge_src[e]);
      masked.edge_dst.push_back(base.edge_dst[e]);
    }
    const Tensor h_masked =
        encoder_->EncodeNodes(masked.features, masked).Detach();
    const double sq = ViewDisplacementSq(h.data(), h_masked.data(), n, d, r);
    const float dr = static_cast<float>(std::sqrt(sq));
    const float dt = NodeDropTopologyDistance(deg[r], graph.HasEdge(r, r));
    constants[r] = dr / dt;
  }
  return constants;
}

std::vector<float> LipschitzGenerator::ApproxConstants(
    const std::vector<const Graph*>& graphs) const {
  SGCL_TRACE_SPAN("generator/approx");
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  std::vector<float> constants(static_cast<size_t>(batch.num_nodes), 0.0f);
  if (batch.num_nodes == 0) return constants;
  const Tensor h = encoder_->EncodeNodes(batch.features, batch).Detach();
  const int64_t n = batch.num_nodes, d = h.cols();
  // Row norms of the final representations.
  std::vector<float> row_norm(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    double sq = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      sq += static_cast<double>(h.At(i, j)) * h.At(i, j);
    }
    row_norm[i] = static_cast<float>(std::sqrt(sq));
  }
  const int64_t e = static_cast<int64_t>(batch.edge_src.size());
  // Attention weight of edge (r -> i): softmax over i's in-edges of the
  // scaled dot product h_r . h_i / sqrt(d) — the share of i's
  // representation attributable to r (§V's attention optimization).
  std::vector<float> scores(static_cast<size_t>(e));
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  for (int64_t r = 0; r < e; ++r) {
    const int64_t src = batch.edge_src[r], dst = batch.edge_dst[r];
    double dot = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      dot += static_cast<double>(h.At(src, j)) * h.At(dst, j);
    }
    scores[r] = static_cast<float>(dot) * inv_sqrt_d;
  }
  // Segment-softmax by destination (plain arrays; no autograd needed).
  std::vector<float> seg_max(static_cast<size_t>(n), -3.4e38f);
  for (int64_t r = 0; r < e; ++r) {
    seg_max[batch.edge_dst[r]] =
        std::max(seg_max[batch.edge_dst[r]], scores[r]);
  }
  std::vector<float> seg_sum(static_cast<size_t>(n), 0.0f);
  for (int64_t r = 0; r < e; ++r) {
    scores[r] = std::exp(scores[r] - seg_max[batch.edge_dst[r]]);
    seg_sum[batch.edge_dst[r]] += scores[r];
  }
  // Accumulate squared representation displacement per source node:
  //   D_R(G, Ĝ_r)^2 ≈ ||h_r||^2 + sum_{i in N(r)} (alpha_{ri} ||h_i||)^2.
  std::vector<double> disp_sq(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    disp_sq[i] = static_cast<double>(row_norm[i]) * row_norm[i];
  }
  for (int64_t r = 0; r < e; ++r) {
    const int64_t src = batch.edge_src[r], dst = batch.edge_dst[r];
    const float alpha = scores[r] / std::max(seg_sum[dst], 1e-12f);
    const double contrib = static_cast<double>(alpha) * row_norm[dst];
    disp_sq[src] += contrib * contrib;
  }
  // D_T consults the actual self-loop structure, matching ExactConstants
  // (Eq. 12 must agree between the two modes on graphs with self-loops).
  std::vector<uint8_t> has_self_loop(static_cast<size_t>(n), 0);
  int64_t node_offset = 0;
  for (const Graph* g : graphs) {
    for (int64_t v = 0; v < g->num_nodes(); ++v) {
      has_self_loop[node_offset + v] = g->HasEdge(v, v) ? 1 : 0;
    }
    node_offset += g->num_nodes();
  }
  std::vector<int64_t> deg = batch.Degrees();
  for (int64_t v = 0; v < n; ++v) {
    const float dt = NodeDropTopologyDistance(deg[v], has_self_loop[v] != 0);
    constants[v] = static_cast<float>(std::sqrt(disp_sq[v])) / dt;
  }
  return constants;
}

}  // namespace sgcl
