#include "core/lipschitz_generator.h"

#include <cmath>

namespace sgcl {

float NodeDropTopologyDistance(int64_t degree, bool has_self_loop) {
  // Dropping node r zeroes row r and column r of A. Each incident edge
  // {r, j}, j != r contributes two unit entries; a self-loop contributes
  // one diagonal entry.
  const int64_t off_diag = degree - (has_self_loop ? 1 : 0);
  const float sq = 2.0f * static_cast<float>(off_diag) +
                   (has_self_loop ? 1.0f : 0.0f);
  return std::max(1.0f, std::sqrt(sq));
}

LipschitzGenerator::LipschitzGenerator(const GnnEncoder* encoder,
                                       LipschitzMode mode)
    : encoder_(encoder), mode_(mode) {
  SGCL_CHECK(encoder != nullptr);
}

std::vector<float> LipschitzGenerator::ComputeConstants(
    const std::vector<const Graph*>& graphs) const {
  if (mode_ == LipschitzMode::kAttentionApprox) {
    return ApproxConstants(graphs);
  }
  std::vector<float> all;
  for (const Graph* g : graphs) {
    std::vector<float> k = ExactConstants(*g);
    all.insert(all.end(), k.begin(), k.end());
  }
  return all;
}

std::vector<float> LipschitzGenerator::ComputeConstants(
    const Graph& graph) const {
  return ComputeConstants(std::vector<const Graph*>{&graph});
}

std::vector<float> LipschitzGenerator::ExactConstants(
    const Graph& graph) const {
  const int64_t n = graph.num_nodes();
  std::vector<float> constants(static_cast<size_t>(n), 0.0f);
  if (n == 0) return constants;
  GraphBatch base = GraphBatch::FromGraphPtrs({&graph});
  const Tensor h = encoder_->EncodeNodes(base.features, base).Detach();
  const int64_t d = h.cols();
  const std::vector<int64_t> deg = graph.Degrees();
  for (int64_t r = 0; r < n; ++r) {
    // Masked view: node r's features zeroed and its edges removed
    // (Eq. 13-14 realized structurally, which for sum aggregators is the
    // same as multiplying messages by the mask).
    GraphBatch masked = base;
    std::vector<float> feats(base.features.values());
    for (int64_t j = 0; j < graph.feat_dim(); ++j) {
      feats[r * graph.feat_dim() + j] = 0.0f;
    }
    masked.features =
        Tensor::FromVector({n, graph.feat_dim()}, std::move(feats));
    masked.edge_src.clear();
    masked.edge_dst.clear();
    for (size_t e = 0; e < base.edge_src.size(); ++e) {
      if (base.edge_src[e] == r || base.edge_dst[e] == r) continue;
      masked.edge_src.push_back(base.edge_src[e]);
      masked.edge_dst.push_back(base.edge_dst[e]);
    }
    const Tensor h_masked =
        encoder_->EncodeNodes(masked.features, masked).Detach();
    double sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      // The dropped node's own representation is excluded on both sides:
      // the perturbation mask (Eq. 13) zeroes row r in Ĥ_r, so row r
      // contributes ||h_r||^2.
      for (int64_t j = 0; j < d; ++j) {
        const float hv = h.At(i, j);
        const float mv = (i == r) ? 0.0f : h_masked.At(i, j);
        const float delta = hv - mv;
        sq += static_cast<double>(delta) * delta;
      }
    }
    const float dr = static_cast<float>(std::sqrt(sq));
    const float dt = NodeDropTopologyDistance(deg[r], graph.HasEdge(r, r));
    constants[r] = dr / dt;
  }
  return constants;
}

std::vector<float> LipschitzGenerator::ApproxConstants(
    const std::vector<const Graph*>& graphs) const {
  GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  std::vector<float> constants(static_cast<size_t>(batch.num_nodes), 0.0f);
  if (batch.num_nodes == 0) return constants;
  const Tensor h = encoder_->EncodeNodes(batch.features, batch).Detach();
  const int64_t n = batch.num_nodes, d = h.cols();
  // Row norms of the final representations.
  std::vector<float> row_norm(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    double sq = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      sq += static_cast<double>(h.At(i, j)) * h.At(i, j);
    }
    row_norm[i] = static_cast<float>(std::sqrt(sq));
  }
  const int64_t e = static_cast<int64_t>(batch.edge_src.size());
  // Attention weight of edge (r -> i): softmax over i's in-edges of the
  // scaled dot product h_r . h_i / sqrt(d) — the share of i's
  // representation attributable to r (§V's attention optimization).
  std::vector<float> scores(static_cast<size_t>(e));
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  for (int64_t r = 0; r < e; ++r) {
    const int64_t src = batch.edge_src[r], dst = batch.edge_dst[r];
    double dot = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      dot += static_cast<double>(h.At(src, j)) * h.At(dst, j);
    }
    scores[r] = static_cast<float>(dot) * inv_sqrt_d;
  }
  // Segment-softmax by destination (plain arrays; no autograd needed).
  std::vector<float> seg_max(static_cast<size_t>(n), -3.4e38f);
  for (int64_t r = 0; r < e; ++r) {
    seg_max[batch.edge_dst[r]] =
        std::max(seg_max[batch.edge_dst[r]], scores[r]);
  }
  std::vector<float> seg_sum(static_cast<size_t>(n), 0.0f);
  for (int64_t r = 0; r < e; ++r) {
    scores[r] = std::exp(scores[r] - seg_max[batch.edge_dst[r]]);
    seg_sum[batch.edge_dst[r]] += scores[r];
  }
  // Accumulate squared representation displacement per source node:
  //   D_R(G, Ĝ_r)^2 ≈ ||h_r||^2 + sum_{i in N(r)} (alpha_{ri} ||h_i||)^2.
  std::vector<double> disp_sq(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    disp_sq[i] = static_cast<double>(row_norm[i]) * row_norm[i];
  }
  for (int64_t r = 0; r < e; ++r) {
    const int64_t src = batch.edge_src[r], dst = batch.edge_dst[r];
    const float alpha = scores[r] / std::max(seg_sum[dst], 1e-12f);
    const double contrib = static_cast<double>(alpha) * row_norm[dst];
    disp_sq[src] += contrib * contrib;
  }
  std::vector<int64_t> deg = batch.Degrees();
  for (int64_t v = 0; v < n; ++v) {
    const float dt = NodeDropTopologyDistance(deg[v], /*has_self_loop=*/false);
    constants[v] = static_cast<float>(std::sqrt(disp_sq[v])) / dt;
  }
  return constants;
}

}  // namespace sgcl
