#include "serve/graph_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace sgcl {
namespace serve {
namespace {

Status GraphError(size_t index, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("graphs[%zu]: %s", index, message.c_str()));
}

// Streaming single-pass scanner for the /v1/embed request shape. The
// request body is the hottest input on the serving path (every feature
// of every node arrives as a JSON number), and the generic JsonValue DOM
// costs a heap node per number — for a 16-graph request that is
// thousands of allocations before the first forward runs. This scanner
// tokenizes in place: numbers go straight into the Graph feature/edge
// arrays (with a fast path for the bare integers that dominate one-hot
// feature encodings and edge lists), strings and unknown keys are
// skipped without materializing values, and only the final Graph
// storage is allocated. Key order is free and unknown keys are
// tolerated, matching the DOM parser it replaces; so are the error
// messages, which tests pin.
class GraphsRequestScanner {
 public:
  GraphsRequestScanner(const std::string& body, int64_t feat_dim,
                       const RequestLimits& limits)
      : text_(body), feat_dim_(feat_dim), limits_(limits) {}

  Result<std::vector<Graph>> Run() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (text_[pos_] != '{') {
      return Status::InvalidArgument("request body must be a JSON object");
    }
    ++pos_;
    bool saw_graphs = false;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
    } else {
      for (;;) {
        std::string key;
        SGCL_RETURN_NOT_OK(ParseKey(&key));
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Error("expected ':' after object key");
        }
        ++pos_;
        if (key == "graphs") {
          saw_graphs = true;
          SGCL_RETURN_NOT_OK(ParseGraphsArray());
        } else {
          SGCL_RETURN_NOT_OK(SkipValue(/*depth=*/1));
        }
        SkipWs();
        if (pos_ >= text_.size()) return Error("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          break;
        }
        return Error("expected ',' or '}' in object");
      }
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    if (!saw_graphs) {
      return Status::InvalidArgument(
          "missing required array field \"graphs\"");
    }
    if (graphs_.empty()) {
      return Status::InvalidArgument("\"graphs\" must not be empty");
    }
    return std::move(graphs_);
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  static bool IsNumberChar(char c) {
    return (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
           c == '+' || c == '-';
  }

  // Parses one number token at pos_ (no leading whitespace). Bare
  // integers — one-hot features, edge endpoints, num_nodes — take the
  // digit-accumulation fast path; everything else falls back to strtod
  // over the in-place token, with the same accept/reject behavior as
  // the DOM parser (token chars scanned first, then strtod must consume
  // exactly the token).
  Status ParseNumber(double* out) {
    const size_t start = pos_;
    size_t p = pos_;
    uint64_t acc = 0;
    while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') {
      acc = acc * 10 + static_cast<uint64_t>(text_[p] - '0');
      ++p;
      if (p - start > 15) break;
    }
    if (p > start && p - start <= 15 &&
        (p >= text_.size() || !IsNumberChar(text_[p]))) {
      *out = static_cast<double>(acc);
      pos_ = p;
      return Status::OK();
    }
    while (pos_ < text_.size() && IsNumberChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("invalid value");
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) {
      pos_ = start;
      return Error("malformed number '" +
                   text_.substr(start, pos_ - start) + "'");
    }
    *out = v;
    return Status::OK();
  }

  // Object keys never carry escapes in practice; a key containing a
  // backslash is still scanned correctly but will simply not match any
  // known field name and its value gets skipped.
  Status ParseKey(std::string* key) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected object key string");
    }
    const size_t start = ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        key->assign(text_, start, pos_ - start);
        ++pos_;
        return Status::OK();
      }
      pos_ += c == '\\' ? 2 : 1;
    }
    return Error("unterminated string");
  }

  Status SkipString() {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      pos_ += c == '\\' ? 2 : 1;
    }
    return Error("unterminated string");
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  // Skips one JSON value of any shape (used for unknown fields).
  Status SkipValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '"':
        return SkipString();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        return Status::OK();
      case '{':
      case '[': {
        const char close = c == '{' ? '}' : ']';
        ++pos_;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == close) {
          ++pos_;
          return Status::OK();
        }
        for (;;) {
          if (close == '}') {
            std::string key;
            SGCL_RETURN_NOT_OK(ParseKey(&key));
            SkipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
              return Error("expected ':' after object key");
            }
            ++pos_;
          }
          SGCL_RETURN_NOT_OK(SkipValue(depth + 1));
          SkipWs();
          if (pos_ >= text_.size()) return Error("unterminated value");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == close) {
            ++pos_;
            return Status::OK();
          }
          return Error("expected ',' or close bracket");
        }
      }
      default: {
        double ignored;
        return ParseNumber(&ignored);
      }
    }
  }

  Status ParseGraphsArray() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '[') {
      return Status::InvalidArgument(
          "missing required array field \"graphs\"");
    }
    ++pos_;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (size_t index = 0;; ++index) {
      if (static_cast<int64_t>(index) >= limits_.max_graphs) {
        return Status::InvalidArgument(
            StrFormat("request exceeds the %lld-graph limit",
                      static_cast<long long>(limits_.max_graphs)));
      }
      SGCL_RETURN_NOT_OK(ParseGraphItem(index));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseGraphItem(size_t index) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      return GraphError(index, "must be a JSON object");
    }
    ++pos_;
    bool saw_num_nodes = false;
    bool saw_features = false;
    double num_nodes_raw = 0.0;
    features_.clear();
    edges_.clear();
    size_t feature_count = 0;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
    } else {
      for (;;) {
        std::string key;
        SGCL_RETURN_NOT_OK(ParseKey(&key));
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Error("expected ':' after object key");
        }
        ++pos_;
        SkipWs();
        if (key == "num_nodes") {
          if (pos_ >= text_.size() || !LooksNumeric(text_[pos_])) {
            return GraphError(index, "missing numeric field \"num_nodes\"");
          }
          SGCL_RETURN_NOT_OK(ParseNumber(&num_nodes_raw));
          saw_num_nodes = true;
        } else if (key == "features") {
          saw_features = true;
          SGCL_RETURN_NOT_OK(ParseFeatures(index, &feature_count));
        } else if (key == "edges") {
          SGCL_RETURN_NOT_OK(ParseEdges(index));
        } else {
          SGCL_RETURN_NOT_OK(SkipValue(/*depth=*/2));
        }
        SkipWs();
        if (pos_ >= text_.size()) return Error("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          SkipWs();
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          break;
        }
        return Error("expected ',' or '}' in object");
      }
    }

    if (!saw_num_nodes) {
      return GraphError(index, "missing numeric field \"num_nodes\"");
    }
    if (num_nodes_raw < 1 || num_nodes_raw != std::floor(num_nodes_raw) ||
        num_nodes_raw > 1e9) {
      return GraphError(index, "\"num_nodes\" must be a positive integer");
    }
    const int64_t num_nodes = static_cast<int64_t>(num_nodes_raw);
    total_nodes_ += num_nodes;
    if (total_nodes_ > limits_.max_total_nodes) {
      return Status::InvalidArgument(
          StrFormat("request exceeds the %lld-node limit",
                    static_cast<long long>(limits_.max_total_nodes)));
    }
    if (!saw_features) {
      return GraphError(index, "missing array field \"features\"");
    }
    if (static_cast<int64_t>(feature_count) != num_nodes * feat_dim_) {
      return GraphError(
          index, StrFormat("\"features\" has %zu values; expected num_nodes "
                           "* feat_dim = %lld * %lld = %lld",
                           feature_count, static_cast<long long>(num_nodes),
                           static_cast<long long>(feat_dim_),
                           static_cast<long long>(num_nodes * feat_dim_)));
    }

    Graph graph(num_nodes, feat_dim_);
    graph.mutable_features() = features_;
    for (size_t j = 0; j + 1 < edges_.size(); j += 2) {
      const double a = edges_[j];
      const double b = edges_[j + 1];
      if (a != std::floor(a) || b != std::floor(b) || a < 0 || b < 0 ||
          a >= static_cast<double>(num_nodes) ||
          b >= static_cast<double>(num_nodes)) {
        return GraphError(
            index, StrFormat("edge (%g, %g) out of range for %lld nodes", a,
                             b, static_cast<long long>(num_nodes)));
      }
      graph.AddUndirectedEdge(static_cast<int64_t>(a),
                              static_cast<int64_t>(b));
    }
    SGCL_RETURN_NOT_OK(graph.Validate());
    graphs_.push_back(std::move(graph));
    return Status::OK();
  }

  static bool LooksNumeric(char c) {
    return (c >= '0' && c <= '9') || c == '-';
  }

  // Tight loop over the feature array — the bulk of every request's
  // bytes. Values land in features_ (reused across graphs); counting
  // continues past the expected length so the mismatch error can report
  // the actual count like the DOM parser did.
  Status ParseFeatures(size_t index, size_t* count) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '[') {
      return GraphError(index, "missing array field \"features\"");
    }
    ++pos_;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *count = 0;
      return Status::OK();
    }
    size_t n = 0;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || !LooksNumeric(text_[pos_])) {
        return GraphError(index,
                          StrFormat("features[%zu] is not a number", n));
      }
      double v;
      SGCL_RETURN_NOT_OK(ParseNumber(&v));
      if (!std::isfinite(v)) {
        return GraphError(index,
                          StrFormat("features[%zu] is not finite", n));
      }
      features_.push_back(static_cast<float>(v));
      ++n;
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *count = n;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseEdges(size_t index) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '[') {
      return GraphError(index,
                        "\"edges\" must be a flat [src, dst, ...] array");
    }
    ++pos_;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || !LooksNumeric(text_[pos_])) {
        return GraphError(
            index, StrFormat("edges[%zu..] is not a number pair",
                             edges_.size() & ~size_t{1}));
      }
      double v;
      SGCL_RETURN_NOT_OK(ParseNumber(&v));
      edges_.push_back(v);
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    if (edges_.size() % 2 != 0) {
      return GraphError(index,
                        "\"edges\" must have an even number of values");
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
  const int64_t feat_dim_;
  const RequestLimits limits_;
  std::vector<Graph> graphs_;
  int64_t total_nodes_ = 0;
  // Per-item scratch, reused so steady-state parsing does not allocate.
  std::vector<float> features_;
  std::vector<double> edges_;
};

}  // namespace

Result<std::vector<Graph>> ParseGraphsRequest(const std::string& body,
                                              int64_t feat_dim,
                                              const RequestLimits& limits) {
  return GraphsRequestScanner(body, feat_dim, limits).Run();
}

std::string FormatRowsResponse(const std::string& key,
                               const std::vector<std::vector<float>>& rows,
                               int64_t dim_or_negative) {
  std::string out = "{\"" + key + "\":[";
  char buf[32];
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) out += ',';
      const float v = rows[i][j];
      if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
        out += buf;
      } else {
        out += "null";
      }
    }
    out += ']';
  }
  out += ']';
  if (dim_or_negative >= 0) {
    out += StrFormat(",\"dim\":%lld", static_cast<long long>(dim_or_negative));
  }
  out += "}\n";
  return out;
}

}  // namespace serve
}  // namespace sgcl
